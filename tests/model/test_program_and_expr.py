"""Unit tests for the stencil program model and expression trees."""

import numpy as np
import pytest

from repro.model.expr import BinOp, Call, Constant, FieldRead, count_flops, distinct_reads
from repro.model.program import StencilProgram, StencilStatement
from repro.stencils import get_stencil


def test_flop_counting_simple():
    expr = Constant(0.5) * (FieldRead("A", (1,)) + FieldRead("A", (-1,)))
    assert count_flops(expr) == 2


def test_flop_counting_shared_subexpression_counted_once():
    diff = FieldRead("A", (1,)) - FieldRead("A", (-1,))
    expr = diff * diff + Constant(1.0)
    # one sub, one mul, one add: the shared `diff` object is a single flop.
    assert count_flops(expr) == 3


def test_distinct_reads_deduplicates():
    centre = FieldRead("A", (0, 0))
    expr = centre + centre + FieldRead("A", (1, 0))
    assert len(distinct_reads(expr)) == 2


def test_call_validation():
    with pytest.raises(ValueError):
        Call("not_a_function", (Constant(1.0),))
    with pytest.raises(ValueError):
        BinOp("**", Constant(1.0), Constant(2.0))


def test_expr_to_c():
    expr = Constant(0.25) * (FieldRead("A", (0, 1)) + FieldRead("A", (0, -1)))
    text = expr.to_c(["i", "j"])
    assert "A[i][j + 1]" in text and "A[i][j - 1]" in text


def test_program_characteristics_and_counts():
    program = get_stencil("jacobi_2d", sizes=(10, 12), steps=4)
    statement = program.statements[0]
    assert statement.loads == 5
    assert statement.flops == 5
    assert program.interior_points(statement) == 8 * 10
    assert program.stencil_updates() == 8 * 10 * 4
    assert program.flops_total() == program.stencil_updates() * 5
    assert program.data_bytes() == 10 * 12 * 4


def test_reference_execution_matches_manual_jacobi():
    program = get_stencil("jacobi_2d", sizes=(8, 8), steps=3)
    initial = program.initial_state(seed=1)
    result = program.run_reference(initial)["A"]

    expected = initial["A"].astype(np.float32).copy()
    for _ in range(3):
        new = expected.copy()
        new[1:-1, 1:-1] = np.float32(0.2) * (
            expected[1:-1, 1:-1]
            + expected[2:, 1:-1]
            + expected[:-2, 1:-1]
            + expected[1:-1, 2:]
            + expected[1:-1, :-2]
        )
        expected = new
    assert np.allclose(result, expected, atol=1e-5)


def test_reference_execution_boundary_unchanged():
    program = get_stencil("heat_2d", sizes=(9, 9), steps=5)
    initial = program.initial_state(seed=2)
    result = program.run_reference(initial)["A"]
    assert np.array_equal(result[0, :], initial["A"][0, :])
    assert np.array_equal(result[:, -1], initial["A"][:, -1])


def test_multi_statement_fdtd_runs_and_updates_all_fields():
    program = get_stencil("fdtd_2d", sizes=(10, 10), steps=3)
    initial = program.initial_state(seed=3)
    result = program.run_reference(initial)
    for name in ("ex", "ey", "hz"):
        assert name in result
        assert not np.array_equal(result[name], initial[name])


def test_invalid_program_construction():
    statement = StencilStatement(
        "S0", "A", FieldRead("A", (0,)), (1,), (1,)
    )
    with pytest.raises(ValueError):
        StencilProgram("bad", ("i", "j"), (8,), 4, [statement])
    with pytest.raises(ValueError):
        StencilProgram("bad", ("i",), (8,), 4, [])


def test_c_source_generation():
    program = get_stencil("laplacian_2d", sizes=(16, 16), steps=4)
    source = program.c_source()
    assert "for" in source
    assert "#define N0 16" in source and "#define T 4" in source
    assert "A[t][i][j]" in source and "A[t-1]" in source
    assert "#pragma ivdep" in source
    jacobi = get_stencil("jacobi_2d", sizes=(16, 16), steps=4)
    assert "0.2f" in jacobi.c_source()   # Figure 1 source is preserved


def test_c_source_roundtrips_through_frontend():
    from repro.frontend import parse_stencil

    program = get_stencil("laplacian_2d", sizes=(16, 16), steps=4)
    parsed = parse_stencil(program.c_source())
    assert parsed.sizes == program.sizes
    assert parsed.time_steps == program.time_steps
    assert parsed.statements[0].expr == program.statements[0].expr
