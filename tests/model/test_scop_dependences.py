"""Unit tests for SCoP extraction, dependence analysis and canonicalisation."""

import pytest

from repro.model.dependences import (
    DependenceError,
    DependenceKind,
    compute_dependences,
    dependence_distance_vectors,
)
from repro.model.expr import Constant, FieldRead
from repro.model.preprocess import canonicalize
from repro.model.program import StencilProgram, StencilStatement
from repro.model.scop import AccessKind, build_scop
from repro.stencils import get_stencil


def test_scop_domains_and_accesses():
    program = get_stencil("jacobi_2d", sizes=(10, 12), steps=4)
    scop = build_scop(program)
    statement = scop.statements[0]
    assert statement.domain.count() == 4 * 8 * 10
    writes = statement.writes
    reads = statement.reads
    assert len(writes) == 1 and writes[0].kind is AccessKind.WRITE
    assert len(reads) == 5
    assert scop.iteration_count() == program.stencil_updates()


def test_initial_schedule_interleaves_statements():
    program = get_stencil("fdtd_2d", sizes=(8, 8), steps=2)
    scop = build_scop(program)
    # statement i at time t is scheduled at logical time 3t + i.
    for index, statement in enumerate(scop.statements):
        image = statement.schedule.apply_int_point((2, 3, 3))
        assert image[0] == 3 * 2 + index


def test_jacobi_flow_dependences():
    program = get_stencil("jacobi_2d", sizes=(10, 10), steps=4)
    dependences = compute_dependences(program)
    vectors = set(dependence_distance_vectors(dependences))
    assert vectors == {(1, 0, 0), (1, 1, 0), (1, -1, 0), (1, 0, 1), (1, 0, -1)}
    assert all(d.kind is DependenceKind.FLOW for d in dependences)


def test_rotating_storage_adds_anti_and_output_dependences():
    program = get_stencil("jacobi_2d", sizes=(10, 10), steps=4)
    dependences = compute_dependences(program, storage="rotating")
    kinds = {d.kind for d in dependences}
    assert DependenceKind.ANTI in kinds
    assert DependenceKind.OUTPUT in kinds
    # Every distance must still be carried by the time dimension.
    assert all(d.time_distance > 0 for d in dependences)


def test_fdtd_cross_statement_dependences():
    program = get_stencil("fdtd_2d", sizes=(8, 8), steps=2)
    dependences = compute_dependences(program)
    # hz (index 2) reads ex (index 1) produced in the same time iteration.
    hz_from_ex = [d for d in dependences if d.source == "Sex" and d.sink == "Shz"]
    assert hz_from_ex and all(d.time_distance == 1 for d in hz_from_ex)
    # ey (index 0) reads hz (index 2) from the previous iteration: distance 3-2=1...
    ey_from_hz = [d for d in dependences if d.source == "Shz" and d.sink == "Sey"]
    assert ey_from_hz and all(d.time_distance == 3 - 2 for d in ey_from_hz)


def test_paper_example_distance_vectors():
    program = get_stencil("higher_order_time", sizes=(32,), steps=8)
    vectors = set(dependence_distance_vectors(compute_dependences(program)))
    assert vectors == {(2, 2), (1, -2)}


def test_multiple_writers_rejected():
    a_writer = StencilStatement("S0", "A", Constant(1.0) * FieldRead("A", (0,)), (1,), (1,))
    a_writer2 = StencilStatement("S1", "A", Constant(2.0) * FieldRead("A", (0,)), (1,), (1,))
    program = StencilProgram("bad", ("i",), (16,), 4, [a_writer, a_writer2])
    with pytest.raises(DependenceError):
        compute_dependences(program)


def test_read_of_future_value_rejected():
    s0 = StencilStatement("S0", "A", Constant(1.0) * FieldRead("B", (0,), 0), (1,), (1,))
    s1 = StencilStatement("S1", "B", Constant(1.0) * FieldRead("B", (0,), 1), (1,), (1,))
    program = StencilProgram("bad", ("i",), (16,), 4, [s0, s1])
    with pytest.raises(DependenceError):
        compute_dependences(program)


def test_canonical_form_round_trip_and_bounds():
    program = get_stencil("fdtd_2d", sizes=(8, 8), steps=3)
    canonical = canonicalize(program)
    assert canonical.num_statements == 3
    assert canonical.logical_time_extent == 9
    point = canonical.to_canonical(2, 1, (4, 5))
    assert point == (5, 4, 5)
    statement, t, space = canonical.from_canonical(point)
    assert (statement, t, space) == (2, 1, (4, 5))
    delta0, delta1 = canonical.space_distance_bounds(0)
    assert delta0 >= 0 and delta1 >= 0


def test_reorder_space_moves_hexagonal_dimension():
    program = get_stencil("heat_3d", sizes=(8, 8, 8), steps=2)
    canonical = canonicalize(program)
    reordered = canonical.reorder_space("j")
    assert reordered.space_dims[0] == "j"
    assert set(reordered.space_dims) == set(canonical.space_dims)
    assert len(reordered.distance_vectors) == len(canonical.distance_vectors)
    with pytest.raises(ValueError):
        canonical.reorder_space("nope")
