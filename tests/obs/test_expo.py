"""Prometheus text-format rendering and its strict inverse parser."""

from __future__ import annotations

import pytest

from repro.obs.expo import (
    parse_metric_key,
    parse_prometheus_text,
    render_prometheus,
)


def test_parse_metric_key_inverts_the_registry_flattening():
    assert parse_metric_key("cache.hit") == ("cache.hit", {})
    assert parse_metric_key("cache.hit{stage=tiling}") == (
        "cache.hit", {"stage": "tiling"},
    )
    assert parse_metric_key("x{a=1,b=2}") == ("x", {"a": "1", "b": "2"})


def test_counters_render_with_total_suffix_and_labels():
    text = render_prometheus(
        {"counters": {"cache.hit{stage=tiling}": 3.0, "cache.hit": 1.0}}
    )
    assert "# TYPE hexcc_cache_hit_total counter" in text
    assert text.count("# TYPE hexcc_cache_hit_total") == 1  # one family line
    parsed = parse_prometheus_text(text)
    assert parsed.value("hexcc_cache_hit_total", stage="tiling") == 3.0
    assert parsed.value("hexcc_cache_hit_total") == 1.0


def test_gauges_render_plainly():
    parsed = parse_prometheus_text(
        render_prometheus({"gauges": {"engine.jobs": 4.0}})
    )
    assert parsed.types["hexcc_engine_jobs"] == "gauge"
    assert parsed.value("hexcc_engine_jobs") == 4.0


def test_histograms_render_cumulative_buckets():
    text = render_prometheus(
        {
            "histograms": {
                "compile.wall_ms{stop=codegen}": {
                    "buckets": [1.0, 5.0, 25.0],
                    "counts": [1, 0, 2, 1],  # last = overflow
                    "sum": 40.5,
                    "count": 4,
                }
            }
        }
    )
    parsed = parse_prometheus_text(text)
    name = "hexcc_compile_wall_ms"
    assert parsed.types[name] == "histogram"
    assert parsed.value(f"{name}_bucket", stop="codegen", le="1") == 1.0
    assert parsed.value(f"{name}_bucket", stop="codegen", le="5") == 1.0
    assert parsed.value(f"{name}_bucket", stop="codegen", le="25") == 3.0
    assert parsed.value(f"{name}_bucket", stop="codegen", le="+Inf") == 4.0
    assert parsed.value(f"{name}_sum", stop="codegen") == 40.5
    assert parsed.value(f"{name}_count", stop="codegen") == 4.0


def test_label_values_escape_and_round_trip():
    awkward = 'he said "hi"\nback\\slash'
    parsed = parse_prometheus_text(
        render_prometheus({"counters": {f"c{{msg={awkward}}}": 1.0}})
    )
    assert parsed.value("hexcc_c_total", msg=awkward) == 1.0


def test_real_registry_snapshot_round_trips(small_jacobi_2d):
    from repro import obs
    from repro.api import Session

    telemetry = obs.Telemetry()
    Session(telemetry=telemetry).run(small_jacobi_2d)
    snapshot = telemetry.metrics.snapshot()
    parsed = parse_prometheus_text(render_prometheus(snapshot))
    assert parsed.value("hexcc_compile_wall_ms_count", stop="codegen") == 1.0
    assert "histogram" in parsed.types.values()


def test_empty_snapshot_renders_empty():
    assert render_prometheus({}) == ""
    parsed = parse_prometheus_text("")
    assert parsed.types == {} and parsed.samples == {}


def test_parser_rejects_samples_without_a_type():
    with pytest.raises(ValueError, match="no # TYPE"):
        parse_prometheus_text("hexcc_x_total 1\n")


def test_parser_rejects_counters_without_total_suffix():
    with pytest.raises(ValueError, match="_total"):
        parse_prometheus_text("# TYPE hexcc_x counter\nhexcc_x 1\n")


def test_parser_rejects_non_cumulative_buckets():
    text = (
        "# TYPE hexcc_h histogram\n"
        'hexcc_h_bucket{le="1"} 3\n'
        'hexcc_h_bucket{le="2"} 2\n'
        'hexcc_h_bucket{le="+Inf"} 3\n'
        "hexcc_h_sum 1\n"
        "hexcc_h_count 3\n"
    )
    with pytest.raises(ValueError, match="not cumulative"):
        parse_prometheus_text(text)


def test_parser_rejects_inf_bucket_count_mismatch():
    text = (
        "# TYPE hexcc_h histogram\n"
        'hexcc_h_bucket{le="+Inf"} 3\n'
        "hexcc_h_sum 1\n"
        "hexcc_h_count 4\n"
    )
    with pytest.raises(ValueError, match="_count"):
        parse_prometheus_text(text)


def test_parser_rejects_malformed_lines():
    with pytest.raises(ValueError, match="malformed sample"):
        parse_prometheus_text("# TYPE hexcc_x gauge\nnot a sample !!\n")
    with pytest.raises(ValueError, match="malformed value"):
        parse_prometheus_text("# TYPE hexcc_x gauge\nhexcc_x elephant\n")
    with pytest.raises(ValueError, match="malformed labels"):
        parse_prometheus_text('# TYPE hexcc_x gauge\nhexcc_x{oops} 1\n')
    with pytest.raises(ValueError, match="malformed TYPE"):
        parse_prometheus_text("# TYPE hexcc_x wibble\n")
