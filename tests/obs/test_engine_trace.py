"""Cross-process trace propagation through the execution engine.

Satellite guarantees: spans recorded inside ``jobs=2`` worker processes
carry their real (distinct) pids, link back to the parent's fan-out span,
and the engine's determinism contract survives tracing.  Plus the pinned,
deterministic span structure of a traced library-stencil compile.
"""

from __future__ import annotations

import os

from repro import obs
from repro.engine import map_ordered
from repro.stencils import get_stencil


def _square(value: int) -> int:
    return value * value


def _traced_square(value: int) -> int:
    with obs.span("work.square", value=value):
        obs.count("work.items")
        return value * value


def test_serial_tracing_wraps_items():
    telemetry = obs.Telemetry()
    with obs.use(telemetry):
        assert map_ordered(_traced_square, [1, 2, 3], jobs=1) == [1, 4, 9]
    spans = telemetry.recorder.drain()
    by_name = {}
    for span in spans:
        by_name.setdefault(span.name, []).append(span)
    (fan,) = by_name["engine.map_ordered"]
    assert fan.attributes == {"jobs": 1, "items": 3}
    assert len(by_name["engine.item"]) == 3
    assert all(s.parent_id == fan.span_id for s in by_name["engine.item"])
    assert telemetry.metrics.snapshot()["counters"]["work.items"] == 3.0


def test_parallel_workers_stitch_into_one_trace():
    telemetry = obs.Telemetry()
    items = list(range(8))
    with obs.use(telemetry):
        results = map_ordered(_traced_square, items, jobs=2)
    assert results == [value * value for value in items]

    spans = telemetry.recorder.drain()
    ids = {span.span_id for span in spans}
    fans = [s for s in spans if s.name == "engine.map_ordered"]
    workers = [s for s in spans if s.name == "engine.worker"]
    squares = [s for s in spans if s.name == "work.square"]
    (fan,) = fans
    assert len(workers) == len(items)
    assert len(squares) == len(items)

    # Worker spans carry real worker pids: distinct from the parent, and at
    # least two distinct processes did the work.
    worker_pids = {span.pid for span in workers}
    assert os.getpid() not in worker_pids
    assert len(worker_pids) == 2

    # Every worker root is parented on the fan-out span; every traced user
    # span is parented on its worker root; every parent link resolves.
    assert all(span.parent_id == fan.span_id for span in workers)
    worker_ids = {span.span_id for span in workers}
    assert all(span.parent_id in worker_ids for span in squares)
    assert all(
        span.parent_id is None or span.parent_id in ids for span in spans
    )
    # Span ids stay unique even though pool processes are reused across items.
    assert len(ids) == len(spans)

    # Worker metrics merged into the parent registry.
    counters = telemetry.metrics.snapshot()["counters"]
    assert counters["work.items"] == float(len(items))


def test_parallel_results_identical_with_and_without_tracing():
    items = list(range(6))
    plain = map_ordered(_square, items, jobs=2)
    telemetry = obs.Telemetry()
    with obs.use(telemetry):
        traced = map_ordered(_square, items, jobs=2)
    assert traced == plain == [value * value for value in items]


def test_disabled_telemetry_records_nothing():
    assert map_ordered(_traced_square, [1, 2], jobs=2) == [1, 4]
    assert obs.current().recorder.drain() == []


def _span_tree(spans):
    """(name, parent-name) edges — the structure, stripped of ids/timing."""
    names = {span.span_id: span.name for span in spans}
    return sorted(
        (span.name, names.get(span.parent_id)) for span in spans
    )


def test_traced_compile_structure_is_deterministic():
    """The span tree of a library-stencil compile is pinned and repeatable."""
    from repro.api import Session

    program = get_stencil("jacobi_2d", sizes=(20, 18), steps=10)
    trees = []
    for _ in range(2):
        telemetry = obs.Telemetry()
        Session(telemetry=telemetry).run(program, stop_after="analysis")
        trees.append(_span_tree(telemetry.recorder.drain()))
    assert trees[0] == trees[1]
    assert trees[0] == [
        ("pass.analysis", "session.run"),
        ("pass.canonicalize", "session.run"),
        ("pass.codegen", "session.run"),
        ("pass.memory", "session.run"),
        ("pass.parse", "session.run"),
        ("pass.tiling", "session.run"),
        ("session.run", None),
    ]
