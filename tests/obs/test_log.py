"""The event log, the flight recorder and crash reports."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.log import (
    FLIGHT_RECORDER,
    Event,
    EventLog,
    NullEventLog,
    attach_crash_report,
    crash_report_dir,
    flight_recorder_size,
    write_crash_report,
)


@pytest.fixture(autouse=True)
def _clean_flight_recorder():
    FLIGHT_RECORDER.clear()
    yield
    FLIGHT_RECORDER.clear()


def test_event_to_json_stringifies_non_scalar_fields():
    event = Event(
        ts_ns=7, name="x", level="info", pid=1,
        span_id="s1", trace_id="t1", fields={"blob": b"x", "n": 3},
    )
    record = event.to_json()
    assert record["span_id"] == "s1" and record["trace_id"] == "t1"
    assert record["fields"] == {"blob": "b'x'", "n": 3}
    json.dumps(record)  # must be JSON-safe


def test_event_log_is_a_bounded_ring():
    log = EventLog(capacity=3)
    for i in range(5):
        log.emit("e", i=i)
    tail = log.tail()
    assert [e.fields["i"] for e in tail] == [2, 3, 4]  # oldest first
    assert log.capacity == 3


def test_event_log_sink_writes_jsonl(tmp_path):
    sink = tmp_path / "events.jsonl"
    log = EventLog(capacity=8, sink=sink)
    log.emit("a", k=1)
    log.emit("b", level="warn")
    lines = [json.loads(l) for l in sink.read_text().splitlines()]
    assert [l["name"] for l in lines] == ["a", "b"]
    assert lines[1]["level"] == "warn"


def test_event_log_sink_failure_never_raises(tmp_path):
    # Point the sink at a directory: open() fails, the sink goes dark, and
    # the in-memory ring keeps working.
    log = EventLog(capacity=4, sink=tmp_path)
    log.emit("a")
    log.emit("b")
    assert [e.name for e in log.tail()] == ["a", "b"]


def test_flight_recorder_size_env(monkeypatch):
    monkeypatch.setenv("HEXCC_FLIGHT_RECORDER_SIZE", "17")
    assert flight_recorder_size() == 17
    monkeypatch.setenv("HEXCC_FLIGHT_RECORDER_SIZE", "junk")
    assert flight_recorder_size() == 256
    monkeypatch.setenv("HEXCC_FLIGHT_RECORDER_SIZE", "-3")
    assert flight_recorder_size() == 1


def test_null_event_log_is_inert():
    log = NullEventLog()
    log.emit("a")
    log.extend([Event(ts_ns=0, name="x", level="info", pid=1)])
    assert log.tail() == []
    assert log.enabled is False


def test_obs_event_records_into_the_flight_recorder_when_disabled():
    # No telemetry activated: obs.event() still lands in the global ring.
    obs.event("something.happened", detail=42)
    (event,) = FLIGHT_RECORDER.tail()
    assert event.name == "something.happened"
    assert event.fields == {"detail": 42}
    assert event.span_id is None and event.trace_id is None


def test_obs_event_carries_the_active_span_and_trace(tmp_path):
    telemetry = obs.Telemetry()
    with obs.use(telemetry):
        with telemetry.span("outer"):
            obs.event("inside")
    (event,) = telemetry.events.tail()
    assert event.span_id is not None
    assert event.trace_id == telemetry.recorder.trace_id
    assert FLIGHT_RECORDER.tail() == []  # enabled telemetry has its own log


def test_crash_report_document_and_location():
    telemetry = obs.Telemetry()
    with obs.use(telemetry):
        with telemetry.span("session.run"):
            obs.event("pass.done", stage="parse")
            error = RuntimeError("tiling exploded")
            path = write_crash_report(
                error,
                context={"operation": "compile", "program": "jacobi_2d"},
                telemetry=telemetry,
                stage_keys={"parse": "k1"},
            )
    assert path is not None
    assert path.parent == crash_report_dir()  # under $HEXCC_CACHE_DIR/crash
    document = json.loads(path.read_text())
    assert document["kind"] == "hexcc-crash"
    assert document["schema_version"] == 1
    assert document["error"]["type"] == "RuntimeError"
    assert document["error"]["message"] == "tiling exploded"
    assert any("tiling exploded" in ln for ln in document["error"]["traceback"])
    assert document["context"]["program"] == "jacobi_2d"
    assert [s["name"] for s in document["span_stack"]] == ["session.run"]
    assert document["trace_id"] == telemetry.recorder.trace_id
    assert [e["name"] for e in document["events"]] == ["pass.done"]
    assert document["stage_keys"] == {"parse": "k1"}
    assert "counters" in document["metrics"]


def test_crash_report_falls_back_to_the_flight_recorder():
    # With telemetry disabled the report still has an event tail: the
    # always-on global ring.
    obs.event("last.words")
    path = write_crash_report(ValueError("boom"), context={})
    assert path is not None
    document = json.loads(path.read_text())
    assert [e["name"] for e in document["events"]] == ["last.words"]
    assert document["span_stack"] == []


def test_crash_reports_are_pruned_to_the_keep_limit(monkeypatch):
    monkeypatch.setenv("HEXCC_CRASH_KEEP", "2")
    paths = [write_crash_report(ValueError(str(i))) for i in range(4)]
    assert all(p is not None for p in paths)
    remaining = sorted(crash_report_dir().glob("crash-*.json"))
    assert remaining == [paths[2], paths[3]]  # newest two survive


def test_crash_reports_can_be_disabled(monkeypatch):
    monkeypatch.setenv("HEXCC_CRASH_DISABLE", "1")
    assert write_crash_report(ValueError("x")) is None
    assert not list(crash_report_dir().glob("crash-*.json"))


def test_attach_crash_report_keeps_the_first_path(tmp_path):
    error = ValueError("x")
    attach_crash_report(error, None)
    assert not hasattr(error, "crash_report_path")
    attach_crash_report(error, tmp_path / "a.json")
    attach_crash_report(error, tmp_path / "b.json")  # a later layer's report
    assert error.crash_report_path == str(tmp_path / "a.json")


def test_session_failure_writes_a_crash_report(monkeypatch, small_jacobi_2d):
    from repro.api import Session

    def explode(self, pipeline_pass, key, request, artifacts):
        if pipeline_pass.name == "tiling":
            raise RuntimeError("synthetic tiling fault")
        return original(self, pipeline_pass, key, request, artifacts)

    original = Session._fetch_or_run
    monkeypatch.setattr(Session, "_fetch_or_run", explode)
    with pytest.raises(RuntimeError) as excinfo:
        Session(telemetry=obs.Telemetry()).run(small_jacobi_2d)
    path = getattr(excinfo.value, "crash_report_path", None)
    assert path is not None
    document = json.loads(open(path).read())
    assert document["context"]["operation"] == "compile"
    assert document["context"]["program"] == "jacobi_2d"
    # The report names the stages that completed before the fault...
    assert "canonicalize" in document["stage_keys"]
    assert "tiling" not in document["stage_keys"]
    # ...the span still open when the report was written (the pass span
    # closed as the exception propagated out of it)...
    assert [s["name"] for s in document["span_stack"]] == ["session.run"]
    # ...and the events leading up to it.
    stages = [e["fields"]["stage"] for e in document["events"]
              if e["name"] == "pass.done"]
    assert stages == ["parse", "canonicalize"]


def test_strategy_errors_do_not_produce_crash_reports(small_jacobi_2d):
    from repro.api import Session, StrategyError, TileSizes

    with pytest.raises(StrategyError):  # 2-D stencil, one tile width
        Session(strategy="classical").run(
            small_jacobi_2d, tile_sizes=TileSizes.of(2, 4)
        )
    assert not list(crash_report_dir().glob("crash-*.json"))
