"""Chrome trace export and the schema validator."""

from __future__ import annotations

import json
import os

from repro.obs.export import (
    TRACE_KIND,
    TRACE_SCHEMA_VERSION,
    chrome_trace,
    metrics_document,
    write_trace,
)
from repro.obs.spans import TraceRecorder
from repro.obs.validate import validate_chrome_trace


def _record_tree():
    recorder = TraceRecorder()
    with recorder.span("session.run", program="jacobi_2d"):
        with recorder.span("pass.tiling"):
            pass
        with recorder.span("cache.put", stage="tiling", blob=b"x"):
            pass
    return recorder.drain()


def test_chrome_trace_structure():
    spans = _record_tree()
    document = chrome_trace(spans)
    assert document["displayTimeUnit"] == "ms"
    assert document["otherData"] == {
        "kind": TRACE_KIND,
        "schema_version": TRACE_SCHEMA_VERSION,
        "spans": 3,
        "processes": 1,
    }
    events = document["traceEvents"]
    metadata = [e for e in events if e["ph"] == "M"]
    complete = [e for e in events if e["ph"] == "X"]
    assert [e["args"]["name"] for e in metadata] == ["hexcc"]
    assert {e["name"] for e in complete} == {
        "session.run", "pass.tiling", "cache.put",
    }
    for event in complete:
        assert event["pid"] == os.getpid()
        assert isinstance(event["ts"], float)
        assert event["dur"] >= 0
        assert event["cat"] == event["name"].split(".", 1)[0]


def test_non_scalar_attributes_are_stringified():
    document = chrome_trace(_record_tree())
    (put,) = [e for e in document["traceEvents"] if e["name"] == "cache.put"]
    assert put["args"]["blob"] == "b'x'"
    json.dumps(document)  # the whole document must be JSON-serialisable


def test_write_trace_roundtrips_through_the_validator(tmp_path):
    path = write_trace(
        tmp_path / "trace.json", _record_tree(), {"counters": {"cache.store": 1.0}}
    )
    document = json.loads(path.read_text())
    assert validate_chrome_trace(document) == []
    assert document["metrics"] == {"counters": {"cache.store": 1.0}}


def test_validator_rejects_structural_problems():
    assert validate_chrome_trace({}) == ["document has no traceEvents list"]
    problems = validate_chrome_trace(
        {
            "traceEvents": [
                {"name": "a", "ph": "X", "pid": 1, "tid": 1, "ts": 0.0, "dur": 1.0,
                 "args": {"span_id": "s1", "parent_id": None}},
                {"name": "b", "ph": "X", "pid": 1, "tid": 1, "ts": 0.0, "dur": 1.0,
                 "args": {"span_id": "s1", "parent_id": "ghost"}},
                {"name": "c", "ph": "X", "pid": "one", "tid": 1, "ts": "soon",
                 "dur": -2.0, "args": {}},
            ]
        }
    )
    assert any("duplicate span_id 's1'" in p for p in problems)
    assert any("parent_id 'ghost' does not resolve" in p for p in problems)
    assert any("pid is not an integer" in p for p in problems)
    assert any("ts is not a number" in p for p in problems)
    assert any("negative dur" in p for p in problems)
    assert any("span_id missing" in p for p in problems)


def test_validator_accepts_multi_process_traces():
    spans = _record_tree()
    foreign = [
        type(span)(
            name=span.name, span_id=f"w-{i}", parent_id=None,
            start_ns=span.start_ns, duration_ns=span.duration_ns,
            pid=span.pid + 1, tid=span.tid, attributes={},
        )
        for i, span in enumerate(spans)
    ]
    document = chrome_trace(spans + foreign)
    assert validate_chrome_trace(document) == []
    names = {
        e["args"]["name"] for e in document["traceEvents"] if e["ph"] == "M"
    }
    assert names == {"hexcc", f"hexcc worker {os.getpid() + 1}"}


def test_metrics_document_envelope():
    document = metrics_document({"counters": {"a": 1.0}})
    assert document["kind"] == "hexcc-metrics"
    assert document["schema_version"] == 1
    assert document["metrics"] == {"counters": {"a": 1.0}}


# -- deliberately corrupted traces ---------------------------------------------------


def _span(span_id, parent_id=None, duration_ns=10, name="pass.x"):
    from repro.obs.spans import Span

    return Span(
        name=name, span_id=span_id, parent_id=parent_id,
        start_ns=0, duration_ns=duration_ns, pid=1, tid=1, attributes={},
    )


def test_validate_spans_accepts_a_real_tree():
    from repro.obs.validate import validate_spans

    assert validate_spans(_record_tree()) == []


def test_validate_spans_flags_orphans_and_negative_durations():
    from repro.obs.validate import validate_spans

    problems = validate_spans(
        [
            _span("s1"),
            _span("s2", parent_id="ghost"),  # parent never materialised
            _span("s3", parent_id="s1", duration_ns=-5),
        ]
    )
    assert any("orphan span" in p and "'ghost'" in p for p in problems)
    assert any("negative duration" in p for p in problems)
    assert len(problems) == 2


def test_validate_spans_flags_self_parents_and_cycles():
    from repro.obs.validate import validate_spans

    problems = validate_spans(
        [
            _span("s1", parent_id="s1"),
            _span("a", parent_id="b"),
            _span("b", parent_id="a"),
        ]
    )
    assert any("its own parent" in p for p in problems)
    assert any("parent cycle" in p and "a -> b" in p for p in problems)


def test_validate_spans_flags_duplicate_and_empty_ids():
    from repro.obs.validate import validate_spans

    problems = validate_spans([_span("s1"), _span("s1"), _span("")])
    assert any("duplicate span_id 's1'" in p for p in problems)
    assert any("empty span_id" in p for p in problems)


def test_validator_flags_an_orphan_in_an_exported_trace():
    # Corrupt a real trace after export: re-parent one span onto an id
    # that does not exist anywhere in the document.
    document = chrome_trace(_record_tree())
    victim = next(
        e for e in document["traceEvents"]
        if e["ph"] == "X" and e["args"].get("parent_id")
    )
    victim["args"]["parent_id"] = "no-such-span"
    problems = validate_chrome_trace(document)
    assert any(
        "orphan span" in p and "'no-such-span'" in p for p in problems
    )


def test_validator_flags_a_cycle_in_an_exported_trace():
    document = chrome_trace(_record_tree())
    spans = [e for e in document["traceEvents"] if e["ph"] == "X"]
    root = next(e for e in spans if e["args"]["parent_id"] is None)
    child = next(e for e in spans if e["args"]["parent_id"] is not None)
    root["args"]["parent_id"] = child["args"]["span_id"]
    problems = validate_chrome_trace(document)
    assert any("parent cycle" in p for p in problems)
