"""Inclusive/exclusive aggregation: the math behind ``hexcc profile``."""

from __future__ import annotations

import pytest

from repro.obs.profile import format_profile, profile_rows, total_wall_s
from repro.obs.spans import Span


def _span(name, span_id, parent_id, duration_ns, pid=1):
    return Span(
        name=name, span_id=span_id, parent_id=parent_id,
        start_ns=0, duration_ns=duration_ns, pid=pid, tid=1, attributes={},
    )


def test_exclusive_subtracts_direct_children_only():
    spans = [
        _span("run", "1", None, 100),
        _span("pass.tiling", "2", "1", 60),
        _span("cache.put", "3", "2", 15),
        _span("pass.memory", "4", "1", 10),
    ]
    rows = {row.name: row for row in profile_rows(spans)}
    assert rows["run"].exclusive_s == 30e-9  # 100 - (60 + 10)
    assert rows["pass.tiling"].exclusive_s == 45e-9  # 60 - 15; grandchild no
    assert rows["cache.put"].exclusive_s == 15e-9
    assert rows["pass.memory"].exclusive_s == 10e-9


def test_exclusive_times_sum_to_the_root_total():
    spans = [
        _span("run", "1", None, 1000),
        _span("a", "2", "1", 400),
        _span("b", "3", "1", 300),
        _span("c", "4", "2", 100),
    ]
    total = total_wall_s(spans)
    assert total == 1000e-9
    accounted = sum(row.exclusive_s for row in profile_rows(spans))
    assert abs(accounted - total) < 1e-15


def test_same_name_spans_aggregate():
    spans = [
        _span("run", "1", None, 100),
        _span("cache.get", "2", "1", 10),
        _span("cache.get", "3", "1", 20),
    ]
    rows = {row.name: row for row in profile_rows(spans)}
    assert rows["cache.get"].count == 2
    assert rows["cache.get"].inclusive_s == pytest.approx(30e-9)


def test_concurrent_children_clamp_exclusive_at_zero():
    # Worker subtrees overlap their fan-out span: children sum past the parent.
    spans = [
        _span("engine.map_ordered", "1", None, 100),
        _span("engine.worker", "w1", "1", 90, pid=2),
        _span("engine.worker", "w2", "1", 80, pid=3),
    ]
    rows = {row.name: row for row in profile_rows(spans)}
    assert rows["engine.map_ordered"].exclusive_s == 0.0


def test_unresolvable_parents_count_as_roots():
    spans = [_span("orphan", "9", "gone", 50), _span("root", "1", None, 70)]
    assert total_wall_s(spans) == pytest.approx(120e-9)


def test_rows_rank_by_exclusive_time():
    spans = [
        _span("run", "1", None, 100),
        _span("small", "2", "1", 15),
        _span("big", "3", "1", 80),
    ]
    # Exclusive times: big 80, small 15, run 100 - 95 = 5.
    assert [row.name for row in profile_rows(spans)] == ["big", "small", "run"]


def test_format_profile_renders_a_total_row():
    spans = [_span("run", "1", None, 2_000_000)]
    text = format_profile(profile_rows(spans), total_wall_s(spans))
    lines = text.splitlines()
    assert lines[0].split() == ["span", "count", "inclusive", "exclusive", "excl", "%"]
    assert lines[-1].startswith("total")
    assert "100.0%" in lines[-1]
