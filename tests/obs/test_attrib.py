"""Regression attribution: noise floors, cache flips, guilty passes."""

from __future__ import annotations

import pytest

from repro.obs.attrib import (
    MIN_NOISE_FLOOR_MS,
    Attribution,
    PassSample,
    attribute,
    attribute_entries,
    attribute_records,
    mad,
    samples_from_entry,
)


def test_mad_is_the_median_absolute_deviation():
    assert mad([5.0]) == 0.0  # single samples carry no spread information
    assert mad([1.0, 1.0, 1.0]) == 0.0
    assert mad([1.0, 2.0, 9.0]) == 1.0  # |1-2|, |2-2|, |9-2| -> median 1


def _sample(name, *runs, source="computed"):
    return PassSample(name=name, runs_ms=tuple(runs), source=source)


def test_attribute_names_the_dominant_regressing_pass():
    old = [_sample("parse", 1.0), _sample("tiling", 2.0), _sample("codegen", 3.0)]
    new = [_sample("parse", 1.0), _sample("tiling", 42.0), _sample("codegen", 3.2)]
    attribution = attribute(old, new)
    assert attribution.guilty == "tiling"
    assert attribution.total_delta_ms == pytest.approx(40.2)
    assert attribution.guilty_share == pytest.approx(40.0 / 40.2)
    assert "guilty pass: tiling" in attribution.headline()
    # The per-pass breakdown ranks tiling first.
    assert "tiling" in attribution.describe().splitlines()[1]


def test_deltas_below_the_noise_floor_are_not_guilty():
    old = [_sample("parse", 1.0), _sample("tiling", 2.0)]
    new = [_sample("parse", 1.0 + MIN_NOISE_FLOOR_MS / 2), _sample("tiling", 2.0)]
    attribution = attribute(old, new)
    assert attribution.guilty is None
    assert "no pass clears the noise floor" in attribution.headline()


def test_noisy_passes_need_a_larger_delta_to_be_blamed():
    # tiling's repeats wobble by ~2 ms (MAD 2.0 -> floor ~8.9 ms), so a
    # 3 ms median shift stays within noise; a quiet pass with the same
    # shift would be flagged.
    old = [_sample("tiling", 8.0, 10.0, 12.0, 10.0, 14.0, 6.0)]
    new = [_sample("tiling", 11.0, 13.0, 15.0, 13.0, 17.0, 9.0)]
    attribution = attribute(old, new)
    assert attribution.guilty is None
    quiet = attribute([_sample("memory", 10.0)], [_sample("memory", 13.0)])
    assert quiet.guilty == "memory"


def test_cache_provenance_flips_are_reported_not_blamed():
    old = [_sample("tiling", 0.1, source="disk"), _sample("codegen", 3.0)]
    new = [_sample("tiling", 9.0, source="computed"), _sample("codegen", 3.0)]
    attribution = attribute(old, new)
    assert attribution.guilty is None  # the only mover is a cache flip
    assert attribution.cache_delta_ms == pytest.approx(8.9)
    assert "dominated by cache-tier change" in attribution.headline()
    (tiling,) = [c for c in attribution.contributions if c.name == "tiling"]
    assert tiling.cache_transition
    assert "cache: disk -> computed" in tiling.describe(attribution.total_delta_ms)


def test_blame_only_moves_in_the_direction_of_the_total():
    # codegen got 10 ms faster, parse 2 ms slower; the run is net faster,
    # so the slower pass is not "guilty" of an improvement.
    old = [_sample("parse", 1.0), _sample("codegen", 20.0)]
    new = [_sample("parse", 3.0), _sample("codegen", 10.0)]
    attribution = attribute(old, new)
    assert attribution.total_delta_ms == pytest.approx(-8.0)
    assert attribution.guilty == "codegen"


def test_passes_present_on_one_side_only_still_contribute():
    attribution = attribute([_sample("parse", 1.0)],
                            [_sample("parse", 1.0), _sample("verify", 5.0)])
    (verify,) = [c for c in attribution.contributions if c.name == "verify"]
    assert verify.old_ms == 0.0 and verify.new_ms == 5.0
    assert attribution.guilty == "verify"


def test_samples_from_entry_reads_bench_timings_and_sources():
    entry = {
        "timings": {
            "pass.tiling": {"median": 0.002, "runs": [0.0019, 0.002, 0.0021]},
            "pass.parse": {"median": 0.001},  # runs missing: median fallback
            "junk": "not-a-mapping",
        },
        "sources": {"pass.tiling": {"disk": 2, "computed": 1}},
    }
    samples = {s.name: s for s in samples_from_entry(entry)}
    assert set(samples) == {"tiling", "parse"}
    assert samples["tiling"].runs_ms == (1.9, 2.0, 2.1)
    assert samples["tiling"].source == "disk"  # the dominant provenance
    assert samples["parse"].runs_ms == (1.0,)
    assert samples["parse"].source is None


def test_attribute_entries_requires_timings_on_both_sides():
    with_timings = {"timings": {"pass.parse": {"median": 0.001}}}
    assert attribute_entries({}, with_timings) is None
    assert attribute_entries(with_timings, {}) is None
    assert isinstance(attribute_entries(with_timings, with_timings), Attribution)


def test_attribute_records_uses_history_pass_lists():
    old = {"passes": [{"name": "tiling", "wall_ms": 2.0, "source": "computed"}]}
    new = {"passes": [{"name": "tiling", "wall_ms": 44.0, "source": "computed"}]}
    attribution = attribute_records(old, new)
    assert attribution.guilty == "tiling"
    assert attribute_records({"passes": []}, new) is None


def test_injected_delay_is_attributed_to_the_right_pass(
    monkeypatch, small_jacobi_2d
):
    """The acceptance pin: a deliberate slowdown in the tiling pass is

    attributed to ``tiling`` with the majority share of the delta."""
    from repro.api import Session
    from repro.obs.history import RunHistory

    Session().run(small_jacobi_2d)
    monkeypatch.setenv("HEXCC_FAULT_DELAY", "tiling:40")
    Session().run(small_jacobi_2d)
    old, new = RunHistory().records(kind="compile")
    attribution = attribute_records(old.data, new.data)
    assert attribution.guilty == "tiling"
    assert attribution.guilty_share > 0.5
    assert attribution.total_delta_ms > 30.0
