"""The disabled-overhead gate runs and reports the right shape.

The tight 2% bound is asserted by the CI bench job on quiet hardware; here
the gate only has to produce coherent numbers and honour its exit codes, so
the test stays robust on loaded CI runners.
"""

from __future__ import annotations

from repro.obs.overhead import main, measure_overhead


def test_measure_overhead_reports_coherent_numbers():
    measured = measure_overhead(stencil="jacobi_1d", repeats=1, samples=200)
    assert measured["compile_wall_s"] > 0
    assert measured["spans_per_compile"] >= 6  # one span per pipeline pass
    assert measured["span_cost_s"] > 0
    assert measured["overhead_fraction"] == (
        measured["spans_per_compile"]
        * measured["span_cost_s"]
        / measured["compile_wall_s"]
    )


def test_gate_passes_under_a_loose_limit(capsys):
    code = main(
        ["--stencil", "jacobi_1d", "--repeats", "1", "--samples", "200",
         "--limit", "0.5"]
    )
    assert code == 0
    assert "OK" in capsys.readouterr().out


def test_gate_rejects_a_non_positive_limit(capsys):
    assert main(["--limit", "0"]) == 2
    assert "must be positive" in capsys.readouterr().err
