"""The metrics registry: keys, counters, gauges, histograms, snapshot/merge."""

from __future__ import annotations

import json

from repro.obs.metrics import (
    DEFAULT_BUCKETS_MS,
    MetricsRegistry,
    NullMetrics,
    metric_key,
    remap_bucket_counts,
)


def test_metric_key_flattens_sorted_labels():
    assert metric_key("cache.hit", {}) == "cache.hit"
    assert metric_key("cache.hit", {"stage": "tiling"}) == "cache.hit{stage=tiling}"
    assert (
        metric_key("x", {"b": 2, "a": 1}) == "x{a=1,b=2}"
    )  # label order never matters


def test_metric_key_drops_none_valued_labels():
    assert metric_key("tune.trials", {"objective": None}) == "tune.trials"


def test_counters_accumulate():
    registry = MetricsRegistry()
    registry.count("cache.hit", stage="tiling")
    registry.count("cache.hit", stage="tiling")
    registry.count("cache.hit", 3.0, stage="memory")
    snapshot = registry.snapshot()
    assert snapshot["counters"] == {
        "cache.hit{stage=tiling}": 2.0,
        "cache.hit{stage=memory}": 3.0,
    }


def test_gauges_take_the_last_value():
    registry = MetricsRegistry()
    registry.gauge("engine.jobs", 4)
    registry.gauge("engine.jobs", 2)
    assert registry.snapshot()["gauges"] == {"engine.jobs": 2.0}


def test_histograms_bucket_and_summarise():
    registry = MetricsRegistry()
    for value in (0.08, 0.3, 1.5, 70.0, 10_000.0):
        registry.observe("compile.wall_ms", value)
    (histogram,) = registry.snapshot()["histograms"].values()
    assert histogram["buckets"] == list(DEFAULT_BUCKETS_MS)
    assert sum(histogram["counts"]) == 5
    # The sub-millisecond buckets resolve warm-cache compiles.
    assert histogram["counts"][DEFAULT_BUCKETS_MS.index(0.1)] == 1  # 0.08
    assert histogram["counts"][DEFAULT_BUCKETS_MS.index(0.5)] == 1  # 0.3
    assert histogram["counts"][-1] == 1  # 10_000 > every bound -> +inf bucket
    assert histogram["count"] == 5
    assert histogram["min"] == 0.08
    assert histogram["max"] == 10_000.0
    assert abs(histogram["sum"] - 10_071.88) < 1e-9


def test_default_buckets_resolve_sub_millisecond_compiles():
    assert {0.05, 0.1, 0.25}.issubset(DEFAULT_BUCKETS_MS)
    assert list(DEFAULT_BUCKETS_MS) == sorted(DEFAULT_BUCKETS_MS)


def test_snapshot_is_json_safe_and_detached():
    registry = MetricsRegistry()
    registry.count("a")
    registry.observe("b", 1.0)
    snapshot = registry.snapshot()
    json.dumps(snapshot)  # must not raise
    registry.count("a")  # mutating the registry must not mutate the snapshot
    assert snapshot["counters"]["a"] == 1.0


def test_merge_folds_a_worker_snapshot():
    parent, worker = MetricsRegistry(), MetricsRegistry()
    parent.count("cache.hit", 2.0, stage="tiling")
    worker.count("cache.hit", 3.0, stage="tiling")
    worker.gauge("engine.jobs", 2)
    worker.observe("compile.wall_ms", 5.0)
    parent.observe("compile.wall_ms", 1.0)
    parent.merge(worker.snapshot())
    snapshot = parent.snapshot()
    assert snapshot["counters"]["cache.hit{stage=tiling}"] == 5.0
    assert snapshot["gauges"]["engine.jobs"] == 2.0
    histogram = snapshot["histograms"]["compile.wall_ms"]
    assert histogram["count"] == 2
    assert histogram["sum"] == 6.0


def test_merge_rebins_disagreeing_histogram_buckets():
    # A snapshot recorded under the pre-sub-ms bucket layout must fold into
    # the new layout without losing samples (coarse -> fine is conservative:
    # each count lands at the first new bound >= its old bound).
    registry = MetricsRegistry()
    registry.observe("x", 0.07)  # lands in the 0.1 bucket
    old_layout = {
        "buckets": [0.5, 1.0],
        "counts": [2, 1, 3],  # 2 <= 0.5, 1 <= 1.0, 3 in +inf
        "sum": 30.0,
        "count": 6,
        "min": 0.2,
        "max": 20.0,
    }
    registry.merge({"histograms": {"x": old_layout}})
    histogram = registry.snapshot()["histograms"]["x"]
    assert histogram["buckets"] == list(DEFAULT_BUCKETS_MS)
    assert histogram["count"] == 7
    assert sum(histogram["counts"]) == 7  # nothing dropped
    assert histogram["counts"][DEFAULT_BUCKETS_MS.index(0.5)] == 2
    assert histogram["counts"][DEFAULT_BUCKETS_MS.index(1.0)] == 1
    assert histogram["counts"][-1] == 3
    assert abs(histogram["sum"] - 30.07) < 1e-9  # merged 30.0 + local 0.07
    assert histogram["min"] == 0.07
    assert histogram["max"] == 20.0


def test_remap_bucket_counts_is_exact_when_coarsening():
    # Fine -> coarse where every destination bound exists in the source:
    # cumulative counts agree at every destination boundary.
    fine = [0.05, 0.1, 0.25, 0.5, 1.0]
    counts = [1, 2, 3, 4, 5, 6]  # last = +inf
    coarse = [0.1, 1.0]
    remapped = remap_bucket_counts(fine, counts, coarse)
    assert remapped == [3, 12, 6]  # <=0.1: 1+2; <=1.0: 3+4+5; +inf: 6
    assert sum(remapped) == sum(counts)


def test_remap_bucket_counts_conservative_on_unshared_bounds():
    # A source bucket whose bound has no exact destination match goes to
    # the first destination bound above it — never below (cumulative
    # counts at shared bounds stay exact, unshared ones are lower bounds).
    remapped = remap_bucket_counts([0.3], [5, 0], [0.25, 0.5])
    assert remapped == [0, 5, 0]  # 0.3-bounded samples land in the 0.5 bucket


def test_merge_counter_snapshots_are_idempotent():
    parent, worker = MetricsRegistry(), MetricsRegistry()
    worker.count("cache.hit", 3.0)
    snapshot = worker.snapshot()
    parent.merge(snapshot)
    parent.merge(snapshot)  # a retried hand-off must not double-count
    assert parent.snapshot()["counters"]["cache.hit"] == 3.0
    assert parent.duplicate_merges == 1
    # A fresh snapshot with the same content has a new id and does merge.
    parent.merge(worker.snapshot())
    assert parent.snapshot()["counters"]["cache.hit"] == 6.0


def test_merge_accepts_a_partial_snapshot_from_a_dead_worker():
    # A worker that died mid-run can ship a truncated document: sections
    # missing entirely, a histogram with no counts, junk payloads.  Merge
    # must take what is usable and never raise.
    registry = MetricsRegistry()
    registry.count("a", 1.0)
    registry.merge(
        {
            "snapshot_id": "dead-1",
            "counters": {"a": 2.0},
            # no "gauges" section at all
            "histograms": {
                "h": {"buckets": [1.0], "counts": [], "count": 0, "sum": 0.0},
                "junk": "not-a-mapping",
            },
        }
    )
    snapshot = registry.snapshot()
    assert snapshot["counters"]["a"] == 3.0
    assert snapshot["histograms"]["h"]["count"] == 0
    assert "junk" not in snapshot["histograms"]


def test_merge_without_snapshot_id_is_unconditional():
    registry = MetricsRegistry()
    legacy = {"counters": {"a": 1.0}}
    registry.merge(legacy)
    registry.merge(legacy)  # id-less snapshots cannot be deduplicated
    assert registry.snapshot()["counters"]["a"] == 2.0
    assert registry.duplicate_merges == 0


def test_clear_empties_everything():
    registry = MetricsRegistry()
    registry.count("a")
    registry.gauge("b", 1)
    registry.observe("c", 1.0)
    registry.merge({"snapshot_id": "x-1", "counters": {"a": 1.0}})
    registry.clear()
    snapshot = registry.snapshot()
    assert snapshot["counters"] == {}
    assert snapshot["gauges"] == {}
    assert snapshot["histograms"] == {}
    assert registry.duplicate_merges == 0
    registry.merge({"snapshot_id": "x-1", "counters": {"a": 1.0}})
    assert registry.snapshot()["counters"] == {"a": 1.0}  # dedup forgotten


def test_null_metrics_is_inert():
    null = NullMetrics()
    null.count("a")
    null.gauge("b", 1)
    null.observe("c", 1.0)
    null.merge({"counters": {"a": 1.0}})
    assert null.snapshot() == {}
    assert null.enabled is False
