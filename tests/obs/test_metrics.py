"""The metrics registry: keys, counters, gauges, histograms, snapshot/merge."""

from __future__ import annotations

import json

from repro.obs.metrics import (
    DEFAULT_BUCKETS_MS,
    MetricsRegistry,
    NullMetrics,
    metric_key,
)


def test_metric_key_flattens_sorted_labels():
    assert metric_key("cache.hit", {}) == "cache.hit"
    assert metric_key("cache.hit", {"stage": "tiling"}) == "cache.hit{stage=tiling}"
    assert (
        metric_key("x", {"b": 2, "a": 1}) == "x{a=1,b=2}"
    )  # label order never matters


def test_metric_key_drops_none_valued_labels():
    assert metric_key("tune.trials", {"objective": None}) == "tune.trials"


def test_counters_accumulate():
    registry = MetricsRegistry()
    registry.count("cache.hit", stage="tiling")
    registry.count("cache.hit", stage="tiling")
    registry.count("cache.hit", 3.0, stage="memory")
    snapshot = registry.snapshot()
    assert snapshot["counters"] == {
        "cache.hit{stage=tiling}": 2.0,
        "cache.hit{stage=memory}": 3.0,
    }


def test_gauges_take_the_last_value():
    registry = MetricsRegistry()
    registry.gauge("engine.jobs", 4)
    registry.gauge("engine.jobs", 2)
    assert registry.snapshot()["gauges"] == {"engine.jobs": 2.0}


def test_histograms_bucket_and_summarise():
    registry = MetricsRegistry()
    for value in (0.3, 1.5, 70.0, 10_000.0):
        registry.observe("compile.wall_ms", value)
    (histogram,) = registry.snapshot()["histograms"].values()
    assert histogram["buckets"] == list(DEFAULT_BUCKETS_MS)
    assert sum(histogram["counts"]) == 4
    assert histogram["counts"][0] == 1  # 0.3 <= 0.5
    assert histogram["counts"][-1] == 1  # 10_000 > every bound -> +inf bucket
    assert histogram["count"] == 4
    assert histogram["min"] == 0.3
    assert histogram["max"] == 10_000.0
    assert abs(histogram["sum"] - 10_071.8) < 1e-9


def test_snapshot_is_json_safe_and_detached():
    registry = MetricsRegistry()
    registry.count("a")
    registry.observe("b", 1.0)
    snapshot = registry.snapshot()
    json.dumps(snapshot)  # must not raise
    registry.count("a")  # mutating the registry must not mutate the snapshot
    assert snapshot["counters"]["a"] == 1.0


def test_merge_folds_a_worker_snapshot():
    parent, worker = MetricsRegistry(), MetricsRegistry()
    parent.count("cache.hit", 2.0, stage="tiling")
    worker.count("cache.hit", 3.0, stage="tiling")
    worker.gauge("engine.jobs", 2)
    worker.observe("compile.wall_ms", 5.0)
    parent.observe("compile.wall_ms", 1.0)
    parent.merge(worker.snapshot())
    snapshot = parent.snapshot()
    assert snapshot["counters"]["cache.hit{stage=tiling}"] == 5.0
    assert snapshot["gauges"]["engine.jobs"] == 2.0
    histogram = snapshot["histograms"]["compile.wall_ms"]
    assert histogram["count"] == 2
    assert histogram["sum"] == 6.0


def test_merge_skips_incompatible_histogram_buckets():
    registry = MetricsRegistry()
    registry.observe("x", 1.0)
    before = registry.snapshot()["histograms"]["x"]
    registry.merge(
        {"histograms": {"x": {"buckets": [1.0, 2.0], "counts": [1, 0, 0], "count": 1}}}
    )
    assert registry.snapshot()["histograms"]["x"] == before


def test_clear_empties_everything():
    registry = MetricsRegistry()
    registry.count("a")
    registry.gauge("b", 1)
    registry.observe("c", 1.0)
    registry.clear()
    assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


def test_null_metrics_is_inert():
    null = NullMetrics()
    null.count("a")
    null.gauge("b", 1)
    null.observe("c", 1.0)
    null.merge({"counters": {"a": 1.0}})
    assert null.snapshot() == {}
    assert null.enabled is False
