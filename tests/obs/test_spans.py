"""Span recording: nesting, parent links, attributes, null/ambient modes."""

from __future__ import annotations

import os
import pickle

import pytest

from repro import obs
from repro.obs.spans import NullRecorder, Span, TraceContext, TraceRecorder


def test_nested_spans_record_parent_links():
    recorder = TraceRecorder()
    with recorder.span("outer"), recorder.span("inner"):
        pass
    spans = recorder.drain()
    by_name = {span.name: span for span in spans}
    assert set(by_name) == {"outer", "inner"}
    assert by_name["outer"].parent_id is None
    assert by_name["inner"].parent_id == by_name["outer"].span_id


def test_span_ids_are_unique_and_prefixed_with_the_pid():
    recorder = TraceRecorder()
    for _ in range(5):
        with recorder.span("work"):
            pass
    # A second recorder in the same process must not mint colliding ids
    # (pool workers reuse processes and build a fresh recorder per task).
    second = TraceRecorder()
    with second.span("work"):
        pass
    spans = recorder.drain() + second.drain()
    ids = [span.span_id for span in spans]
    assert len(set(ids)) == len(ids)
    assert all(span_id.startswith(f"{os.getpid():x}-") for span_id in ids)


def test_attributes_at_open_and_via_set():
    recorder = TraceRecorder()
    with recorder.span("tiling", program="heat_3d") as handle:
        handle.set(outcome="hit")
    (span,) = recorder.drain()
    assert span.attributes == {"program": "heat_3d", "outcome": "hit"}


def test_exceptions_are_recorded_and_propagate():
    recorder = TraceRecorder()
    with pytest.raises(ValueError), recorder.span("failing"):
        raise ValueError("boom")
    (span,) = recorder.drain()
    assert span.error == "ValueError: boom"


def test_durations_are_measured_even_when_disabled():
    recorder = NullRecorder()
    with recorder.span("timed") as handle:
        pass
    assert handle.duration_s >= 0.0
    assert recorder.drain() == []


def test_timestamps_are_wall_anchored_and_ordered():
    recorder = TraceRecorder()
    with recorder.span("first"):
        pass
    with recorder.span("second"):
        pass
    first, second = recorder.drain()
    assert second.start_ns >= first.start_ns
    assert first.duration_ns >= 0


def test_ambient_telemetry_defaults_to_the_shared_noop():
    assert obs.current() is obs.NULL_TELEMETRY
    telemetry = obs.Telemetry()
    with obs.use(telemetry):
        assert obs.current() is telemetry
        with obs.span("ambient"):
            pass
    assert obs.current() is obs.NULL_TELEMETRY
    assert [span.name for span in telemetry.recorder.drain()] == ["ambient"]


def test_use_nests_and_restores():
    outer, inner = obs.Telemetry(), obs.Telemetry()
    with obs.use(outer):
        with obs.use(inner):
            assert obs.current() is inner
        assert obs.current() is outer


def test_adopt_reparents_foreign_roots_only():
    recorder = TraceRecorder()
    with recorder.span("fan") as fan:
        pass
    foreign_root = Span(
        name="engine.worker", span_id="aa-1", parent_id=None,
        start_ns=0, duration_ns=10, pid=1, tid=1, attributes={},
    )
    foreign_child = Span(
        name="pass.parse", span_id="aa-2", parent_id="aa-1",
        start_ns=0, duration_ns=5, pid=1, tid=1, attributes={},
    )
    recorder.adopt([foreign_root, foreign_child], parent_id=fan.span_id)
    by_id = {span.span_id: span for span in recorder.drain()}
    assert by_id["aa-1"].parent_id == fan.span_id
    assert by_id["aa-2"].parent_id == "aa-1"  # untouched


def test_root_span_links_to_an_exported_context():
    parent = TraceRecorder()
    with parent.span("engine.map_ordered"):
        context = parent.export_context()
    assert isinstance(context, TraceContext)
    # The context is what crosses the process boundary: it must pickle.
    context = pickle.loads(pickle.dumps(context))
    worker = TraceRecorder()
    with worker.root_span("engine.worker", context=context, item=0):
        pass
    (root,) = worker.drain()
    (fan,) = parent.drain()
    assert root.parent_id == fan.span_id
    assert root.attributes == {"item": 0}


def test_spans_are_picklable():
    recorder = TraceRecorder()
    with recorder.span("work", detail="x"):
        pass
    (span,) = recorder.drain()
    assert pickle.loads(pickle.dumps(span)) == span
