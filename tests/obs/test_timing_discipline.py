"""Repo-wide timing discipline: durations come from the monotonic clock.

``time.time()`` is subject to NTP slews and clock jumps, so durations must
be measured with ``time.perf_counter()``/``perf_counter_ns()`` (wall-clock
reads for *timestamps* — ``time.time_ns`` pinned against the monotonic
epoch, ``datetime.now`` in report headers — are fine and are not matched
here).
"""

from __future__ import annotations

import re
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src"


def test_no_time_time_in_the_library():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        for number, line in enumerate(path.read_text().splitlines(), start=1):
            if re.search(r"\btime\.time\(", line):
                offenders.append(f"{path.relative_to(SRC)}:{number}: {line.strip()}")
    assert not offenders, (
        "time.time() must not be used for durations; use time.perf_counter() "
        "(timestamps: time.time_ns anchored to the monotonic epoch):\n"
        + "\n".join(offenders)
    )
