"""The persistent run-history store and its record builders."""

from __future__ import annotations

import json

import pytest

from repro.obs.history import (
    RunHistory,
    bench_record,
    compile_record,
    history_dir,
    history_enabled,
    tune_record,
)


@pytest.fixture
def store(tmp_path):
    return RunHistory(tmp_path / "history")


def _compile_payload(program="jacobi_2d", wall_ms=5.0, tiling_ms=2.0):
    return compile_record(
        program=program,
        digest="abc123",
        strategy="hybrid",
        device="GTX 470",
        stop="codegen",
        wall_ms=wall_ms,
        passes=[
            {"name": "parse", "wall_ms": 1.0, "source": "computed"},
            {"name": "tiling", "wall_ms": tiling_ms, "source": "computed"},
        ],
    )


def test_append_writes_one_schema_versioned_line(store):
    record = store.append("compile", _compile_payload())
    assert record is not None
    (line,) = store.path.read_text().splitlines()
    data = json.loads(line)
    assert data["schema"] == "hexcc-run"
    assert data["schema_version"] == 1
    assert data["kind"] == "compile"
    assert data["id"] == record.id and len(record.id) == 12
    assert data["program"] == "jacobi_2d"


def test_records_filter_by_kind_and_limit(store):
    store.append("compile", _compile_payload())
    store.append("bench", bench_record(suite="compile", device="GTX 470", entries=[]))
    store.append("compile", _compile_payload(wall_ms=6.0))
    assert [r.kind for r in store.records()] == ["compile", "bench", "compile"]
    assert len(store.records(kind="compile")) == 2
    assert len(store.records(limit=1)) == 1
    assert store.records(limit=1)[0].data["wall_ms"] == 6.0  # newest kept


def test_records_skip_malformed_and_foreign_lines(store):
    store.append("compile", _compile_payload())
    with open(store.path, "a") as handle:
        handle.write("not json at all\n")
        handle.write('{"schema": "something-else", "kind": "compile"}\n')
        handle.write("\n")
    store.append("compile", _compile_payload(wall_ms=9.0))
    assert len(store.records()) == 2


def test_select_supports_last_and_id_prefixes(store):
    first = store.append("compile", _compile_payload(wall_ms=1.0))
    second = store.append("compile", _compile_payload(wall_ms=2.0))
    assert store.select("last").id == second.id
    assert store.select("last~1").id == first.id
    assert store.select(first.id[:6]).id == first.id
    with pytest.raises(LookupError):
        store.select("last~9")
    with pytest.raises(LookupError):
        store.select("zzzzzz")
    with pytest.raises(LookupError):
        store.select("last~x")


def test_select_rejects_ambiguous_prefixes(store):
    ids = set()
    # Append until two ids share a first hex digit (bounded: 17 draws max).
    for wall in range(1, 18):
        record = store.append("compile", _compile_payload(wall_ms=float(wall)))
        if record.id[0] in ids:
            with pytest.raises(LookupError, match="ambiguous"):
                store.select(record.id[0])
            return
        ids.add(record.id[0])
    raise AssertionError("unreachable: 17 hex first-digits cannot be unique")


def test_select_on_empty_store(store):
    with pytest.raises(LookupError, match="empty"):
        store.select("last")


def test_compact_keeps_the_newest_records(store):
    for wall in range(10):
        store.append("compile", _compile_payload(wall_ms=float(wall)))
    store.compact(keep=3)
    records = store.records()
    assert [r.data["wall_ms"] for r in records] == [7.0, 8.0, 9.0]
    # Compaction preserves full record documents (ids survive).
    assert all(len(r.id) == 12 for r in records)


def test_disable_env_suppresses_recording(store, monkeypatch):
    monkeypatch.setenv("HEXCC_HISTORY_DISABLE", "1")
    assert not history_enabled()
    assert store.append("compile", _compile_payload()) is None
    assert not store.path.exists()


def test_default_directory_is_under_the_cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("HEXCC_CACHE_DIR", str(tmp_path / "cache"))
    assert history_dir() == tmp_path / "cache" / "history"
    assert RunHistory().path == history_dir() / "runs.jsonl"


def test_describe_lines_name_the_run(store):
    compile_run = store.append("compile", _compile_payload())
    bench_run = store.append(
        "bench",
        bench_record(
            suite="compile",
            device="GTX 470",
            entries=[
                {
                    "stencil": "jacobi_1d",
                    "wall_s": {"median": 0.004},
                    "timings": {"pass.tiling": {"median": 0.002}},
                }
            ],
        ),
    )
    tune_run = store.append(
        "tune",
        tune_record(
            program="heat_2d", strategy_space="random/model", trials=4,
            best_score=1.5, best_config={"height": 2},
        ),
    )
    assert "jacobi_2d" in compile_run.describe()
    assert "cache 0/2" in compile_run.describe()
    assert "suite=compile" in bench_run.describe()
    assert "stencils=1" in bench_run.describe()
    assert "trials=4" in tune_run.describe()
    # bench entries carry medians in ms, not raw runs
    (entry,) = bench_run.data["entries"]
    assert entry["wall_ms"] == 4.0
    assert entry["timings_ms"]["pass.tiling"] == 2.0


def test_session_runs_are_recorded(small_jacobi_2d):
    from repro.api import Session

    Session().run(small_jacobi_2d, stop_after="tiling")
    (record,) = RunHistory().records(kind="compile")
    assert record.data["program"] == "jacobi_2d"
    assert record.data["stop"] == "tiling"
    assert record.data["digest"]
    names = [p["name"] for p in record.data["passes"]]
    assert names == ["parse", "canonicalize", "tiling"]
    assert all(p["wall_ms"] >= 0.0 for p in record.data["passes"])
    assert all(
        p["source"] in ("computed", "memory", "disk") for p in record.data["passes"]
    )


def test_tune_runs_are_recorded(monkeypatch, tmp_path):
    monkeypatch.setenv("HEXCC_TUNING_DB", str(tmp_path / "tuning.json"))
    from repro.stencils import get_stencil
    from repro.tuning import tune

    tune(get_stencil("jacobi_1d", sizes=(64,), steps=8), budget=3, seed=1)
    (record,) = RunHistory().records(kind="tune")
    assert record.data["program"] == "jacobi_1d"
    assert record.data["trials"] >= 3
    assert record.data["best_config"]["height"] >= 1
