"""Tests for the baseline compiler models (PPCG, Par4All, Overtile, Patus)."""

import pytest

from repro.baselines import (
    OvertileBaseline,
    Par4AllBaseline,
    PPCGBaseline,
    PatusBaseline,
    all_baselines,
)
from repro.gpu.device import GTX470, NVS5200M
from repro.stencils import get_stencil


@pytest.fixture(scope="module")
def heat2d():
    return get_stencil("heat_2d")


@pytest.fixture(scope="module")
def heat3d():
    return get_stencil("heat_3d")


def test_all_baselines_registry():
    names = [b.name for b in all_baselines()]
    assert names == ["ppcg", "par4all", "overtile", "patus"]


def test_ppcg_supports_everything(heat2d, heat3d):
    baseline = PPCGBaseline()
    for program in (heat2d, heat3d, get_stencil("fdtd_2d")):
        result = baseline.compile(program)
        assert result.supported
        report = result.performance(GTX470)
        assert report is not None and report.gstencils_per_second > 0
        assert result.counters.kernel_launches == program.time_steps * program.num_statements


def test_ppcg_streams_the_grid_every_time_step(heat2d):
    result = PPCGBaseline().compile(heat2d)
    grid_bytes = heat2d.grid_points() * 4
    # No time tiling: at least one full read of the grid per time step.
    assert result.counters.transferred_global_bytes >= grid_bytes * heat2d.time_steps


def test_par4all_rejects_fdtd():
    result = Par4AllBaseline().compile(get_stencil("fdtd_2d"))
    assert not result.supported
    assert "invalid CUDA" in (result.failure_reason or "").lower() or "invalid" in (
        result.failure_reason or ""
    )
    assert result.performance(GTX470) is None


def test_par4all_supports_single_statement_kernels(heat2d):
    result = Par4AllBaseline().compile(heat2d)
    assert result.supported
    assert result.counters.gld_instructions == heat2d.stencil_updates() * 9


def test_overtile_beats_ppcg_on_2d_kernels(heat2d):
    """The Table 1 relationship: Overtile clearly outperforms baseline PPCG."""
    overtile = OvertileBaseline().compile(heat2d)
    ppcg = PPCGBaseline().compile(heat2d)
    assert overtile.supported
    assert (
        overtile.performance(GTX470).gstencils_per_second
        > 1.3 * ppcg.performance(GTX470).gstencils_per_second
    )
    # The auto-tuner explored the configuration space and reports its choice.
    assert "edge=" in overtile.strategy


def test_overtile_falls_back_for_3d_kernels(heat3d):
    """The paper's observation: Overtile cannot time-tile the 3D kernels well."""
    result = OvertileBaseline().compile(heat3d)
    assert result.supported
    assert "time=1" in result.strategy or "time=2" in result.strategy or "time=3" in result.strategy
    # Redundant computation stays bounded.
    assert result.counters.redundant_updates < result.counters.stencil_updates


def test_overtile_redundancy_accounted(heat2d):
    result = OvertileBaseline().compile(heat2d)
    assert result.counters.flops >= heat2d.flops_total()
    assert result.launch.useful_fraction <= 1.0


def test_patus_support_matrix(heat3d):
    baseline = PatusBaseline()
    assert baseline.compile(heat3d).supported
    assert baseline.compile(get_stencil("laplacian_3d")).supported
    assert not baseline.compile(get_stencil("heat_2d")).supported
    assert not baseline.compile(get_stencil("fdtd_2d")).supported


def test_baselines_scale_with_device(heat2d):
    """Every supported baseline runs faster on the GTX 470 than on the NVS 5200M."""
    for baseline in (PPCGBaseline(), Par4AllBaseline(), OvertileBaseline()):
        result = baseline.compile(heat2d)
        fast = result.performance(GTX470)
        slow = result.performance(NVS5200M)
        assert fast.gstencils_per_second > slow.gstencils_per_second
