"""Tests for the hexcc command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    output = capsys.readouterr().out
    assert "heat_3d" in output and "fdtd_2d" in output


def test_validate_command_small_instance(capsys):
    code = main(["validate", "jacobi_2d", "--size", "14", "--steps", "6",
                 "--h", "1", "--widths", "2,4"])
    assert code == 0
    output = capsys.readouterr().out
    assert "matches the NumPy reference" in output


def test_compile_command(capsys):
    code = main(["compile", "heat_3d", "--h", "2", "--widths", "7,10,32"])
    assert code == 0
    output = capsys.readouterr().out
    assert "GStencils/s" in output
    assert "hybrid tiling of heat_3d" in output


def test_table_command_table3(capsys):
    assert main(["table", "3"]) == 0
    assert "laplacian_2d" in capsys.readouterr().out


def test_table_command_unknown_number(capsys):
    assert main(["table", "9"]) == 1


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])
