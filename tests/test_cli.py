"""Tests for the hexcc command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    output = capsys.readouterr().out
    assert "heat_3d" in output and "fdtd_2d" in output


def test_validate_command_small_instance(capsys):
    code = main(["validate", "jacobi_2d", "--size", "14", "--steps", "6",
                 "--h", "1", "--widths", "2,4"])
    assert code == 0
    output = capsys.readouterr().out
    assert "matches the NumPy reference" in output


def test_compile_command(capsys):
    code = main(["compile", "heat_3d", "--h", "2", "--widths", "7,10,32"])
    assert code == 0
    output = capsys.readouterr().out
    assert "GStencils/s" in output
    assert "hybrid tiling of heat_3d" in output


def test_table_command_table3(capsys):
    assert main(["table", "3"]) == 0
    assert "laplacian_2d" in capsys.readouterr().out


def test_table_command_unknown_number(capsys):
    # Unknown table numbers are usage errors (uniform exit code 2).
    assert main(["table", "9"]) == 2


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_validate_command_derives_dimensionality_from_registry(capsys):
    # 1-D stencils used to be hardcoded by name; the dimensionality now comes
    # from the registry, so any registered stencil validates correctly.
    code = main(["validate", "higher_order_time", "--size", "24", "--steps", "4",
                 "--h", "1", "--widths", "6"])
    assert code == 0
    assert "matches the NumPy reference" in capsys.readouterr().out


def test_compile_file_command(tmp_path, capsys):
    path = tmp_path / "blur.c"
    path.write_text(
        "/* blur_1d */\n"
        "#define T 8\n#define N 128\n"
        "for (t = 0; t < T; t++)\n"
        "  for (i = 1; i < N - 1; i++)\n"
        "    A[t][i] = 0.25f * (A[t-1][i-1] + A[t-1][i+1]) + 0.5f * A[t-1][i];\n"
    )
    code = main(["compile-file", str(path), "--h", "2", "--widths", "8"])
    assert code == 0
    output = capsys.readouterr().out
    assert "blur_1d" in output
    assert "GStencils/s" in output


def test_compile_file_show_cuda(tmp_path, capsys):
    path = tmp_path / "blur.c"
    path.write_text(
        "#define T 4\n#define N 64\n"
        "for (t = 0; t < T; t++)\n"
        "  for (i = 1; i < N - 1; i++)\n"
        "    A[t][i] = 0.5f * (A[t-1][i-1] + A[t-1][i+1]);\n"
    )
    code = main(["compile-file", str(path), "--show-cuda", "--h", "1", "--widths", "4"])
    assert code == 0
    assert "__global__" in capsys.readouterr().out


def test_validate_file_command(tmp_path, capsys):
    path = tmp_path / "jacobi.c"
    path.write_text(
        "for (t = 0; t < T; t++)\n"
        "  for (i = 1; i < N - 1; i++)\n"
        "#pragma ivdep\n"
        "    for (j = 1; j < N - 1; j++)\n"
        "      A[(t+1)%2][i][j] = 0.2f * (A[t%2][i][j] + A[t%2][i+1][j] +\n"
        "        A[t%2][i-1][j] + A[t%2][i][j+1] + A[t%2][i][j-1]);\n"
    )
    code = main(["validate-file", str(path), "--sizes", "14,14", "--steps", "5",
                 "--h", "1", "--widths", "2,4"])
    assert code == 0
    assert "matches the NumPy reference" in capsys.readouterr().out


def test_compile_file_reports_parse_errors_with_caret(tmp_path, capsys):
    path = tmp_path / "bad.c"
    path.write_text(
        "#define T 4\n#define N 16\n"
        "for (t = 0; t < T; t++)\n"
        "  for (i = 1; i < N - 1; i++)\n"
        "    A[t][i*i] = A[t-1][i];\n"
    )
    code = main(["compile-file", str(path)])
    assert code == 1
    err = capsys.readouterr().err
    assert "bad.c:5:" in err
    assert "non-affine subscript" in err
    assert "^" in err


def test_example_custom_stencil_file_compiles(capsys):
    import pathlib

    example = pathlib.Path(__file__).resolve().parent.parent / "examples" / "custom_stencil.c"
    code = main(["compile-file", str(example), "--h", "2", "--widths", "4,32"])
    assert code == 0
    assert "edge_diffusion_2d" in capsys.readouterr().out


def test_cache_stats_and_clear(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("HEXCC_CACHE_DIR", str(tmp_path / "cache"))
    # A compile populates the persistent cache...
    assert main(["compile", "jacobi_1d", "--h", "1", "--widths", "4"]) == 0
    capsys.readouterr()
    assert main(["cache", "stats"]) == 0
    stats = capsys.readouterr().out
    # One compile stores one artifact per cacheable pass (canonicalize,
    # tiling, memory, codegen).
    assert "entries    : 4" in stats
    assert str(tmp_path / "cache") in stats
    # ...and clear removes them.
    assert main(["cache", "clear"]) == 0
    assert "removed 4" in capsys.readouterr().out
    assert main(["cache", "stats"]) == 0
    assert "entries    : 0" in capsys.readouterr().out


def test_compile_reuses_the_persistent_cache(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("HEXCC_CACHE_DIR", str(tmp_path / "cache"))
    assert main(["compile", "jacobi_1d", "--h", "1", "--widths", "4"]) == 0
    assert main(["compile", "jacobi_1d", "--h", "1", "--widths", "4"]) == 0
    capsys.readouterr()
    assert main(["cache", "stats"]) == 0
    stats = capsys.readouterr().out
    # The second compile reuses all four pass artifacts of the first.
    assert "hits       : 4" in stats
    assert "stores     : 4" in stats


def test_no_cache_flag_bypasses_the_disk_cache(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("HEXCC_CACHE_DIR", str(tmp_path / "cache"))
    assert main(["compile", "jacobi_1d", "--no-cache", "--h", "1", "--widths", "4"]) == 0
    capsys.readouterr()
    assert main(["cache", "stats"]) == 0
    assert "entries    : 0" in capsys.readouterr().out


def test_tables_command_is_jobs_invariant(capsys):
    assert main(["tables", "3", "--jobs", "1"]) == 0
    serial = capsys.readouterr().out
    assert main(["tables", "3", "--jobs", "2"]) == 0
    parallel = capsys.readouterr().out
    assert serial == parallel
    assert "laplacian_2d" in serial


def test_tables_command_rejects_unknown_number(capsys):
    assert main(["tables", "9"]) == 2
    assert "unknown table" in capsys.readouterr().err


# -- hexcc inspect -------------------------------------------------------------------


def test_inspect_stop_after_tiling_json_reports_exactly_the_passes_run(capsys):
    import json

    code = main(["inspect", "heat-2d", "--stop-after", "tiling", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["stencil"] == "heat_2d"
    assert payload["strategy"] == "hybrid"
    assert [entry["name"] for entry in payload["passes"]] == [
        "parse", "canonicalize", "tiling",
    ]
    for entry in payload["passes"]:
        assert entry["wall_s"] >= 0.0
        assert entry["source"] in ("computed", "memory", "disk", "injected")
    assert set(payload["artifacts"]) == {"parse", "canonicalize", "tiling"}
    assert payload["artifacts"]["tiling"]["supports_codegen"] is True


def test_inspect_full_pipeline_text_output(capsys):
    code = main(["inspect", "jacobi_2d", "--h", "2", "--widths", "3,6"])
    assert code == 0
    output = capsys.readouterr().out
    for stage in ("parse", "canonicalize", "tiling", "memory", "codegen",
                  "analysis", "verify"):
        assert stage in output
    assert "total" in output


def test_inspect_diamond_strategy_stops_at_tiling(capsys):
    code = main(["inspect", "jacobi_2d", "--strategy", "diamond",
                 "--stop-after", "tiling", "--json"])
    assert code == 0
    import json

    payload = json.loads(capsys.readouterr().out)
    assert payload["artifacts"]["tiling"]["strategy"] == "diamond"
    assert payload["artifacts"]["tiling"]["supports_codegen"] is False


def test_inspect_diamond_strategy_cannot_reach_codegen(capsys):
    code = main(["inspect", "jacobi_2d", "--strategy", "diamond"])
    assert code == 1
    assert "analysis-only" in capsys.readouterr().err


# -- uniform exit codes --------------------------------------------------------------


def test_unknown_stencil_is_a_usage_error(capsys):
    assert main(["compile", "not_a_stencil"]) == 2
    assert "unknown stencil" in capsys.readouterr().err
    assert main(["inspect", "not_a_stencil"]) == 2
    assert main(["validate", "not_a_stencil"]) == 2


def test_unknown_strategy_is_a_usage_error(capsys):
    assert main(["inspect", "jacobi_2d", "--strategy", "bogus"]) == 2
    assert "unknown tiling strategy" in capsys.readouterr().err


def test_bad_stop_after_is_a_usage_error():
    assert main(["inspect", "jacobi_2d", "--stop-after", "bogus"]) == 2


def test_malformed_widths_is_a_usage_error(capsys):
    assert main(["compile", "jacobi_1d", "--widths", "x,y"]) == 2
    assert "--widths" in capsys.readouterr().err


def test_invalid_tiling_parameters_are_a_compile_failure(capsys):
    # One width for a 3-D stencil is a pipeline error, not a usage error.
    assert main(["compile", "heat_3d", "--widths", "4"]) == 1
    assert "tile widths" in capsys.readouterr().err


def test_missing_command_is_a_usage_error():
    assert main([]) == 2


def test_help_exits_zero(capsys):
    assert main(["--help"]) == 0
    assert "hexcc" in capsys.readouterr().out


# -- autotuning ----------------------------------------------------------------------


def test_tune_command_records_and_reports(tmp_path, monkeypatch, capsys):
    db_path = tmp_path / "tuning.json"
    monkeypatch.setenv("HEXCC_TUNING_DB", str(db_path))
    code = main(["tune", "jacobi_2d", "--budget", "4", "--objective", "model",
                 "--seed", "3"])
    assert code == 0
    output = capsys.readouterr().out
    assert "tuned jacobi_2d" in output
    assert "improvement" in output
    assert db_path.is_file()
    assert str(db_path) in output


def test_tune_then_compile_tuned_applies_the_entry(tmp_path, monkeypatch, capsys):
    db_path = tmp_path / "tuning.json"
    monkeypatch.setenv("HEXCC_TUNING_DB", str(db_path))
    assert main(["tune", "heat_2d", "--budget", "4", "--objective", "model"]) == 0
    capsys.readouterr()
    assert main(["compile", "heat_2d", "--tuned"]) == 0
    assert "applying tuned configuration" in capsys.readouterr().out


def test_compile_tuned_without_entry_falls_back(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("HEXCC_TUNING_DB", str(tmp_path / "empty.json"))
    assert main(["compile", "gradient_3d", "--tuned"]) == 0
    output = capsys.readouterr().out
    assert "no tuned configuration" in output
    assert "GStencils/s" in output


def test_compile_tuned_reads_committed_baseline(capsys):
    # No env override, no user db (cache dir is per-test): the resolution
    # chain ends at the committed package baseline, which covers heat_3d.
    assert main(["compile", "heat3d", "--tuned"]) == 0
    assert "applying tuned configuration" in capsys.readouterr().out


def test_tune_json_output(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("HEXCC_TUNING_DB", str(tmp_path / "tuning.json"))
    assert main(["tune", "jacobi_1d", "--budget", "3", "--objective", "model",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out.split("recorded the winner")[0])
    assert payload["program"] == "jacobi_1d"
    assert payload["seed"] == 0
    assert len(payload["trials"]) == 3


def test_tune_check_passes_against_fresh_db(tmp_path, monkeypatch, capsys):
    db_path = tmp_path / "tuning.json"
    monkeypatch.setenv("HEXCC_TUNING_DB", str(db_path))
    args = ["tune", "jacobi_2d", "--budget", "4", "--objective", "model"]
    assert main(args) == 0
    capsys.readouterr()
    assert main(args + ["--check"]) == 0
    assert "check OK" in capsys.readouterr().out


def test_tune_check_fails_without_recorded_entry(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("HEXCC_TUNING_DB", str(tmp_path / "missing.json"))
    code = main(["tune", "jacobi_2d", "--budget", "3", "--objective", "model",
                 "--check"])
    assert code == 1
    assert "no 'model' entry" in capsys.readouterr().err


def test_tune_usage_errors(capsys):
    assert main(["tune", "jacobi_2d", "--strategy", "bogus"]) == 2
    assert "unknown search strategy" in capsys.readouterr().err
    assert main(["tune", "jacobi_2d", "--objective", "bogus"]) == 2
    assert "unknown tuning objective" in capsys.readouterr().err
    assert main(["tune", "jacobi_2d", "--budget", "0"]) == 2
    assert main(["tune", "not_a_stencil"]) == 2


def test_tune_table_command(tmp_path, monkeypatch, capsys):
    db_path = tmp_path / "tuning.json"
    monkeypatch.setenv("HEXCC_TUNING_DB", str(db_path))
    assert main(["tune", "jacobi_2d", "--budget", "4", "--objective", "model"]) == 0
    capsys.readouterr()
    assert main(["tune-table"]) == 0
    output = capsys.readouterr().out
    assert "jacobi_2d" in output and "speedup" in output


def test_tune_table_empty_db(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("HEXCC_TUNING_DB", str(tmp_path / "none.json"))
    assert main(["tune-table"]) == 0
    assert "empty" in capsys.readouterr().out


def test_compact_stencil_names_resolve(capsys):
    assert main(["inspect", "heat3d", "--stop-after", "parse"]) == 0
    assert "heat_3d" in capsys.readouterr().out


def test_inspect_tiling_json_reports_pruned_reasons(capsys):
    assert main(["inspect", "heat_3d", "--stop-after", "tiling", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    pruned = payload["artifacts"]["tiling"]["model_pruned"]
    assert pruned["shared_memory_overflow"] > 0
    assert "legality" in pruned and "occupancy_floor" in pruned
    assert pruned["evaluated"] > 0


def test_explicit_widths_suppress_tuned_announcement(capsys):
    # --tuned with explicit --widths: the explicit sizes win, so no tuned
    # configuration is announced (the baseline DB does have a heat_3d entry).
    assert main(["compile", "heat_3d", "--tuned", "--h", "2",
                 "--widths", "7,10,32"]) == 0
    output = capsys.readouterr().out
    assert "applying tuned configuration" not in output
    assert "h=2, w=(7, 10, 32)" in output


# -- observability: hexcc trace / profile / bench --trace -----------------------------


def test_trace_command_writes_a_valid_chrome_trace(tmp_path, capsys):
    from repro.obs.validate import validate_chrome_trace

    out = tmp_path / "trace.json"
    assert main(["trace", "jacobi_2d", "-o", str(out), "--jobs", "2"]) == 0
    assert "wrote" in capsys.readouterr().out
    document = json.loads(out.read_text())
    assert validate_chrome_trace(document) == []

    events = [e for e in document["traceEvents"] if e["ph"] == "X"]
    names = {e["name"] for e in events}
    # All six pipeline passes, cache I/O and the engine fan-out are traced.
    assert {f"pass.{stage}" for stage in (
        "parse", "canonicalize", "tiling", "memory", "codegen", "analysis",
    )} <= names
    assert {"session.run", "cache.put", "engine.map_ordered", "engine.worker"} <= names
    # --jobs 2 really fanned across distinct worker processes.
    worker_pids = {e["pid"] for e in events if e["name"] == "engine.worker"}
    assert len(worker_pids) == 2
    assert document["metrics"]["counters"]  # the snapshot rode along


def test_trace_command_serial_without_cache(tmp_path, capsys):
    out = tmp_path / "trace.json"
    assert main(["trace", "heat3d", "-o", str(out), "--jobs", "1",
                 "--no-cache"]) == 0
    document = json.loads(out.read_text())
    names = {e["name"] for e in document["traceEvents"]}
    assert "cache.put" not in names  # --no-cache: no disk-cache I/O
    assert "engine.item" in names  # serial fan-out still traced


def test_profile_command_table(capsys):
    assert main(["profile", "jacobi_2d"]) == 0
    output = capsys.readouterr().out
    assert "profile of jacobi_2d" in output
    assert "pass.tiling" in output
    assert output.strip().splitlines()[-1].startswith("total")


def test_profile_command_json_exclusive_sums_to_total(capsys):
    assert main(["profile", "jacobi_2d", "--json", "--no-cache"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["stencil"] == "jacobi_2d"
    total = payload["total_wall_s"]
    accounted = sum(row["exclusive_s"] for row in payload["rows"])
    # The exclusive-time ranking accounts for the total wall time (5% slack
    # for clamped concurrent subtrees; exact for this serial trace).
    assert total > 0
    assert abs(accounted - total) <= 0.05 * total
    names = {row["name"] for row in payload["rows"]}
    assert "pass.tiling" in names
    assert "compile.wall_ms{stop=analysis}" in payload["metrics"]["histograms"]


def test_bench_trace_flag_writes_a_trace(tmp_path, capsys):
    from repro.obs.validate import validate_chrome_trace

    out = tmp_path / "bench_trace.json"
    code = main(["bench", "--suite", "compile", "--stencils", "jacobi_1d",
                 "--repeats", "1", "--json", str(tmp_path / "bench.json"),
                 "--trace", str(out)])
    assert code == 0
    document = json.loads(out.read_text())
    assert validate_chrome_trace(document) == []
    names = {e["name"] for e in document["traceEvents"]}
    assert {"bench.run", "bench.measure"} <= names


def test_bench_json_report_contains_per_stage_timings(tmp_path, capsys):
    path = tmp_path / "bench.json"
    code = main(["bench", "--suite", "compile", "--stencils", "jacobi_1d",
                 "--repeats", "1", "--json", str(path)])
    assert code == 0
    report = json.loads(path.read_text())
    timings = report["suites"]["compile"]["stencils"]["jacobi_1d"]["timings"]
    for stage in ("parse", "canonicalize", "tiling", "memory", "codegen"):
        entry = timings[f"pass.{stage}"]
        assert entry["median"] >= 0.0


def test_inspect_json_contains_span_derived_timings(capsys):
    assert main(["inspect", "jacobi_2d", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    timings = payload["timings"]
    assert set(timings) == {
        f"pass.{stage}" for stage in (
            "parse", "canonicalize", "tiling", "memory", "codegen", "analysis",
            "verify",
        )
    }
    # Same timing source: the timings block mirrors the pass events exactly.
    for entry in payload["passes"]:
        assert timings[f"pass.{entry['name']}"]["wall_ms"] == entry["wall_s"] * 1e3


# -- observability: hexcc perf / hexcc metrics ----------------------------------------


def test_perf_history_empty(capsys):
    assert main(["perf", "history"]) == 0
    assert "no run history yet" in capsys.readouterr().out


def test_compiles_land_in_perf_history(capsys):
    assert main(["compile", "jacobi_1d", "--h", "1", "--widths", "4"]) == 0
    assert main(["compile", "heat_2d", "--h", "2", "--widths", "3,6"]) == 0
    capsys.readouterr()
    assert main(["perf", "history"]) == 0
    output = capsys.readouterr().out
    assert "jacobi_1d" in output and "heat_2d" in output
    assert main(["perf", "history", "--kind", "compile", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert [r["program"] for r in payload] == ["jacobi_1d", "heat_2d"]
    assert all(r["kind"] == "compile" for r in payload)
    assert all(p["wall_ms"] >= 0.0 for p in payload[0]["passes"])


def test_perf_diff_attributes_an_injected_slowdown(monkeypatch, capsys):
    """The acceptance pin, end to end through the CLI: a delay injected

    into the tiling pass is named guilty by ``hexcc perf diff``."""
    args = ["compile", "jacobi_1d", "--no-cache", "--h", "1", "--widths", "4"]
    assert main(args) == 0
    monkeypatch.setenv("HEXCC_FAULT_DELAY", "tiling:40")
    assert main(args) == 0
    capsys.readouterr()
    assert main(["perf", "diff", "last~1", "last"]) == 0
    output = capsys.readouterr().out
    assert "guilty pass: tiling" in output
    assert main(["perf", "diff", "last~1", "last", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["attribution"]["guilty"] == "tiling"
    assert payload["attribution"]["guilty_share"] > 0.5
    assert payload["attribution"]["total_delta_ms"] > 30.0


def test_perf_diff_bad_selector_is_a_usage_error(capsys):
    assert main(["perf", "diff", "last", "zzzz"]) == 2
    assert main(["perf", "diff", "last", "last"]) == 2  # history is empty


def test_metrics_command_renders_and_checks(capsys):
    assert main(["metrics", "jacobi_1d", "--check"]) == 0
    captured = capsys.readouterr()
    assert "# TYPE hexcc_compile_wall_ms histogram" in captured.out
    assert 'le="+Inf"' in captured.out
    assert "exposition OK" in captured.err


def test_metrics_from_trace_file(tmp_path, capsys):
    out = tmp_path / "trace.json"
    assert main(["trace", "jacobi_1d", "-o", str(out), "--jobs", "1"]) == 0
    capsys.readouterr()
    assert main(["metrics", "--from", str(out), "--check"]) == 0
    captured = capsys.readouterr()
    assert "hexcc_" in captured.out
    assert "exposition OK" in captured.err


def test_metrics_usage_errors(tmp_path, capsys):
    assert main(["metrics"]) == 2
    bad = tmp_path / "bad.json"
    bad.write_text("not json")
    assert main(["metrics", "--from", str(bad)]) == 2
    no_snapshot = tmp_path / "nosnap.json"
    no_snapshot.write_text("[1, 2, 3]")
    assert main(["metrics", "--from", str(no_snapshot)]) == 2


def test_pipeline_failures_print_the_crash_report_path(monkeypatch, capsys):
    from repro.api import Session

    def explode(self, pipeline_pass, key, request, artifacts):
        raise RuntimeError("synthetic fault")

    monkeypatch.setattr(Session, "_fetch_or_run", explode)
    with pytest.raises(RuntimeError):
        main(["compile", "jacobi_1d"])
    err = capsys.readouterr().err
    assert "crash report: " in err
    path = err.split("crash report: ", 1)[1].strip().splitlines()[0]
    assert json.loads(open(path).read())["error"]["message"] == "synthetic fault"


# -- verify ---------------------------------------------------------------------------


def test_verify_clean_stencil_exits_zero(capsys):
    assert main(["verify", "jacobi_2d"]) == 0
    output = capsys.readouterr().out
    assert "OK" in output and "no races" in output
    assert "lint 0 error(s)" in output
    assert "1 verified, 0 failed" in output


def test_verify_json_reports_schedule_and_lint(capsys):
    assert main(["verify", "heat_2d", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    (row,) = payload["results"]
    assert row["stencil"] == "heat_2d"
    assert row["strategy"] == "hybrid"
    assert row["summary"]["ok"] is True
    assert row["schedule"]["races"] == []
    assert row["schedule"]["coverage_ok"] is True
    assert row["schedule"]["classes_checked"] > 0
    assert row["lint"]["errors"] == 0
    assert row["lint"]["kernels"]  # the linter saw the generated kernels


def test_verify_classical_and_diamond_have_no_lint_block(capsys):
    assert main(["verify", "jacobi_2d", "--strategy", "classical", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    (row,) = payload["results"]
    assert row["schedule"]["ok"] is True
    assert row["lint"] is None  # analysis-only: no generated code to lint
    assert main(["verify", "jacobi_2d", "--strategy", "diamond", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["results"][0]["schedule"]["ok"] is True


def test_verify_all_strategies_skips_inapplicable_combos(capsys):
    # higher_order_time has a dependence slope > 1, which the diamond
    # construction rejects; a sweep reports the skip instead of failing.
    assert main(["verify", "higher_order_time", "--strategy", "all"]) == 0
    output = capsys.readouterr().out
    assert "SKIP" in output and "skipped (strategy not applicable)" in output


def test_verify_single_inapplicable_combo_propagates(capsys):
    assert main(["verify", "higher_order_time", "--strategy", "diamond"]) == 1
    assert "diamond" in capsys.readouterr().err


def test_verify_mutation_is_caught_and_exits_one(capsys):
    assert main(["verify", "jacobi_2d", "--mutate", "phase-swap"]) == 1
    output = capsys.readouterr().out
    assert "FAIL" in output
    assert "race [phase]" in output
    assert "1 verified, 1 failed" in output


def test_verify_mutation_json_has_counterexample_instances(capsys):
    assert main(["verify", "jacobi_1d", "--mutate", "dropped-barrier",
                 "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    (row,) = payload["results"]
    race = row["schedule"]["races"][0]
    assert race["level"] == "barrier"
    assert race["source"]["statement"] and race["sink"]["statement"]
    assert race["source"]["schedule"] and race["sink"]["schedule"]


def test_verify_list_mutations(capsys):
    assert main(["verify", "--list-mutations"]) == 0
    output = capsys.readouterr().out
    for name in ("phase-swap", "dropped-barrier", "flipped-tile-order",
                 "shrunk-hexagon-upper", "grown-hexagon", "dropped-skew"):
        assert name in output


def test_verify_usage_errors(capsys):
    assert main(["verify"]) == 2
    assert main(["verify", "not_a_stencil"]) == 2
    assert main(["verify", "jacobi_2d", "--strategy", "bogus"]) == 2
    assert main(["verify", "jacobi_2d", "--mutate", "not-a-mutation"]) == 2
    assert "unknown mutation" in capsys.readouterr().err
    # mutations perturb the hybrid model only
    assert main(["verify", "jacobi_2d", "--strategy", "classical",
                 "--mutate", "phase-swap"]) == 2
