"""Tests for the stencil library (the Table 3 characteristics are exact)."""

import pytest

from repro.stencils import get_stencil, list_stencils, paper_benchmarks
from repro.stencils.library import c_source_for, get_definition, jacobi_2d_source

# (loads, flops) per statement, straight from Table 3 of the paper.
TABLE3 = {
    "laplacian_2d": [(5, 6)],
    "heat_2d": [(9, 9)],
    "gradient_2d": [(5, 15)],
    "fdtd_2d": [(3, 3), (3, 3), (5, 5)],
    "laplacian_3d": [(7, 8)],
    "heat_3d": [(27, 27)],
    "gradient_3d": [(7, 20)],
}

TABLE3_SIZES = {
    "laplacian_2d": ((3072, 3072), 512),
    "heat_2d": ((3072, 3072), 512),
    "gradient_2d": ((3072, 3072), 512),
    "fdtd_2d": ((3072, 3072), 512),
    "laplacian_3d": ((384, 384, 384), 128),
    "heat_3d": ((384, 384, 384), 128),
    "gradient_3d": ((384, 384, 384), 128),
}


@pytest.mark.parametrize("name", paper_benchmarks())
def test_loads_and_flops_match_table3(name):
    program = get_stencil(name)
    expected = TABLE3[name]
    assert len(program.statements) == len(expected)
    for statement, (loads, flops) in zip(program.statements, expected):
        assert statement.loads == loads, f"{name}/{statement.name} loads"
        assert statement.flops == flops, f"{name}/{statement.name} flops"


@pytest.mark.parametrize("name", paper_benchmarks())
def test_default_sizes_match_table3(name):
    program = get_stencil(name)
    sizes, steps = TABLE3_SIZES[name]
    assert program.sizes == sizes
    assert program.time_steps == steps


def test_registry_contents():
    names = list_stencils()
    for benchmark in paper_benchmarks():
        assert benchmark in names
    assert "jacobi_2d" in names
    assert set(list_stencils(paper_only=True)) == set(paper_benchmarks())
    with pytest.raises(KeyError):
        get_stencil("does_not_exist")


def test_size_overrides():
    program = get_stencil("heat_3d", sizes=(16, 12, 10), steps=3)
    assert program.sizes == (16, 12, 10)
    assert program.time_steps == 3
    one_d = get_stencil("jacobi_1d", sizes=(64,), steps=5)
    assert one_d.sizes == (64,)


def test_characteristics_rows():
    program = get_stencil("fdtd_2d")
    rows = program.characteristics()
    assert len(rows) == 3
    assert rows[2]["loads"] == 5 and rows[2]["flops"] == 5


def test_figure1_source_and_c_sources():
    source = jacobi_2d_source()
    assert "A[(t+1)%2][i][j] = 0.2f" in source
    assert "#pragma ivdep" in source
    for name in ("heat_2d", "laplacian_3d"):
        assert "for" in c_source_for(name)


def test_definitions_have_descriptions():
    for name in list_stencils():
        definition = get_definition(name)
        assert definition.description
        assert definition.dimensions in (1, 2, 3)


def test_get_stencil_rejects_mismatched_sizes():
    with pytest.raises(ValueError, match="1-D but 2 sizes"):
        get_stencil("jacobi_1d", sizes=(16, 16))
    with pytest.raises(ValueError, match="3-D but 2 sizes"):
        get_stencil("heat_3d", sizes=(16, 16))
    with pytest.raises(ValueError, match="2-D but 1 sizes"):
        get_stencil("jacobi_2d", sizes=(16,))
