"""API-snapshot test: the public surface of ``repro.api`` is pinned here.

A failure in this file means the public API changed.  That can be the right
thing to do — but it must be deliberate: update the snapshot in the same
change and call the new surface out in the changelog, because downstream
clients (CLI, bench, experiments, examples, users) program against it.
"""

from __future__ import annotations

import inspect

import repro.api as api

#: The exact public surface, sorted (mirrors ``repro.api.__all__``).
EXPECTED_ALL = [
    "AnalysisBundle",
    "CanonicalIR",
    "CompilationRequest",
    "CompilationResult",
    "GeneratedCode",
    "HybridCompiler",
    "MemoryPlan",
    "OptimizationConfig",
    "ParsedProgram",
    "PassEvent",
    "PipelineError",
    "PipelineRun",
    "STAGES",
    "Session",
    "SimulationMismatchError",
    "StrategyError",
    "TileSizes",
    "TilingPlan",
    "TilingStrategy",
    "VerificationReport",
    "get_stencil",
    "get_strategy",
    "list_stencils",
    "list_strategies",
    "parse_stencil",
    "register_from_source",
    "register_strategy",
    "table4_configurations",
    "unregister",
]


def test_public_surface_is_pinned():
    assert list(api.__all__) == EXPECTED_ALL


def test_every_export_resolves():
    for name in api.__all__:
        assert getattr(api, name) is not None


def test_stage_names_are_pinned():
    assert api.STAGES == (
        "parse",
        "canonicalize",
        "tiling",
        "memory",
        "codegen",
        "analysis",
        "verify",
    )


def _parameter_names(callable_) -> list[str]:
    return list(inspect.signature(callable_).parameters)


def test_session_signatures_are_pinned():
    assert _parameter_names(api.Session.__init__) == [
        "self", "device", "strategy", "disk_cache", "cache_capacity", "observers",
        "tuning_db", "telemetry",
    ]
    assert _parameter_names(api.Session.run) == [
        "self", "program", "tile_sizes", "config", "storage", "threads",
        "strategy", "stop_after", "inject", "tuned",
    ]


def test_facade_signatures_are_pinned():
    assert _parameter_names(api.HybridCompiler.compile) == [
        "self", "program", "tile_sizes", "config", "storage", "threads", "tuned",
    ]
    assert _parameter_names(api.HybridCompiler.__init__) == [
        "self", "device", "disk_cache", "tuning_db",
    ]


def test_pipeline_run_surface_is_pinned():
    assert _parameter_names(api.PipelineRun.artifact) == ["self", "stage"]
    for method in ("artifact", "result", "timings", "describe"):
        assert callable(getattr(api.PipelineRun, method))


def test_artifact_fields_are_pinned():
    from dataclasses import fields

    expected = {
        api.ParsedProgram: ["program", "source"],
        api.CanonicalIR: ["canonical", "storage"],
        api.TilingPlan: [
            "strategy", "sizes", "tiling", "tile_cost", "supports_codegen", "details",
        ],
        api.MemoryPlan: ["plan"],
        api.GeneratedCode: ["cuda_source", "core_profiles", "threads"],
        api.AnalysisBundle: ["estimate", "report", "device_name"],
        api.VerificationReport: ["strategy", "schedule", "lint"],
    }
    for artifact_type, names in expected.items():
        assert [f.name for f in fields(artifact_type)] == names, artifact_type
        assert isinstance(artifact_type.SCHEMA_VERSION, int)


def test_optimization_config_fields_are_pinned():
    from dataclasses import fields

    assert [f.name for f in fields(api.OptimizationConfig)] == [
        "use_shared_memory",
        "interleave_copy_out",
        "align_loads",
        "inter_tile_reuse",
        "unroll",
        "separate_full_partial",
    ]


def test_builtin_strategies_are_registered():
    assert api.list_strategies() == ["classical", "diamond", "hybrid"]
    for name in api.list_strategies():
        assert api.get_strategy(name).name == name
