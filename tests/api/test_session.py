"""The staged pipeline: stop_after, typed artifacts, injection, events."""

from __future__ import annotations

import pytest

from repro.api import (
    STAGES,
    AnalysisBundle,
    CanonicalIR,
    GeneratedCode,
    HybridCompiler,
    MemoryPlan,
    ParsedProgram,
    PipelineError,
    Session,
    StrategyError,
    TileSizes,
    TilingPlan,
    VerificationReport,
)
from repro.stencils import get_stencil
from repro.tiling.hybrid import HybridTiling


@pytest.fixture
def program():
    return get_stencil("jacobi_2d", sizes=(20, 18), steps=10)


SIZES = TileSizes.of(2, 3, 6)


def test_full_run_produces_every_typed_artifact(program):
    run = Session().run(program, tile_sizes=SIZES, stop_after="verify")
    assert run.stages_run == STAGES
    assert isinstance(run.artifact("parse"), ParsedProgram)
    assert isinstance(run.artifact("canonicalize"), CanonicalIR)
    assert isinstance(run.artifact("tiling"), TilingPlan)
    assert isinstance(run.artifact("memory"), MemoryPlan)
    assert isinstance(run.artifact("codegen"), GeneratedCode)
    assert isinstance(run.artifact("analysis"), AnalysisBundle)
    assert isinstance(run.artifact("verify"), VerificationReport)
    assert run.artifact("analysis").report.gflops > 0
    assert run.artifact("verify").ok


def test_artifacts_are_frozen(program):
    import dataclasses

    run = Session().run(program, tile_sizes=SIZES, stop_after="tiling")
    plan = run.artifact("tiling")
    with pytest.raises(dataclasses.FrozenInstanceError):
        plan.strategy = "other"


def test_stop_after_runs_exactly_that_prefix(program):
    run = Session().run(program, tile_sizes=SIZES, stop_after="tiling")
    assert run.stages_run == ("parse", "canonicalize", "tiling")
    assert run.timings().keys() == {"parse", "canonicalize", "tiling"}
    with pytest.raises(PipelineError, match="did not run"):
        run.artifact("memory")
    with pytest.raises(ValueError, match="unknown pipeline stage"):
        run.artifact("bogus")


def test_unknown_stop_after_rejected(program):
    with pytest.raises(ValueError, match="unknown pipeline stage"):
        Session().run(program, stop_after="linking")


def test_unknown_strategy_rejected_up_front(program):
    with pytest.raises(StrategyError, match="unknown tiling strategy"):
        Session(strategy="bogus")
    with pytest.raises(StrategyError, match="unknown tiling strategy"):
        Session().run(program, strategy="bogus")


def test_run_accepts_raw_c_source():
    source = (
        "#define T 8\n#define N 64\n"
        "for (t = 0; t < T; t++)\n"
        "  for (i = 1; i < N - 1; i++)\n"
        "    A[t][i] = 0.5f * (A[t-1][i-1] + A[t-1][i+1]);\n"
    )
    run = Session().run(source, tile_sizes=TileSizes.of(1, 4))
    parsed = run.artifact("parse")
    assert parsed.source == source
    assert "__global__" in run.artifact("codegen").cuda_source


def test_events_record_wall_time_and_counters(program):
    run = Session().run(program, tile_sizes=SIZES)
    for event in run.events:
        assert event.wall_s >= 0.0
        assert event.source == "computed"
    by_name = {event.name: event for event in run.events}
    assert by_name["tiling"].counters["tile_height"] == SIZES.height
    assert by_name["memory"].counters["shared_bytes_per_block"] > 0


def test_observers_see_every_event(program):
    seen = []
    session = Session(observers=[seen.append])
    session.run(program, tile_sizes=SIZES, stop_after="tiling")
    assert [event.name for event in seen] == ["parse", "canonicalize", "tiling"]


def test_raising_observer_does_not_abort_the_compile(program):
    """Observer dispatch is exception-safe: counted, warned once, ignored."""
    import warnings

    from repro import obs

    def explode(event):
        raise RuntimeError("observer bug")

    seen = []
    telemetry = obs.Telemetry()
    session = Session(observers=[explode, seen.append], telemetry=telemetry)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        run = session.run(program, tile_sizes=SIZES, stop_after="tiling")
    # The compile completed and well-behaved observers still saw every event.
    assert run.stages_run == ("parse", "canonicalize", "tiling")
    assert [event.name for event in seen] == ["parse", "canonicalize", "tiling"]
    # Every failure is counted; the warning fires once per session.
    counters = telemetry.metrics.snapshot()["counters"]
    assert counters["session.observer_errors"] == 3.0
    observer_warnings = [
        w for w in caught if "pass-event observer" in str(w.message)
    ]
    assert len(observer_warnings) == 1
    assert issubclass(observer_warnings[0].category, RuntimeWarning)


def test_session_telemetry_records_passes_cache_io_and_wall(program, tmp_path):
    from repro import obs
    from repro.cache import DiskCache

    telemetry = obs.Telemetry()
    session = Session(
        disk_cache=DiskCache(tmp_path / "hexcc"), telemetry=telemetry
    )
    session.run(program, tile_sizes=SIZES, stop_after="tiling")
    spans = telemetry.recorder.drain()
    names = {span.name for span in spans}
    assert {"session.run", "pass.parse", "pass.canonicalize", "pass.tiling"} <= names
    assert "cache.put" in names and "cache.serialize" in names
    # Cache spans hang off the pass that triggered the I/O.
    by_id = {span.span_id: span for span in spans}
    for span in spans:
        if span.name == "cache.put":
            assert by_id[span.parent_id].name.startswith("pass.")
    snapshot = telemetry.metrics.snapshot()
    assert snapshot["counters"]["cache.store{stage=canonicalize}"] == 1.0
    assert snapshot["histograms"]["compile.wall_ms{stop=tiling}"]["count"] == 1


def test_pass_events_and_spans_share_one_timing_source(program):
    """inspect/bench timings (PassEvent.wall_s) equal the span durations."""
    from repro import obs

    telemetry = obs.Telemetry()
    run = Session(telemetry=telemetry).run(program, tile_sizes=SIZES)
    durations = {
        span.name: span.duration_s
        for span in telemetry.recorder.drain()
        if span.name.startswith("pass.")
    }
    for event in run.events:
        assert durations[f"pass.{event.name}"] == event.wall_s


def test_ambient_telemetry_is_used_when_none_is_passed(program):
    from repro import obs

    telemetry = obs.Telemetry()
    with obs.use(telemetry):
        Session().run(program, tile_sizes=SIZES, stop_after="canonicalize")
    names = [span.name for span in telemetry.recorder.drain()]
    assert "session.run" in names and "pass.canonicalize" in names


def test_second_run_hits_the_in_memory_pass_cache(program):
    session = Session()
    first = session.run(program, tile_sizes=SIZES)
    second = session.run(program, tile_sizes=SIZES)
    assert all(event.source == "computed" for event in first.events)
    assert [event.source for event in second.events] == [
        "computed",  # parse is never cached (wrapping is free)
        "memory", "memory", "memory", "memory",
    ]
    # Cached artifacts are the same objects.
    assert second.artifact("tiling") is first.artifact("tiling")


def test_facade_and_session_agree(program):
    facade = HybridCompiler().compile(program, tile_sizes=SIZES)
    run = Session().run(program, tile_sizes=SIZES)
    result = run.result()
    assert result.cuda_source == facade.cuda_source
    assert result.config == facade.config
    assert result.tiling.sizes == facade.tiling.sizes


# -- artifact injection ---------------------------------------------------------------


def test_injected_tiling_plan_produces_byte_identical_cuda(program):
    """Re-entering the pipeline with a hand-built TilingPlan matches the façade."""
    facade = HybridCompiler().compile(program, tile_sizes=SIZES)

    session = Session()
    canonical_ir = session.run(program, stop_after="canonicalize").artifact(
        "canonicalize"
    )
    hand_built = TilingPlan(
        strategy="hybrid",
        sizes=SIZES,
        tiling=HybridTiling(canonical_ir.canonical, SIZES),
        supports_codegen=True,
    )
    run = session.run(program, tile_sizes=SIZES, inject={"tiling": hand_built})
    assert run.artifact("tiling") is hand_built
    assert run.artifact("codegen").cuda_source == facade.cuda_source

    by_name = {event.name: event for event in run.events}
    assert by_name["tiling"].source == "injected"
    # Downstream of an injection nothing is cached: inputs are no longer
    # derivable from the request.
    assert by_name["memory"].source == "computed"
    assert by_name["codegen"].source == "computed"


def test_injection_downstream_passes_are_not_cached(program, tmp_path):
    from repro.cache import DiskCache

    cache = DiskCache(tmp_path / "hexcc")
    session = Session(disk_cache=cache)
    canonical_ir = session.run(program, stop_after="canonicalize").artifact(
        "canonicalize"
    )
    stores_before = cache.stores
    plan = TilingPlan(
        strategy="hybrid",
        sizes=SIZES,
        tiling=HybridTiling(canonical_ir.canonical, SIZES),
        supports_codegen=True,
    )
    session.run(program, tile_sizes=SIZES, inject={"tiling": plan})
    # Only stages upstream of the injection may store (canonicalize was
    # already stored by the first run, so no new entries at all).
    assert cache.stores == stores_before


def test_injecting_an_unknown_stage_is_rejected(program):
    with pytest.raises(ValueError, match="unknown stage"):
        Session().run(program, inject={"bogus": object()})


def test_injecting_the_wrong_artifact_type_is_rejected(program):
    with pytest.raises(PipelineError, match="must be a TilingPlan"):
        Session().run(program, inject={"tiling": object()})


def test_injected_memory_plan_is_consumed(program):
    session = Session()
    base = session.run(program, tile_sizes=SIZES)
    run = session.run(
        program, tile_sizes=SIZES, inject={"memory": base.artifact("memory")}
    )
    assert run.artifact("memory") is base.artifact("memory")
    assert run.artifact("codegen").cuda_source == base.artifact("codegen").cuda_source
