"""Pass-granular caching: key structure, partial reuse, strategy isolation."""

from __future__ import annotations

import pytest

from repro.api import OptimizationConfig, Session, TileSizes
from repro.cache import DiskCache, stage_key
from repro.stencils import get_stencil


@pytest.fixture
def program():
    return get_stencil("jacobi_2d", sizes=(20, 18), steps=10)


SIZES = TileSizes.of(2, 3, 6)


# -- the key function -----------------------------------------------------------------


def test_stage_key_depends_on_strategy_name():
    """Regression: a classical plan must never be served for a hybrid request."""
    base = stage_key("tiling", 1, "hybrid", ["tile-sizes=x"], parent="p")
    assert stage_key("tiling", 1, "classical", ["tile-sizes=x"], parent="p") != base
    assert stage_key("tiling", 1, "diamond", ["tile-sizes=x"], parent="p") != base


def test_stage_key_depends_on_stage_schema_version():
    base = stage_key("tiling", 1, "hybrid", ["tile-sizes=x"], parent="p")
    assert stage_key("tiling", 2, "hybrid", ["tile-sizes=x"], parent="p") != base


def test_stage_key_depends_on_stage_name_parts_and_parent():
    base = stage_key("tiling", 1, "hybrid", ["a=1"], parent="p")
    assert stage_key("memory", 1, "hybrid", ["a=1"], parent="p") != base
    assert stage_key("tiling", 1, "hybrid", ["a=2"], parent="p") != base
    assert stage_key("tiling", 1, "hybrid", ["a=1"], parent="q") != base
    assert stage_key("tiling", 1, "hybrid", ["a=1"], parent=None) != base


# -- cross-strategy isolation (end to end) --------------------------------------------


def test_cross_strategy_requests_never_share_tiling_artifacts(program, tmp_path):
    cache_root = tmp_path / "hexcc"
    hybrid_run = Session(strategy="hybrid", disk_cache=DiskCache(cache_root)).run(
        program, tile_sizes=SIZES, stop_after="tiling"
    )
    # Same program, same sizes, fresh process-equivalent session, different
    # strategy: the tiling stage must recompute, not hit the hybrid entry.
    classical_run = Session(
        strategy="classical", disk_cache=DiskCache(cache_root)
    ).run(program, tile_sizes=SIZES, stop_after="tiling")

    events = {event.name: event for event in classical_run.events}
    # Every pass key carries the strategy name, so nothing of the hybrid run
    # is served — least of all the tiling plan.
    assert events["canonicalize"].source == "computed"
    assert events["tiling"].source == "computed"
    assert classical_run.artifact("tiling").strategy == "classical"
    assert hybrid_run.artifact("tiling").strategy == "hybrid"
    assert type(classical_run.artifact("tiling").tiling) is not type(
        hybrid_run.artifact("tiling").tiling
    )


# -- partial reuse across configurations ----------------------------------------------


def test_config_change_reuses_canonicalize_and_tiling_artifacts(program, tmp_path):
    """The whole point of pass granularity: unchanged prefixes are shared."""
    cache_root = tmp_path / "hexcc"
    Session(disk_cache=DiskCache(cache_root)).run(program, tile_sizes=SIZES)

    fresh = Session(disk_cache=DiskCache(cache_root))
    run = fresh.run(
        program, tile_sizes=SIZES, config=OptimizationConfig.config_a()
    )
    sources = {event.name: event.source for event in run.events}
    assert sources["canonicalize"] == "disk"
    assert sources["tiling"] == "disk"
    # The configuration feeds the memory/codegen stages, so those recompute.
    assert sources["memory"] == "computed"
    assert sources["codegen"] == "computed"


def test_explicit_and_model_selected_sizes_have_distinct_tiling_keys(program, tmp_path):
    cache_root = tmp_path / "hexcc"
    auto = Session(disk_cache=DiskCache(cache_root)).run(program, stop_after="tiling")
    explicit = Session(disk_cache=DiskCache(cache_root)).run(
        program, tile_sizes=SIZES, stop_after="tiling"
    )
    assert {e.name: e.source for e in explicit.events}["tiling"] == "computed"
    assert auto.artifact("tiling").sizes != explicit.artifact("tiling").sizes


def test_device_change_recomputes_only_the_analysis_stage(program, tmp_path):
    from repro.gpu.device import GTX470, NVS5200M

    cache_root = tmp_path / "hexcc"
    Session(device=GTX470, disk_cache=DiskCache(cache_root)).run(
        program, tile_sizes=SIZES, stop_after="analysis"
    )
    run = Session(device=NVS5200M, disk_cache=DiskCache(cache_root)).run(
        program, tile_sizes=SIZES, stop_after="analysis"
    )
    sources = {event.name: event.source for event in run.events}
    # Tiling used explicit sizes and memory/codegen don't read the device,
    # so everything up to codegen is shared; analysis is device-specific.
    assert sources["canonicalize"] == "disk"
    assert sources["tiling"] == "disk"
    assert sources["memory"] == "disk"
    assert sources["codegen"] == "disk"
    assert sources["analysis"] == "computed"
    assert run.artifact("analysis").device_name == NVS5200M.name


# -- robustness -----------------------------------------------------------------------


def test_corrupt_disk_artifact_falls_back_to_recompute(program, tmp_path):
    cache = DiskCache(tmp_path / "hexcc")
    Session(disk_cache=cache).run(program, tile_sizes=SIZES)
    for path in cache._entries():
        path.write_bytes(b"\x80corrupted")
    run = Session(disk_cache=DiskCache(cache.root)).run(program, tile_sizes=SIZES)
    assert all(
        event.source in ("computed",)
        for event in run.events
        if event.name != "parse"
    )
    assert run.result().validate().ok


def test_in_memory_pass_lru_evicts_least_recently_used(program):
    session = Session(cache_capacity=2)
    session.run(program, tile_sizes=SIZES, stop_after="canonicalize")
    first = session.run(program, tile_sizes=SIZES, stop_after="tiling")
    # Capacity 2 holds {canonicalize, tiling}; a different-sized run evicts.
    session.run(program, tile_sizes=TileSizes.of(1, 3, 6), stop_after="tiling")
    again = session.run(program, tile_sizes=SIZES, stop_after="tiling")
    assert again.artifact("tiling") is not first.artifact("tiling")
