"""The API exception hierarchy, including the simulation-mismatch error."""

from __future__ import annotations

import pytest

from repro.api import (
    HybridCompiler,
    PipelineError,
    SimulationMismatchError,
    StrategyError,
    TileSizes,
    get_stencil,
)


def test_error_hierarchy():
    assert issubclass(StrategyError, PipelineError)
    assert issubclass(SimulationMismatchError, PipelineError)
    # Backwards compatibility: pre-existing callers caught AssertionError.
    assert issubclass(SimulationMismatchError, AssertionError)


def test_simulate_and_check_raises_typed_error_on_divergence(monkeypatch):
    from repro.gpu.simulator import SimulationResult

    program = get_stencil("jacobi_1d", sizes=(64,), steps=8)
    compiled = HybridCompiler().compile(program, tile_sizes=TileSizes.of(1, 4))
    monkeypatch.setattr(
        SimulationResult, "matches_reference", lambda self, reference: False
    )
    with pytest.raises(SimulationMismatchError, match="diverges"):
        compiled.simulate_and_check()


def test_cli_reports_divergence_as_compile_failure(monkeypatch, capsys):
    from repro.cli import main
    from repro.gpu.simulator import SimulationResult

    monkeypatch.setattr(
        SimulationResult, "matches_reference", lambda self, reference: False
    )
    code = main(["validate", "jacobi_1d", "--size", "24", "--steps", "4",
                 "--h", "1", "--widths", "6"])
    assert code == 1
    assert "diverges" in capsys.readouterr().err
