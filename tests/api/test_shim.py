"""The ``repro.pipeline`` deprecation shim: warning + object identity."""

from __future__ import annotations

import sys
import warnings

import repro.api as api


def _fresh_import_pipeline():
    sys.modules.pop("repro.pipeline", None)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        import repro.pipeline as shim
    return shim, [w for w in caught if issubclass(w.category, DeprecationWarning)]


def test_import_emits_a_single_deprecation_warning():
    _, deprecations = _fresh_import_pipeline()
    assert len(deprecations) == 1
    message = str(deprecations[0].message)
    assert "repro.pipeline is deprecated" in message
    assert "repro.api" in message


def test_reimport_from_module_cache_does_not_warn_again():
    _fresh_import_pipeline()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        import repro.pipeline  # noqa: F401  (already in sys.modules)
    assert not [w for w in caught if issubclass(w.category, DeprecationWarning)]


def test_shim_objects_are_identical_to_the_api_objects():
    shim, _ = _fresh_import_pipeline()
    assert shim.OptimizationConfig is api.OptimizationConfig
    assert shim.TileSizes is api.TileSizes
    assert shim.table4_configurations is api.table4_configurations
    assert shim.__all__ == ["OptimizationConfig", "TileSizes", "table4_configurations"]
