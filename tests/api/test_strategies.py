"""The pluggable tiling-strategy registry and the built-in strategies."""

from __future__ import annotations

import pytest

from repro.api import (
    PipelineError,
    Session,
    TileSizes,
    TilingPlan,
    TilingStrategy,
    get_strategy,
    list_strategies,
    register_strategy,
)
from repro.stencils import get_stencil
from repro.tiling.classical import ClassicalTiling
from repro.tiling.diamond import DiamondTiling
from repro.tiling.hybrid import HybridTiling


@pytest.fixture
def program():
    return get_stencil("jacobi_2d", sizes=(20, 18), steps=10)


SIZES = TileSizes.of(2, 3, 6)


def test_hybrid_strategy_builds_a_codegen_capable_plan(program):
    run = Session(strategy="hybrid").run(program, tile_sizes=SIZES, stop_after="tiling")
    plan = run.artifact("tiling")
    assert plan.strategy == "hybrid"
    assert plan.supports_codegen
    assert isinstance(plan.tiling, HybridTiling)
    assert plan.details["concurrent_start"] is True


def test_classical_strategy_builds_skewed_parallelogram_tilings(program):
    run = Session(strategy="classical").run(
        program, tile_sizes=SIZES, stop_after="tiling"
    )
    plan = run.artifact("tiling")
    assert plan.strategy == "classical"
    assert not plan.supports_codegen
    assert all(isinstance(t, ClassicalTiling) for t in plan.tiling)
    assert len(plan.tiling) == 2  # one per space dimension
    assert plan.details["concurrent_start"] is False


def test_diamond_strategy_wraps_diamond_tiling(program):
    run = Session(strategy="diamond").run(program, tile_sizes=SIZES, stop_after="tiling")
    plan = run.artifact("tiling")
    assert plan.strategy == "diamond"
    assert isinstance(plan.tiling, DiamondTiling)
    # The paper's Section 2 observation: the diamond peak is fixed (<= 2)
    # while the hexagonal peak is adjustable.
    assert plan.details["peak_width"] <= 2


def test_analysis_only_strategies_cannot_reach_codegen(program):
    for name in ("classical", "diamond"):
        with pytest.raises(PipelineError, match="analysis-only"):
            Session(strategy=name).run(program, tile_sizes=SIZES)


def test_strategy_can_be_overridden_per_run(program):
    session = Session(strategy="hybrid")
    run = session.run(
        program, tile_sizes=SIZES, strategy="diamond", stop_after="tiling"
    )
    assert run.artifact("tiling").strategy == "diamond"
    # The session default is untouched.
    assert session.run(program, tile_sizes=SIZES).artifact("tiling").strategy == "hybrid"


def test_model_selected_sizes_without_explicit_tile_sizes(program):
    run = Session().run(program, stop_after="tiling")
    plan = run.artifact("tiling")
    assert plan.tile_cost is not None
    assert plan.sizes == plan.tile_cost.sizes


def test_registering_a_custom_strategy():
    class EchoStrategy(TilingStrategy):
        name = "echo-test"

        def plan(self, request, canonical):
            return TilingPlan(
                strategy=self.name, sizes=request.tile_sizes, tiling=None
            )

    try:
        register_strategy(EchoStrategy())
        assert "echo-test" in list_strategies()
        program = get_stencil("jacobi_1d", sizes=(64,), steps=8)
        run = Session(strategy="echo-test").run(
            program, tile_sizes=TileSizes.of(1, 4), stop_after="tiling"
        )
        assert run.artifact("tiling").strategy == "echo-test"
    finally:
        from repro.api.strategies import _REGISTRY

        _REGISTRY.pop("echo-test", None)


def test_out_of_package_strategies_are_never_cached(tmp_path):
    """The code fingerprint cannot see user strategy code, so no caching."""
    from repro.cache import DiskCache

    class EchoStrategy(TilingStrategy):
        name = "echo-uncached"

        def plan(self, request, canonical):
            return TilingPlan(
                strategy=self.name, sizes=request.tile_sizes, tiling=None
            )

    try:
        register_strategy(EchoStrategy())
        cache = DiskCache(tmp_path / "hexcc")
        program = get_stencil("jacobi_1d", sizes=(64,), steps=8)
        session = Session(strategy="echo-uncached", disk_cache=cache)
        first = session.run(program, tile_sizes=TileSizes.of(1, 4),
                            stop_after="tiling")
        second = session.run(program, tile_sizes=TileSizes.of(1, 4),
                             stop_after="tiling")
        # canonicalize (upstream of the strategy) is cached; the tiling
        # stage recomputes every time, in memory and on disk.
        assert {e.name: e.source for e in second.events}["tiling"] == "computed"
        assert second.artifact("tiling") is not first.artifact("tiling")
        stored_kinds = {type(session.disk_cache.get(p.stem)).__name__
                        for p in cache._entries()}
        assert "TilingPlan" not in stored_kinds
    finally:
        from repro.api.strategies import _REGISTRY

        _REGISTRY.pop("echo-uncached", None)


def test_duplicate_registration_is_rejected():
    with pytest.raises(ValueError, match="already registered"):
        register_strategy(get_strategy("hybrid"))
    # ...unless replacement is explicit.
    register_strategy(get_strategy("hybrid"), replace=True)


def test_unnamed_strategy_is_rejected():
    class Nameless(TilingStrategy):
        def plan(self, request, canonical):  # pragma: no cover
            raise NotImplementedError

    with pytest.raises(ValueError, match="non-empty name"):
        register_strategy(Nameless())
