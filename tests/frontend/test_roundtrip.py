"""Round-trip: every library stencil's C source re-parses to the same program.

For each registered stencil the regenerated (or stored, for ``jacobi_2d``)
C source is fed back through :func:`repro.frontend.parse_stencil` and the
result must match the library-built program exactly:

* the reference interpretation of a small instance is bit-for-bit identical,
* per-statement load/flop counts match (and therefore Table 3 for the seven
  paper benchmarks, which ``tests/stencils/test_library.py`` pins to the
  published numbers).
"""

import numpy as np
import pytest

from repro.frontend import parse_stencil
from repro.stencils import get_stencil, list_stencils
from repro.stencils.library import c_source_for

SMALL = {1: ((16,), 4), 2: ((12, 12), 4), 3: ((8, 8, 8), 3)}


def small_instance(name):
    ndim = get_stencil(name).ndim
    return SMALL[ndim]


@pytest.mark.parametrize("name", list_stencils())
def test_roundtrip_reference_is_bit_for_bit(name):
    sizes, steps = small_instance(name)
    library = get_stencil(name, sizes=sizes, steps=steps)
    parsed = parse_stencil(c_source_for(name), sizes=sizes, time_steps=steps)
    assert parsed.ndim == library.ndim
    assert parsed.sizes == library.sizes
    assert parsed.time_steps == steps

    initial = library.initial_state(seed=7)
    expected = library.run_reference({k: v.copy() for k, v in initial.items()})
    actual = parsed.run_reference({k: v.copy() for k, v in initial.items()})
    assert set(actual) == set(expected)
    for field in expected:
        assert np.array_equal(actual[field], expected[field]), (
            f"{name}: field {field} diverges from the library program"
        )


@pytest.mark.parametrize("name", list_stencils())
def test_roundtrip_loads_and_flops_match(name):
    sizes, steps = small_instance(name)
    library = get_stencil(name)
    parsed = parse_stencil(c_source_for(name), sizes=sizes, time_steps=steps)
    assert len(parsed.statements) == len(library.statements)
    for lib_stmt, parsed_stmt in zip(library.statements, parsed.statements):
        assert parsed_stmt.loads == lib_stmt.loads, f"{name}/{lib_stmt.name} loads"
        assert parsed_stmt.flops == lib_stmt.flops, f"{name}/{lib_stmt.name} flops"
        assert parsed_stmt.lower_margin == lib_stmt.lower_margin
        assert parsed_stmt.upper_margin == lib_stmt.upper_margin
        assert parsed_stmt.target == lib_stmt.target


@pytest.mark.parametrize("name", list_stencils())
def test_roundtrip_defaults_recover_paper_sizes(name):
    library = get_stencil(name)
    if name == "jacobi_2d":
        # The stored Figure 1 source keeps N and T symbolic, as in the paper;
        # parsing it requires explicit extents.
        parsed = parse_stencil(
            c_source_for(name), sizes=library.sizes, time_steps=library.time_steps
        )
    else:
        # Regenerated sources carry #define headers, so they are self-contained.
        parsed = parse_stencil(c_source_for(name))
    assert parsed.sizes == library.sizes
    assert parsed.time_steps == library.time_steps


def test_multi_statement_fdtd_preserves_statement_order():
    parsed = parse_stencil(c_source_for("fdtd_2d"), sizes=(12, 12), time_steps=3)
    assert [s.target for s in parsed.statements] == ["ey", "ex", "hz"]
    hz = parsed.statements[2]
    offsets = {(r.field, r.time_offset) for r in hz.reads}
    assert ("ex", 0) in offsets and ("ey", 0) in offsets and ("hz", 1) in offsets


def test_higher_order_time_roundtrips_offset_two():
    parsed = parse_stencil(c_source_for("higher_order_time"), sizes=(16,), time_steps=4)
    assert parsed.max_time_offset() == 2
