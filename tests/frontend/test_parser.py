"""Tests for the front end parser: structure recovery and syntax errors."""

import pytest

from repro.frontend.ast import CAssign, CBinary, CFor, CNumber
from repro.frontend.errors import StencilSyntaxError
from repro.frontend.parser import parse_source
from repro.stencils.library import jacobi_2d_source


def test_parses_figure1_jacobi():
    program = parse_source(jacobi_2d_source())
    loop = program.time_loop
    assert loop.var == "t"
    assert isinstance(loop.lower, CNumber) and loop.lower.value == 0
    (i_loop,) = loop.body
    assert isinstance(i_loop, CFor) and i_loop.var == "i"
    (j_loop,) = i_loop.body
    assert isinstance(j_loop, CFor) and j_loop.var == "j"
    assert j_loop.ivdep  # the #pragma ivdep of Figure 1
    (assign,) = j_loop.body
    assert isinstance(assign, CAssign)
    assert assign.target.name == "A"
    assert len(assign.target.subscripts) == 3


def test_parses_defines_decls_and_name_comment():
    program = parse_source(
        "/* my_stencil */\n"
        "#define T 8\n#define N 32\n"
        "float A[2][N][N];\n"
        "for (t = 0; t < T; t++)\n"
        "  for (i = 1; i < N - 1; i++)\n"
        "    for (j = 1; j < N - 1; j++)\n"
        "      A[t][i][j] = A[t-1][i][j];\n"
    )
    assert program.name_hint == "my_stencil"
    assert program.defines == {"T": 8, "N": 32}
    (decl,) = program.decls
    assert decl.name == "A" and len(decl.extents) == 3


def test_expression_precedence():
    program = parse_source(
        "for (t = 0; t < 4; t++)\n"
        "  for (i = 1; i < 15; i++)\n"
        "    A[t][i] = A[t-1][i] + A[t-1][i-1] * 2.0f;\n"
    )
    (nest,) = program.time_loop.body
    (assign,) = nest.body
    assert isinstance(assign.value, CBinary) and assign.value.op == "+"
    assert isinstance(assign.value.rhs, CBinary) and assign.value.rhs.op == "*"


@pytest.mark.parametrize(
    "source, pattern",
    [
        ("for (t = 0; t < T; t--)", "expected 't\\+\\+'"),
        ("for (t = 0; t > T; t++) x;", "only 'var < bound'"),
        ("for (t = 0; i < T; t++) x;", "loop condition tests"),
        ("for (t = 0; t < T; t++) { A[t][i] = 1.0f; ", "unterminated '{' block"),
        ("for (t = 0; t < T; t++) A[t][i] = ;", "expected an expression"),
        ("for (t = 0; t < T; t++) A[t][i] = 1.0f", "expected ';'"),
        ("x = 1;", "expected '#define', a declaration or the time loop"),
        ("#define N 32\n", "no time loop found"),
        ("for (t = 0; t < T; t += 2) x;", "unit-stride"),
    ],
)
def test_syntax_errors(source, pattern):
    with pytest.raises(StencilSyntaxError, match=pattern):
        parse_source(source)


def test_syntax_error_carries_caret_snippet():
    source = (
        "for (t = 0; t < T; t++)\n"
        "  for (i = 1; i < N - 1; i++)\n"
        "    A[t][i] = A[t-1][i] +;\n"
    )
    with pytest.raises(StencilSyntaxError) as info:
        parse_source(source)
    error = info.value
    assert error.line == 3
    assert error.column == 26
    pretty = error.pretty()
    assert "A[t-1][i] +;" in pretty
    assert pretty.splitlines()[-1].strip() == "^"
