"""Tests for the front end lexer: tokens, positions, directives, errors."""

import pytest

from repro.frontend.errors import StencilSyntaxError
from repro.frontend.lexer import Lexer, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def test_basic_tokens():
    tokens = tokenize("for (i = 0; i < N - 1; i++)")
    assert [t.kind for t in tokens] == [
        "keyword", "(", "ident", "=", "number", ";",
        "ident", "<", "ident", "-", "number", ";",
        "ident", "++", ")", "eof",
    ]


def test_number_literals():
    values = [t.value for t in tokenize("1 0.2f 42 1e-3 3.5F 2E+4") if t.kind == "number"]
    assert values == [1, 0.2, 42, 1e-3, 3.5, 2e4]
    assert isinstance(values[0], int)
    assert isinstance(values[1], float)


def test_positions_are_one_based():
    tokens = tokenize("a\n  b")
    assert (tokens[0].line, tokens[0].column) == (1, 1)
    assert (tokens[1].line, tokens[1].column) == (2, 3)


def test_comments_are_skipped_and_recorded():
    lexer = Lexer("/* jacobi */ A // trailing\nB /* two */")
    tokens = lexer.tokenize()
    assert [t.value for t in tokens if t.kind == "ident"] == ["A", "B"]
    assert lexer.comments == ["jacobi", "two"]


def test_pragma_and_define_tokens():
    tokens = tokenize("#define N 32\n#pragma ivdep\n")
    assert tokens[0].kind == "define" and tokens[0].value == ("N", 32)
    assert tokens[1].kind == "pragma" and tokens[1].value == "ivdep"


def test_unknown_pragma_rejected():
    with pytest.raises(StencilSyntaxError, match="unsupported pragma"):
        tokenize("#pragma omp parallel\n")


def test_unexpected_character_reports_position():
    with pytest.raises(StencilSyntaxError) as info:
        tokenize("a = b ? c : d;")
    assert info.value.line == 1
    assert info.value.column == 7
    assert "^" in info.value.pretty()


def test_unterminated_comment():
    with pytest.raises(StencilSyntaxError, match="unterminated comment"):
        tokenize("a /* never closed")
