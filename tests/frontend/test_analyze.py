"""Tests for semantic analysis: the accepted fragment and its rejections."""

import pytest

from repro.frontend import parse_stencil
from repro.frontend.errors import StencilSemanticError


def wrap_2d(body, bounds="N - 1"):
    return (
        "#define T 4\n#define N 16\n"
        "for (t = 0; t < T; t++)\n"
        f"  for (i = 1; i < {bounds}; i++)\n"
        f"    for (j = 1; j < {bounds}; j++)\n"
        f"      {body}\n"
    )


# -- accepted fragment ---------------------------------------------------------


def test_margins_from_loop_bounds():
    source = (
        "#define T 4\n#define N 16\n#define M 12\n"
        "for (t = 0; t < T; t++)\n"
        "  for (i = 2; i < N - 3; i++)\n"
        "    for (j = 0; j < M; j++)\n"
        "      A[t][i][j] = A[t-1][i][j];\n"
    )
    program = parse_stencil(source)
    assert program.sizes == (16, 12)
    (statement,) = program.statements
    assert statement.lower_margin == (2, 0)
    assert statement.upper_margin == (3, 0)


def test_double_buffered_and_time_offset_forms_agree():
    modulo = wrap_2d("A[(t+1)%2][i][j] = 0.25f * A[t%2][i][j+1];")
    offset = wrap_2d("A[t][i][j] = 0.25f * A[t-1][i][j+1];")
    a = parse_stencil(modulo).statements[0]
    b = parse_stencil(offset).statements[0]
    assert a.expr == b.expr
    assert a.reads[0].time_offset == 1


def test_higher_order_time_offsets():
    source = (
        "#define T 4\n#define N 32\n"
        "for (t = 0; t < T; t++)\n"
        "  for (i = 2; i < N - 2; i++)\n"
        "    A[t][i] = 0.5f * A[t-2][i-2] + 0.5f * A[t-1][i+2];\n"
    )
    (statement,) = parse_stencil(source).statements
    assert sorted(r.time_offset for r in statement.reads) == [1, 2]
    assert statement.max_time_offset() == 2


def test_multi_statement_program_order_and_offset_zero():
    source = (
        "#define T 4\n#define N 16\n"
        "for (t = 0; t < T; t++) {\n"
        "  for (i = 1; i < N - 1; i++)\n"
        "    for (j = 1; j < N - 1; j++)\n"
        "      ex[t][i][j] = ex[t-1][i][j] - 0.5f * hz[t-1][i][j];\n"
        "  for (i = 1; i < N - 1; i++)\n"
        "    for (j = 1; j < N - 1; j++)\n"
        "      hz[t][i][j] = hz[t-1][i][j] - 0.7f * ex[t][i][j];\n"
        "}\n"
    )
    program = parse_stencil(source)
    assert [s.target for s in program.statements] == ["ex", "hz"]
    hz_reads = {r.field: r.time_offset for r in program.statements[1].reads}
    assert hz_reads == {"hz": 1, "ex": 0}


def test_defined_constant_in_body_and_sizes_override():
    source = wrap_2d("A[t][i][j] = C * A[t-1][i][j];").replace(
        "#define T 4\n", "#define T 4\n#define C 3\n"
    )
    program = parse_stencil(source, sizes=(20, 20), time_steps=2)
    assert program.sizes == (20, 20)
    assert program.time_steps == 2
    assert "3.0" in str(program.statements[0].expr)


# -- rejections ----------------------------------------------------------------


def expect_error(source, pattern, **kwargs):
    with pytest.raises(StencilSemanticError, match=pattern) as info:
        parse_stencil(source, **kwargs)
    assert info.value.line > 0 and info.value.column > 0
    assert "^" in info.value.pretty()
    return info.value


def test_non_affine_subscript_product():
    expect_error(wrap_2d("A[t][i][j*j] = A[t-1][i][j];"), "non-affine subscript")


def test_non_affine_subscript_array_dependent():
    expect_error(
        wrap_2d("A[t][i][B[t][i][j]] = A[t-1][i][j];"),
        "non-affine subscript",
    )


def test_wrong_loop_variable_in_subscript():
    expect_error(wrap_2d("A[t][j][i] = A[t-1][i][j];"), "loop variable for that dimension")


def test_imperfect_nest_statement_beside_loop():
    source = (
        "for (t = 0; t < 4; t++)\n"
        "  for (i = 1; i < 15; i++) {\n"
        "    B[t][i] = A[t-1][i];\n"
        "    for (j = 1; j < 15; j++)\n"
        "      A[t][i] = A[t-1][i];\n"
        "  }\n"
    )
    expect_error(source, "imperfect loop nest", sizes=(16, 16))


def test_imperfect_nest_two_loops_same_depth():
    source = (
        "for (t = 0; t < 4; t++)\n"
        "  for (i = 1; i < 15; i++) {\n"
        "    for (j = 1; j < 15; j++)\n"
        "      A[t][i][j] = A[t-1][i][j];\n"
        "    for (j = 1; j < 15; j++)\n"
        "      B[t][i][j] = A[t][i][j];\n"
        "  }\n"
    )
    expect_error(source, "imperfect loop nest")


def test_data_dependent_bound():
    expect_error(
        wrap_2d("A[t][i][j] = A[t-1][i][j];", bounds="B[0][0][0]"),
        "data-dependent loop bound",
    )


def test_reading_the_future():
    expect_error(wrap_2d("A[t][i][j] = A[t+1][i][j];"), "future")


def test_offset_zero_without_earlier_writer():
    expect_error(
        wrap_2d("A[t][i][j] = A[t][i][j];"), "reads its own statement's output"
    )
    expect_error(
        wrap_2d("A[t][i][j] = B[t][i][j];"), "no earlier statement"
    )


def test_unknown_intrinsic():
    expect_error(wrap_2d("A[t][i][j] = foo(A[t-1][i][j]);"), "unknown function 'foo'")


def test_unknown_scalar_identifier():
    expect_error(wrap_2d("A[t][i][j] = c * A[t-1][i][j];"), "unknown identifier 'c'")


def test_unresolved_size_symbol():
    source = (
        "for (t = 0; t < 4; t++)\n"
        "  for (i = 1; i < N - 1; i++)\n"
        "    A[t][i] = A[t-1][i];\n"
    )
    expect_error(source, "cannot determine the extent")


def test_unresolved_time_steps():
    source = (
        "#define N 16\n"
        "for (t = 0; t < T; t++)\n"
        "  for (i = 1; i < N - 1; i++)\n"
        "    A[t][i] = A[t-1][i];\n"
    )
    expect_error(source, "cannot determine the number of time steps")


def test_conflicting_shared_size_symbol():
    source = (
        "for (t = 0; t < 4; t++)\n"
        "  for (i = 1; i < N - 1; i++)\n"
        "    for (j = 1; j < N - 1; j++)\n"
        "      A[t][i][j] = A[t-1][i][j];\n"
    )
    expect_error(source, "two different extents", sizes=(16, 20))


def test_mixed_time_indexing_styles():
    expect_error(
        wrap_2d("A[(t+1)%2][i][j] = A[t-1][i][j];"), "mixes time indexing styles"
    )


def test_modulus_too_shallow_for_offset():
    expect_error(
        wrap_2d("A[(t+2)%2][i][j] = A[t%2][i][j];"), "rotating buffer"
    )


def test_statement_directly_in_time_loop():
    source = "for (t = 0; t < 4; t++)\n  A[t][0] = 1.0f;\n"
    expect_error(source, "must sit in a spatial loop nest")


def test_write_off_the_current_point():
    expect_error(
        wrap_2d("A[t][i+1][j] = A[t-1][i][j];"), "must write the current point"
    )


def test_decl_extents_resolve_sizes():
    source = (
        "float A[2][24][18];\n"
        "for (t = 0; t < 4; t++)\n"
        "  for (i = 1; i < N0 - 1; i++)\n"
        "    for (j = 1; j < N1 - 1; j++)\n"
        "      A[t][i][j] = A[t-1][i][j];\n"
    )
    program = parse_stencil(source)
    assert program.sizes == (24, 18)
