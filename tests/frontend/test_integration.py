"""Front end integration: registry, compiler and whole-pipeline checks."""

import numpy as np
import pytest

from repro.compiler import HybridCompiler
from repro.frontend import parse_stencil, parse_stencil_file
from repro.stencils import get_definition, get_stencil, register_from_source, unregister
from repro.tiling.hybrid import TileSizes

CUSTOM = """
/* smoothing_1d */
#define T 6
#define N 64
float A[2][N];
for (t = 0; t < T; t++)
  for (i = 1; i < N - 1; i++)
    A[(t+1)%2][i] = 0.25f * A[t%2][i-1] + 0.5f * A[t%2][i] + 0.25f * A[t%2][i+1];
"""


def test_compiler_accepts_raw_source():
    compiled = HybridCompiler().compile(CUSTOM, tile_sizes=TileSizes.of(2, 4))
    assert compiled.program.name == "smoothing_1d"
    assert str(compiled.validate()).startswith("ValidationReport(OK")
    compiled.simulate_and_check()


def test_parsed_program_keeps_original_source():
    program = parse_stencil(CUSTOM)
    assert program.c_source() == CUSTOM
    reparsed = parse_stencil(program.c_source())
    assert reparsed.statements[0].expr == program.statements[0].expr


def test_register_from_source_round_trips_through_registry():
    try:
        definition = register_from_source(CUSTOM)
        assert definition.name == "smoothing_1d"
        assert definition.dimensions == 1
        assert get_definition("smoothing_1d").default_sizes == (64,)

        small = get_stencil("smoothing_1d", sizes=(32,), steps=3)
        assert small.sizes == (32,)
        direct = parse_stencil(CUSTOM, sizes=(32,), time_steps=3)
        initial = small.initial_state(seed=2)
        a = small.run_reference({k: v.copy() for k, v in initial.items()})
        b = direct.run_reference({k: v.copy() for k, v in initial.items()})
        assert np.array_equal(a["A"], b["A"])
    finally:
        unregister("smoothing_1d")


def test_register_from_source_rejects_duplicates():
    try:
        register_from_source(CUSTOM)
        with pytest.raises(ValueError, match="already registered"):
            register_from_source(CUSTOM)
        register_from_source(CUSTOM, replace=True)  # explicit replace is fine
    finally:
        unregister("smoothing_1d")


def test_parse_stencil_file_reports_filename_in_errors(tmp_path):
    path = tmp_path / "broken.c"
    path.write_text(
        "for (t = 0; t < 4; t++)\n"
        "  for (i = 1; i < 15; i++)\n"
        "    A[t][i*i] = A[t-1][i];\n"
    )
    from repro.frontend import FrontendError

    with pytest.raises(FrontendError) as info:
        parse_stencil_file(str(path))
    assert str(path) in info.value.pretty()
    assert info.value.line == 3


def test_example_custom_stencil_compiles(tmp_path):
    import pathlib

    source = (
        pathlib.Path(__file__).resolve().parents[2] / "examples" / "custom_stencil.c"
    ).read_text()
    program = parse_stencil(source, sizes=(18, 18), time_steps=5)
    assert program.name == "edge_diffusion_2d"
    compiled = HybridCompiler().compile(program, tile_sizes=TileSizes.of(1, 2, 6))
    assert str(compiled.validate()).startswith("ValidationReport(OK")
    compiled.simulate_and_check()
    assert "edge_diffusion_2d" in compiled.cuda_source


def test_overridden_sizes_regenerate_faithful_source():
    # With overrides the original text's #defines would be stale, so the
    # program drops it and c_source() regenerates a form that reflects the
    # actual extents — keeping the round-trip invariant.
    program = parse_stencil(CUSTOM, sizes=(32,), time_steps=3)
    assert program.sizes == (32,)
    source = program.c_source()
    assert "#define N0 32" in source and "#define T 3" in source
    reparsed = parse_stencil(source)
    assert reparsed.sizes == (32,)
    assert reparsed.time_steps == 3
    assert reparsed.statements[0].expr == program.statements[0].expr

    # Overrides equal to the source's own extents keep the original text.
    same = parse_stencil(CUSTOM, sizes=(64,), time_steps=6)
    assert same.c_source() == CUSTOM


def test_integer_literal_at_end_of_input():
    # A digit as the very last character must still lex as an integer
    # (defines are accepted after the time loop too).
    source = (
        "for (t = 0; t < T; t++)\n"
        "  for (i = 1; i < N - 1; i++)\n"
        "    A[t][i] = A[t-1][i];\n"
        "#define N 16\n#define T 4"
    )
    program = parse_stencil(source)
    assert program.sizes == (16,)
    assert program.time_steps == 4
