"""fminf/fmaxf are batch-safe: the vectorised simulator no longer falls back.

Satellite of the array-native scheduling PR: the two clamp intrinsics used
to evaluate through the Python builtins ``min``/``max`` (which reject
arrays), forcing programs that use them onto the scalar interpreter.  They
now evaluate through ``np.minimum``/``np.maximum``, which are elementwise
and bit-for-bit identical to the scalar comparison on float32 operands.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler import HybridCompiler
from repro.gpu.simulator import FunctionalSimulator, _program_batchable
from repro.model.expr import Call, Constant, FieldRead
from repro.model.program import StencilProgram, StencilStatement


def _clamped_stencil(intrinsic: str) -> StencilProgram:
    """A 2D diffusion stencil whose result is clamped through fminf/fmaxf."""
    a = "A"
    average = Constant(0.25) * (
        FieldRead(a, (1, 0))
        + FieldRead(a, (-1, 0))
        + FieldRead(a, (0, 1))
        + FieldRead(a, (0, -1))
    )
    clamped = Call(intrinsic, (average, FieldRead(a, (0, 0))))
    statement = StencilStatement("S0", a, clamped, (1, 1), (1, 1))
    return StencilProgram(f"clamp_{intrinsic}", ("i", "j"), (16, 14), 6, [statement])


@pytest.mark.parametrize("intrinsic", ["fminf", "fmaxf"])
def test_clamped_programs_are_batchable(intrinsic):
    assert _program_batchable(_clamped_stencil(intrinsic))


@pytest.mark.parametrize("intrinsic", ["fminf", "fmaxf"])
def test_batch_matches_scalar_bit_for_bit(intrinsic):
    program = _clamped_stencil(intrinsic)
    compiled = HybridCompiler().compile(program)
    initial = program.initial_state(seed=7)

    batch_sim = FunctionalSimulator(
        compiled.tiling, compiled.shared_plan, compiled.config, batch=True
    )
    scalar_sim = FunctionalSimulator(
        compiled.tiling, compiled.shared_plan, compiled.config, batch=False
    )
    assert batch_sim.batch  # no silent fallback to the scalar interpreter
    assert not scalar_sim.batch

    batch = batch_sim.run(initial={k: v.copy() for k, v in initial.items()})
    scalar = scalar_sim.run(initial={k: v.copy() for k, v in initial.items()})
    for name, value in scalar.final_fields.items():
        np.testing.assert_array_equal(batch.final_fields[name], value)
    assert batch.counters == scalar.counters
    assert batch.tiles_executed == scalar.tiles_executed


@pytest.mark.parametrize("intrinsic", ["fminf", "fmaxf"])
def test_clamped_simulation_matches_numpy_reference(intrinsic):
    program = _clamped_stencil(intrinsic)
    HybridCompiler().compile(program).simulate_and_check(seed=3)


def test_scalar_evaluation_unchanged():
    """On plain floats the intrinsics still compute min/max exactly."""
    expr = Call("fminf", (Constant(2.0), Constant(-1.5)))
    assert float(expr.evaluate(lambda read: 0.0)) == -1.5
    expr = Call("fmaxf", (Constant(2.0), Constant(-1.5)))
    assert float(expr.evaluate(lambda read: 0.0)) == 2.0


def test_frontend_clamp_round_trips_through_batch_simulator():
    """A Figure-1-style source using fminf parses, compiles and simulates."""
    from repro.frontend import parse_stencil

    source = """
/* clamp_source */
#define T 4
#define N0 12
#define N1 12

float A[2][N0][N1];

for (t = 0; t < T; t++) {
  for (i = 1; i < N0 - 1; i++)
#pragma ivdep
    for (j = 1; j < N1 - 1; j++)
      A[t][i][j] = fmaxf(0.0f, fminf(1.0f,
          0.25f * (A[t-1][i+1][j] + A[t-1][i-1][j]
                 + A[t-1][i][j+1] + A[t-1][i][j-1])));
}
"""
    program = parse_stencil(source)
    assert _program_batchable(program)
    HybridCompiler().compile(program).simulate_and_check()
