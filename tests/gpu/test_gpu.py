"""Unit tests for the GPU substrate: devices, counters, memory and perf model."""

import pytest

from repro.gpu.counters import PerformanceCounters
from repro.gpu.device import GTX470, NVS5200M, get_device, list_devices
from repro.gpu.memory import CoalescingModel, SharedMemoryModel
from repro.gpu.perf_model import LaunchConfiguration, PerformanceModel


def test_device_lookup_and_derived_quantities():
    assert get_device("gtx470") is GTX470
    assert get_device("NVS 5200") is NVS5200M
    with pytest.raises(KeyError):
        get_device("volta")
    assert len(list_devices()) == 2
    # GTX 470 is roughly a 1 TFLOP/s part, the NVS 5200M roughly 250 GFLOP/s.
    assert 1000 < GTX470.peak_sp_gflops < 1200
    assert 200 < NVS5200M.peak_sp_gflops < 300
    assert GTX470.dram_bandwidth_gbs > 8 * NVS5200M.dram_bandwidth_gbs


def test_counters_derived_metrics_and_accumulation():
    counters = PerformanceCounters(
        requested_global_bytes=50.0,
        transferred_global_bytes=100.0,
        shared_load_requests=10.0,
        shared_load_transactions=18.0,
    )
    assert counters.gld_efficiency == 0.5
    assert counters.shared_loads_per_request == 1.8
    other = PerformanceCounters(flops=5.0)
    counters.add(other)
    assert counters.flops == 5.0
    scaled = counters.scaled(2.0)
    assert scaled.flops == 10.0
    row = counters.as_table5_row()
    assert row["gld_efficiency_percent"] == 50.0


def test_coalescing_aligned_rows_use_fewer_transactions():
    model = CoalescingModel(GTX470)
    aligned = model.row_transactions(128, aligned=True)
    unaligned = model.row_transactions(128, aligned=False)
    assert aligned < unaligned
    assert model.row_efficiency(128, 128, aligned=True) == 1.0
    assert model.row_efficiency(128, 128, aligned=False) < 1.0
    assert model.row_transactions(0, aligned=True) == 0


def test_shared_memory_bank_conflicts():
    model = SharedMemoryModel(GTX470)
    assert model.load_replay_factor(1) == 1.0
    assert model.load_replay_factor(33) == 1.0    # coprime with 32 banks
    assert model.load_replay_factor(2) == 2.0
    assert model.load_replay_factor(32) == 32.0
    assert model.fits(40 * 1024)
    assert not model.fits(64 * 1024)
    assert model.occupancy_limit(20 * 1024) == 2


def test_perf_model_bandwidth_bound_case():
    """A pure streaming kernel must be DRAM bound and near peak bandwidth."""
    counters = PerformanceCounters(
        flops=1e9,
        instructions=2e9,
        dram_read_transactions=10e9 / 32,
        dram_write_transactions=0,
        stencil_updates=1e9,
    )
    launch = LaunchConfiguration(threads_per_block=256, blocks=10_000)
    report = PerformanceModel(GTX470).estimate(counters, launch)
    assert report.bound_by == "dram"
    implied_bandwidth = 10e9 / report.kernel_time_s / 1e9
    assert implied_bandwidth <= GTX470.dram_bandwidth_gbs * 1.01


def test_perf_model_compute_bound_case():
    counters = PerformanceCounters(
        flops=1e12,
        instructions=1e12,
        dram_read_transactions=1e6,
        stencil_updates=1e9,
    )
    launch = LaunchConfiguration(threads_per_block=512, blocks=10_000)
    report = PerformanceModel(GTX470).estimate(counters, launch)
    assert report.bound_by == "compute"
    assert report.gflops < GTX470.peak_sp_gflops


def test_perf_model_unrolled_faster_than_rolled():
    counters = PerformanceCounters(flops=1e11, instructions=4e11, stencil_updates=1e10)
    fast = PerformanceModel(GTX470).estimate(
        counters, LaunchConfiguration(blocks=10_000, unrolled=True)
    )
    slow = PerformanceModel(GTX470).estimate(
        counters, LaunchConfiguration(blocks=10_000, unrolled=False)
    )
    assert fast.total_time_s < slow.total_time_s


def test_perf_model_divergence_penalty():
    counters = PerformanceCounters(flops=1e11, instructions=4e11, stencil_updates=1e10)
    clean = PerformanceModel(GTX470).estimate(
        counters, LaunchConfiguration(blocks=10_000, divergence_free=True)
    )
    divergent = PerformanceModel(GTX470).estimate(
        counters, LaunchConfiguration(blocks=10_000, divergence_free=False)
    )
    assert clean.total_time_s < divergent.total_time_s


def test_perf_model_separate_copy_out_costs_time():
    counters = PerformanceCounters(
        flops=1e11,
        instructions=2e11,
        dram_read_transactions=1e9,
        dram_write_transactions=1e9,
        stencil_updates=1e10,
    )
    overlapped = PerformanceModel(GTX470).estimate(
        counters, LaunchConfiguration(blocks=10_000, overlap_stores=True)
    )
    separate = PerformanceModel(GTX470).estimate(
        counters, LaunchConfiguration(blocks=10_000, overlap_stores=False)
    )
    assert separate.total_time_s > overlapped.total_time_s


def test_perf_model_gstencils_accounting():
    counters = PerformanceCounters(flops=1e9, instructions=1e9, stencil_updates=5e8)
    report = PerformanceModel(NVS5200M).estimate(
        counters, LaunchConfiguration(blocks=1000)
    )
    assert report.gstencils_per_second == pytest.approx(
        5e8 / report.total_time_s / 1e9
    )
    assert "GStencils" in report.summary()


def test_launch_configuration_validation():
    with pytest.raises(ValueError):
        LaunchConfiguration(threads_per_block=0)
    with pytest.raises(ValueError):
        LaunchConfiguration(useful_fraction=0.0)
