"""Functional simulator tests: tiled execution must match the reference."""

import numpy as np

from repro.compiler import HybridCompiler
from repro.gpu.simulator import FunctionalSimulator
from repro.model.preprocess import canonicalize
from repro.api import OptimizationConfig
from repro.stencils import get_stencil
from repro.tiling.hybrid import HybridTiling, TileSizes


def _check(name, sizes, steps, tile_sizes, config=None):
    program = get_stencil(name, sizes=sizes, steps=steps)
    compiler = HybridCompiler()
    compiled = compiler.compile(program, tile_sizes=tile_sizes, config=config)
    result = compiled.simulate_and_check()
    return compiled, result


def test_jacobi_2d_simulation_matches_reference():
    compiled, result = _check("jacobi_2d", (20, 18), 10, TileSizes.of(2, 3, 6))
    assert result.tiles_executed == result.full_tiles + result.partial_tiles
    assert result.counters.stencil_updates == compiled.program.stencil_updates()


def test_laplacian_2d_simulation_matches_reference():
    _check("laplacian_2d", (16, 16), 8, TileSizes.of(3, 2, 5))


def test_gradient_2d_simulation_matches_reference():
    _check("gradient_2d", (14, 14), 6, TileSizes.of(1, 2, 4))


def test_heat_3d_simulation_matches_reference():
    _check("heat_3d", (10, 9, 8), 5, TileSizes.of(1, 2, 3, 4))


def test_fdtd_multi_statement_simulation_matches_reference():
    _check("fdtd_2d", (14, 12), 6, TileSizes.of(2, 2, 5))


def test_simulation_without_shared_memory_config():
    _check("jacobi_2d", (16, 14), 6, TileSizes.of(2, 3, 5), OptimizationConfig.config_a())


def test_simulation_counters_reasonable():
    compiled, result = _check("heat_2d", (18, 16), 8, TileSizes.of(3, 3, 6))
    counters = result.counters
    updates = compiled.program.stencil_updates()
    assert counters.flops == updates * 9
    assert counters.gst_instructions == updates
    # With shared staging, distinct loads per tile are below 9 per update.
    assert counters.gld_instructions < updates * 9
    assert counters.gld_instructions > 0


def test_simulation_footprint_fits_plan():
    compiled, result = _check("heat_3d", (10, 9, 8), 5, TileSizes.of(1, 2, 3, 4))
    planned = sum(f.elements * f.versions for f in compiled.shared_plan.footprints)
    assert result.max_footprint_elements <= planned


def test_simulator_with_custom_initial_state():
    program = get_stencil("jacobi_2d", sizes=(12, 12), steps=4)
    tiling = HybridTiling(canonicalize(program), TileSizes.of(1, 2, 4))
    simulator = FunctionalSimulator(tiling)
    initial = {"A": np.fromfunction(lambda i, j: i + j, (12, 12), dtype=np.float32)}
    result = simulator.run(initial={"A": initial["A"].copy()})
    reference = program.run_reference({"A": initial["A"].copy()})
    assert result.matches_reference(reference)


def test_simulator_detects_mismatch_against_wrong_reference():
    program = get_stencil("jacobi_2d", sizes=(12, 12), steps=4)
    tiling = HybridTiling(canonicalize(program), TileSizes.of(1, 2, 4))
    result = FunctionalSimulator(tiling).run(seed=0)
    wrong = {"A": np.zeros((12, 12), dtype=np.float32)}
    assert not result.matches_reference(wrong)
