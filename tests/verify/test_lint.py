"""The generated-CUDA static linter: clean on the compiler, loud on bugs."""

from __future__ import annotations

import pytest

from repro.api import (
    Session,
    get_stencil,
    list_stencils,
    table4_configurations,
)
from repro.verify import lint_cuda

#: A deliberately broken kernel exercising every rule family with known spans.
BAD_KERNEL = """\
#define N 512
__global__ void bad_kernel(int T, float *A) {
    __shared__ float tile[32][33];
    __shared__ float conflicted[32][32];
    int row = threadIdx.y;
    int col = threadIdx.x;
    conflicted[col][0] = A[col];
    tile[row][32] = 0.0f;
    tile[33][col] = 1.0f;
    for (int i = 0; i < 40; ++i) {
        tile[i][col] = 2.0f;
    }
    if (threadIdx.x < 16) {
        __syncthreads();
    }
    A[global_index(col, row)] = tile[row][col];
    A[2 * col] = tile[row][col];
}
"""


def _generated_source(name, config=None, strategy="hybrid"):
    run = Session(strategy=strategy).run(
        get_stencil(name), config=config, stop_after="codegen"
    )
    return run.artifact("codegen").cuda_source, run


@pytest.mark.parametrize("name", list_stencils())
def test_library_codegen_is_lint_clean(name):
    source, run = _generated_source(name)
    report = lint_cuda(
        source,
        plan=run.artifact("memory").plan,
        device=run.request.device,
    )
    assert report.errors == ()
    assert report.warnings == ()
    assert report.kernels  # the scan actually entered the kernels
    assert report.lines_scanned > 0


@pytest.mark.parametrize("label", sorted(table4_configurations()))
def test_every_optimization_config_is_lint_clean(label):
    config = table4_configurations()[label]
    source, run = _generated_source("jacobi_2d", config=config)
    report = lint_cuda(source, plan=run.artifact("memory").plan)
    assert report.errors == ()
    assert report.warnings == ()


def test_bad_fixture_flags_every_rule_family():
    report = lint_cuda(BAD_KERNEL)
    assert not report.ok
    rules = {finding.rule for finding in report.findings}
    assert {
        "shared-bank-conflict", "shared-oob", "sync-divergence",
        "global-uncoalesced",
    } <= rules
    assert report.kernels == ("bad_kernel",)


def test_bank_conflict_severity_and_span():
    report = lint_cuda(BAD_KERNEL)
    (conflict,) = [f for f in report.findings if f.rule == "shared-bank-conflict"]
    assert conflict.severity == "error"  # 32-way replay is >= the error bar
    assert conflict.line == 7
    assert "stride 32" in conflict.message
    assert "conflicted" in conflict.snippet


def test_oob_findings_cover_literal_and_loop_bound_indices():
    report = lint_cuda(BAD_KERNEL)
    oob = sorted(
        (f for f in report.findings if f.rule == "shared-oob"),
        key=lambda f: f.line,
    )
    assert [f.line for f in oob] == [9, 11]
    assert "reaches 33" in oob[0].message  # literal index 33, extent 32
    assert "reaches 39" in oob[1].message  # loop bound 40, extent 32
    # In-bounds sibling on the other axis (tile[row][32] with extent 33)
    # must stay silent: only provable violations are reported.
    assert all(f.line != 8 for f in report.findings)


def test_divergent_sync_names_the_divergent_branch():
    report = lint_cuda(BAD_KERNEL)
    (sync,) = [f for f in report.findings if f.rule == "sync-divergence"]
    assert sync.severity == "error"
    assert sync.line == 14
    assert "line 13" in sync.message  # points back at the divergent if


def test_uncoalesced_warnings_do_not_fail_the_report():
    uncoalesced = """\
__global__ void k(int T, float *A) {
    int col = threadIdx.x;
    int row = threadIdx.y;
    A[global_index(col, row)] = 1.0f;
    A[2 * col] = 2.0f;
}
"""
    report = lint_cuda(uncoalesced)
    assert {f.rule for f in report.findings} == {"global-uncoalesced"}
    assert all(f.severity == "warning" for f in report.findings)
    assert report.ok  # warnings alone never fail a build


def test_uniform_control_flow_sync_is_legal():
    source = """\
__global__ void k(int T, float *A) {
    for (int step = 0; step < 8; ++step) {
        if (step < T) {
            __syncthreads();
        }
    }
    __syncthreads();
}
"""
    report = lint_cuda(source)
    assert report.findings == ()


def test_shared_capacity_cross_check_uses_plan_and_device():
    from repro.gpu.device import GTX470

    class OverfullPlan:
        shared_bytes_per_block = GTX470.shared_memory_per_sm + 1

    report = lint_cuda("__global__ void k(float *A) { A[0] = 0.0f; }",
                       plan=OverfullPlan(), device=GTX470)
    assert any(f.rule == "shared-capacity" for f in report.errors)
    assert GTX470.name in report.errors[0].message
