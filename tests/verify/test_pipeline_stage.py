"""The ``verify`` pipeline stage: artifact shape, caching, CLI-facing summary."""

from __future__ import annotations

from repro.api import STAGES, Session, VerificationReport, get_stencil
from repro.cache import DiskCache


def test_verify_is_the_last_pipeline_stage():
    assert STAGES[-1] == "verify"


def test_verify_stage_produces_a_verification_report():
    run = Session().run(get_stencil("jacobi_2d"), stop_after="verify")
    report = run.artifact("verify")
    assert isinstance(report, VerificationReport)
    assert report.strategy == "hybrid"
    assert report.ok
    assert report.schedule.ok
    assert report.lint is not None  # hybrid reaches codegen, so lint runs
    assert report.lint.ok
    assert report.lint.kernels  # the linter saw the generated kernels
    summary = report.summary()
    assert summary["ok"] is True
    assert summary["races"] == 0
    assert summary["lint_errors"] == 0


def test_default_stop_stays_codegen():
    # verify is opt-in: a plain run must not pay for it.
    run = Session().run(get_stencil("jacobi_1d"))
    assert run.stop_after == "codegen"
    assert "verify" not in run.stages_run


def test_verify_artifact_round_trips_through_the_disk_cache(tmp_path):
    cache = DiskCache(tmp_path / "cache")
    program = get_stencil("jacobi_1d")
    first = Session(disk_cache=cache).run(program, stop_after="verify")
    assert first.artifact("verify").ok
    # A fresh session (empty memory cache) must load the pickled report.
    second = Session(disk_cache=cache).run(program, stop_after="verify")
    events = {event.name: event for event in second.events}
    assert events["verify"].source == "disk"
    report = second.artifact("verify")
    assert isinstance(report, VerificationReport)
    assert report.ok and report.lint is not None
