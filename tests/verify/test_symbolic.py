"""The symbolic race detector accepts every schedule the compiler emits.

These tests run the detector over *symbolic* problem sizes: one verdict per
(stencil, strategy) covers every sufficiently large grid at once, which is
the whole point — the enumerated validator of :mod:`repro.tiling.validate`
can only ever check one concrete instance.
"""

from __future__ import annotations

import pytest

from repro.api import Session, StrategyError, get_stencil, list_stencils
from repro.model.preprocess import canonicalize
from repro.tiling.hybrid import HybridTiling, TileSizes
from repro.verify import (
    ORDERING_LEVELS,
    HybridScheduleModel,
    VerificationError,
    get_mutation,
    verify_hybrid,
    verify_tiling_plan,
)


def _tiling_verdict(name: str, strategy: str):
    session = Session(strategy=strategy)
    run = session.run(get_stencil(name), stop_after="tiling")
    canonical = run.artifact("canonicalize").canonical
    return verify_tiling_plan(canonical, run.artifact("tiling"))


@pytest.mark.parametrize("name", list_stencils())
def test_hybrid_schedules_are_race_free_for_all_sizes(name):
    verdict = _tiling_verdict(name, "hybrid")
    assert verdict.ok
    assert verdict.coverage_ok
    assert verdict.races == ()
    assert verdict.dependences_checked > 0
    assert verdict.classes_checked > 0


@pytest.mark.parametrize("name", list_stencils())
def test_classical_schedules_are_race_free_for_all_sizes(name):
    verdict = _tiling_verdict(name, "classical")
    assert verdict.ok
    assert verdict.dependences_checked > 0


@pytest.mark.parametrize("name", list_stencils())
def test_diamond_schedules_are_race_free_for_all_sizes(name):
    try:
        verdict = _tiling_verdict(name, "diamond")
    except StrategyError:
        # Diamond tiling rejects dependence slopes > 1 by construction
        # (higher_order_time, wide_1d); nothing to verify.
        pytest.skip("diamond tiling is not applicable to this stencil")
    assert verdict.ok
    assert verdict.dependences_checked > 0


def _small_model(name="jacobi_2d", sizes=(12, 12), steps=4, h=1, widths=(2, 4)):
    canonical = canonicalize(get_stencil(name, sizes=sizes, steps=steps))
    tiling = HybridTiling(canonical, TileSizes(h, widths))
    return canonical, HybridScheduleModel.from_tiling(tiling)


def test_race_counterexamples_are_concrete_instance_pairs():
    canonical, model = _small_model()
    mutated = get_mutation("phase-swap").apply(model)
    verdict = verify_hybrid(canonical, mutated)
    assert not verdict.ok
    for race in verdict.races:
        assert race.level in ORDERING_LEVELS
        assert race.strategy == "hybrid"
        assert race.dependence in race.message
        source, sink = race.source, race.sink
        assert source is not None and sink is not None
        # Counterexamples are concrete: integer time steps and points, plus
        # the full named schedule coordinates of both endpoints.
        assert sink.t - source.t >= 0
        assert len(source.point) == len(sink.point) == 2
        for instance in (source, sink):
            coords = dict(instance.schedule)
            assert {"T", "phase", "S0"} <= set(coords)
            assert all(isinstance(v, int) for v in coords.values())


def test_coverage_findings_report_unclaimed_points():
    canonical, model = _small_model()
    mutated = get_mutation("shrunk-hexagon-upper").apply(model)
    verdict = verify_hybrid(canonical, mutated)
    assert not verdict.coverage_ok
    assert not verdict.ok
    assert any(race.level == "coverage" for race in verdict.races)


def test_misaligned_statement_slots_are_rejected():
    canonical, model = _small_model()
    from dataclasses import replace

    # fdtd-style multi-statement programs need (h+1) % k == 0; fake a
    # three-statement model at h=1 to hit the guard.
    bad = replace(model, num_statements=3)
    with pytest.raises(VerificationError):
        verify_hybrid(canonical, bad)


def test_unknown_schedule_objects_are_rejected():
    canonical, _ = _small_model()
    with pytest.raises(VerificationError):
        verify_tiling_plan(canonical, object())


def test_verdict_summary_is_json_shaped():
    verdict = _tiling_verdict("jacobi_1d", "hybrid")
    summary = verdict.summary()
    assert summary["ok"] is True
    assert summary["races"] == []
    assert isinstance(summary["classes_checked"], int)
    assert isinstance(summary["notes"], list)
