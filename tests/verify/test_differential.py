"""Differential tests: enumerated validator vs. the symbolic verifier.

The repo has two independent legality oracles — the enumerated validator of
:mod:`repro.tiling.validate` (checks one concrete instance point by point)
and the symbolic verifier of :mod:`repro.verify.symbolic` (decides all
problem sizes at once).  Where enumeration is feasible they must agree:
legal tilings pass both, materialised illegal tilings fail both.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.model.preprocess import canonicalize
from repro.stencils import get_stencil
from repro.tiling.classical import ClassicalTiling
from repro.tiling.hybrid import HybridTiling, TileSizes
from repro.tiling.validate import ScheduleValidationError, validate_hybrid_tiling
from repro.verify import verify_hybrid

#: Small instances the enumerated validator can sweep exhaustively.
CASES = [
    ("jacobi_1d", (24,), 6, 1, (4,)),
    ("jacobi_2d", (12, 12), 4, 1, (2, 4)),
    ("heat_2d", (12, 12), 4, 1, (2, 4)),
    ("heat_3d", (8, 8, 8), 4, 1, (2, 4, 5)),
    ("fdtd_2d", (12, 12), 4, 2, (2, 5)),
]


def _tiling(name, sizes, steps, h, widths):
    canonical = canonicalize(get_stencil(name, sizes=sizes, steps=steps))
    return canonical, HybridTiling(canonical, TileSizes(h, widths))


@pytest.mark.parametrize("name,sizes,steps,h,widths", CASES)
def test_both_oracles_accept_legal_tilings(name, sizes, steps, h, widths):
    canonical, tiling = _tiling(name, sizes, steps, h, widths)
    assert validate_hybrid_tiling(tiling).ok          # enumerated
    verdict = verify_hybrid(canonical, tiling)        # symbolic
    assert verdict.ok
    assert verdict.dependences_checked == len(canonical.dependences)


@pytest.mark.parametrize(
    "name,sizes,steps,h,widths",
    [case for case in CASES if len(case[1]) >= 2],
)
def test_both_oracles_reject_a_materialised_unskewed_tiling(
    name, sizes, steps, h, widths
):
    """Dropping the inner time skew is illegal — and *materialisable*.

    Unlike most corpus mutants (which perturb the abstract schedule model),
    a zero-skew inner tiling can be built as a real ``ClassicalTiling``, so
    the enumerated validator can see the exact same broken schedule the
    symbolic verifier sees.
    """
    canonical, tiling = _tiling(name, sizes, steps, h, widths)
    for index, inner in enumerate(tiling.classical):
        tiling.classical[index] = ClassicalTiling(
            inner.dim_name, Fraction(0), inner.width, inner.time_period
        )
    with pytest.raises(ScheduleValidationError):      # enumerated
        validate_hybrid_tiling(tiling)
    verdict = verify_hybrid(canonical, tiling)        # symbolic
    assert not verdict.ok
    assert verdict.races
    assert verdict.races[0].level == "intra_tile"


def test_symbolic_counterexample_is_a_real_enumerated_violation():
    """The symbolic witness pair violates the actual dependence ordering.

    Reconstructs the reported source/sink instances and checks that the sink
    really reads the source's value while the schedule orders them wrongly:
    the dependence distance matches, and the source does not precede the
    sink at the violated level.
    """
    canonical, tiling = _tiling("jacobi_2d", (12, 12), 4, 1, (2, 4))
    tiling.classical[0] = ClassicalTiling(
        tiling.classical[0].dim_name, Fraction(0),
        tiling.classical[0].width, tiling.classical[0].time_period,
    )
    verdict = verify_hybrid(canonical, tiling)
    race = verdict.races[0]
    source, sink = race.source, race.sink
    # The witness pair is separated by one of the program's dependences.
    delta = (sink.t - source.t, *(
        b - a for a, b in zip(source.point, sink.point)
    ))
    assert delta in {tuple(v) for v in canonical.distance_vectors}
    # Both endpoints sit in the same hexagonal tile (same T, phase, S0) and
    # the same inner tile, where the unskewed loop nest no longer orders
    # the later local time after the earlier one.
    source_sched = dict(source.schedule)
    sink_sched = dict(sink.schedule)
    for coord in ("T", "phase", "S0"):
        assert source_sched[coord] == sink_sched[coord]
    assert race.level == "intra_tile"
