"""Unit tests for the two-phase hexagonal schedule (equations (2)-(5))."""

from fractions import Fraction

import pytest

from repro.tiling.cone import DependenceCone
from repro.tiling.hex_schedule import HexagonalSchedule, Phase
from repro.tiling.hexagon import HexagonalTileShape


@pytest.fixture
def unit_schedule():
    shape = HexagonalTileShape(DependenceCone(Fraction(1), Fraction(1)), 2, 3)
    return HexagonalSchedule(shape)


def test_every_point_assigned_to_exactly_one_phase(unit_schedule):
    for l in range(0, 40):
        for s0 in range(-25, 25):
            unit_schedule.assign(l, s0, check_unique=True)


def test_phase_zero_executes_lower_time_first(unit_schedule):
    """Within a time tile, blue (phase 0) covers the lower logical times."""
    assignment = unit_schedule.assign(0, 0)
    assert assignment.phase is Phase.BLUE or assignment.phase is Phase.GREEN
    blue_times = []
    green_times = []
    for l in range(0, unit_schedule.shape.time_period):
        for s0 in range(0, 24):
            a = unit_schedule.assign(l, s0)
            if a.time_tile == 0:
                (blue_times if a.phase is Phase.BLUE else green_times).append(l)
    assert blue_times and green_times
    assert min(blue_times) <= min(green_times)


def test_tile_points_round_trip(unit_schedule):
    """tile_points is the inverse of assign for every phase/tile index."""
    for phase in (Phase.BLUE, Phase.GREEN):
        for time_tile in (1, 2):
            for space_tile in (-1, 0, 2):
                points = list(unit_schedule.tile_points(phase, time_tile, space_tile))
                assert len(points) == unit_schedule.shape.count()
                for l, s0 in points:
                    assignment = unit_schedule.assign(l, s0)
                    assert assignment.phase is phase
                    assert assignment.time_tile == time_tile
                    assert assignment.space_tile == space_tile


def test_full_tiles_have_identical_point_count(unit_schedule):
    """The hexagonal-tiling property the paper contrasts with diamond tiling."""
    from collections import Counter

    counts = Counter()
    for l in range(0, 72):
        for s0 in range(0, 96):
            a = unit_schedule.assign(l, s0)
            counts[(a.phase, a.time_tile, a.space_tile)] += 1
    interior = [
        count
        for (phase, t, s), count in counts.items()
        if 1 <= t <= 8 and 1 <= s <= 5
    ]
    assert interior
    assert set(interior) == {unit_schedule.shape.count()}


def test_wavefront_parallelism_is_legal(unit_schedule):
    """Dependences never cross S0 tiles within the same (T, phase)."""
    distances = [(1, 1), (1, -1), (1, 0)]
    for l in range(4, 40):
        for s0 in range(-15, 15):
            sink = unit_schedule.assign(l, s0)
            for dl, ds in distances:
                source = unit_schedule.assign(l - dl, s0 - ds)
                source_key = (source.time_tile, int(source.phase))
                sink_key = (sink.time_tile, int(sink.phase))
                assert source_key <= sink_key
                if source_key == sink_key:
                    assert source.space_tile == sink.space_tile
                    assert source.local_time < sink.local_time


def test_asymmetric_cone_coverage_and_legality():
    """The paper's contrived example (δ0=1, δ1=2) tiles and schedules correctly."""
    shape = HexagonalTileShape(DependenceCone(Fraction(1), Fraction(2)), 2, 1)
    schedule = HexagonalSchedule(shape)
    distances = [(1, -2), (2, 2)]
    for l in range(4, 30):
        for s0 in range(-20, 20):
            sink = schedule.assign(l, s0, check_unique=True)
            for dl, ds in distances:
                source = schedule.assign(l - dl, s0 - ds)
                source_key = (source.time_tile, int(source.phase))
                sink_key = (sink.time_tile, int(sink.phase))
                assert source_key <= sink_key
                if source_key == sink_key:
                    assert source.space_tile == sink.space_tile


def test_quasi_affine_expressions_match_direct_evaluation(unit_schedule):
    """The emitted C expressions compute the same tile coordinates."""
    for phase in (Phase.BLUE, Phase.GREEN):
        t_expr = unit_schedule.time_tile_expr(phase)
        a_expr = unit_schedule.local_time_expr(phase)
        for l in range(0, 30):
            for s0 in range(-10, 10):
                expected = (
                    unit_schedule.phase0_box(l, s0)
                    if phase is Phase.BLUE
                    else unit_schedule.phase1_box(l, s0)
                )
                env = {"l": l, "s0": s0, "T": expected[0]}
                assert t_expr.evaluate(env) == expected[0]
                s_expr = unit_schedule.space_tile_expr(phase)
                assert s_expr.evaluate(env) == expected[1]
                assert a_expr.evaluate(env) == expected[2]
                b_expr = unit_schedule.local_space_expr(phase)
                assert b_expr.evaluate(env) == expected[3]
