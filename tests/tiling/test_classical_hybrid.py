"""Unit tests for classical tiling, the hybrid combination and its validation."""

from fractions import Fraction

import pytest

from repro.model.preprocess import canonicalize
from repro.stencils import get_stencil
from repro.tiling.classical import ClassicalTiling
from repro.tiling.hex_schedule import Phase
from repro.tiling.hybrid import HybridTiling, TileSizes
from repro.tiling.validate import (
    ScheduleValidationError,
    check_coverage,
    check_legality,
    check_legality_reference,
    check_tile_uniformity,
    validate_hybrid_tiling,
)


# -- classical tiling -----------------------------------------------------------------


def test_classical_tile_index_and_local_coordinate():
    tiling = ClassicalTiling("s1", Fraction(1), 4, 6)
    for s in range(-10, 10):
        for u in range(0, 6):
            index = tiling.tile_index(s, u)
            local = tiling.local_coordinate(s, u)
            assert 0 <= local < 4
            assert index * 4 + local == s + u


def test_classical_rational_slope_is_exact():
    tiling = ClassicalTiling("s1", Fraction(1, 2), 4, 6)
    for s in range(-8, 8):
        for u in range(0, 6):
            index = tiling.tile_index(s, u)
            assert index == (2 * s + u) // 8


def test_classical_skew_respects_dependences():
    """sink tile index >= source tile index for every in-cone dependence."""
    tiling = ClassicalTiling("s1", Fraction(1), 5, 8)
    for s in range(-10, 10):
        for u in range(0, 7):
            source = tiling.tile_index(s, u)
            for dl in (1, 2):
                for ds in range(-dl, dl + 1):
                    sink = tiling.tile_index(s + ds, u + dl)
                    assert sink >= source


def test_classical_expressions_match_evaluation():
    tiling = ClassicalTiling("s1", Fraction(1), 4, 6)
    index_expr = tiling.tile_index_expr()
    local_expr = tiling.local_coordinate_expr()
    for s in range(-6, 6):
        for u in range(0, 6):
            env = {"s1": s, "u": u}
            assert index_expr.evaluate(env) == tiling.tile_index(s, u)
            assert local_expr.evaluate(env) == tiling.local_coordinate(s, u)


def test_classical_invalid_parameters():
    with pytest.raises(ValueError):
        ClassicalTiling("s1", Fraction(1), 0, 6)
    with pytest.raises(ValueError):
        ClassicalTiling("s1", Fraction(-1), 4, 6)


# -- hybrid tiling --------------------------------------------------------------------


def test_tile_sizes_validation():
    with pytest.raises(ValueError):
        TileSizes(-1, (3,))
    sizes = TileSizes.of(2, 3, 4)
    assert sizes.w0 == 3 and sizes.widths == (3, 4)


def test_hybrid_requires_matching_width_count(jacobi_canonical):
    with pytest.raises(ValueError):
        HybridTiling(jacobi_canonical, TileSizes.of(2, 3))


def test_hybrid_statement_alignment_enforced():
    program = get_stencil("fdtd_2d", sizes=(12, 12), steps=4)
    canonical = canonicalize(program)
    with pytest.raises(ValueError):
        HybridTiling(canonical, TileSizes.of(3, 2, 4))   # h+1 = 4 not multiple of 3
    HybridTiling(canonical, TileSizes.of(2, 2, 4))        # h+1 = 3 is fine


def test_hybrid_full_validation_jacobi(jacobi_tiling):
    report = validate_hybrid_tiling(jacobi_tiling)
    assert report.ok
    assert report.instances_checked == jacobi_tiling.canonical.program.stencil_updates()
    assert report.dependences_checked > 0


def test_hybrid_full_validation_heat_3d(small_heat_3d):
    canonical = canonicalize(small_heat_3d)
    tiling = HybridTiling(canonical, TileSizes.of(1, 2, 4, 5))
    report = validate_hybrid_tiling(tiling)
    assert report.ok


def test_hybrid_full_validation_multi_statement(small_fdtd_2d):
    canonical = canonicalize(small_fdtd_2d)
    tiling = HybridTiling(canonical, TileSizes.of(2, 2, 5))
    assert validate_hybrid_tiling(tiling).ok


def test_hybrid_schedule_point_round_trip(jacobi_tiling):
    point = jacobi_tiling.assign_instance(0, 3, (5, 7))
    assert point.canonical_point == (3, 5, 7)
    assert point.statement_index == 0
    assert len(point.tile.space_tiles) == 2
    assert len(point.full_tuple()) == 2 + 2 + 1 + 2


def test_iterations_per_full_tile_closed_form():
    """§3.7: 2(1 + 2h + h² + w0(h+1)) · w1 · w2 for 3D unit-slope stencils."""
    program = get_stencil("heat_3d", sizes=(32, 32, 32), steps=8)
    canonical = canonicalize(program)
    for h, w0, w1, w2 in [(2, 7, 10, 32), (1, 3, 8, 16), (3, 2, 4, 8)]:
        tiling = HybridTiling(canonical, TileSizes.of(h, w0, w1, w2))
        expected = 2 * (1 + 2 * h + h * h + w0 * (h + 1)) * w1 * w2
        assert tiling.iterations_per_full_tile() == expected


def test_time_steps_per_tile(jacobi_tiling):
    assert jacobi_tiling.time_steps_per_tile() == 6


def test_schedule_expressions_evaluate_consistently(jacobi_tiling):
    """The Figure 6 style closed forms agree with the point-wise assignment."""
    for phase in (Phase.BLUE, Phase.GREEN):
        exprs = jacobi_tiling.schedule_expressions(phase)
        for l in range(0, 12):
            for i in range(1, 15):
                for j in range(1, 13):
                    assignment = jacobi_tiling.assign_canonical((l, i, j))
                    if assignment.tile.phase is not phase:
                        continue
                    env = {"l": l, "i": i, "j": j}
                    assert exprs["T"].evaluate(env) == assignment.tile.time_tile
                    assert exprs["S0"].evaluate(env) == assignment.tile.space_tiles[0]
                    assert exprs["S1"].evaluate(env) == assignment.tile.space_tiles[1]
                    assert exprs["t_local"].evaluate(env) == assignment.local_time
                    assert exprs["s0_local"].evaluate(env) == assignment.local_space[0]


def test_validation_detects_broken_schedule(jacobi_canonical):
    """Sabotaged tile coordinates must be caught by the reference checker."""
    tiling = HybridTiling(jacobi_canonical, TileSizes.of(2, 3, 6))
    original = tiling.assign_canonical

    def sabotaged(point):
        result = original(point)
        if result.tile.phase is Phase.GREEN:
            broken_tile = type(result.tile)(
                time_tile=result.tile.time_tile - 1,
                phase=result.tile.phase,
                space_tiles=result.tile.space_tiles,
            )
            return type(result)(
                tile=broken_tile,
                local_time=result.local_time,
                local_space=result.local_space,
                statement_index=result.statement_index,
                canonical_point=result.canonical_point,
            )
        return result

    tiling.assign_canonical = sabotaged  # type: ignore[method-assign]
    with pytest.raises(ScheduleValidationError):
        check_legality_reference(tiling)


def test_batched_validation_detects_broken_schedule(jacobi_canonical):
    """Sabotaged batch assignment must be caught by the array-native checker."""
    import numpy as np

    tiling = HybridTiling(jacobi_canonical, TileSizes.of(2, 3, 6))
    original = tiling.assign_batch

    def sabotaged(points, check_unique=False):
        arrays = original(points, check_unique)
        green = arrays.phase == int(Phase.GREEN)
        return type(arrays)(
            canonical=arrays.canonical,
            statement_index=arrays.statement_index,
            time_tile=np.where(green, arrays.time_tile - 1, arrays.time_tile),
            phase=arrays.phase,
            space_tiles=arrays.space_tiles,
            local_time=arrays.local_time,
            local_space=arrays.local_space,
        )

    tiling.assign_batch = sabotaged  # type: ignore[method-assign]
    tiling._schedule_arrays_cache = None
    with pytest.raises(ScheduleValidationError):
        check_legality(tiling)


def test_uniformity_reports_full_and_partial_tiles(jacobi_tiling):
    full, partial = check_tile_uniformity(jacobi_tiling)
    assert full + partial == len(jacobi_tiling.group_instances_by_tile())
    assert partial > 0
    assert check_coverage(jacobi_tiling) == jacobi_tiling.canonical.program.stencil_updates()
