"""Unit tests for the dependence cone and the hexagonal tile shape."""

from fractions import Fraction

import pytest

from repro.tiling.cone import DependenceCone
from repro.tiling.hexagon import HexagonalTileShape, minimal_width


def test_cone_from_symmetric_stencil():
    cone = DependenceCone.from_distance_vectors([(1, 1), (1, -1), (1, 0)])
    assert cone.delta0 == 1
    assert cone.delta1 == 1
    assert not cone.is_pointwise


def test_cone_paper_example():
    """Section 3.3.2: A[t][i] = f(A[t-2][i-2], A[t-1][i+2]) gives δ0=1, δ1=2."""
    cone = DependenceCone.from_distance_vectors([(1, -2), (2, 2)])
    assert cone.delta0 == 1
    assert cone.delta1 == 2


def test_cone_lp_agrees_with_direct_computation():
    vectors = [(1, -2), (2, 2), (3, 1), (2, -3)]
    direct = DependenceCone.from_distance_vectors(vectors)
    via_lp = DependenceCone.from_distance_vectors_lp(vectors)
    assert direct.delta0 == via_lp.delta0
    assert direct.delta1 == via_lp.delta1


def test_cone_fractional_slopes():
    cone = DependenceCone.from_distance_vectors([(2, 1), (2, -1)])
    assert cone.delta0 == Fraction(1, 2)
    assert cone.delta1 == Fraction(1, 2)


def test_cone_rejects_invalid_distances():
    with pytest.raises(ValueError):
        DependenceCone.from_distance_vectors([(0, 1)])
    with pytest.raises(ValueError):
        DependenceCone.from_distance_vectors([])
    with pytest.raises(ValueError):
        DependenceCone(Fraction(-1), Fraction(0))


def test_cone_contains_distance():
    cone = DependenceCone(Fraction(1), Fraction(2))
    assert cone.contains_distance(1, 1)
    assert cone.contains_distance(1, -2)
    assert not cone.contains_distance(1, 2)
    assert not cone.contains_distance(0, 0)


def test_minimal_width_paper_example():
    """The paper derives w0 >= 1 for δ0=1, δ1=2, h=2."""
    assert minimal_width(Fraction(1), Fraction(2), 2) == 1
    assert minimal_width(Fraction(1), Fraction(1), 2) == 0


def test_figure4_tile_shape():
    """Figure 4: h=2, w0=3, unit slopes."""
    shape = HexagonalTileShape(DependenceCone(Fraction(1), Fraction(1)), 2, 3)
    assert shape.time_period == 6
    assert shape.space_period == 12
    assert shape.count() == 36
    assert shape.peak_width() == 4          # w0 + 1
    assert shape.max_width() == 8           # w0 + 1 + ⌊δ0h⌋ + ⌊δ1h⌋
    assert shape.row_width(0) == 4
    assert shape.row_width(2) == 8


def test_tile_points_satisfy_constraints():
    shape = HexagonalTileShape(DependenceCone(Fraction(1), Fraction(2)), 2, 1)
    points = list(shape.points())
    assert len(points) == shape.count()
    for a, b in points:
        assert shape.contains(a, b)
        assert 0 <= a <= 2 * shape.height + 1


def test_width_below_minimum_rejected():
    with pytest.raises(ValueError):
        HexagonalTileShape(DependenceCone(Fraction(1), Fraction(2)), 2, 0)


def test_peak_width_is_adjustable():
    """Unlike diamond tiles, the peak width scales with w0 (Section 2)."""
    cone = DependenceCone(Fraction(1), Fraction(1))
    narrow = HexagonalTileShape(cone, 2, 1)
    wide = HexagonalTileShape(cone, 2, 7)
    assert wide.peak_width() > narrow.peak_width()
    assert wide.peak_width() == 8


def test_render_ascii_shape():
    shape = HexagonalTileShape(DependenceCone(Fraction(1), Fraction(1)), 1, 2)
    art = shape.render()
    assert art.count("#") == shape.count()


def test_pointwise_cone_gives_rectangles():
    shape = HexagonalTileShape(DependenceCone(Fraction(0), Fraction(0)), 2, 3)
    widths = {shape.row_width(a) for a in range(shape.time_period)}
    assert widths == {4}
    assert shape.count() == 6 * 4
