"""Unit tests for tile-size selection (§3.7) and the diamond-tiling comparison."""

import pytest

from repro.model.preprocess import canonicalize
from repro.stencils import get_stencil
from repro.tiling.diamond import DiamondTiling
from repro.tiling.hybrid import TileSizes
from repro.tiling.tile_size import TileSizeModel, select_tile_sizes


@pytest.fixture(scope="module")
def heat3d_canonical():
    return canonicalize(get_stencil("heat_3d", sizes=(64, 64, 64), steps=16))


def test_iteration_count_matches_closed_form(heat3d_canonical):
    model = TileSizeModel(heat3d_canonical)
    for sizes in [TileSizes.of(2, 7, 10, 32), TileSizes.of(1, 3, 8, 16)]:
        assert model.iterations(sizes) == model.closed_form_iterations_3d(sizes)


def test_closed_form_guard_rails(heat3d_canonical):
    model = TileSizeModel(heat3d_canonical)
    with pytest.raises(ValueError):
        model.closed_form_iterations_3d(TileSizes.of(2, 7, 10))
    model_2d = TileSizeModel(canonicalize(get_stencil("heat_2d", sizes=(64, 64), steps=8)))
    with pytest.raises(ValueError):
        model_2d.closed_form_iterations_3d(TileSizes.of(2, 7, 10))


def test_paper_configuration_fits_shared_memory(heat3d_canonical):
    """The Table 4 configuration (h=2, w=(7,10,32)) must fit in 48 KB."""
    model = TileSizeModel(heat3d_canonical)
    sizes = TileSizes.of(2, 7, 10, 32)
    assert model.shared_memory_bytes(sizes) <= 48 * 1024
    estimate = model.estimate(sizes)
    assert estimate.load_to_compute < 1.0   # time tiling pays off


def test_inter_tile_reuse_reduces_loads(heat3d_canonical):
    model = TileSizeModel(heat3d_canonical)
    sizes = TileSizes.of(2, 7, 10, 32)
    with_reuse = model.footprint_elements(sizes, inter_tile_reuse=True)
    without = model.footprint_elements(sizes, inter_tile_reuse=False)
    assert with_reuse < without


def test_larger_tiles_improve_load_to_compute(heat3d_canonical):
    model = TileSizeModel(heat3d_canonical)
    small = model.estimate(TileSizes.of(1, 1, 2, 32))
    large = model.estimate(TileSizes.of(2, 7, 10, 32))
    assert large.load_to_compute < small.load_to_compute


def test_tile_size_search_respects_constraints(heat3d_canonical):
    best = select_tile_sizes(heat3d_canonical, shared_memory_limit=48 * 1024)
    assert best.shared_memory_bytes <= 48 * 1024
    assert best.sizes.widths[-1] % 32 == 0
    model = TileSizeModel(heat3d_canonical)
    assert best.sizes.w0 >= model.cone.delta0  # width satisfies condition (1)


def test_tile_size_search_2d():
    canonical = canonicalize(get_stencil("heat_2d", sizes=(256, 256), steps=32))
    best = select_tile_sizes(canonical, shared_memory_limit=48 * 1024)
    assert best.iterations > 0
    assert best.sizes.widths[-1] % 32 == 0


def test_tile_size_search_infeasible_limit(heat3d_canonical):
    with pytest.raises(ValueError):
        select_tile_sizes(heat3d_canonical, shared_memory_limit=64)


# -- diamond tiling -----------------------------------------------------------------------


def test_diamond_tiles_have_varying_point_counts():
    """The contrast the paper draws in Section 2: diamond tile counts vary."""
    tiling = DiamondTiling(5)
    counts = set(tiling.interior_tile_counts(40, 40))
    assert len(counts) > 1

    # Hexagonal full tiles, by construction, all have the same count — checked
    # in test_hex_schedule/test_properties; here we just confirm the diamond
    # peak is narrow and not adjustable.
    assert tiling.peak_width() <= 2


def test_diamond_assignment_and_wavefront():
    tiling = DiamondTiling(4)
    assignment = tiling.assign(3, 5)
    assert tiling.wavefront(assignment) == assignment.wave - assignment.position


def test_diamond_legality_check():
    tiling = DiamondTiling(4)
    assert tiling.legality_ok([(1, 1), (1, -1)])
    assert not tiling.legality_ok([(1, 2)])
    assert not tiling.legality_ok([(0, 1)])


def test_diamond_requires_unit_slopes():
    from repro.tiling.cone import DependenceCone
    from fractions import Fraction

    with pytest.raises(ValueError):
        DiamondTiling(4, DependenceCone(Fraction(2), Fraction(1)))
    with pytest.raises(ValueError):
        DiamondTiling(0)
