"""Property-based tests (hypothesis) for the core tiling invariants.

These are the paper's correctness claims, checked over randomly drawn
dependence cones, tile sizes and windows of the iteration space:

* the two phases partition the plane (every point in exactly one hexagon);
* the schedule is legal for every dependence inside the cone;
* all full tiles contain the same number of integer points;
* the tile shape point count matches the closed form of Section 3.7;
* the classical tiling's skew keeps dependences within non-decreasing tiles.
"""

from __future__ import annotations

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.tiling.classical import ClassicalTiling
from repro.tiling.cone import DependenceCone
from repro.tiling.hex_schedule import HexagonalSchedule
from repro.tiling.hexagon import HexagonalTileShape, minimal_width


# Strategy: dependence cones from small distance-vector sets.
@st.composite
def cones_and_distances(draw):
    n_vectors = draw(st.integers(min_value=1, max_value=4))
    distances = []
    for _ in range(n_vectors):
        dt = draw(st.integers(min_value=1, max_value=3))
        ds = draw(st.integers(min_value=-3, max_value=3))
        distances.append((dt, ds))
    cone = DependenceCone.from_distance_vectors(distances)
    return cone, distances


@st.composite
def shapes(draw):
    cone, distances = draw(cones_and_distances())
    height = draw(st.integers(min_value=0, max_value=4))
    extra = draw(st.integers(min_value=0, max_value=4))
    width = minimal_width(cone.delta0, cone.delta1, height) + extra
    return HexagonalTileShape(cone, height, width), distances


@settings(max_examples=30, deadline=None)
@given(shapes())
def test_phases_partition_the_plane(shape_and_distances):
    shape, _ = shape_and_distances
    schedule = HexagonalSchedule(shape)
    for l in range(0, 3 * shape.time_period):
        for s0 in range(-2 * shape.space_period, 2 * shape.space_period):
            schedule.assign(l, s0, check_unique=True)


@settings(max_examples=30, deadline=None)
@given(shapes())
def test_schedule_is_legal_for_all_cone_dependences(shape_and_distances):
    shape, distances = shape_and_distances
    schedule = HexagonalSchedule(shape)
    start = max(dt for dt, _ in distances)
    for l in range(start, start + 2 * shape.time_period):
        for s0 in range(-shape.space_period, shape.space_period):
            sink = schedule.assign(l, s0)
            for dt, ds in distances:
                source = schedule.assign(l - dt, s0 - ds)
                source_key = (source.time_tile, int(source.phase))
                sink_key = (sink.time_tile, int(sink.phase))
                assert source_key <= sink_key
                if source_key == sink_key:
                    assert source.space_tile == sink.space_tile
                    assert source.local_time < sink.local_time


@settings(max_examples=30, deadline=None)
@given(shapes())
def test_all_interior_tiles_have_identical_counts(shape_and_distances):
    shape, _ = shape_and_distances
    schedule = HexagonalSchedule(shape)
    counts: dict[tuple, int] = {}
    l_extent = 4 * shape.time_period
    s_extent = 4 * shape.space_period
    for l in range(l_extent):
        for s0 in range(s_extent):
            a = schedule.assign(l, s0)
            counts[(a.phase, a.time_tile, a.space_tile)] = (
                counts.get((a.phase, a.time_tile, a.space_tile), 0) + 1
            )
    # A tile is interior when every one of its points lies inside the window
    # we enumerated (tiles "lean" with the drift term, so this is checked
    # against the actual tile extent rather than the tile indices).
    interior = []
    for (phase, t, s), count in counts.items():
        points = list(schedule.tile_points(phase, t, s))
        if all(0 <= l < l_extent and 0 <= s0 < s_extent for l, s0 in points):
            interior.append(count)
    if interior:
        assert set(interior) == {shape.count()}


@settings(max_examples=50, deadline=None)
@given(
    height=st.integers(min_value=0, max_value=6),
    w0=st.integers(min_value=0, max_value=8),
)
def test_unit_slope_point_count_closed_form(height, w0):
    """For δ0 = δ1 = 1 the hexagon holds 2(1 + 2h + h² + w0(h+1)) points (§3.7)."""
    shape = HexagonalTileShape(DependenceCone(Fraction(1), Fraction(1)), height, w0)
    assert shape.count() == 2 * (1 + 2 * height + height * height + w0 * (height + 1))


@settings(max_examples=50, deadline=None)
@given(
    numerator=st.integers(min_value=0, max_value=3),
    denominator=st.integers(min_value=1, max_value=3),
    width=st.integers(min_value=1, max_value=8),
    period=st.sampled_from([2, 4, 6, 8]),
    s=st.integers(min_value=-30, max_value=30),
    u=st.integers(min_value=0, max_value=7),
    dl=st.integers(min_value=1, max_value=3),
)
def test_classical_tiling_never_moves_dependences_backwards(
    numerator, denominator, width, period, s, u, dl
):
    delta1 = Fraction(numerator, denominator)
    tiling = ClassicalTiling("s1", delta1, width, period)
    source = tiling.tile_index(s, u)
    # Any dependence within the cone: ds >= -delta1 * dl.
    ds_min = -int(delta1 * dl)
    for ds in range(ds_min, 3):
        sink = tiling.tile_index(s + ds, u + dl)
        assert sink >= source


@settings(max_examples=50, deadline=None)
@given(
    s=st.integers(min_value=-50, max_value=50),
    u=st.integers(min_value=0, max_value=7),
    width=st.integers(min_value=1, max_value=9),
)
def test_classical_local_coordinate_is_consistent(s, u, width):
    tiling = ClassicalTiling("s1", Fraction(1), width, 8)
    index = tiling.tile_index(s, u)
    local = tiling.local_coordinate(s, u)
    assert 0 <= local < width
    assert index * width + local == s + u
