"""Equivalence of the array-native scheduling core and the object-based path.

The tentpole invariant: for every stencil in the library (at test-scale
problem sizes), the batched NumPy implementation of assignment, execution
order, tile grouping and validation produces *identical* results to the
retained object-based reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.preprocess import canonicalize
from repro.stencils import get_stencil, list_stencils
from repro.tiling.hybrid import HybridTiling, TileSizes
from repro.tiling.schedule_arrays import (
    lexicographic_less,
    run_boundaries,
)
from repro.tiling.validate import (
    check_coverage,
    check_coverage_reference,
    check_legality,
    check_legality_reference,
    check_tile_uniformity,
    check_tile_uniformity_reference,
    validate_hybrid_tiling,
)

# Small instances per dimensionality: enough points to produce full and
# partial tiles, small enough for the exhaustive object-based reference.
_SMALL = {1: ((48,), 8), 2: ((14, 12), 6), 3: ((8, 8, 8), 4)}


def _tiling_for(name: str) -> HybridTiling:
    program_full = get_stencil(name)
    sizes, steps = _SMALL[len(program_full.sizes)]
    program = get_stencil(name, sizes=sizes, steps=steps)
    canonical = canonicalize(program)
    height = 1 if canonical.num_statements == 1 else canonical.num_statements - 1
    tiling = HybridTiling(
        canonical,
        TileSizes.of(
            height,
            *[3 + axis for axis in range(len(sizes))],
        ),
        require_statement_alignment=False,
    )
    return tiling


@pytest.mark.parametrize("name", list_stencils())
def test_assign_batch_matches_scalar_assignment(name):
    tiling = _tiling_for(name)
    arrays = tiling.schedule_arrays()
    for row, (_, canonical_point) in enumerate(tiling.canonical.instances()):
        point = tiling.assign_canonical(canonical_point)
        assert tuple(arrays.canonical[row]) == canonical_point
        assert int(arrays.time_tile[row]) == point.tile.time_tile
        assert int(arrays.phase[row]) == int(point.tile.phase)
        assert tuple(arrays.space_tiles[row]) == point.tile.space_tiles
        assert int(arrays.local_time[row]) == point.local_time
        assert tuple(arrays.local_space[row]) == point.local_space
        assert int(arrays.statement_index[row]) == point.statement_index


@pytest.mark.parametrize("name", list_stencils())
def test_execution_order_matches_reference(name):
    tiling = _tiling_for(name)
    assert tiling.execution_order() == tiling.execution_order_reference()


@pytest.mark.parametrize("name", list_stencils())
def test_tile_grouping_matches_reference(name):
    tiling = _tiling_for(name)
    assert tiling.group_instances_by_tile() == tiling.group_instances_by_tile_reference()


@pytest.mark.parametrize("name", list_stencils())
def test_validator_verdicts_match_reference(name):
    tiling = _tiling_for(name)
    batched = validate_hybrid_tiling(tiling)
    reference = validate_hybrid_tiling(tiling, reference=True)
    assert batched == reference
    assert batched.ok
    assert check_coverage(tiling) == check_coverage_reference(tiling)
    assert check_legality(tiling) == check_legality_reference(tiling)
    assert check_tile_uniformity(tiling) == check_tile_uniformity_reference(tiling)


def test_hexagon_row_bounds_match_fraction_reference():
    """The batched integer row bounds equal the exact Fraction evaluation."""
    from fractions import Fraction

    from repro.tiling.cone import DependenceCone
    from repro.tiling.hexagon import HexagonalTileShape, minimal_width

    cones = [
        DependenceCone(Fraction(1), Fraction(1)),
        DependenceCone(Fraction(1, 2), Fraction(2)),
        DependenceCone(Fraction(2, 3), Fraction(1, 3)),
        DependenceCone(Fraction(0), Fraction(1)),
    ]
    for cone in cones:
        for height in range(0, 5):
            width = minimal_width(cone.delta0, cone.delta1, height) + 1
            shape = HexagonalTileShape(cone, height, width)
            for a in range(0, 2 * height + 2):
                assert shape.row_range(a) == shape._compute_row_range(a)


def test_run_boundaries_and_lexicographic_less():
    keys = (
        np.array([0, 0, 0, 1, 1, 2]),
        np.array([0, 0, 1, 1, 1, 0]),
    )
    assert run_boundaries(*keys).tolist() == [0, 2, 3, 5]
    left = (np.array([0, 1, 1]), np.array([5, 0, 1]))
    right = (np.array([1, 1, 1]), np.array([0, 0, 1]))
    assert lexicographic_less(left, right).tolist() == [True, False, False]
