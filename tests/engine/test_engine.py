"""The parallel execution engine: determinism, ordering, cache sharing."""

from __future__ import annotations

import json

import pytest

from repro.bench import BenchOptions, run_bench
from repro.cache import DiskCache
from repro.engine import map_ordered, resolve_jobs


def _square(x: int) -> int:
    return x * x


def _flaky(x: int) -> int:
    if x == 3:
        raise RuntimeError("boom")
    return x


def test_resolve_jobs():
    assert resolve_jobs(1) == 1
    assert resolve_jobs(4) == 4
    assert resolve_jobs(None) >= 1
    assert resolve_jobs(0) >= 1


def test_map_ordered_serial_matches_comprehension():
    items = list(range(10))
    assert map_ordered(_square, items, jobs=1) == [x * x for x in items]


def test_map_ordered_parallel_preserves_input_order():
    items = list(range(20))
    assert map_ordered(_square, items, jobs=2) == [x * x for x in items]


def test_map_ordered_propagates_worker_exceptions():
    with pytest.raises(RuntimeError, match="boom"):
        map_ordered(_flaky, [1, 2, 3, 4], jobs=2)
    with pytest.raises(RuntimeError, match="boom"):
        map_ordered(_flaky, [1, 2, 3, 4], jobs=1)


def _deterministic_view(report: dict) -> str:
    """A report with every measured (non-deterministic) field removed."""
    clone = json.loads(json.dumps(report))
    clone.pop("created", None)
    clone.pop("environment", None)
    clone.pop("disk_cache", None)  # depends on the cache's prior state
    for suite in clone["suites"].values():
        for entry in suite["stencils"].values():
            entry.pop("wall_s", None)
            entry.pop("stages", None)
            entry.pop("timings", None)
    return json.dumps(clone, sort_keys=True)


@pytest.mark.parametrize("suite", ["compile", "simulate"])
def test_bench_jobs_produce_identical_reports(tmp_path, suite):
    """--jobs N and --jobs 1 agree on everything except wall-clock noise."""
    cache = DiskCache(tmp_path / "hexcc")
    stencils = ("jacobi_1d", "jacobi_2d")
    serial = run_bench(
        BenchOptions(
            suites=(suite,), repeats=1, stencils=stencils, jobs=1, disk_cache=cache
        )
    )
    parallel = run_bench(
        BenchOptions(
            suites=(suite,), repeats=1, stencils=stencils, jobs=2, disk_cache=cache
        )
    )
    assert _deterministic_view(serial) == _deterministic_view(parallel)
    # Deterministic ordering: stencils appear in request order both times.
    assert list(serial["suites"][suite]["stencils"]) == list(stencils)
    assert list(parallel["suites"][suite]["stencils"]) == list(stencils)


def test_bench_warm_cache_rerun_skips_recompilation(tmp_path):
    cache_root = tmp_path / "hexcc"
    options = dict(
        suites=("compile",), repeats=1, stencils=("jacobi_1d",)
    )
    cold = run_bench(BenchOptions(**options, disk_cache=DiskCache(cache_root)))
    assert cold["disk_cache"]["stores"] >= 1
    warm = run_bench(BenchOptions(**options, disk_cache=DiskCache(cache_root)))
    assert warm["disk_cache"]["misses"] == 0
    assert warm["disk_cache"]["stores"] == 0
    assert warm["disk_cache"]["hits"] >= 1
    assert _deterministic_view(cold) == _deterministic_view(warm)


def test_workers_share_the_disk_cache(tmp_path):
    """A parallel bench run leaves entries any later process can reuse."""
    cache_root = tmp_path / "hexcc"
    run_bench(
        BenchOptions(
            suites=("compile",),
            repeats=1,
            stencils=("jacobi_1d", "jacobi_2d"),
            jobs=2,
            disk_cache=DiskCache(cache_root),
        )
    )
    reader = DiskCache(cache_root)
    assert reader.stats().entries >= 2
    from repro.compiler import HybridCompiler
    from repro.stencils import get_stencil

    compiler = HybridCompiler(disk_cache=reader)
    compiler.compile(get_stencil("jacobi_1d"))
    # Artifacts are cached at pass granularity: one compile fetches the
    # canonicalize, tiling, memory and codegen artifacts.
    assert reader.hits == 4 and reader.misses == 0


def test_experiment_sweeps_are_jobs_invariant(tmp_path):
    from repro.experiments import run_ablation, run_counter_ablation

    cache = DiskCache(tmp_path / "hexcc")
    serial = run_ablation(jobs=1, disk_cache=cache)
    parallel = run_ablation(jobs=2, disk_cache=cache)
    assert serial == parallel
    assert run_counter_ablation(jobs=1, disk_cache=cache) == run_counter_ablation(
        jobs=2, disk_cache=cache
    )
