"""End-to-end integration tests of the hybrid compiler pipeline."""

import pytest

from repro.compiler import HybridCompiler
from repro.gpu.device import GTX470, NVS5200M
from repro.api import OptimizationConfig, table4_configurations
from repro.stencils import get_stencil, paper_benchmarks
from repro.tiling.hybrid import TileSizes


def test_compile_validate_simulate_jacobi():
    compiler = HybridCompiler()
    program = get_stencil("jacobi_2d", sizes=(20, 18), steps=10)
    compiled = compiler.compile(program, tile_sizes=TileSizes.of(2, 3, 6))
    assert compiled.validate().ok
    result = compiled.simulate_and_check()
    assert result.tiles_executed > 0
    assert "hybrid tiling" in compiled.describe()
    assert "__global__" in compiled.cuda_source


def test_compile_with_automatic_tile_size_selection():
    compiler = HybridCompiler()
    program = get_stencil("heat_2d", sizes=(256, 256), steps=16)
    compiled = compiler.compile(program)
    assert compiled.tile_cost is not None
    assert compiled.tiling.sizes == compiled.tile_cost.sizes
    assert compiled.tile_cost.shared_memory_bytes <= GTX470.shared_memory_per_sm


@pytest.mark.parametrize("name", paper_benchmarks())
def test_all_paper_benchmarks_compile_at_small_scale(name):
    """Every benchmark compiles, validates and simulates at a reduced size."""
    compiler = HybridCompiler()
    if name.endswith("3d"):
        program = get_stencil(name, sizes=(10, 9, 8), steps=4)
        sizes = TileSizes.of(1, 2, 3, 4)
    elif name == "fdtd_2d":
        program = get_stencil(name, sizes=(14, 12), steps=6)
        sizes = TileSizes.of(2, 2, 5)
    else:
        program = get_stencil(name, sizes=(16, 14), steps=6)
        sizes = TileSizes.of(2, 2, 5)
    compiled = compiler.compile(program, tile_sizes=sizes)
    assert compiled.validate().ok
    compiled.simulate_and_check()


def test_performance_estimation_runs_for_all_configurations():
    compiler = HybridCompiler()
    program = get_stencil("heat_3d")
    previous_gflops = None
    for label, config in table4_configurations().items():
        compiled = compiler.compile(
            program, tile_sizes=TileSizes.of(2, 7, 10, 32), config=config
        )
        report = compiled.estimate_performance()
        assert report.gflops > 0, label
        assert report.total_time_s > 0
        previous_gflops = report.gflops


def test_best_configuration_beats_worst_on_bandwidth_starved_device():
    """Configuration (f) must beat (b) on the NVS 5200M, as in Table 4."""
    compiler = HybridCompiler(NVS5200M)
    program = get_stencil("heat_3d")
    sizes = TileSizes.of(2, 7, 10, 32)
    baseline = compiler.compile(program, tile_sizes=sizes, config=OptimizationConfig.config_b())
    best = compiler.compile(program, tile_sizes=sizes, config=OptimizationConfig.config_f())
    assert (
        best.estimate_performance(NVS5200M).gflops
        > baseline.estimate_performance(NVS5200M).gflops
    )


def test_gtx470_faster_than_nvs5200():
    compiler = HybridCompiler()
    program = get_stencil("heat_2d")
    compiled = compiler.compile(program, tile_sizes=TileSizes.of(3, 4, 64))
    fast = compiled.estimate_performance(GTX470)
    slow = compiled.estimate_performance(NVS5200M)
    assert fast.gstencils_per_second > 2 * slow.gstencils_per_second


def test_execution_estimate_counters_are_consistent():
    compiler = HybridCompiler()
    program = get_stencil("heat_3d")
    compiled = compiler.compile(program, tile_sizes=TileSizes.of(2, 7, 10, 32))
    estimate = compiled.execution_estimate()
    counters = estimate.counters
    assert counters.stencil_updates == program.stencil_updates()
    assert counters.flops == program.flops_total()
    assert counters.gld_efficiency <= 1.0
    assert counters.kernel_launches == 2 * estimate.tile_counts.time_tiles
    assert estimate.tile_counts.total_tiles > 0


def test_analytic_and_simulated_counters_agree_on_small_problem():
    """Cross-check the analytic profiler against the exact simulator counts."""
    compiler = HybridCompiler()
    program = get_stencil("jacobi_2d", sizes=(40, 38), steps=24)
    compiled = compiler.compile(program, tile_sizes=TileSizes.of(3, 3, 8))
    analytic = compiled.execution_estimate().counters
    simulated = compiled.simulate().counters
    assert analytic.stencil_updates == simulated.stencil_updates
    assert analytic.flops == simulated.flops
    # The analytic global-load count over-approximates boundary tiles but must
    # stay within a factor of two of the exact count.
    ratio = analytic.gld_instructions / simulated.gld_instructions
    assert 0.5 < ratio < 3.0
