"""Fault-injection harness: every illegal schedule mutant must be caught.

The corpus of :mod:`repro.verify.faults` perturbs the hybrid schedule model
in ways that are known-illegal (wrong phase order, dropped barrier, broken
hexagon geometry, missing skew, ...).  A verifier that misses any of them
has no teeth; this suite pins the kill rate at 100% and the diagnosis at
the exact ordering level each mutation class breaks.
"""

from __future__ import annotations

import pytest

from repro.model.preprocess import canonicalize
from repro.stencils import get_stencil
from repro.tiling.hybrid import HybridTiling, TileSizes
from repro.verify import (
    HybridScheduleModel,
    get_mutation,
    mutation_corpus,
    verify_hybrid,
)


def _model(name, sizes, steps, h, widths):
    canonical = canonicalize(get_stencil(name, sizes=sizes, steps=steps))
    tiling = HybridTiling(canonical, TileSizes(h, widths))
    return canonical, HybridScheduleModel.from_tiling(tiling)


#: (stencil, sizes, steps, h, widths, inner_dims) targets for the harness.
TARGETS = {
    "jacobi_1d": ((24,), 6, 1, (4,), 0),
    "jacobi_2d": ((12, 12), 4, 1, (2, 4), 1),
    "heat_3d": ((8, 8, 8), 4, 1, (2, 4, 5), 2),
}


def _cases():
    for name, (sizes, steps, h, widths, inner) in TARGETS.items():
        for mutation in mutation_corpus(inner_dims=inner):
            yield pytest.param(
                name, sizes, steps, h, widths, mutation,
                id=f"{name}-{mutation.name}",
            )


def test_the_corpus_is_large_enough():
    assert len(mutation_corpus()) >= 12
    # Every mutation in the full corpus is reachable by name.
    for mutation in mutation_corpus():
        assert get_mutation(mutation.name) is mutation
    with pytest.raises(KeyError):
        get_mutation("no-such-mutation")


def test_corpus_filtering_drops_inner_tiling_mutants_for_1d():
    filtered = mutation_corpus(inner_dims=0)
    assert all(not m.requires_inner_dims for m in filtered)
    assert len(filtered) < len(mutation_corpus())
    assert len(filtered) >= 9


@pytest.mark.parametrize("name,sizes,steps,h,widths,mutation", _cases())
def test_every_mutant_is_killed_at_the_expected_level(
    name, sizes, steps, h, widths, mutation
):
    canonical, model = _model(name, sizes, steps, h, widths)
    # Sanity: the unmutated schedule passes, so any finding below is the
    # mutation's doing.
    assert verify_hybrid(canonical, model).ok
    verdict = verify_hybrid(canonical, mutation.apply(model))
    assert not verdict.ok, f"{mutation.name} survived on {name}"
    assert verdict.races, f"{mutation.name} produced no finding on {name}"
    first = verdict.races[0]
    assert first.level in mutation.expected_levels, (
        f"{mutation.name} on {name}: diagnosed at {first.level!r}, "
        f"expected one of {mutation.expected_levels}"
    )


def test_kill_rate_is_one_hundred_percent():
    killed = 0
    total = 0
    for name, (sizes, steps, h, widths, inner) in TARGETS.items():
        canonical, model = _model(name, sizes, steps, h, widths)
        for mutation in mutation_corpus(inner_dims=inner):
            total += 1
            if not verify_hybrid(canonical, mutation.apply(model)).ok:
                killed += 1
    assert total >= 12
    assert killed == total


# -- per-class exact diagnostics ------------------------------------------------------


def _mutant_verdict(mutation_name, target="jacobi_2d"):
    sizes, steps, h, widths, _ = TARGETS[target]
    canonical, model = _model(target, sizes, steps, h, widths)
    mutated = get_mutation(mutation_name).apply(model)
    return verify_hybrid(canonical, mutated)


def test_phase_swap_races_at_the_phase_level():
    verdict = _mutant_verdict("phase-swap")
    assert {race.level for race in verdict.races} == {"phase"}
    race = verdict.races[0]
    # The witness names the out-of-order kernel launches: the source tile
    # sits in phase 0 but is scheduled after the sink's phase-1 tile.
    assert dict(race.source.schedule)["phase"] != dict(race.sink.schedule)["phase"]
    assert "executes after" in race.message


def test_dropped_barrier_races_at_the_barrier_level():
    verdict = _mutant_verdict("dropped-barrier")
    assert {race.level for race in verdict.races} == {"barrier"}
    race = verdict.races[0]
    assert "no barrier orders local time" in race.message
    # Same tile: every outer schedule coordinate of the witness pair agrees.
    assert race.source.schedule == race.sink.schedule or dict(
        race.source.schedule
    )["T"] == dict(race.sink.schedule)["T"]


def test_flipped_tile_order_races_at_the_intra_tile_level():
    verdict = _mutant_verdict("flipped-tile-order")
    assert {race.level for race in verdict.races} == {"intra_tile"}
    assert "inner" in verdict.races[0].message


def test_shrunk_hexagon_breaks_coverage():
    for name in ("shrunk-hexagon-upper", "shrunk-hexagon-lower"):
        verdict = _mutant_verdict(name)
        assert verdict.coverage_ok is False
        assert any(race.level == "coverage" for race in verdict.races)
        assert "claimed by" in verdict.races[0].message


def test_grown_hexagon_breaks_coverage():
    verdict = _mutant_verdict("grown-hexagon")
    assert verdict.coverage_ok is False
    assert any(race.level == "coverage" for race in verdict.races)


def test_skew_mutants_race_inside_the_inner_tiles():
    for name in ("dropped-skew", "flipped-skew"):
        verdict = _mutant_verdict(name)
        assert not verdict.ok
        assert verdict.races[0].level == "intra_tile"


def test_noop_mutations_are_rejected():
    sizes, steps, h, widths, _ = TARGETS["jacobi_2d"]
    _, model = _model("jacobi_2d", sizes, steps, h, widths)
    dropped = get_mutation("dropped-skew")
    once = dropped.apply(model)
    with pytest.raises(ValueError):
        dropped.apply(once)  # skew already zero: mutation would be a no-op
