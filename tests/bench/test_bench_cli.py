"""End-to-end smoke tests of ``hexcc bench`` on one tiny stencil."""

import json

from pathlib import Path

from repro.bench.runner import BenchOptions, run_bench
from repro.bench.schema import load_report
from repro.cli import main


def test_run_bench_simulate_one_stencil():
    report = run_bench(
        BenchOptions(suites=("simulate",), quick=True, repeats=1,
                     stencils=("jacobi_1d",))
    )
    entry = report["suites"]["simulate"]["stencils"]["jacobi_1d"]
    assert entry["wall_s"]["median"] > 0
    assert entry["stages"]["validate_s"]["median"] > 0
    assert entry["counters"]["stencil_updates"] > 0
    assert entry["meta"]["tiles_executed"] > 0


def test_hexcc_bench_json_smoke(tmp_path, capsys):
    out = tmp_path / "bench_out.json"
    code = main([
        "bench", "--suite", "simulate", "--stencils", "jacobi_1d",
        "--repeats", "1", "--json", str(out),
    ])
    assert code == 0
    captured = capsys.readouterr().out
    assert "jacobi_1d" in captured
    report = load_report(out)  # validates the schema on load
    assert set(report["suites"]) == {"simulate"}
    assert "jacobi_1d" in report["suites"]["simulate"]["stencils"]


def test_hexcc_bench_per_suite_files(tmp_path):
    code = main([
        "bench", "--stencils", "jacobi_1d", "--repeats", "1",
        "--out-dir", str(tmp_path),
    ])
    assert code == 0
    for suite in ("compile", "simulate"):
        report = load_report(tmp_path / f"BENCH_{suite}.json")
        assert set(report["suites"]) == {suite}


def test_hexcc_bench_rejects_unknown_stencil(tmp_path, capsys):
    code = main(["bench", "--stencils", "no_such_stencil",
                 "--json", str(tmp_path / "x.json")])
    assert code == 2
    assert "no_such_stencil" in capsys.readouterr().err


def test_checked_in_baseline_is_schema_valid():
    baseline = Path(__file__).resolve().parents[2] / "benchmarks" / "BENCH_baseline.json"
    report = load_report(baseline)
    assert report["quick"] is True
    assert set(report["suites"]) == {"compile", "simulate"}
    # the CI gate relies on these stencils being present
    for name in ("jacobi_1d", "jacobi_2d", "heat_2d", "fdtd_2d", "laplacian_3d"):
        assert name in report["suites"]["compile"]["stencils"]
        assert name in report["suites"]["simulate"]["stencils"]


def test_baseline_counters_match_current_pipeline():
    """The deterministic counters in the baseline must match a fresh run.

    Guards against committing a stale baseline after a pipeline change: wall
    times may drift with the machine, counters may not.
    """
    baseline = json.loads(
        (Path(__file__).resolve().parents[2] / "benchmarks" / "BENCH_baseline.json")
        .read_text()
    )
    fresh = run_bench(
        BenchOptions(suites=("simulate",), quick=True, repeats=1,
                     stencils=("jacobi_1d",))
    )
    old = baseline["suites"]["simulate"]["stencils"]["jacobi_1d"]["counters"]
    new = fresh["suites"]["simulate"]["stencils"]["jacobi_1d"]["counters"]
    assert old == new
