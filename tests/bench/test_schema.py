"""Schema round-trip and validation tests for the bench report format."""

import json

import pytest

from repro.bench.schema import (
    SCHEMA_VERSION,
    SchemaError,
    load_report,
    make_report,
    save_report,
    timing_entry,
    validate_report,
)


def _minimal_suites():
    return {
        "compile": {
            "jacobi_1d": {
                "wall_s": timing_entry([0.01, 0.012, 0.011]),
                "counters": {"flops": 123.0},
                "meta": {"sizes": [4096], "steps": 256},
            }
        }
    }


def test_round_trip(tmp_path):
    report = make_report(_minimal_suites(), quick=True, repeats=3)
    path = save_report(report, tmp_path / "BENCH_compile.json")
    loaded = load_report(path)
    assert loaded == json.loads(json.dumps(report))
    assert loaded["schema_version"] == SCHEMA_VERSION
    assert loaded["kind"] == "hexcc-bench"
    assert loaded["quick"] is True
    assert loaded["repeats"] == 3
    entry = loaded["suites"]["compile"]["stencils"]["jacobi_1d"]
    assert entry["wall_s"]["median"] == pytest.approx(0.011)
    assert entry["wall_s"]["min"] == pytest.approx(0.01)
    assert entry["counters"]["flops"] == 123.0


def test_environment_metadata_recorded():
    report = make_report(_minimal_suites(), quick=False, repeats=5)
    environment = report["environment"]
    for key in ("python", "platform", "numpy", "repro", "machine"):
        assert key in environment and environment[key]
    assert report["created"]  # ISO timestamp


def test_timing_entry_requires_runs():
    with pytest.raises(SchemaError):
        timing_entry([])


@pytest.mark.parametrize(
    "mutate",
    [
        lambda r: r.update(kind="other"),
        lambda r: r.update(schema_version=SCHEMA_VERSION + 1),
        lambda r: r.update(suites={}),
        lambda r: r["suites"].update(compile={}),
        lambda r: r["suites"]["compile"]["stencils"].update(bad={}),
        lambda r: r["suites"]["compile"]["stencils"]["jacobi_1d"].update(wall_s={}),
        lambda r: r["suites"]["compile"]["stencils"]["jacobi_1d"].update(
            wall_s={"median": "fast"}
        ),
    ],
)
def test_validate_rejects_malformed(mutate):
    report = make_report(_minimal_suites(), quick=True, repeats=1)
    mutate(report)
    with pytest.raises(SchemaError):
        validate_report(report)


def test_load_rejects_invalid_json(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    with pytest.raises(SchemaError):
        load_report(path)
