"""Comparator tests: regression, improvement, missing-key and CLI behaviour."""

import json

import pytest

from repro.bench.compare import compare_reports, main, parse_threshold
from repro.bench.schema import make_report, timing_entry


def report_with(median, counters=None, stencil="heat_2d", suite="simulate"):
    return make_report(
        {
            suite: {
                stencil: {
                    "wall_s": timing_entry([median]),
                    "counters": counters or {"flops": 1000.0},
                    "meta": {},
                }
            }
        },
        quick=True,
        repeats=1,
    )


def test_identical_reports_ok():
    baseline = report_with(0.1)
    result = compare_reports(baseline, baseline)
    assert result.ok
    assert not result.regressions and not result.improvements
    assert "OK" in result.summary()


def test_regression_detected_past_threshold():
    result = compare_reports(report_with(0.1), report_with(0.13), max_regression=0.25)
    assert not result.ok
    assert len(result.regressions) == 1
    delta = result.regressions[0]
    assert delta.stencil == "heat_2d"
    assert delta.ratio == pytest.approx(1.3)
    assert "REGRESSION" in result.summary()


def test_slowdown_within_threshold_ok():
    result = compare_reports(report_with(0.1), report_with(0.12), max_regression=0.25)
    assert result.ok


def test_exactly_threshold_regression_fails():
    result = compare_reports(
        report_with(0.1), report_with(0.1 * 1.25), max_regression=0.25
    )
    assert not result.ok


def test_zero_threshold_identical_medians_ok():
    result = compare_reports(report_with(0.1), report_with(0.1), max_regression=0.0)
    assert result.ok


def test_improvement_reported_not_failing():
    result = compare_reports(report_with(0.1), report_with(0.05), max_regression=0.25)
    assert result.ok
    assert len(result.improvements) == 1


def test_noise_floor_suppresses_fast_entries():
    # 2x slower, but the baseline is below the 1 ms noise floor.
    result = compare_reports(report_with(0.0002), report_with(0.0004))
    assert result.ok


def test_missing_stencil_fails():
    baseline = make_report(
        {
            "simulate": {
                "heat_2d": {"wall_s": timing_entry([0.1]), "counters": {}, "meta": {}},
                "jacobi_2d": {"wall_s": timing_entry([0.1]), "counters": {}, "meta": {}},
            }
        },
        quick=True,
        repeats=1,
    )
    result = compare_reports(baseline, report_with(0.1))
    assert not result.ok
    assert result.missing == ["simulate/jacobi_2d"]


def test_added_stencil_reported_ok():
    new = make_report(
        {
            "simulate": {
                "heat_2d": {"wall_s": timing_entry([0.1]), "counters": {}, "meta": {}},
                "extra": {"wall_s": timing_entry([0.1]), "counters": {}, "meta": {}},
            }
        },
        quick=True,
        repeats=1,
    )
    result = compare_reports(report_with(0.1, counters={}), new)
    assert result.ok
    assert result.added == ["simulate/extra"]


def test_counter_drift_reported():
    result = compare_reports(
        report_with(0.1, counters={"flops": 1000.0}),
        report_with(0.1, counters={"flops": 1001.0}),
    )
    assert result.ok  # informational by default
    assert len(result.counter_drifts) == 1
    assert result.counter_drifts[0].metric == "counters.flops"


@pytest.mark.parametrize(
    "text,expected", [("25%", 0.25), ("0.25", 0.25), (" 10% ", 0.10), ("1.5", 1.5)]
)
def test_parse_threshold(text, expected):
    assert parse_threshold(text) == pytest.approx(expected)


def _write(tmp_path, name, report):
    path = tmp_path / name
    path.write_text(json.dumps(report))
    return str(path)


def test_cli_exit_codes(tmp_path, capsys):
    good = _write(tmp_path, "good.json", report_with(0.1))
    bad = _write(tmp_path, "bad.json", report_with(0.2))
    assert main([good, good, "--max-regression", "25%"]) == 0
    assert main([good, bad, "--max-regression", "25%"]) == 1
    assert "REGRESSION" in capsys.readouterr().out
    # a generous threshold lets the 2x slowdown through
    assert main([good, bad, "--max-regression", "150%"]) == 0


def test_cli_strict_counters(tmp_path):
    old = _write(tmp_path, "old.json", report_with(0.1, counters={"flops": 1.0}))
    new = _write(tmp_path, "new.json", report_with(0.1, counters={"flops": 2.0}))
    assert main([old, new]) == 0
    assert main([old, new, "--strict-counters"]) == 1


def test_cli_rejects_malformed_report(tmp_path):
    good = _write(tmp_path, "good.json", report_with(0.1))
    broken = tmp_path / "broken.json"
    broken.write_text("{}")
    assert main([good, str(broken)]) == 2


# -- regression attribution ----------------------------------------------------------


def report_with_passes(pass_ms, stencil="jacobi_1d"):
    """A compile-suite report with per-pass timings (ms) and provenance."""
    total_s = sum(pass_ms.values()) / 1e3
    return make_report(
        {
            "compile": {
                stencil: {
                    "wall_s": timing_entry([total_s]),
                    "counters": {},
                    "meta": {},
                    "timings": {
                        f"pass.{name}": timing_entry([ms / 1e3])
                        for name, ms in pass_ms.items()
                    },
                    "sources": {f"pass.{name}": {"computed": 1} for name in pass_ms},
                }
            }
        },
        quick=True,
        repeats=1,
    )


def test_regression_is_attributed_to_the_guilty_pass(tmp_path, capsys):
    baseline = report_with_passes({"parse": 1.0, "tiling": 4.0, "codegen": 5.0})
    slower = report_with_passes({"parse": 1.0, "tiling": 44.0, "codegen": 5.0})
    result = compare_reports(baseline, slower, max_regression=0.25)
    assert not result.ok
    (delta,) = result.regressions
    assert delta.attribution is not None
    assert delta.attribution.guilty == "tiling"
    assert delta.attribution.guilty_share > 0.5
    summary = result.summary()
    assert "guilty pass: tiling" in summary
    # ...and the CLI gate prints the same verdict on failure.
    old = _write(tmp_path, "old.json", baseline)
    new = _write(tmp_path, "new.json", slower)
    assert main([old, new, "--max-regression", "25%"]) == 1
    assert "guilty pass: tiling" in capsys.readouterr().out


def test_regression_without_pass_timings_has_no_attribution():
    result = compare_reports(report_with(0.1), report_with(0.2))
    (delta,) = result.regressions
    assert delta.attribution is None
    assert "REGRESSION" in result.summary()  # still reported, just bare


def test_cache_tier_flip_is_called_out_not_blamed():
    baseline = report_with_passes({"tiling": 0.1, "codegen": 5.0})
    baseline_entry = baseline["suites"]["compile"]["stencils"]["jacobi_1d"]
    baseline_entry["sources"]["pass.tiling"] = {"disk": 1}
    slower = report_with_passes({"tiling": 40.0, "codegen": 5.0})
    result = compare_reports(baseline, slower, max_regression=0.25)
    (delta,) = result.regressions
    assert delta.attribution.guilty is None
    assert "dominated by cache-tier change" in result.summary()
