"""Tests of the experiment harnesses (Tables 1-5, Figures 2-6)."""

import pytest

from repro.experiments import (
    PAPER_TABLE4,
    figure2_core_ptx,
    figure3_dependence_cone,
    figure4_hexagon,
    figure5_tiling_pattern,
    figure6_schedule,
    format_comparison,
    format_table3,
    format_table4,
    format_table5,
    run_ablation,
    run_comparison,
    run_counter_ablation,
    table3_characteristics,
)
from repro.gpu.device import GTX470, NVS5200M
from repro.api import OptimizationConfig, table4_configurations
from repro.stencils import paper_benchmarks


def test_table3_rows_cover_all_benchmarks():
    rows = table3_characteristics()
    benchmarks = {row["benchmark"] for row in rows}
    assert benchmarks == set(paper_benchmarks())
    assert len(rows) == 9   # fdtd contributes three statements
    text = format_table3(rows)
    assert "heat_3d" in text and "27" in text


@pytest.fixture(scope="module")
def gtx_comparison():
    return run_comparison(GTX470)


def test_comparison_produces_all_tools(gtx_comparison):
    tools = {row.tool for row in gtx_comparison}
    assert tools == {"ppcg", "par4all", "overtile", "hybrid"}
    benchmarks = {row.benchmark for row in gtx_comparison}
    assert benchmarks == set(paper_benchmarks())


def test_hybrid_beats_ppcg_everywhere(gtx_comparison):
    """The paper's headline claim: consistent speedups over baseline PPCG."""
    for row in gtx_comparison:
        if row.tool == "hybrid":
            assert row.speedup_over_ppcg is not None and row.speedup_over_ppcg > 1.0


def test_hybrid_is_best_or_close_to_best(gtx_comparison):
    """Hybrid is the best tool (within 15%) on every benchmark."""
    by_benchmark: dict[str, list] = {}
    for row in gtx_comparison:
        if row.gstencils_per_second is not None:
            by_benchmark.setdefault(row.benchmark, []).append(row)
    for benchmark, rows in by_benchmark.items():
        best = max(r.gstencils_per_second for r in rows)
        hybrid = next(r for r in rows if r.tool == "hybrid").gstencils_per_second
        assert hybrid >= 0.85 * best, benchmark


def test_par4all_invalid_cuda_on_fdtd(gtx_comparison):
    row = next(r for r in gtx_comparison if r.tool == "par4all" and r.benchmark == "fdtd_2d")
    assert row.gstencils_per_second is None
    assert row.failure is not None


def test_comparison_formatting(gtx_comparison):
    text = format_comparison(gtx_comparison, GTX470)
    assert "GTX 470" in text
    assert "invalid CUDA" in text
    assert "laplacian_2d" in text


def test_nvs_comparison_is_slower_than_gtx(gtx_comparison):
    nvs_rows = run_comparison(NVS5200M, benchmarks=["heat_2d"])
    nvs_hybrid = next(r for r in nvs_rows if r.tool == "hybrid").gstencils_per_second
    gtx_hybrid = next(
        r for r in gtx_comparison if r.tool == "hybrid" and r.benchmark == "heat_2d"
    ).gstencils_per_second
    assert gtx_hybrid > 2 * nvs_hybrid


def test_ablation_rows_and_shape():
    rows = run_ablation(devices=(NVS5200M,))
    assert [row.configuration for row in rows] == list("abcdef")
    gflops = {row.configuration: row.gflops for row in rows}
    # The full configuration must beat the unoptimised shared-memory one.
    assert gflops["f"] > gflops["b"]
    # Static reuse (e) loses to dynamic reuse (f) because of bank conflicts.
    assert gflops["f"] > gflops["e"]
    assert "Table 4" in format_table4(rows)


def test_counter_ablation_matches_table5_shape():
    rows = run_counter_ablation(device=GTX470)
    by_config = {row["configuration"]: row for row in rows}
    # (a) performs vastly more global load instructions than (b)-(f).
    assert by_config["a"]["gld_inst_32bit"] > 10 * by_config["b"]["gld_inst_32bit"]
    # Aligned loads (d) reduce DRAM read transactions versus (c).
    assert by_config["d"]["dram_read_transactions"] < by_config["c"]["dram_read_transactions"]
    # Inter-tile reuse (e)/(f) reaches 100% global load efficiency.
    assert by_config["e"]["gld_efficiency_percent"] == pytest.approx(100.0)
    assert by_config["f"]["gld_efficiency_percent"] == pytest.approx(100.0)
    # The static mapping (e) pays shared-memory bank conflicts, (f) does not.
    assert by_config["e"]["shared_loads_per_request"] > by_config["f"]["shared_loads_per_request"]
    assert "Table 5" in format_table5(rows)


def test_figure2_matches_paper_instruction_mix():
    summary = figure2_core_ptx()
    assert summary.shared_loads == 3
    assert summary.shared_stores == 1
    assert summary.arithmetic == 5


def test_figure3_cone_values():
    data = figure3_dependence_cone()
    assert set(map(tuple, data["distance_vectors"])) == {(1, -2), (2, 2)}
    assert data["delta0"] == 1 and data["delta1"] == 2
    assert data["delta0_lp"] == 1 and data["delta1_lp"] == 2


def test_figure4_hexagon_data():
    data = figure4_hexagon()
    assert data["points"] == 36
    assert data["time_period"] == 6
    assert data["ascii"].count("#") == 36


def test_figure5_pattern_has_parallel_wavefronts():
    data = figure5_tiling_pattern()
    assert data["blue_tiles"] > 0 and data["green_tiles"] > 0
    assert max(data["parallel_tiles_per_wavefront"].values()) > 1


def test_figure6_schedule_expressions():
    expressions = figure6_schedule()
    assert "phase0_T" in expressions and "phase1_S0" in expressions
    assert "floord" in expressions["phase0_T"]


def test_table4_paper_reference_is_monotone():
    """Sanity check of the transcribed paper data itself."""
    for device, rows in PAPER_TABLE4.items():
        assert rows["f"] > rows["a"]


def test_optimization_config_labels():
    for label, config in table4_configurations().items():
        assert config.label == label
    assert OptimizationConfig.default() == OptimizationConfig.config_f()
