"""Shared fixtures for the test suite: small stencil programs and tilings."""

from __future__ import annotations

import pytest

from repro.model.preprocess import canonicalize
from repro.stencils import get_stencil
from repro.tiling.hybrid import HybridTiling, TileSizes


@pytest.fixture(autouse=True)
def _isolated_hexcc_cache(tmp_path, monkeypatch):
    """Point the persistent compile cache at a per-test directory.

    CLI entry points open ``DiskCache.default()``; without this fixture the
    test suite would read and write the developer's real ``~/.cache/hexcc``.
    """
    monkeypatch.setenv("HEXCC_CACHE_DIR", str(tmp_path / "hexcc-cache"))


@pytest.fixture
def small_jacobi_2d():
    """A Jacobi 2D program small enough for exhaustive validation."""
    return get_stencil("jacobi_2d", sizes=(20, 18), steps=10)


@pytest.fixture
def small_heat_3d():
    return get_stencil("heat_3d", sizes=(12, 10, 10), steps=6)


@pytest.fixture
def small_fdtd_2d():
    return get_stencil("fdtd_2d", sizes=(16, 14), steps=8)


@pytest.fixture
def jacobi_canonical(small_jacobi_2d):
    return canonicalize(small_jacobi_2d)


@pytest.fixture
def jacobi_tiling(jacobi_canonical):
    return HybridTiling(jacobi_canonical, TileSizes.of(2, 3, 6))
