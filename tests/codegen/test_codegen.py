"""Unit tests for shared-memory planning, kernel IR, CUDA and PTX emission."""

import pytest

from repro.codegen.cuda import CudaCodeGenerator
from repro.codegen.kernel_ir import analyze_core_loop, register_reuse_count
from repro.codegen.ptx import emit_core_ptx
from repro.codegen.shared_mem import plan_shared_memory
from repro.model.preprocess import canonicalize
from repro.api import OptimizationConfig
from repro.stencils import get_stencil
from repro.tiling.hybrid import HybridTiling, TileSizes


@pytest.fixture(scope="module")
def heat3d_tiling():
    program = get_stencil("heat_3d", sizes=(64, 64, 64), steps=16)
    return HybridTiling(canonicalize(program), TileSizes.of(2, 7, 10, 32))


# -- shared memory plan -----------------------------------------------------------------


def test_plan_footprints_cover_reads(heat3d_tiling):
    plan = plan_shared_memory(heat3d_tiling, OptimizationConfig.default())
    footprint = plan.footprint("A")
    # heat 3D reads a radius-1 box: every extent includes the +/- 1 halo.
    assert all(extent >= width for extent, width in zip(footprint.extents, (12, 15, 37)))
    assert footprint.halo_lower == (1, 1, 1)
    assert footprint.halo_upper == (1, 1, 1)
    assert plan.shared_bytes_per_block <= 48 * 1024


def test_plan_inter_tile_reuse_reduces_loads(heat3d_tiling):
    with_reuse = plan_shared_memory(heat3d_tiling, OptimizationConfig.config_f())
    without = plan_shared_memory(heat3d_tiling, OptimizationConfig.config_d())
    assert with_reuse.loads_per_tile < without.loads_per_tile
    assert with_reuse.reused_per_tile > 0
    assert without.reused_per_tile == 0


def test_plan_dynamic_reuse_has_internal_copy(heat3d_tiling):
    dynamic = plan_shared_memory(heat3d_tiling, OptimizationConfig.config_f())
    static = plan_shared_memory(heat3d_tiling, OptimizationConfig.config_e())
    assert dynamic.internal_copy_elements > 0
    assert static.internal_copy_elements == 0


def test_plan_without_shared_memory(heat3d_tiling):
    plan = plan_shared_memory(heat3d_tiling, OptimizationConfig.config_a())
    assert plan.shared_bytes_per_block == 0
    assert not plan.uses_shared_memory


def test_plan_multi_field_program():
    program = get_stencil("fdtd_2d", sizes=(64, 64), steps=8)
    tiling = HybridTiling(canonicalize(program), TileSizes.of(2, 4, 32))
    plan = plan_shared_memory(tiling, OptimizationConfig.default())
    assert {f.field for f in plan.footprints} == {"ex", "ey", "hz"}


# -- kernel IR / register reuse ------------------------------------------------------------


def test_register_reuse_jacobi():
    """Figure 2: 2 of the 5 Jacobi operands stay in registers."""
    program = get_stencil("jacobi_2d", sizes=(32, 32), steps=4)
    assert register_reuse_count(program.statements[0]) == 2


def test_register_reuse_heat_box_stencils():
    heat2d = get_stencil("heat_2d", sizes=(32, 32), steps=4)
    assert register_reuse_count(heat2d.statements[0]) == 6      # 3x3 box
    heat3d = get_stencil("heat_3d", sizes=(16, 16, 16), steps=2)
    assert register_reuse_count(heat3d.statements[0]) == 18     # 3x3x3 box


def test_core_profile_unrolled_cheaper_than_rolled():
    program = get_stencil("heat_2d", sizes=(32, 32), steps=4)
    unrolled = analyze_core_loop(program, unroll=True)[0]
    rolled = analyze_core_loop(program, unroll=False)[0]
    assert unrolled.instructions_per_point < rolled.instructions_per_point
    assert unrolled.loads_after_reuse < rolled.loads_total


def test_core_profile_flops_match_statement():
    program = get_stencil("gradient_2d", sizes=(32, 32), steps=4)
    profile = analyze_core_loop(program)[0]
    assert profile.flops == program.statements[0].flops == 15


# -- pseudo PTX ---------------------------------------------------------------------------


def test_figure2_ptx_instruction_mix():
    """3 shared loads, 1 store, 5 arithmetic ops for the Jacobi 2D core."""
    program = get_stencil("jacobi_2d", sizes=(32, 32), steps=4)
    summary = emit_core_ptx(program)
    assert summary.shared_loads == 3
    assert summary.shared_stores == 1
    assert summary.arithmetic == 5
    assert summary.registers_reused == 2
    assert "ld.shared.f32" in summary.text
    assert "st.shared.f32" in summary.text


def test_ptx_for_multi_statement_kernel():
    program = get_stencil("fdtd_2d", sizes=(32, 32), steps=4)
    summary = emit_core_ptx(program, "Shz")
    assert summary.shared_loads + summary.registers_reused == 5


# -- CUDA source --------------------------------------------------------------------------


def test_cuda_source_structure(heat3d_tiling):
    config = OptimizationConfig.default()
    plan = plan_shared_memory(heat3d_tiling, config)
    source = CudaCodeGenerator(heat3d_tiling, plan, config).generate()
    assert "__global__ void heat_3d_phase0" in source
    assert "__global__ void heat_3d_phase1" in source
    assert "__shared__ float" in source
    assert "__syncthreads()" in source
    assert "blockIdx.x" in source
    assert "cudaMemcpy" in source
    assert "floord" in source
    # Both kernels launched from the host loop.
    assert source.count("<<<grid, block>>>") == 2


def test_cuda_source_no_shared_memory_configuration(heat3d_tiling):
    config = OptimizationConfig.config_a()
    plan = plan_shared_memory(heat3d_tiling, config)
    source = CudaCodeGenerator(heat3d_tiling, plan, config).generate()
    assert "__shared__ float" not in source
    assert "no explicit shared memory" in source


def test_cuda_source_separate_copy_out(heat3d_tiling):
    config = OptimizationConfig.config_b()
    plan = plan_shared_memory(heat3d_tiling, config)
    source = CudaCodeGenerator(heat3d_tiling, plan, config).generate()
    assert "separate copy-out phase" in source


def test_cuda_source_balanced_braces(heat3d_tiling):
    config = OptimizationConfig.default()
    plan = plan_shared_memory(heat3d_tiling, config)
    source = CudaCodeGenerator(heat3d_tiling, plan, config).generate()
    assert source.count("{") == source.count("}")
