"""Search strategies: budgets, determinism, hill-climbing behaviour."""

from __future__ import annotations

import json

import pytest

from repro.cache import DiskCache
from repro.gpu.device import GTX470
from repro.model.preprocess import canonicalize
from repro.stencils import get_stencil
from repro.tuning import (
    CandidateSpace,
    TuningDatabase,
    get_search_strategy,
    list_search_strategies,
    register_search_strategy,
    tune,
)
from repro.tuning.objectives import TuningTrial
from repro.tuning.strategies import SearchStrategy


@pytest.fixture(scope="module")
def space():
    return CandidateSpace(canonicalize(get_stencil("jacobi_2d")), GTX470)


def _fake_evaluate(batch):
    # Deterministic synthetic objective: prefer small tiles; no pipeline runs.
    return [
        TuningTrial(
            candidate=c,
            score=c.sizes.height * 100 + sum(c.sizes.widths),
        )
        for c in batch
    ]


def test_registry_lists_builtins():
    assert list_search_strategies() == ["grid", "hillclimb", "random"]
    for name in list_search_strategies():
        assert get_search_strategy(name).name == name


def test_unknown_strategy_raises():
    with pytest.raises(ValueError, match="unknown search strategy"):
        get_search_strategy("simulated-annealing")


def test_duplicate_registration_raises():
    with pytest.raises(ValueError, match="already registered"):
        register_search_strategy(get_search_strategy("grid"))


def test_grid_respects_budget_and_covers_ends(space):
    trials = get_search_strategy("grid").search(space, _fake_evaluate, 10, seed=0)
    assert len(trials) == 10
    assert trials[0].candidate == space.enumerate()[0]


def test_grid_exhausts_small_spaces(space):
    budget = len(space) + 50
    trials = get_search_strategy("grid").search(space, _fake_evaluate, budget, seed=0)
    assert len(trials) == len(space)


def test_random_same_seed_same_trials(space):
    strategy = get_search_strategy("random")
    first = strategy.search(space, _fake_evaluate, 12, seed=7)
    second = strategy.search(space, _fake_evaluate, 12, seed=7)
    assert [t.candidate for t in first] == [t.candidate for t in second]


def test_random_different_seed_different_trials(space):
    strategy = get_search_strategy("random")
    first = strategy.search(space, _fake_evaluate, 12, seed=1)
    second = strategy.search(space, _fake_evaluate, 12, seed=2)
    assert [t.candidate for t in first] != [t.candidate for t in second]


def test_random_samples_without_replacement(space):
    trials = get_search_strategy("random").search(space, _fake_evaluate, 50, seed=3)
    candidates = [t.candidate for t in trials]
    assert len(candidates) == len(set(candidates)) == 50


def test_hillclimb_improves_and_respects_budget(space):
    start = space.enumerate()[len(space) - 1]  # a deliberately bad corner
    trials = get_search_strategy("hillclimb").search(
        space, _fake_evaluate, 15, seed=0, start=start
    )
    assert 0 < len(trials) <= 15
    best = min(trials, key=lambda t: t.score)
    assert best.score < trials[0].score  # walked downhill from the start


def test_hillclimb_never_revisits(space):
    trials = get_search_strategy("hillclimb").search(
        space, _fake_evaluate, 40, seed=0, start=space.enumerate()[0]
    )
    candidates = [t.candidate for t in trials]
    assert len(candidates) == len(set(candidates))


def test_tune_identical_seed_budget_byte_identical_entry(tmp_path):
    """Satellite: identical seed + budget => byte-identical DB entry."""
    program = get_stencil("jacobi_2d")
    entries = []
    for run in range(2):
        cache = DiskCache(tmp_path / f"cache-{run}")  # cold cache each run
        result = tune(
            program,
            strategy="random",
            objective="model",
            budget=6,
            seed=11,
            disk_cache=cache,
        )
        entries.append(json.dumps(result.to_entry(), sort_keys=True).encode())
    assert entries[0] == entries[1]


def test_tune_seed_is_recorded_in_the_db(tmp_path):
    db = TuningDatabase()
    result = tune(
        get_stencil("jacobi_1d"),
        strategy="random",
        objective="model",
        budget=4,
        seed=23,
        db=db,
    )
    entry = db.get(result.digest, result.device, "random", "model")
    assert entry is not None
    assert entry["seed"] == 23
    assert entry["budget"] == 4


def test_custom_strategy_registration(space):
    class FirstOnly(SearchStrategy):
        name = "first-only"

        def search(self, space, evaluate, budget, seed, start=None):
            return evaluate(space.enumerate()[:1])

    try:
        register_search_strategy(FirstOnly())
        trials = get_search_strategy("first-only").search(
            space, _fake_evaluate, 5, seed=0
        )
        assert len(trials) == 1
    finally:
        from repro.tuning.strategies import _REGISTRY

        _REGISTRY.pop("first-only", None)
