"""Tuning objectives: determinism, failure tolerance, cache behaviour."""

from __future__ import annotations

import pytest

from repro.api.config import OptimizationConfig
from repro.cache import DiskCache
from repro.gpu.device import GTX470
from repro.stencils import get_stencil
from repro.tiling.hybrid import TileSizes
from repro.tuning import Candidate, EvaluationJob, evaluate_candidate, list_objectives
from repro.tuning.objectives import register_objective


def _job(objective, candidate=None, cache_root=None, program=None):
    return EvaluationJob(
        program=program or get_stencil("jacobi_2d"),
        candidate=candidate or Candidate(TileSizes.of(2, 4, 64)),
        objective=objective,
        device=GTX470,
        config=OptimizationConfig.default(),
        cache_root=cache_root,
    )


def test_objective_registry():
    assert list_objectives() == ["counters", "model", "simulate"]


def test_unknown_objective_raises():
    with pytest.raises(ValueError, match="unknown tuning objective"):
        evaluate_candidate(_job("wall-clock"))


def test_model_objective_is_deterministic():
    first = evaluate_candidate(_job("model"))
    second = evaluate_candidate(_job("model"))
    assert first.ok and first.score > 0
    assert first.score == second.score


def test_model_objective_threads_change_the_score():
    plain = evaluate_candidate(_job("model"))
    threaded = evaluate_candidate(
        _job("model", candidate=Candidate(TileSizes.of(2, 4, 64), threads=(1, 32)))
    )
    assert threaded.ok
    assert threaded.score != plain.score


def test_counters_objective_is_deterministic_and_positive():
    first = evaluate_candidate(_job("counters"))
    second = evaluate_candidate(_job("counters"))
    assert first.ok and first.score > 0
    assert first.score == second.score


def test_simulate_objective_measures_positive_wall_time(tmp_path):
    trial = evaluate_candidate(
        _job("simulate", cache_root=str(tmp_path / "cache"))
    )
    assert trial.ok
    assert 0 < trial.score < 10.0


def test_simulate_objective_caches_schedule_arrays(tmp_path):
    cache_root = tmp_path / "cache"
    evaluate_candidate(_job("simulate", cache_root=str(cache_root)))
    stats = DiskCache(cache_root).stats()
    assert stats.stages.get("tuning-schedule", {}).get("stores", 0) >= 1


def test_pipeline_failure_becomes_failed_trial():
    # One width too few for a 2-D stencil: the tiling stage raises; the
    # evaluation must degrade to an infinite-score trial, not crash.
    trial = evaluate_candidate(
        _job("model", candidate=Candidate(TileSizes.of(2, 4)))
    )
    assert not trial.ok
    assert trial.score == float("inf")
    assert trial.error


def test_custom_objective_registration():
    def flat(job):
        return 42.0

    register_objective("flat", flat)
    try:
        trial = evaluate_candidate(_job("flat"))
        assert trial.ok and trial.score == 42.0
        with pytest.raises(ValueError, match="already registered"):
            register_objective("flat", flat)
    finally:
        from repro.tuning.objectives import _OBJECTIVES

        _OBJECTIVES.pop("flat", None)
