"""The candidate space: legality by construction, prune accounting."""

from __future__ import annotations

import pytest

from repro.gpu.device import GTX470, NVS5200M
from repro.model.preprocess import canonicalize
from repro.stencils import get_stencil
from repro.tiling.hexagon import minimal_width
from repro.tiling.tile_size import (
    PRUNE_LEGALITY,
    PRUNE_OCCUPANCY,
    PRUNE_SHARED_MEMORY,
    TileSizeModel,
    select_tile_sizes,
)
from repro.tuning import Candidate, CandidateSpace


@pytest.fixture(scope="module")
def heat3d_canonical():
    return canonicalize(get_stencil("heat_3d"))


@pytest.fixture(scope="module")
def fdtd_canonical():
    return canonicalize(get_stencil("fdtd_2d"))


def test_every_candidate_fits_shared_memory(heat3d_canonical):
    space = CandidateSpace(heat3d_canonical, GTX470)
    model = TileSizeModel(heat3d_canonical)
    assert len(space) > 0
    for candidate in space:
        estimate = model.estimate(candidate.sizes, inter_tile_reuse=True)
        assert estimate.shared_memory_bytes <= GTX470.shared_memory_per_sm


def test_every_candidate_satisfies_convexity(heat3d_canonical):
    space = CandidateSpace(heat3d_canonical, GTX470)
    model = TileSizeModel(heat3d_canonical)
    for candidate in space:
        floor = minimal_width(
            model.cone.delta0, model.cone.delta1, candidate.sizes.height
        )
        assert candidate.sizes.w0 >= floor


def test_multi_statement_heights_are_statement_multiples(fdtd_canonical):
    space = CandidateSpace(fdtd_canonical, GTX470)
    k = fdtd_canonical.num_statements
    assert k == 3
    for candidate in space:
        assert (candidate.sizes.height + 1) % k == 0
    assert space.rejections[PRUNE_LEGALITY] > 0


def test_inner_width_is_full_warps(heat3d_canonical):
    space = CandidateSpace(heat3d_canonical, GTX470)
    for candidate in space:
        assert candidate.sizes.widths[-1] % GTX470.warp_size == 0


def test_shared_memory_prunes_are_counted(heat3d_canonical):
    space = CandidateSpace(heat3d_canonical, GTX470)
    rejections = space.rejections
    assert rejections[PRUNE_SHARED_MEMORY] > 0
    assert rejections["evaluated"] == len(space)


def test_occupancy_floor_prunes_non_warp_inner_widths(heat3d_canonical):
    space = CandidateSpace(heat3d_canonical, GTX470, inner_widths=(16, 32))
    assert space.rejections[PRUNE_OCCUPANCY] > 0
    for candidate in space:
        assert candidate.sizes.widths[-1] == 32


def test_smaller_shared_memory_shrinks_the_space(heat3d_canonical):
    from dataclasses import replace

    big = CandidateSpace(heat3d_canonical, GTX470)
    tiny_device = replace(NVS5200M, shared_memory_per_sm=16 * 1024)
    small = CandidateSpace(heat3d_canonical, tiny_device)
    assert len(small) < len(big)
    assert small.rejections[PRUNE_SHARED_MEMORY] > big.rejections[PRUNE_SHARED_MEMORY]


def test_enumeration_is_deterministic(heat3d_canonical):
    first = CandidateSpace(heat3d_canonical, GTX470).enumerate()
    second = CandidateSpace(heat3d_canonical, GTX470).enumerate()
    assert first == second


def test_preload_replays_a_cached_enumeration(heat3d_canonical):
    source = CandidateSpace(heat3d_canonical, GTX470)
    clone = CandidateSpace(heat3d_canonical, GTX470)
    clone.preload(source.enumerate(), source.rejections)
    assert clone.enumerate() == source.enumerate()
    assert clone.rejections == source.rejections


def test_tune_threads_adds_launch_variants(heat3d_canonical):
    plain = CandidateSpace(heat3d_canonical, GTX470)
    threaded = CandidateSpace(heat3d_canonical, GTX470, tune_threads=True)
    assert len(threaded) > len(plain)
    shapes = {candidate.threads for candidate in threaded}
    assert None in shapes
    assert any(shape is not None for shape in shapes)
    for candidate in threaded:
        if candidate.threads is not None:
            assert 1 <= _product(candidate.threads) <= GTX470.max_threads_per_block


def _product(values):
    out = 1
    for value in values:
        out *= value
    return out


def test_neighbours_are_axis_aligned_members(heat3d_canonical):
    space = CandidateSpace(heat3d_canonical, GTX470)
    members = set(space.enumerate())
    candidate = space.enumerate()[len(space) // 2]
    neighbours = space.neighbours(candidate)
    assert neighbours
    for neighbour in neighbours:
        assert neighbour in members
        assert neighbour != candidate
        differing = sum(
            a != b
            for a, b in zip(
                (neighbour.sizes.height, *neighbour.sizes.widths),
                (candidate.sizes.height, *candidate.sizes.widths),
            )
        )
        assert differing == 1


def test_closest_snaps_model_selection_into_the_space(heat3d_canonical):
    space = CandidateSpace(heat3d_canonical, GTX470)
    best = select_tile_sizes(heat3d_canonical)
    snapped = space.closest(best.sizes)
    assert snapped is not None
    assert snapped in set(space.enumerate())


def test_select_tile_sizes_reports_rejections(heat3d_canonical):
    estimate = select_tile_sizes(heat3d_canonical)
    assert estimate.rejections is not None
    assert estimate.rejections[PRUNE_SHARED_MEMORY] > 0
    assert estimate.rejections["evaluated"] > 0


def test_rejections_do_not_affect_estimate_equality(heat3d_canonical):
    model = TileSizeModel(heat3d_canonical)
    chosen = select_tile_sizes(heat3d_canonical)
    recomputed = model.estimate(chosen.sizes, inter_tile_reuse=True)
    # Same cost figures, different (None) rejection payload: still equal.
    assert recomputed == chosen


def test_1d_space_has_no_warp_constraint():
    canonical = canonicalize(get_stencil("jacobi_1d"))
    space = CandidateSpace(canonical, GTX470)
    assert any(c.sizes.widths[-1] % GTX470.warp_size != 0 for c in space)


def test_candidate_label_mentions_threads():
    from repro.tiling.hybrid import TileSizes

    plain = Candidate(TileSizes.of(2, 4, 32))
    threaded = Candidate(TileSizes.of(2, 4, 32), threads=(1, 64))
    assert "threads" not in plain.label()
    assert "threads=(1, 64)" in threaded.label()


def test_3d_sweep_explores_all_w0_values(heat3d_canonical):
    """Regression: the §3.7 sweep used to exhaust an itertools.product
    generator after the first w0, so 3-D stencils never explored middle
    widths beyond w0=1.  The fixed sweep must find a strictly better
    load-to-compute ratio than the best w0=1 candidate."""
    from repro.tiling.hybrid import TileSizes

    model = TileSizeModel(heat3d_canonical)
    best = select_tile_sizes(heat3d_canonical)
    old_buggy_winner = model.estimate(TileSizes.of(3, 1, 20, 32))
    assert best.load_to_compute < old_buggy_winner.load_to_compute
    assert best.sizes.w0 > 1


def test_explicit_height_candidates_are_trusted(fdtd_canonical):
    # Callers may deliberately probe heights off the legality grid; explicit
    # candidate lists bypass the statement-multiplicity filter (and are not
    # counted as prunes), matching the pre-rejection-accounting behaviour.
    estimate = select_tile_sizes(fdtd_canonical, height_candidates=[1, 3])
    assert estimate.sizes.height in (1, 3)
    assert estimate.rejections[PRUNE_LEGALITY] == 0
