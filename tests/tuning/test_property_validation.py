"""Property-style guarantee: any configuration the search can return is safe.

For every stencil in the library, candidates drawn from the search space are
(a) within the device shared-memory budget by the §3.7 cost model at the
paper-scale problem size, and (b) produce a hybrid tiling that passes the
exhaustive coverage/legality/uniformity validator on a small instance —
i.e. the autotuner can never return a configuration that computes wrong
answers or overflows shared memory.
"""

from __future__ import annotations

import random

import pytest

from repro.gpu.device import GTX470
from repro.model.preprocess import canonicalize
from repro.stencils import get_stencil, list_stencils
from repro.tiling.hybrid import HybridTiling
from repro.tiling.tile_size import TileSizeModel
from repro.tiling.validate import validate_hybrid_tiling
from repro.tuning import CandidateSpace
from repro.tuning.objectives import SIMULATE_INSTANCES

#: Candidates sampled per stencil (seeded: the sample is stable across runs).
SAMPLES = 3


def _sampled_candidates(space):
    candidates = space.enumerate()
    rng = random.Random(1234)
    picks = rng.sample(candidates, min(SAMPLES, len(candidates)))
    # Always include the extremes of the enumeration: boundary tile shapes
    # are where coverage/legality bugs live.
    return {candidates[0], candidates[-1], *picks}


@pytest.mark.parametrize("name", list_stencils())
def test_searchable_configurations_are_valid(name):
    paper = canonicalize(get_stencil(name))
    space = CandidateSpace(paper, GTX470)
    model = TileSizeModel(paper)

    sizes, steps = SIMULATE_INSTANCES[len(paper.space_dims)]
    small = canonicalize(get_stencil(name, sizes=sizes, steps=steps))

    for candidate in _sampled_candidates(space):
        estimate = model.estimate(candidate.sizes, inter_tile_reuse=True)
        assert estimate.shared_memory_bytes <= GTX470.shared_memory_per_sm, (
            f"{name}: {candidate.label()} overflows shared memory"
        )
        report = validate_hybrid_tiling(HybridTiling(small, candidate.sizes))
        assert report.ok, (
            f"{name}: {candidate.label()} fails validation: {report.violations}"
        )
