"""Tuned-config application: Session.run(tuned=True), façade, cache keys."""

from __future__ import annotations

from repro.api import HybridCompiler, Session
from repro.api.passes import TilingPass
from repro.api.session import CompilationRequest, program_digest
from repro.api.config import OptimizationConfig
from repro.gpu.device import GTX470
from repro.stencils import get_stencil
from repro.tiling.hybrid import TileSizes
from repro.tuning import TuningDatabase, tune


def _db_for(program, height=1, widths=(3, 32), threads=None, score=0.25):
    db = TuningDatabase()
    db.record(
        {
            "program": program.name,
            "sizes": list(program.sizes),
            "steps": program.time_steps,
            "digest": program_digest(program),
            "device": GTX470.name,
            "strategy": "random",
            "objective": "simulate",
            "seed": 0,
            "budget": 8,
            "evaluations": 9,
            "failures": 0,
            "best": {
                "height": height,
                "widths": list(widths),
                "threads": list(threads) if threads else None,
                "score": score,
            },
            "baseline": {
                "height": 2,
                "widths": [4, 128],
                "threads": None,
                "score": score * 2,
            },
        }
    )
    return db


def test_session_applies_tuned_sizes():
    program = get_stencil("jacobi_2d", sizes=(64, 64), steps=8)
    session = Session(tuning_db=_db_for(program))
    run = session.run(program, stop_after="tiling", tuned=True)
    assert run.request.tile_sizes == TileSizes.of(1, 3, 32)
    assert run.tuned_entry is not None
    assert run.tuned_entry["best"]["score"] == 0.25


def test_session_applies_tuned_threads():
    program = get_stencil("jacobi_2d", sizes=(64, 64), steps=8)
    session = Session(tuning_db=_db_for(program, threads=(1, 64)))
    run = session.run(program, stop_after="codegen", tuned=True)
    assert run.request.threads == (1, 64)
    assert run.artifact("codegen").threads == (1, 64)


def test_explicit_sizes_beat_the_database():
    program = get_stencil("jacobi_2d", sizes=(64, 64), steps=8)
    session = Session(tuning_db=_db_for(program))
    run = session.run(
        program, tile_sizes=TileSizes.of(2, 4, 32), stop_after="tiling", tuned=True
    )
    assert run.request.tile_sizes == TileSizes.of(2, 4, 32)
    assert run.tuned_entry is None


def test_missing_entry_falls_back_to_the_model():
    program = get_stencil("jacobi_2d", sizes=(64, 64), steps=8)
    session = Session(tuning_db=TuningDatabase())
    run = session.run(program, stop_after="tiling", tuned=True)
    assert run.tuned_entry is None
    assert run.artifact("tiling").tile_cost is not None  # model selection ran


def test_facade_tuned_memo_does_not_alias_untuned():
    program = get_stencil("jacobi_2d", sizes=(64, 64), steps=8)
    compiler = HybridCompiler(tuning_db=_db_for(program))
    tuned = compiler.compile(program, tuned=True)
    untuned = compiler.compile(program)
    assert tuned is not untuned
    assert tuned.tiling.sizes == TileSizes.of(1, 3, 32)
    assert untuned.tiling.sizes != tuned.tiling.sizes
    # Memo hit on repeat, per flag.
    assert compiler.compile(program, tuned=True) is tuned
    assert compiler.compile(program) is untuned


def test_tuned_tiling_key_never_aliases_model_selected():
    """Satellite: tuned entries must not alias model-selected cache entries.

    Even when the tuned sizes happen to EQUAL the model selection, the tuned
    run keys its tiling stage by the explicit sizes while the model run keys
    it as ``tile-sizes=auto``: the keys must differ.
    """
    program = get_stencil("jacobi_2d", sizes=(64, 64), steps=8)
    session = Session()
    model_run = session.run(program, stop_after="tiling")
    model_sizes = model_run.artifact("tiling").sizes
    db = _db_for(program, height=model_sizes.height, widths=model_sizes.widths)

    digest = program_digest(program)
    config = OptimizationConfig.default()
    tiling_pass = TilingPass()

    def request(sizes):
        return CompilationRequest(
            program=program, tile_sizes=sizes, config=config, storage="expanded",
            threads=None, strategy="hybrid", device=GTX470,
        )

    auto_key = tiling_pass.key(request(None), {}, "parentkey", digest)
    tuned_session = Session(tuning_db=db)
    tuned_run = tuned_session.run(program, stop_after="tiling", tuned=True)
    assert tuned_run.request.tile_sizes == model_sizes  # same concrete sizes
    tuned_key = tiling_pass.key(
        request(tuned_run.request.tile_sizes), {}, "parentkey", digest
    )
    assert auto_key != tuned_key


def test_tuned_and_model_runs_share_canonicalize(tmp_path):
    from repro.cache import DiskCache

    program = get_stencil("jacobi_2d", sizes=(64, 64), steps=8)
    cache = DiskCache(tmp_path / "cache")
    session = Session(disk_cache=cache, tuning_db=_db_for(program))
    session.run(program, stop_after="codegen")
    session.cache_clear()  # force the next run through the disk layer
    run = session.run(program, stop_after="codegen", tuned=True)
    sources = {event.name: event.source for event in run.events}
    assert sources["canonicalize"] == "disk"  # prefix shared with model run
    assert sources["tiling"] == "computed"    # tuned sizes: distinct key


def test_resolve_tuned_reports_the_applicable_entry():
    program = get_stencil("jacobi_2d", sizes=(64, 64), steps=8)
    session = Session(tuning_db=_db_for(program))
    entry = session.resolve_tuned(program)
    assert entry is not None
    assert entry["best"]["height"] == 1
    # A different problem size has a different content digest: no entry.
    other = get_stencil("jacobi_2d", sizes=(48, 48), steps=8)
    assert session.resolve_tuned(other) is None


def test_tune_records_applicable_entry_end_to_end(tmp_path):
    """tune() -> db -> Session(tuned=True) round trip."""
    from repro.cache import DiskCache

    program = get_stencil("jacobi_2d", sizes=(64, 64), steps=8)
    db = TuningDatabase()
    result = tune(
        program,
        strategy="grid",
        objective="model",
        budget=5,
        seed=0,
        disk_cache=DiskCache(tmp_path / "cache"),
        db=db,
    )
    session = Session(tuning_db=db)
    run = session.run(program, stop_after="tiling", tuned=True)
    assert run.tuned_entry is not None
    best = result.best.candidate
    assert run.request.tile_sizes == best.sizes
