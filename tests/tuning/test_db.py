"""The tuning database: round trips, robustness, resolution, preference."""

from __future__ import annotations

import json

import pytest

from repro.tuning import TuningDatabase, baseline_db_path, resolve_db_path
from repro.tuning.db import DB_KIND, SCHEMA_VERSION, TUNING_DB_ENV, entry_key


def _entry(program="heat_3d", device="GTX 470", strategy="random",
           objective="model", score=0.5, digest="d" * 64):
    return {
        "program": program,
        "sizes": [384, 384, 384],
        "steps": 128,
        "digest": digest,
        "device": device,
        "strategy": strategy,
        "objective": objective,
        "seed": 0,
        "budget": 8,
        "evaluations": 9,
        "failures": 0,
        "best": {"height": 2, "widths": [7, 10, 32], "threads": None,
                 "score": score},
        "baseline": {"height": 2, "widths": [3, 4, 128], "threads": None,
                     "score": score * 2},
    }


def test_round_trip(tmp_path):
    db = TuningDatabase()
    key = db.record(_entry())
    path = db.save(tmp_path / "tuning.json")
    loaded = TuningDatabase.load(path)
    assert len(loaded) == 1
    assert loaded.entries[key]["program"] == "heat_3d"


def test_document_envelope(tmp_path):
    db = TuningDatabase()
    db.record(_entry())
    raw = json.loads((db.save(tmp_path / "t.json")).read_text())
    assert raw["kind"] == DB_KIND
    assert raw["schema_version"] == SCHEMA_VERSION


def test_missing_file_reads_as_empty(tmp_path):
    assert len(TuningDatabase.load(tmp_path / "nope.json")) == 0


def test_corrupt_file_reads_as_empty(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{ not json")
    assert len(TuningDatabase.load(path)) == 0


def test_foreign_document_reads_as_empty(tmp_path):
    path = tmp_path / "foreign.json"
    path.write_text(json.dumps({"kind": "something-else", "entries": {}}))
    assert len(TuningDatabase.load(path)) == 0


def test_stale_schema_reads_as_empty(tmp_path):
    path = tmp_path / "stale.json"
    path.write_text(json.dumps(
        {"kind": DB_KIND, "schema_version": SCHEMA_VERSION + 1, "entries": {}}
    ))
    assert len(TuningDatabase.load(path)) == 0


def test_record_requires_key_fields():
    db = TuningDatabase()
    entry = _entry()
    del entry["objective"]
    with pytest.raises(ValueError, match="objective"):
        db.record(entry)


def test_entries_key_on_strategy_and_objective():
    db = TuningDatabase()
    db.record(_entry(strategy="random", objective="simulate", score=0.1))
    db.record(_entry(strategy="random", objective="model", score=0.2))
    db.record(_entry(strategy="grid", objective="model", score=0.3))
    assert len(db) == 3
    found = db.get("d" * 64, "GTX 470", "random", "model")
    assert found is not None and found["best"]["score"] == 0.2


def test_best_for_prefers_empirical_objectives():
    db = TuningDatabase()
    db.record(_entry(strategy="grid", objective="model", score=0.001))
    db.record(_entry(strategy="random", objective="simulate", score=0.9))
    best = db.best_for("d" * 64, "GTX 470")
    # simulate wins despite the numerically smaller model score: the scores
    # are not comparable across objectives.
    assert best["objective"] == "simulate"


def test_best_for_picks_lowest_score_within_objective():
    db = TuningDatabase()
    db.record(_entry(strategy="grid", objective="model", score=0.4))
    db.record(_entry(strategy="random", objective="model", score=0.2))
    assert db.best_for("d" * 64, "GTX 470")["strategy"] == "random"


def test_best_for_unknown_program():
    assert TuningDatabase().best_for("e" * 64, "GTX 470") is None


def test_save_is_deterministic(tmp_path):
    db = TuningDatabase()
    db.record(_entry(strategy="b"))
    db.record(_entry(strategy="a"))
    first = db.save(tmp_path / "one.json").read_bytes()
    second = db.save(tmp_path / "two.json").read_bytes()
    assert first == second


def test_resolution_chain(tmp_path, monkeypatch):
    explicit = tmp_path / "explicit.json"
    assert resolve_db_path(explicit) == explicit
    monkeypatch.setenv(TUNING_DB_ENV, str(tmp_path / "env.json"))
    assert resolve_db_path() == tmp_path / "env.json"
    monkeypatch.delenv(TUNING_DB_ENV)
    monkeypatch.setenv("HEXCC_CACHE_DIR", str(tmp_path / "cache"))
    # No user database yet: fall through to the committed baseline.
    assert resolve_db_path() == baseline_db_path()
    user_db = tmp_path / "cache" / "tuning.json"
    user_db.parent.mkdir(parents=True)
    user_db.write_text("{}")
    assert resolve_db_path() == user_db


def test_committed_baseline_is_valid_and_covers_the_library():
    from repro.stencils import list_stencils

    db = TuningDatabase.load(baseline_db_path())
    assert len(db) > 0
    programs = {entry["program"] for entry in db}
    assert programs.issuperset(set(list_stencils()))
    for key, entry in db.entries.items():
        assert key == entry_key(
            entry["digest"], entry["device"], entry["strategy"], entry["objective"]
        )
        assert entry["best"]["score"] <= entry["baseline"]["score"]


def test_malformed_entries_are_dropped_at_load(tmp_path):
    # A hand-edited entry missing "best" (or with junk in it) must never
    # crash --tuned resolution later; it is dropped when the file is read.
    db = TuningDatabase()
    db.record(_entry())
    path = db.save(tmp_path / "edited.json")
    raw = json.loads(path.read_text())
    raw["entries"]["x/GTX 470/random/model"] = {"objective": "model"}
    raw["entries"]["y/GTX 470/random/model"] = {
        **_entry(digest="e" * 64),
        "best": {"height": "tall"},
    }
    path.write_text(json.dumps(raw))
    loaded = TuningDatabase.load(path)
    assert len(loaded) == 1
    assert loaded.best_for("e" * 64, "GTX 470") is None
