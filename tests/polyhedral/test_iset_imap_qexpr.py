"""Unit tests for set unions, affine maps and quasi-affine expressions."""

from fractions import Fraction

import pytest

from repro.polyhedral.affine import LinearExpr
from repro.polyhedral.basic_set import BasicSet
from repro.polyhedral.imap import AffineMap
from repro.polyhedral.iset import ISet
from repro.polyhedral.quasi_affine import (
    QFloorDiv,
    QMod,
    affine_combination,
    floor_of_rational_affine,
    mod_of_rational_affine,
    qconst,
    qvar,
)
from repro.polyhedral.space import Space


# -- ISet -----------------------------------------------------------------------------


def test_union_and_membership():
    space = Space(["x"])
    a = BasicSet.from_bounds(space, {"x": (0, 2)})
    b = BasicSet.from_bounds(space, {"x": (5, 6)})
    union = ISet.from_basic(a).union(b)
    assert union.contains((1,)) and union.contains((6,))
    assert not union.contains((4,))
    assert union.count() == 5


def test_union_count_deduplicates_overlap():
    space = Space(["x"])
    a = BasicSet.from_bounds(space, {"x": (0, 4)})
    b = BasicSet.from_bounds(space, {"x": (3, 6)})
    assert ISet.from_basic(a).union(b).count() == 7


def test_subtraction_box_minus_box():
    space = Space(["x", "y"])
    outer = ISet.from_basic(BasicSet.box(space, [0, 0], [5, 5]))
    inner = BasicSet.box(space, [2, 2], [3, 3])
    difference = outer.subtract(inner)
    assert difference.count() == 36 - 4
    assert not difference.contains((2, 2))
    assert difference.contains((0, 0))


def test_subtraction_disjoint_leaves_set_unchanged():
    space = Space(["x"])
    a = ISet.from_basic(BasicSet.from_bounds(space, {"x": (0, 3)}))
    b = BasicSet.from_bounds(space, {"x": (10, 12)})
    assert a.subtract(b).count() == 4


def test_intersection_of_unions():
    space = Space(["x"])
    a = ISet.from_basic(BasicSet.from_bounds(space, {"x": (0, 4)})).union(
        BasicSet.from_bounds(space, {"x": (10, 14)})
    )
    b = ISet.from_basic(BasicSet.from_bounds(space, {"x": (3, 11)}))
    assert sorted(p[0] for p in a.intersect(b).points()) == [3, 4, 10, 11]


def test_empty_union():
    space = Space(["x"])
    assert ISet.empty(space).is_empty()
    assert ISet.universe(space).contains((42,))


# -- AffineMap -------------------------------------------------------------------------


def test_identity_and_offsets():
    space = Space(["i", "j"])
    identity = AffineMap.identity(space)
    assert identity.apply_int_point((3, 4)) == (3, 4)
    shifted = AffineMap.from_offsets(space, Space(["a", "b"]), ["i", "j"], [1, -1])
    assert shifted.apply_int_point((3, 4)) == (4, 3)


def test_compose():
    space = Space(["i"])
    plus_one = AffineMap(space, space, [LinearExpr.var("i") + 1])
    times_two = AffineMap(space, space, [LinearExpr.var("i") * 2])
    composed = times_two.compose(plus_one)   # 2 * (i + 1)
    assert composed.apply_int_point((3,)) == (8,)


def test_apply_set_image():
    space = Space(["i"])
    target = Space(["a"])
    shift = AffineMap(space, target, [LinearExpr.var("i") + 5])
    domain = BasicSet.from_bounds(space, {"i": (0, 3)})
    image = shift.apply_set(domain)
    assert sorted(p[0] for p in image.points()) == [5, 6, 7, 8]


def test_image_box_interval_arithmetic():
    space = Space(["i", "j"])
    access = AffineMap.from_offsets(space, Space(["a", "b"]), ["i", "j"], [-1, 2])
    box = access.image_box({"i": (1, 4), "j": (0, 3)})
    assert box == [(0, 3), (2, 5)]


def test_non_integral_image_raises():
    space = Space(["i"])
    half = AffineMap(space, Space(["a"]), [LinearExpr.var("i") * Fraction(1, 2)])
    with pytest.raises(ValueError):
        half.apply_int_point((3,))


def test_arity_mismatch_rejected():
    space = Space(["i"])
    with pytest.raises(ValueError):
        AffineMap(space, Space(["a", "b"]), [LinearExpr.var("i")])


# -- quasi-affine expressions -----------------------------------------------------------


def test_floordiv_matches_python_semantics():
    expr = QFloorDiv(qvar("t") + qconst(3), 6)
    for t in range(-20, 20):
        assert expr.evaluate({"t": t}) == (t + 3) // 6


def test_mod_is_always_non_negative():
    expr = QMod(qvar("t"), 5)
    for t in range(-20, 20):
        value = expr.evaluate({"t": t})
        assert 0 <= value < 5
        assert value == t % 5


def test_operator_sugar():
    expr = (qvar("x") * 3 - 2) % 7
    assert expr.evaluate({"x": 4}) == 3


def test_to_c_contains_floord_and_wrap():
    expr = QFloorDiv(qvar("t"), 4)
    assert "floord" in expr.to_c()
    expr = QMod(qvar("t"), 4)
    assert "%" in expr.to_c()


def test_affine_combination_scaling():
    expr, scale = affine_combination({"s": Fraction(1, 2), "u": 1}, 0)
    assert scale == 2
    assert expr.evaluate({"s": 3, "u": 5}) == 2 * (Fraction(3, 2) + 5)


def test_floor_of_rational_affine():
    expr = floor_of_rational_affine({"s": 1, "u": Fraction(1, 2)}, 0, 3)
    for s in range(-5, 6):
        for u in range(0, 6):
            expected = (2 * s + u) // 6
            assert expr.evaluate({"s": s, "u": u}) == expected


def test_mod_of_rational_affine_preserves_period():
    expr = mod_of_rational_affine({"s": 1}, 0, 4)
    assert expr.evaluate({"s": 9}) == 1
    assert expr.evaluate({"s": -1}) == 3


def test_variables_tracking():
    expr = QFloorDiv(qvar("a") + qvar("b"), 2)
    assert expr.variables() == {"a", "b"}
