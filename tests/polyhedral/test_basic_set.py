"""Unit tests for convex integer sets."""

import pytest

from repro.polyhedral.affine import LinearExpr
from repro.polyhedral.basic_set import BasicSet
from repro.polyhedral.constraint import Constraint
from repro.polyhedral.space import Space


@pytest.fixture
def triangle():
    """The triangle 0 <= t <= i <= 5."""
    space = Space(["t", "i"])
    t, i = LinearExpr.var("t"), LinearExpr.var("i")
    return BasicSet(
        space,
        [Constraint.ge(t, 0), Constraint.ge(i - t, 0), Constraint.le(i, 5)],
    )


def test_membership(triangle):
    assert (0, 0) in triangle
    assert (2, 5) in triangle
    assert (3, 2) not in triangle
    assert (-1, 0) not in triangle


def test_count_and_enumeration(triangle):
    points = list(triangle.points())
    assert len(points) == triangle.count() == 21
    assert all(triangle.contains(p) for p in points)


def test_bounding_box(triangle):
    assert triangle.bounding_box() == [(0, 5), (0, 5)]


def test_dim_min_max(triangle):
    assert triangle.dim_min("t") == 0
    assert triangle.dim_max("t") == 5
    assert triangle.dim_max("i") == 5


def test_intersect():
    space = Space(["x"])
    a = BasicSet.from_bounds(space, {"x": (0, 10)})
    b = BasicSet.from_bounds(space, {"x": (5, 20)})
    assert a.intersect(b).count() == 6


def test_empty_detection():
    space = Space(["x"])
    empty = BasicSet.from_bounds(space, {"x": (3, 1)})
    assert empty.is_empty()
    assert BasicSet.empty(space).is_empty()
    assert not BasicSet.from_bounds(space, {"x": (0, 0)}).is_empty()


def test_integer_emptiness_with_rational_relaxation_nonempty():
    """1 <= 2x <= 1 has the rational solution 1/2 but no integer point."""
    space = Space(["x"])
    x = LinearExpr.var("x")
    gap = BasicSet(space, [Constraint.ge(x * 2, 1), Constraint.le(x * 2, 1)])
    assert not gap.is_rationally_empty()
    assert gap.is_empty()


def test_projection_drops_dimension(triangle):
    projected = triangle.project_out(["i"])
    assert projected.space.dims == ("t",)
    assert projected.bounding_box() == [(0, 5)]


def test_project_onto(triangle):
    projected = triangle.project_onto(["i"])
    assert projected.space.dims == ("i",)
    assert projected.count() == 6


def test_translate(triangle):
    shifted = triangle.translate({"t": 10, "i": 10})
    assert (10, 10) in shifted
    assert (0, 0) not in shifted
    assert shifted.count() == triangle.count()


def test_universe_and_box_constructors():
    space = Space(["x", "y"])
    box = BasicSet.box(space, [0, 0], [2, 3])
    assert box.count() == 12
    assert BasicSet.universe(space).contains((100, -100))


def test_unknown_dimension_rejected():
    space = Space(["x"])
    with pytest.raises(ValueError):
        BasicSet(space, [Constraint.ge(LinearExpr.var("z"), 0)])


def test_gist_removes_redundant_constraint():
    space = Space(["x"])
    x = LinearExpr.var("x")
    redundant = BasicSet(
        space, [Constraint.ge(x, 0), Constraint.ge(x, -5), Constraint.le(x, 3)]
    )
    simplified = redundant.gist()
    assert len(simplified.constraints) == 2
    assert simplified.count() == redundant.count()
