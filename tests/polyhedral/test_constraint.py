"""Unit tests for affine constraints."""

from repro.polyhedral.affine import LinearExpr
from repro.polyhedral.constraint import Constraint


def test_ge_le_constructors_are_consistent():
    x = LinearExpr.var("x")
    assert Constraint.ge(x, 3).satisfied({"x": 3})
    assert not Constraint.ge(x, 3).satisfied({"x": 2})
    assert Constraint.le(x, 3).satisfied({"x": 3})
    assert not Constraint.le(x, 3).satisfied({"x": 4})


def test_strict_inequalities_over_integers():
    x = LinearExpr.var("x")
    assert not Constraint.gt(x, 3).satisfied({"x": 3})
    assert Constraint.gt(x, 3).satisfied({"x": 4})
    assert Constraint.lt(x, 3).satisfied({"x": 2})


def test_equality():
    x = LinearExpr.var("x")
    y = LinearExpr.var("y")
    constraint = Constraint.eq(x + y, 4)
    assert constraint.satisfied({"x": 1, "y": 3})
    assert not constraint.satisfied({"x": 1, "y": 4})


def test_trivially_true_and_false():
    assert Constraint.ge(LinearExpr.const(1), 0).is_trivially_true()
    assert Constraint.ge(LinearExpr.const(-1), 0).is_trivially_false()
    assert not Constraint.ge(LinearExpr.var("x"), 0).is_trivially_true()


def test_negation_of_inequality():
    x = LinearExpr.var("x")
    constraint = Constraint.ge(x, 5)          # x >= 5
    (negated,) = constraint.negated()          # x <= 4
    assert negated.satisfied({"x": 4})
    assert not negated.satisfied({"x": 5})


def test_negation_of_equality_gives_two_pieces():
    x = LinearExpr.var("x")
    pieces = Constraint.eq(x, 5).negated()
    assert len(pieces) == 2
    assert any(p.satisfied({"x": 4}) for p in pieces)
    assert any(p.satisfied({"x": 6}) for p in pieces)
    assert not any(p.satisfied({"x": 5}) for p in pieces)


def test_normalized_divides_by_gcd():
    x = LinearExpr.var("x")
    constraint = Constraint.ge(x * 4, 8).normalized()
    assert constraint.expr.coefficient("x") == 1
    assert constraint.expr.constant == -2


def test_substitute():
    x = LinearExpr.var("x")
    constraint = Constraint.ge(x, 3).substitute({"x": LinearExpr.var("y") * 2})
    assert constraint.satisfied({"y": 2})
    assert not constraint.satisfied({"y": 1})
