"""Unit tests for affine expressions with rational coefficients."""

from fractions import Fraction

import pytest

from repro.polyhedral.affine import LinearExpr


def test_variable_and_constant_construction():
    expr = LinearExpr.var("x", 3) + LinearExpr.const(5)
    assert expr.coefficient("x") == 3
    assert expr.constant == 5
    assert expr.variables() == {"x"}


def test_zero_coefficients_are_dropped():
    expr = LinearExpr.var("x") - LinearExpr.var("x")
    assert expr.is_zero()
    assert expr.variables() == set()


def test_arithmetic_combination():
    x = LinearExpr.var("x")
    y = LinearExpr.var("y")
    expr = 2 * x - y / 2 + 7
    assert expr.coefficient("x") == 2
    assert expr.coefficient("y") == Fraction(-1, 2)
    assert expr.constant == 7


def test_evaluate():
    expr = LinearExpr.var("x", Fraction(1, 2)) + LinearExpr.var("y", -1) + 3
    assert expr.evaluate({"x": 4, "y": 1}) == 4


def test_evaluate_missing_variable_raises():
    expr = LinearExpr.var("x")
    with pytest.raises(KeyError):
        expr.evaluate({"y": 1})


def test_substitute_with_expression():
    expr = LinearExpr.var("x", 2) + 1
    substituted = expr.substitute({"x": LinearExpr.var("y") + 3})
    assert substituted.coefficient("y") == 2
    assert substituted.constant == 7


def test_rename():
    expr = LinearExpr.var("x") + LinearExpr.var("y")
    renamed = expr.rename({"x": "a"})
    assert renamed.variables() == {"a", "y"}


def test_scaled_to_integers():
    expr = LinearExpr.var("x", Fraction(1, 3)) + Fraction(1, 2)
    scaled = expr.scaled_to_integers()
    assert scaled.coefficient("x") == 2
    assert scaled.constant == 3


def test_integer_coeffs_in_order():
    expr = LinearExpr.var("x", Fraction(2, 3)) - LinearExpr.var("z") + 1
    coeffs, constant = expr.integer_coeffs(["x", "y", "z"])
    assert coeffs == [2, 0, -3]
    assert constant == 3


def test_equality_and_hash():
    a = LinearExpr.var("x") + 1
    b = LinearExpr({"x": 1}, 1)
    assert a == b
    assert hash(a) == hash(b)


def test_division_by_zero_raises():
    with pytest.raises(ZeroDivisionError):
        LinearExpr.var("x") / 0


def test_str_rendering_mentions_variables():
    text = str(LinearExpr.var("x", -2) + 5)
    assert "x" in text and "5" in text
