"""Unit tests for the exact rational simplex."""

from fractions import Fraction

from repro.polyhedral.affine import LinearExpr
from repro.polyhedral.constraint import Constraint
from repro.polyhedral.lp import LPStatus, lp_feasible, lp_maximize, lp_minimize


def _box_constraints():
    x = LinearExpr.var("x")
    y = LinearExpr.var("y")
    return [
        Constraint.ge(x, 0),
        Constraint.le(x, 4),
        Constraint.ge(y, 1),
        Constraint.le(y, 3),
    ]


def test_minimize_over_box():
    result = lp_minimize(LinearExpr.var("x") + LinearExpr.var("y"), _box_constraints())
    assert result.status is LPStatus.OPTIMAL
    assert result.value == 1


def test_maximize_over_box():
    result = lp_maximize(LinearExpr.var("x") + LinearExpr.var("y"), _box_constraints())
    assert result.status is LPStatus.OPTIMAL
    assert result.value == 7


def test_rational_optimum_is_exact():
    x = LinearExpr.var("x")
    constraints = [Constraint.ge(x * 3, 1), Constraint.le(x * 3, 2)]
    result = lp_minimize(x, constraints)
    assert result.value == Fraction(1, 3)
    result = lp_maximize(x, constraints)
    assert result.value == Fraction(2, 3)


def test_negative_variables_allowed():
    x = LinearExpr.var("x")
    result = lp_minimize(x, [Constraint.ge(x, -7), Constraint.le(x, -2)])
    assert result.status is LPStatus.OPTIMAL
    assert result.value == -7


def test_infeasible_system():
    x = LinearExpr.var("x")
    result = lp_minimize(x, [Constraint.ge(x, 3), Constraint.le(x, 1)])
    assert result.status is LPStatus.INFEASIBLE
    assert not lp_feasible([Constraint.ge(x, 3), Constraint.le(x, 1)])


def test_unbounded_problem():
    x = LinearExpr.var("x")
    result = lp_minimize(x, [Constraint.le(x, 10)])
    assert result.status is LPStatus.UNBOUNDED


def test_equality_constraints():
    x = LinearExpr.var("x")
    y = LinearExpr.var("y")
    constraints = [Constraint.eq(x + y, 10), Constraint.ge(x, 0), Constraint.ge(y, 0)]
    result = lp_maximize(x, constraints)
    assert result.value == 10
    result = lp_minimize(x, constraints)
    assert result.value == 0


def test_solution_point_is_reported():
    x = LinearExpr.var("x")
    y = LinearExpr.var("y")
    result = lp_minimize(x + y, _box_constraints())
    assert result.point is not None
    assert result.point["x"] == 0
    assert result.point["y"] == 1


def test_dependence_slope_lp_like_problem():
    """The δ-computation LP of Section 3.3.2 on the paper's example."""
    delta = LinearExpr.var("delta")
    constraints = [
        Constraint.ge(delta, 0),
        Constraint.ge(delta * 1 - (-2), 0),   # distance (1, -2)
        Constraint.ge(delta * 2 - 2, 0),      # distance (2, 2)
    ]
    result = lp_minimize(delta, constraints)
    assert result.value == 1
