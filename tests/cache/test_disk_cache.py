"""The persistent on-disk compile cache: round trips, robustness, layering."""

from __future__ import annotations

import pickle

import pytest

from repro.cache import DiskCache
from repro.cache.disk import SCHEMA_VERSION, _ENVELOPE_KIND
from repro.compiler import CompilationResult, HybridCompiler
from repro.stencils import get_stencil


@pytest.fixture
def cache(tmp_path):
    return DiskCache(tmp_path / "hexcc")


def test_round_trip(cache):
    cache.put("ab12", {"value": [1, 2, 3]})
    assert cache.get("ab12") == {"value": [1, 2, 3]}
    assert cache.stats().entries == 1
    assert cache.stats().hits == 1
    assert cache.stats().stores == 1


def test_missing_key_is_a_miss(cache):
    assert cache.get("dead") is None
    assert cache.stats().misses == 1


def test_rejects_non_hex_keys(cache):
    with pytest.raises(ValueError):
        cache.put("../escape", 1)
    with pytest.raises(ValueError):
        cache.get("UPPER")


def test_corrupt_entry_is_ignored_and_removed(cache):
    cache.put("ab12", "payload")
    path = cache._path("ab12")
    path.write_bytes(b"not a pickle at all")
    assert cache.get("ab12") is None
    assert not path.exists()
    # A later put/get works again.
    cache.put("ab12", "fresh")
    assert cache.get("ab12") == "fresh"


def test_stale_schema_version_is_ignored_not_fatal(cache):
    cache.put("ab12", "payload")
    path = cache._path("ab12")
    path.write_bytes(
        pickle.dumps((_ENVELOPE_KIND, SCHEMA_VERSION + 1, "from the future"))
    )
    assert cache.get("ab12") is None
    assert not path.exists()


def test_foreign_envelope_kind_is_ignored(cache):
    cache.put("ab12", "payload")
    cache._path("ab12").write_bytes(pickle.dumps(("something-else", 1, "x")))
    assert cache.get("ab12") is None


def test_clear_removes_entries_and_stats(cache):
    cache.put("ab12", 1)
    cache.put("cd34", 2)
    cache.flush_stats()
    assert cache.clear() == 2
    assert cache.stats().entries == 0
    assert cache.stats().stores == 0


def test_stats_persist_across_instances(cache):
    cache.put("ab12", 1)
    cache.get("ab12")
    cache.flush_stats()
    other = DiskCache(cache.root)
    stats = other.stats()
    assert stats.hits == 1
    assert stats.stores == 1


def test_cache_keys_depend_on_content_not_identity(tmp_path):
    """Two content-identical programs share every disk entry."""
    cache = DiskCache(tmp_path / "hexcc")
    a = get_stencil("jacobi_2d", sizes=(16, 16), steps=4)
    b = get_stencil("jacobi_2d", sizes=(16, 16), steps=4)
    assert a is not b
    HybridCompiler(disk_cache=cache).compile(a)
    stores = cache.stores
    HybridCompiler(disk_cache=cache).compile(b)
    assert cache.stores == stores  # all passes served from the shared entries
    assert cache.hits == stores


def test_cache_keys_vary_with_program_content(tmp_path):
    cache = DiskCache(tmp_path / "hexcc")
    HybridCompiler(disk_cache=cache).compile(
        get_stencil("jacobi_2d", sizes=(16, 16), steps=4)
    )
    stores = cache.stores
    # A different grid size is different program content: nothing is shared.
    HybridCompiler(disk_cache=cache).compile(
        get_stencil("jacobi_2d", sizes=(18, 16), steps=4)
    )
    assert cache.stores == 2 * stores


def test_compiler_disk_layer_round_trip(tmp_path):
    cache = DiskCache(tmp_path / "hexcc")
    program = get_stencil("jacobi_2d", sizes=(16, 16), steps=4)
    first = HybridCompiler(disk_cache=cache).compile(program)
    # Pass-granular layering: canonicalize, tiling, memory and codegen each
    # store their artifact under their own chained key.
    assert cache.stores == 4

    # A fresh process would see the same thing a fresh compiler does: the
    # entry is fetched, unpickled and fully usable.
    fresh = HybridCompiler(disk_cache=DiskCache(tmp_path / "hexcc"))
    again = fresh.compile(get_stencil("jacobi_2d", sizes=(16, 16), steps=4))
    assert isinstance(again, CompilationResult)
    assert again is not first
    assert again.cuda_source == first.cuda_source
    assert again.validate().ok
    again.simulate_and_check()


def test_compiler_survives_corrupt_disk_entry(tmp_path):
    cache = DiskCache(tmp_path / "hexcc")
    program = get_stencil("jacobi_2d", sizes=(16, 16), steps=4)
    HybridCompiler(disk_cache=cache).compile(program)
    for path in cache._entries():
        path.write_bytes(b"\x80corrupted")
    result = HybridCompiler(disk_cache=cache).compile(
        get_stencil("jacobi_2d", sizes=(16, 16), steps=4)
    )
    assert result.validate().ok


def test_compiler_lru_refreshes_on_hit_and_evicts_oldest_unused(monkeypatch):
    """The in-memory layer is a true LRU: hits refresh recency."""
    monkeypatch.setattr(HybridCompiler, "CACHE_CAPACITY", 2)
    compiler = HybridCompiler()
    small = dict(sizes=(16, 16), steps=4)
    a = get_stencil("jacobi_2d", **small)
    b = get_stencil("heat_2d", **small)
    c = get_stencil("laplacian_2d", **small)

    result_a = compiler.compile(a)
    result_b = compiler.compile(b)
    # Touch a: it becomes the most recently used entry.
    assert compiler.compile(a) is result_a
    # Inserting c must now evict b (the least recently used), not a.
    compiler.compile(c)
    assert compiler.compile(a) is result_a  # still cached
    assert compiler.compile(b) is not result_b  # recompiled after eviction


def test_memo_key_pins_the_callers_program_on_disk_hits(tmp_path):
    """Disk hits must keep the caller's program alive in the memo key.

    The in-memory LRU compares programs by identity; a fetched
    CompilationResult references its own unpickled program copy, so unless
    the key itself pins the caller's object, the caller's program could be
    garbage collected and a different program reusing the recycled id would
    silently hit the stale entry.
    """
    import weakref

    cache_root = tmp_path / "hexcc"
    seed = get_stencil("jacobi_2d", sizes=(16, 16), steps=4)
    HybridCompiler(disk_cache=DiskCache(cache_root)).compile(seed)

    compiler = HybridCompiler(disk_cache=DiskCache(cache_root))
    caller = get_stencil("jacobi_2d", sizes=(16, 16), steps=4)
    result = compiler.compile(caller)  # served from disk
    assert result.program is not caller  # the unpickled copy
    assert any(key[0] is caller for key in compiler._cache)

    # The memo entry keeps the caller's program alive even when the caller
    # drops its last reference, so its id can never be recycled.
    finalized = weakref.ref(caller)
    del caller
    import gc

    gc.collect()
    assert finalized() is not None
