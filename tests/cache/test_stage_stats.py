"""Per-stage cache statistics and robustness of ``hexcc cache stats``."""

from __future__ import annotations

import json

import pytest

from repro.cache import DiskCache
from repro.cli import main
from repro.stencils import get_stencil


@pytest.fixture
def cache(tmp_path):
    return DiskCache(tmp_path / "hexcc")


def test_stage_counters_track_hits_misses_stores(cache):
    key = "ab" * 32
    assert cache.get(key, stage="tiling") is None
    cache.put(key, {"plan": 1}, stage="tiling")
    assert cache.get(key, stage="tiling") == {"plan": 1}
    stats = cache.stats()
    assert stats.stages["tiling"] == {"hits": 1, "misses": 1, "stores": 1}


def test_unlabelled_operations_keep_totals_only(cache):
    cache.put("cd" * 32, 1)
    cache.get("cd" * 32)
    stats = cache.stats()
    assert stats.hits == 1 and stats.stores == 1
    assert stats.stages == {}


def test_stage_counters_flush_and_merge(cache):
    cache.get("ef" * 32, stage="codegen")  # miss
    cache.flush_stats()
    assert cache.stage_counters == {}
    # A second instance merges its own counters with the persisted file.
    other = DiskCache(cache.root)
    other.get("ef" * 32, stage="codegen")  # miss again
    stats = other.stats()
    assert stats.stages["codegen"]["misses"] == 2


def test_session_attributes_stage_stats(tmp_path):
    from repro.api import Session

    cache = DiskCache(tmp_path / "hexcc")
    session = Session(disk_cache=cache)
    program = get_stencil("jacobi_2d", sizes=(48, 48), steps=6)
    session.run(program, stop_after="codegen")
    session.cache_clear()
    session.run(program, stop_after="codegen")
    stages = cache.stats().stages
    for stage in ("canonicalize", "tiling", "memory", "codegen"):
        assert stages[stage]["stores"] == 1, stage
        assert stages[stage]["hits"] == 1, stage


def test_stats_on_fresh_directory_does_not_crash(tmp_path):
    stats = DiskCache(tmp_path / "never-created").stats()
    assert stats.entries == 0 and stats.bytes == 0
    assert "entries" in stats.describe()


def test_stats_survive_corrupt_stats_json(cache):
    # A foreign/truncated stats.json (here: a JSON array) used to raise
    # AttributeError inside ``hexcc cache stats``; it must read as empty.
    cache.root.mkdir(parents=True, exist_ok=True)
    (cache.root / "stats.json").write_text("[1, 2, 3]")
    stats = cache.stats()
    assert stats.hits == 0
    (cache.root / "stats.json").write_text("{ not json")
    assert cache.stats().misses == 0


def test_cli_cache_stats_fresh_dir(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("HEXCC_CACHE_DIR", str(tmp_path / "fresh"))
    assert main(["cache", "stats"]) == 0
    assert "entries    : 0" in capsys.readouterr().out


def test_cli_cache_stats_shows_stage_breakdown(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("HEXCC_CACHE_DIR", str(tmp_path / "cachedir"))
    assert main(["compile", "jacobi_2d"]) == 0
    capsys.readouterr()
    assert main(["cache", "stats"]) == 0
    output = capsys.readouterr().out
    assert "per-stage" in output
    assert "tiling" in output and "codegen" in output


def test_persisted_stage_stats_format(cache):
    cache.put("ab" * 32, 1, stage="tiling")
    cache.flush_stats()
    raw = json.loads((cache.root / "stats.json").read_text())
    assert raw["stores"] == 1
    assert raw["stages"]["tiling"]["stores"] == 1
