"""Deprecated alias of :mod:`repro.api` (the compilation options).

``OptimizationConfig``, ``TileSizes`` and ``table4_configurations`` moved to
the :mod:`repro.api` package (concretely :mod:`repro.api.config`); this shim
re-exports the very same objects so existing ``from repro.pipeline import
OptimizationConfig`` call sites keep working, and emits a single
:class:`DeprecationWarning` when first imported.
"""

from __future__ import annotations

import warnings

from repro.api.config import OptimizationConfig, TileSizes, table4_configurations

__all__ = ["OptimizationConfig", "TileSizes", "table4_configurations"]

warnings.warn(
    "repro.pipeline is deprecated; import OptimizationConfig, TileSizes and "
    "table4_configurations from repro.api instead",
    DeprecationWarning,
    stacklevel=2,
)
