"""Performance counters (the nvprof counters reported in Table 5).

The counters mirror the columns of Table 5 of the paper:

* ``gld_instructions`` — 32-bit global load instructions executed;
* ``dram_read_transactions`` — 32-byte read transactions that reach DRAM;
* ``l2_read_transactions`` — read transactions served by (or passing through)
  the L2 cache;
* ``shared_load_transactions`` / ``shared_load_requests`` — whose ratio is the
  "shared loads per request" column (1.0 means conflict-free, 2.0 means every
  request is replayed once because of bank conflicts);
* ``gld_efficiency`` — ratio of requested to transferred global-memory bytes.

Additional fields (stores, flops, launches, barriers) are tracked because the
performance model needs them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class PerformanceCounters:
    """Counter values accumulated by the simulator or the analytic model."""

    gld_instructions: float = 0.0
    gst_instructions: float = 0.0
    dram_read_transactions: float = 0.0
    dram_write_transactions: float = 0.0
    l2_read_transactions: float = 0.0
    shared_load_requests: float = 0.0
    shared_load_transactions: float = 0.0
    shared_store_requests: float = 0.0
    flops: float = 0.0
    instructions: float = 0.0
    stencil_updates: float = 0.0
    redundant_updates: float = 0.0
    kernel_launches: float = 0.0
    barriers: float = 0.0
    requested_global_bytes: float = 0.0
    transferred_global_bytes: float = 0.0
    host_device_bytes: float = 0.0

    # -- derived metrics -----------------------------------------------------------

    @property
    def gld_efficiency(self) -> float:
        """Global load efficiency (requested / transferred), in [0, 1]."""
        if self.transferred_global_bytes <= 0:
            return 1.0
        return min(1.0, self.requested_global_bytes / self.transferred_global_bytes)

    @property
    def shared_loads_per_request(self) -> float:
        """Bank-conflict replay factor (1.0 = conflict free)."""
        if self.shared_load_requests <= 0:
            return 1.0
        return self.shared_load_transactions / self.shared_load_requests

    @property
    def dram_read_bytes(self) -> float:
        return self.transferred_global_bytes

    # -- combination ----------------------------------------------------------------

    def add(self, other: "PerformanceCounters") -> "PerformanceCounters":
        """Accumulate another counter set into this one (in place)."""
        for item in fields(self):
            setattr(self, item.name, getattr(self, item.name) + getattr(other, item.name))
        return self

    def scaled(self, factor: float) -> "PerformanceCounters":
        """Return a copy with every counter multiplied by ``factor``."""
        result = PerformanceCounters()
        for item in fields(self):
            setattr(result, item.name, getattr(self, item.name) * factor)
        return result

    def as_table5_row(self) -> dict[str, float]:
        """The counters in the units of Table 5 (events × 10⁹, efficiency in %)."""
        return {
            "gld_inst_32bit": self.gld_instructions / 1e9,
            "dram_read_transactions": self.dram_read_transactions / 1e9,
            "l2_read_transactions": self.l2_read_transactions / 1e9,
            "shared_loads_per_request": self.shared_loads_per_request,
            "gld_efficiency_percent": 100.0 * self.gld_efficiency,
        }

    def __str__(self) -> str:
        row = self.as_table5_row()
        return (
            f"gld={row['gld_inst_32bit']:.2f}e9 "
            f"dram={row['dram_read_transactions']:.2f}e9 "
            f"l2={row['l2_read_transactions']:.2f}e9 "
            f"sh/req={row['shared_loads_per_request']:.1f} "
            f"gld_eff={row['gld_efficiency_percent']:.0f}%"
        )
