"""Functional GPU simulator.

The simulator executes a hybrid-tiled (or baseline-tiled) stencil program the
way the generated CUDA code would: tile by tile in schedule order, with the
intra-tile point order of Section 3.5, staging data through a simulated
shared-memory footprint when the configuration asks for it.  It serves three
purposes:

* **schedule validation** — the final field values must match the reference
  NumPy interpreter bit-for-bit (all arithmetic is float32 and performed in
  the same association order per point);
* **shared-memory plan validation** — every read performed inside a tile must
  fall inside the footprint box the plan reserved for that tile;
* **counter cross-checking** — the exact counters collected here (loads,
  stores, flops, barriers) are compared against the analytic profiler on the
  same small problem instances.

It is deliberately an *interpreter*: it runs the small problem sizes used in
tests, while the paper-scale experiments use the analytic profiler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.codegen.shared_mem import SharedMemoryPlan
from repro.gpu.counters import PerformanceCounters
from repro.model.expr import FieldRead
from repro.model.program import StencilProgram
from repro.pipeline import OptimizationConfig
from repro.tiling.hybrid import HybridTiling, SchedulePoint, TileCoordinate


class SimulationError(RuntimeError):
    """The simulated execution violated an assumption (footprint, ordering...)."""


@dataclass
class SimulationResult:
    """Outcome of a functional simulation."""

    final_fields: dict[str, np.ndarray]
    counters: PerformanceCounters
    tiles_executed: int
    full_tiles: int
    partial_tiles: int
    max_footprint_elements: int = 0

    def matches_reference(
        self, reference: Mapping[str, np.ndarray], atol: float = 1e-4
    ) -> bool:
        """Whether the simulated result equals the reference interpreter's."""
        for name, expected in reference.items():
            if name not in self.final_fields:
                return False
            if not np.allclose(self.final_fields[name], expected, atol=atol, rtol=1e-4):
                return False
        return True


class FunctionalSimulator:
    """Execute a hybrid tiling functionally and collect exact counters."""

    def __init__(
        self,
        tiling: HybridTiling,
        plan: SharedMemoryPlan | None = None,
        config: OptimizationConfig | None = None,
    ) -> None:
        self.tiling = tiling
        self.plan = plan
        self.config = config or OptimizationConfig.default()
        self.program: StencilProgram = tiling.canonical.program

    # -- main entry point ----------------------------------------------------------------

    def run(
        self,
        initial: Mapping[str, np.ndarray] | None = None,
        seed: int = 0,
        check_footprint: bool = True,
    ) -> SimulationResult:
        program = self.program
        if initial is None:
            initial = program.initial_state(seed)

        steps = program.time_steps
        # state[v] holds every field after v completed time steps; versions are
        # pre-filled with the initial values so never-written (boundary) cells
        # read back their initial value, matching the reference semantics.
        state: dict[str, list[np.ndarray]] = {
            name: [np.array(initial[name], dtype=np.float32, copy=True) for _ in range(steps + 1)]
            for name in program.fields
        }

        counters = PerformanceCounters()
        counters.stencil_updates = 0.0

        tiles = self.tiling.group_instances_by_tile()
        ordered_tiles = sorted(
            tiles.items(),
            key=lambda item: (
                item[0].time_tile,
                int(item[0].phase),
                item[0].space_tiles,
            ),
        )
        expected_full = self.tiling.iterations_per_full_tile()
        full_tiles = 0
        partial_tiles = 0
        max_footprint = 0

        for tile, points in ordered_tiles:
            if len(points) == expected_full:
                full_tiles += 1
            else:
                partial_tiles += 1
            footprint = self._execute_tile(tile, points, state, counters)
            max_footprint = max(max_footprint, footprint)
            if check_footprint and self.plan is not None and len(points) == expected_full:
                self._check_footprint(tile, footprint)
            counters.barriers += self.tiling.shape.time_period

        counters.kernel_launches = 2.0 * len(
            {tile.time_tile for tile, _ in ordered_tiles}
        )
        counters.host_device_bytes = 2.0 * program.data_bytes()

        final = {name: state[name][steps].copy() for name in program.fields}
        return SimulationResult(
            final_fields=final,
            counters=counters,
            tiles_executed=len(ordered_tiles),
            full_tiles=full_tiles,
            partial_tiles=partial_tiles,
            max_footprint_elements=max_footprint,
        )

    # -- per-tile execution ---------------------------------------------------------------------

    def _execute_tile(
        self,
        tile: TileCoordinate,
        points: list[SchedulePoint],
        state: dict[str, list[np.ndarray]],
        counters: PerformanceCounters,
    ) -> int:
        """Execute one tile's points in intra-tile order; returns footprint size."""
        program = self.program
        touched: set[tuple[str, tuple[int, ...]]] = set()
        loads_from_global: set[tuple[str, int, tuple[int, ...]]] = set()
        reads_performed = 0

        ordered = sorted(
            points,
            key=lambda p: (tuple(p.tile.space_tiles[1:]), p.local_time, p.local_space),
        )
        for point in ordered:
            statement_index, t, spatial = self.tiling.canonical.from_canonical(
                point.canonical_point
            )
            statement = program.statements[statement_index]

            def read(access: FieldRead) -> np.float32:
                nonlocal reads_performed
                version = t + 1 - access.time_offset
                location = tuple(
                    coordinate + offset
                    for coordinate, offset in zip(spatial, access.offsets)
                )
                touched.add((access.field, location))
                loads_from_global.add((access.field, version, location))
                reads_performed += 1
                counters.shared_load_requests += 1.0 / 32.0
                counters.shared_load_transactions += 1.0 / 32.0
                return state[access.field][version][location]

            value = np.float32(statement.expr.evaluate(read))
            # A read of version v at an interior location always happens after
            # the write producing it (this is exactly the flow dependence the
            # legality checker enforces), so a plain versioned store suffices.
            state[statement.target][t + 1][spatial] = value

            counters.flops += statement.flops
            counters.stencil_updates += 1
            counters.gst_instructions += 1
            counters.shared_store_requests += 1.0 / 32.0

        if self.config.use_shared_memory:
            # Each distinct (field, version, element) is staged once per tile.
            counters.gld_instructions += len(loads_from_global)
            counters.requested_global_bytes += 4.0 * len(loads_from_global)
            counters.transferred_global_bytes += 4.0 * len(loads_from_global)
        else:
            # Without shared memory every read is a global load instruction.
            counters.gld_instructions += reads_performed
            counters.requested_global_bytes += 4.0 * reads_performed
            counters.transferred_global_bytes += 4.0 * len(loads_from_global)
        counters.dram_write_transactions += len(ordered) * 4.0 / 32.0
        counters.dram_read_transactions += len(loads_from_global) * 4.0 / 32.0

        return len({location for _, location in touched})

    def _check_footprint(self, tile: TileCoordinate, footprint_elements: int) -> None:
        """The actual data touched by a full tile must fit the planned boxes."""
        assert self.plan is not None
        planned = sum(f.elements * f.versions for f in self.plan.footprints)
        if footprint_elements > planned:
            raise SimulationError(
                f"tile {tile} touched {footprint_elements} elements but the shared "
                f"memory plan only reserves {planned}"
            )
