"""Functional GPU simulator.

The simulator executes a hybrid-tiled (or baseline-tiled) stencil program the
way the generated CUDA code would: tile by tile in schedule order, with the
intra-tile point order of Section 3.5, staging data through a simulated
shared-memory footprint when the configuration asks for it.  It serves three
purposes:

* **schedule validation** — the final field values must match the reference
  NumPy interpreter bit-for-bit (all arithmetic is float32 and performed in
  the same association order per point);
* **shared-memory plan validation** — every read performed inside a tile must
  fall inside the footprint box the plan reserved for that tile;
* **counter cross-checking** — the exact counters collected here (loads,
  stores, flops, barriers) are compared against the analytic profiler on the
  same small problem instances.

It is deliberately an *interpreter*: it runs the small problem sizes used in
tests, while the paper-scale experiments use the analytic profiler.

Two execution modes are available.  The default **batch** mode vectorises
each barrier step (all points of one tile column sharing the same ``t'``)
into NumPy array operations; because those points execute in parallel on the
GPU — the legality checker proves no dependence connects them — elementwise
float32 evaluation of the same expression tree is bit-for-bit identical to
the per-point **scalar** mode, which remains available as the reference path
(``FunctionalSimulator(..., batch=False)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

import numpy as np

from repro.codegen.shared_mem import SharedMemoryPlan
from repro.gpu.counters import PerformanceCounters
from repro.model.expr import Call, FieldRead, walk
from repro.model.program import StencilProgram
from repro.api.config import OptimizationConfig
from repro.tiling.hybrid import HybridTiling, SchedulePoint, TileCoordinate
from repro.tiling.schedule_arrays import ScheduleArrays, run_boundaries

# Intrinsics whose evaluation is elementwise-safe on NumPy arrays.  fminf and
# fmaxf evaluate through np.minimum/np.maximum, which are elementwise and
# bit-for-bit identical to the scalar min/max on float32 operands.
_BATCH_SAFE_CALLS = frozenset(
    {"sqrtf", "sqrt", "fabsf", "fabs", "expf", "fminf", "fmaxf"}
)


def _program_batchable(program: StencilProgram) -> bool:
    """Whether every statement of the program can execute vectorised.

    Requires all intrinsics to be elementwise-safe on arrays and no statement
    to read its own target within the same time iteration (``time_offset ==
    0`` on the write target would alias a batched barrier step).
    """
    for statement in program.statements:
        for node in walk(statement.expr):
            if isinstance(node, Call) and node.name not in _BATCH_SAFE_CALLS:
                return False
        for read in statement.reads:
            if read.time_offset == 0 and read.field == statement.target:
                return False
    return True


def _encode_locations(
    index: tuple[np.ndarray, ...], sizes: Sequence[int]
) -> np.ndarray:
    """Injective integer encoding of grid locations (see `_run_tile_groups`)."""
    linear = index[0] + sizes[0]
    for axis in range(1, len(index)):
        extent = sizes[axis]
        linear = linear * (2 * extent) + (index[axis] + extent)
    return linear


class SimulationError(RuntimeError):
    """The simulated execution violated an assumption (footprint, ordering...)."""


@dataclass
class SimulationResult:
    """Outcome of a functional simulation."""

    final_fields: dict[str, np.ndarray]
    counters: PerformanceCounters
    tiles_executed: int
    full_tiles: int
    partial_tiles: int
    max_footprint_elements: int = 0

    def matches_reference(
        self, reference: Mapping[str, np.ndarray], atol: float = 1e-4
    ) -> bool:
        """Whether the simulated result equals the reference interpreter's."""
        for name, expected in reference.items():
            if name not in self.final_fields:
                return False
            if not np.allclose(self.final_fields[name], expected, atol=atol, rtol=1e-4):
                return False
        return True


class FunctionalSimulator:
    """Execute a hybrid tiling functionally and collect exact counters."""

    def __init__(
        self,
        tiling: HybridTiling,
        plan: SharedMemoryPlan | None = None,
        config: OptimizationConfig | None = None,
        batch: bool = True,
    ) -> None:
        self.tiling = tiling
        self.plan = plan
        self.config = config or OptimizationConfig.default()
        self.program: StencilProgram = tiling.canonical.program
        self.batch = batch and _program_batchable(self.program)

    # -- main entry point ----------------------------------------------------------------

    def run(
        self,
        initial: Mapping[str, np.ndarray] | None = None,
        seed: int = 0,
        check_footprint: bool = True,
    ) -> SimulationResult:
        program = self.program
        if initial is None:
            initial = program.initial_state(seed)

        steps = program.time_steps
        # state[v] holds every field after v completed time steps; versions are
        # pre-filled with the initial values so never-written (boundary) cells
        # read back their initial value, matching the reference semantics.
        state: dict[str, list[np.ndarray]] = {
            name: [np.array(initial[name], dtype=np.float32, copy=True) for _ in range(steps + 1)]
            for name in program.fields
        }

        counters = PerformanceCounters()
        counters.stencil_updates = 0.0

        if self.batch:
            stats = self._run_batch(state, counters, check_footprint)
        else:
            stats = self._run_scalar(state, counters, check_footprint)
        tiles_executed, full_tiles, partial_tiles, max_footprint, distinct_t = stats

        counters.kernel_launches = 2.0 * distinct_t
        counters.host_device_bytes = 2.0 * program.data_bytes()

        final = {name: state[name][steps].copy() for name in program.fields}
        return SimulationResult(
            final_fields=final,
            counters=counters,
            tiles_executed=tiles_executed,
            full_tiles=full_tiles,
            partial_tiles=partial_tiles,
            max_footprint_elements=max_footprint,
        )

    # -- array-native (batch) execution ---------------------------------------------------------

    def _run_batch(
        self,
        state: dict[str, list[np.ndarray]],
        counters: PerformanceCounters,
        check_footprint: bool,
    ) -> tuple[int, int, int, int, int]:
        """Execute all tiles from the columnar schedule, no objects involved.

        The full schedule is sorted once with ``np.lexsort``; tiles and
        barrier steps are consecutive runs of the sorted key columns, so the
        only remaining Python loop is one iteration per barrier step (whose
        points execute in parallel on the GPU and are evaluated as one array
        operation).  Returns ``(tiles, full, partial, max_footprint,
        distinct_time_tiles)``.
        """
        tiling = self.tiling
        arrays = tiling.schedule_arrays()
        ordered: ScheduleArrays = arrays.take(arrays.sequential_order())
        total = len(ordered)
        tile_columns = ordered.tile_key_columns()
        tile_starts = run_boundaries(*tile_columns)
        tile_ends = np.append(tile_starts[1:], total)
        group_starts = run_boundaries(*tile_columns, ordered.local_time)

        expected_full = tiling.iterations_per_full_tile()
        full_tiles = 0
        partial_tiles = 0
        max_footprint = 0
        for start, end in zip(tile_starts, tile_ends):
            count = int(end - start)
            if count == expected_full:
                full_tiles += 1
            else:
                partial_tiles += 1
            lo = int(np.searchsorted(group_starts, start))
            hi = int(np.searchsorted(group_starts, end))
            bounds = zip(
                group_starts[lo:hi],
                np.append(group_starts[lo + 1 : hi], end),
            )
            footprint, distinct_loads, reads_performed = self._run_tile_groups(
                ordered, bounds, state, counters
            )
            self._account_tile(counters, count, distinct_loads, reads_performed)
            max_footprint = max(max_footprint, footprint)
            if check_footprint and self.plan is not None and count == expected_full:
                self._check_footprint(ordered.point(int(start)).tile, footprint)
            counters.barriers += tiling.shape.time_period
        distinct_t = int(np.unique(ordered.time_tile).size)
        return len(tile_starts), full_tiles, partial_tiles, max_footprint, distinct_t

    def _run_tile_groups(
        self,
        ordered: ScheduleArrays,
        bounds,
        state: dict[str, list[np.ndarray]],
        counters: PerformanceCounters,
    ) -> tuple[int, int, int]:
        """Vectorised interpretation of one tile: one array op per barrier step.

        Points of a barrier step (same tile, same ``t'``) run in parallel on
        the GPU — the legality checker proves no dependence connects them —
        so evaluating the expression tree once over gathered float32 arrays
        performs exactly the scalar association order per point, elementwise,
        and the result is bit-for-bit identical.

        Returns ``(footprint_elements, distinct_loads, reads_performed)``.
        """
        program = self.program
        num_statements = self.tiling.canonical.num_statements
        # Shifted mixed-radix encoding of grid locations: coordinate c of a
        # dimension of extent S maps to c + S in base 2S, which is injective
        # for every index NumPy would accept (c in [-S, S)), so distinct
        # encodings correspond exactly to the scalar mode's distinct tuples.
        sizes = program.sizes
        reads_performed = 0
        # (field, version) -> list of linear-location arrays, one per access.
        staged: dict[tuple[str, int], list[np.ndarray]] = {}
        spatial = ordered.canonical[:, 1:]

        for start, end in bounds:
            start = int(start)
            end = int(end)
            count = end - start
            logical = int(ordered.canonical[start, 0])
            statement = program.statements[logical % num_statements]
            t = logical // num_statements
            columns = tuple(
                spatial[start:end, axis] for axis in range(spatial.shape[1])
            )

            def read(access: FieldRead) -> np.ndarray:
                nonlocal reads_performed
                version = t + 1 - access.time_offset
                index = tuple(
                    column + offset
                    for column, offset in zip(columns, access.offsets)
                )
                linear = _encode_locations(index, sizes)
                staged.setdefault((access.field, version), []).append(linear)
                reads_performed += count
                return state[access.field][version][index]

            value = statement.expr.evaluate(read)
            state[statement.target][t + 1][columns] = np.asarray(
                value, dtype=np.float32
            )

            counters.flops += statement.flops * count
            counters.stencil_updates += count
            counters.gst_instructions += count
            counters.shared_store_requests += count / 32.0

        distinct_loads = 0
        all_locations: list[np.ndarray] = []
        for chunks in staged.values():
            merged = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
            distinct_loads += np.unique(merged).size
            all_locations.append(merged)
        # The footprint is the number of distinct *locations* touched by any
        # read, regardless of field or version (matching the scalar mode).
        footprint = (
            np.unique(np.concatenate(all_locations)).size if all_locations else 0
        )
        return footprint, distinct_loads, reads_performed

    # -- object-based (scalar reference) execution ----------------------------------------------

    def _run_scalar(
        self,
        state: dict[str, list[np.ndarray]],
        counters: PerformanceCounters,
        check_footprint: bool,
    ) -> tuple[int, int, int, int, int]:
        """Reference execution: tile by tile, one point at a time."""
        tiles = self.tiling.group_instances_by_tile_reference()
        ordered_tiles = sorted(
            tiles.items(),
            key=lambda item: (
                item[0].time_tile,
                int(item[0].phase),
                item[0].space_tiles,
            ),
        )
        expected_full = self.tiling.iterations_per_full_tile()
        full_tiles = 0
        partial_tiles = 0
        max_footprint = 0
        for tile, points in ordered_tiles:
            if len(points) == expected_full:
                full_tiles += 1
            else:
                partial_tiles += 1
            footprint = self._execute_tile(tile, points, state, counters)
            max_footprint = max(max_footprint, footprint)
            if check_footprint and self.plan is not None and len(points) == expected_full:
                self._check_footprint(tile, footprint)
            counters.barriers += self.tiling.shape.time_period
        distinct_t = len({tile.time_tile for tile, _ in ordered_tiles})
        return (
            len(ordered_tiles),
            full_tiles,
            partial_tiles,
            max_footprint,
            distinct_t,
        )

    def _execute_tile(
        self,
        tile: TileCoordinate,
        points: list[SchedulePoint],
        state: dict[str, list[np.ndarray]],
        counters: PerformanceCounters,
    ) -> int:
        """Execute one tile's points in intra-tile order; returns footprint size."""
        ordered = sorted(
            points,
            key=lambda p: (tuple(p.tile.space_tiles[1:]), p.local_time, p.local_space),
        )
        footprint, distinct_loads, reads_performed = self._run_tile_scalar(
            ordered, state, counters
        )
        self._account_tile(counters, len(ordered), distinct_loads, reads_performed)
        return footprint

    def _account_tile(
        self,
        counters: PerformanceCounters,
        points_in_tile: int,
        distinct_loads: int,
        reads_performed: int,
    ) -> None:
        """Per-tile memory-system counter accounting (both execution modes)."""
        counters.shared_load_requests += reads_performed / 32.0
        counters.shared_load_transactions += reads_performed / 32.0
        if self.config.use_shared_memory:
            # Each distinct (field, version, element) is staged once per tile.
            counters.gld_instructions += distinct_loads
            counters.requested_global_bytes += 4.0 * distinct_loads
            counters.transferred_global_bytes += 4.0 * distinct_loads
        else:
            # Without shared memory every read is a global load instruction.
            counters.gld_instructions += reads_performed
            counters.requested_global_bytes += 4.0 * reads_performed
            counters.transferred_global_bytes += 4.0 * distinct_loads
        counters.dram_write_transactions += points_in_tile * 4.0 / 32.0
        counters.dram_read_transactions += distinct_loads * 4.0 / 32.0

    def _run_tile_scalar(
        self,
        ordered: list[SchedulePoint],
        state: dict[str, list[np.ndarray]],
        counters: PerformanceCounters,
    ) -> tuple[int, int, int]:
        """Reference interpretation: one point at a time, in intra-tile order.

        Returns ``(footprint_elements, distinct_loads, reads_performed)``.
        """
        program = self.program
        touched: set[tuple[str, tuple[int, ...]]] = set()
        loads_from_global: set[tuple[str, int, tuple[int, ...]]] = set()
        reads_performed = 0

        for point in ordered:
            statement_index, t, spatial = self.tiling.canonical.from_canonical(
                point.canonical_point
            )
            statement = program.statements[statement_index]

            def read(access: FieldRead) -> np.float32:
                nonlocal reads_performed
                version = t + 1 - access.time_offset
                location = tuple(
                    coordinate + offset
                    for coordinate, offset in zip(spatial, access.offsets)
                )
                touched.add((access.field, location))
                loads_from_global.add((access.field, version, location))
                reads_performed += 1
                return state[access.field][version][location]

            value = np.float32(statement.expr.evaluate(read))
            # A read of version v at an interior location always happens after
            # the write producing it (this is exactly the flow dependence the
            # legality checker enforces), so a plain versioned store suffices.
            state[statement.target][t + 1][spatial] = value

            counters.flops += statement.flops
            counters.stencil_updates += 1
            counters.gst_instructions += 1
            counters.shared_store_requests += 1.0 / 32.0

        footprint = len({location for _, location in touched})
        return footprint, len(loads_from_global), reads_performed

    def _check_footprint(self, tile: TileCoordinate, footprint_elements: int) -> None:
        """The actual data touched by a full tile must fit the planned boxes."""
        assert self.plan is not None
        planned = sum(f.elements * f.versions for f in self.plan.footprints)
        if footprint_elements > planned:
            raise SimulationError(
                f"tile {tile} touched {footprint_elements} elements but the shared "
                f"memory plan only reserves {planned}"
            )
