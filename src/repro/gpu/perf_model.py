"""Analytic GPU performance model.

The model converts counted quantities (flops, DRAM/L2/shared traffic, kernel
launches, host transfers) into an execution-time estimate using a
roofline-style formulation: each kernel's time is the maximum of its
compute-limited, DRAM-limited, L2-limited and shared-memory-limited times,
plus launch overhead; host<->device transfers are added once (the paper's
timings include them).

This is the substitution for the real GTX 470 / NVS 5200M measurements: the
inputs are *counted* from the generated schedules and code (they are the same
quantities nvprof reports in Table 5), and the conversion into time uses only
public architectural parameters, so relative comparisons between compilers
reflect genuine differences in generated-code behaviour rather than tuned
constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.counters import PerformanceCounters
from repro.gpu.device import GPUDevice
from repro.gpu.memory import SharedMemoryModel


@dataclass(frozen=True)
class LaunchConfiguration:
    """Execution configuration the performance model needs besides counters."""

    threads_per_block: int = 256
    blocks: int = 1024
    shared_bytes_per_block: int = 0
    unrolled: bool = True
    divergence_free: bool = True
    useful_fraction: float = 1.0   # fraction of computed updates that are not redundant
    overlap_stores: bool = True    # Section 4.2.1: copy-out interleaved with compute

    def __post_init__(self) -> None:
        if self.threads_per_block <= 0 or self.blocks <= 0:
            raise ValueError("threads_per_block and blocks must be positive")
        if not 0.0 < self.useful_fraction <= 1.0:
            raise ValueError("useful_fraction must be in (0, 1]")


@dataclass
class PerformanceReport:
    """Outcome of a performance estimation."""

    device_name: str
    total_time_s: float
    kernel_time_s: float
    transfer_time_s: float
    launch_time_s: float
    compute_time_s: float
    dram_time_s: float
    l2_time_s: float
    shared_time_s: float
    gflops: float
    gstencils_per_second: float
    bound_by: str
    occupancy: float
    counters: PerformanceCounters = field(repr=False, default_factory=PerformanceCounters)

    def summary(self) -> str:
        return (
            f"[{self.device_name}] {self.gstencils_per_second:.2f} GStencils/s, "
            f"{self.gflops:.1f} GFLOPS, {self.total_time_s * 1e3:.1f} ms "
            f"(bound by {self.bound_by}, occupancy {self.occupancy:.2f})"
        )


class PerformanceModel:
    """Roofline-style analytic performance model for one device."""

    # Fermi SMs can host at most 1536 threads; used for the occupancy estimate.
    MAX_THREADS_PER_SM = 1536
    # Instruction-efficiency factors: straight-line unrolled code issues almost
    # only useful instructions, rolled loops spend a sizeable fraction of their
    # issue slots on address computation and control flow.
    UNROLLED_ISSUE_EFFICIENCY = 0.85
    ROLLED_ISSUE_EFFICIENCY = 0.55
    DIVERGENCE_PENALTY = 0.70

    def __init__(self, device: GPUDevice) -> None:
        self.device = device
        self.shared_model = SharedMemoryModel(device)

    # -- occupancy ---------------------------------------------------------------------

    def occupancy(self, launch: LaunchConfiguration) -> float:
        """Fraction of the SM thread capacity kept busy by the launch."""
        device = self.device
        blocks_by_shared = self.shared_model.occupancy_limit(launch.shared_bytes_per_block)
        blocks_by_threads = max(
            1, self.MAX_THREADS_PER_SM // max(1, launch.threads_per_block)
        )
        resident_blocks = min(8, blocks_by_shared, blocks_by_threads)
        resident_threads = resident_blocks * launch.threads_per_block
        thread_occupancy = min(1.0, resident_threads / self.MAX_THREADS_PER_SM)
        # A grid smaller than the machine cannot fill it.
        fill = min(1.0, launch.blocks / (device.sm_count * resident_blocks))
        return max(0.05, thread_occupancy * fill)

    # -- time components ----------------------------------------------------------------

    def compute_time(self, counters: PerformanceCounters, launch: LaunchConfiguration) -> float:
        """Time limited by arithmetic and instruction issue.

        Two ceilings apply: the floating point throughput (for the flops) and
        the overall instruction issue rate (one instruction per core per
        cycle), which also covers loads, address arithmetic and control flow.
        The larger of the two is the compute-limited time.
        """
        issue_efficiency = (
            self.UNROLLED_ISSUE_EFFICIENCY if launch.unrolled else self.ROLLED_ISSUE_EFFICIENCY
        )
        if not launch.divergence_free:
            issue_efficiency *= self.DIVERGENCE_PENALTY
        # Straight-line unrolled code exposes enough instruction-level
        # parallelism for a few resident warps to keep the pipelines busy, so
        # low occupancy hurts it much less than rolled loopy code.
        ilp_bonus = 0.35 if launch.unrolled else 0.10
        occupancy = min(1.0, self.occupancy(launch) + ilp_bonus)
        flop_rate = self.device.peak_sp_gflops * 1e9 * issue_efficiency * occupancy
        issue_rate = (
            self.device.cuda_cores
            * self.device.shader_clock_ghz
            * 1e9
            * issue_efficiency
            * occupancy
        )
        if flop_rate <= 0 or issue_rate <= 0:
            return float("inf")
        flop_time = counters.flops / flop_rate
        instruction_time = counters.instructions / issue_rate
        return max(flop_time, instruction_time)

    def dram_time(self, counters: PerformanceCounters, include_writes: bool = True) -> float:
        transactions = counters.dram_read_transactions
        if include_writes:
            transactions += counters.dram_write_transactions
        bytes_moved = transactions * self.device.dram_transaction_bytes
        return bytes_moved / (self.device.dram_bandwidth_gbs * 1e9)

    def dram_write_time(self, counters: PerformanceCounters) -> float:
        bytes_moved = counters.dram_write_transactions * self.device.dram_transaction_bytes
        return bytes_moved / (self.device.dram_bandwidth_gbs * 1e9)

    def l2_time(self, counters: PerformanceCounters) -> float:
        bytes_moved = counters.l2_read_transactions * self.device.dram_transaction_bytes
        return bytes_moved / (self.device.l2_bandwidth_gbs * 1e9)

    def shared_time(self, counters: PerformanceCounters) -> float:
        transactions = counters.shared_load_transactions + counters.shared_store_requests
        bytes_moved = transactions * self.device.warp_size * 4
        return bytes_moved / (self.device.peak_shared_bandwidth_gbs * 1e9)

    def launch_time(self, counters: PerformanceCounters) -> float:
        return counters.kernel_launches * self.device.kernel_launch_overhead_us * 1e-6

    def transfer_time(self, counters: PerformanceCounters) -> float:
        return counters.host_device_bytes / (self.device.pcie_bandwidth_gbs * 1e9)

    # -- the full estimate ------------------------------------------------------------------

    def estimate(
        self,
        counters: PerformanceCounters,
        launch: LaunchConfiguration,
    ) -> PerformanceReport:
        """Estimate execution time and throughput for one compiled program."""
        compute = self.compute_time(counters, launch)
        dram = self.dram_time(counters, include_writes=launch.overlap_stores)
        l2 = self.l2_time(counters)
        shared = self.shared_time(counters)
        launch_overhead = self.launch_time(counters)
        transfer = self.transfer_time(counters)

        components = {
            "compute": compute,
            "dram": dram,
            "l2": l2,
            "shared memory": shared,
        }
        bound_by = max(components, key=components.get)
        kernel_time = max(components.values())
        if not launch.overlap_stores:
            # A separate copy-out phase serialises the global stores behind the
            # computation instead of hiding them (Section 4.2.1).
            kernel_time += self.dram_write_time(counters)
        total = kernel_time + launch_overhead + transfer

        useful_updates = counters.stencil_updates
        useful_flops = counters.flops * launch.useful_fraction
        gflops = useful_flops / total / 1e9 if total > 0 else 0.0
        gstencils = useful_updates / total / 1e9 if total > 0 else 0.0

        return PerformanceReport(
            device_name=self.device.name,
            total_time_s=total,
            kernel_time_s=kernel_time,
            transfer_time_s=transfer,
            launch_time_s=launch_overhead,
            compute_time_s=compute,
            dram_time_s=dram,
            l2_time_s=l2,
            shared_time_s=shared,
            gflops=gflops,
            gstencils_per_second=gstencils,
            bound_by=bound_by,
            occupancy=self.occupancy(launch),
            counters=counters,
        )
