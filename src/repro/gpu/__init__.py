"""GPU substrate: device models, performance counters, memory model, simulator.

The paper evaluates on two NVIDIA GPUs (GTX 470 and NVS 5200M) with nvcc and
nvprof.  Neither the hardware nor the CUDA toolchain is available here, so
this package provides the substitution described in DESIGN.md:

* :mod:`repro.gpu.device` — device descriptions with the architectural
  parameters the performance model needs;
* :mod:`repro.gpu.counters` — the nvprof-style counters the paper reports in
  Table 5 (global load instructions, DRAM/L2 read transactions, shared loads
  per request, global load efficiency);
* :mod:`repro.gpu.memory` — coalescing / transaction / bank-conflict model;
* :mod:`repro.gpu.simulator` — functional execution of compiled programs on
  NumPy arrays (small grids), validating schedules and shared-memory plans
  against the reference interpreter and collecting exact counters;
* :mod:`repro.gpu.perf_model` — analytic (roofline-style) conversion of the
  counted quantities into execution times, GFLOPS and GStencils/s.
"""

from repro.gpu.device import GPUDevice, GTX470, NVS5200M, get_device, list_devices
from repro.gpu.counters import PerformanceCounters
from repro.gpu.memory import CoalescingModel, SharedMemoryModel
from repro.gpu.perf_model import PerformanceModel, PerformanceReport
from repro.gpu.simulator import FunctionalSimulator, SimulationResult

__all__ = [
    "GPUDevice",
    "GTX470",
    "NVS5200M",
    "get_device",
    "list_devices",
    "PerformanceCounters",
    "CoalescingModel",
    "SharedMemoryModel",
    "PerformanceModel",
    "PerformanceReport",
    "FunctionalSimulator",
    "SimulationResult",
]
