"""Memory-system model: global-memory coalescing and shared-memory banks.

The model captures the effects the paper's Section 4.2/6.2 optimisations are
about:

* **coalescing / alignment** — a warp's 32 consecutive 4-byte accesses are
  served by whole cache lines; if the first element of a row is not aligned to
  a cache-line boundary, every row costs one extra transaction and the global
  load efficiency drops accordingly (configurations (a)–(d) of Table 4);
* **partial lines at tile borders** — footprint rows whose length is not a
  multiple of the cache line waste the remainder of the line unless loads are
  restricted to full rows (the inter-tile reuse configurations (e)/(f) reach
  100% efficiency this way);
* **shared-memory bank conflicts** — the static inter-tile reuse mapping of
  Section 4.2.2 places the same global element at a fixed shared location,
  which makes the stencil's shared accesses stride across banks and double the
  replay rate (the "shared loads per request" column of Table 5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.device import GPUDevice


@dataclass(frozen=True)
class CoalescingModel:
    """Transaction-level model of warp accesses to global memory."""

    device: GPUDevice

    def row_transactions(self, row_bytes: int, aligned: bool) -> int:
        """DRAM transactions needed to fetch one contiguous row of a footprint.

        ``aligned`` states whether the first byte of the row sits on a
        cache-line boundary (Section 4.2.3 arranges this by translating the
        tile origins).
        """
        line = self.device.cache_line_bytes
        if row_bytes <= 0:
            return 0
        lines = (row_bytes + line - 1) // line
        if not aligned and row_bytes % line != 0:
            lines += 1
        elif not aligned:
            lines += 1
        transactions_per_line = line // self.device.dram_transaction_bytes
        return lines * transactions_per_line

    def row_efficiency(self, useful_bytes: int, row_bytes: int, aligned: bool) -> float:
        """Fraction of transferred bytes that were actually requested."""
        transactions = self.row_transactions(row_bytes, aligned)
        transferred = transactions * self.device.dram_transaction_bytes
        if transferred <= 0:
            return 1.0
        return min(1.0, useful_bytes / transferred)

    def warp_load_transactions(
        self, elements: int, element_size: int, stride: int, aligned: bool
    ) -> int:
        """Transactions for one warp-wide load of ``elements`` values.

        ``stride`` is the distance (in elements) between consecutive threads'
        addresses; stride 1 is fully coalesced, larger strides degrade into
        one transaction per ``line/element_size/stride`` threads, and very
        large strides into one transaction per thread.
        """
        if elements <= 0:
            return 0
        line = self.device.cache_line_bytes
        if stride <= 0:
            return 1
        span_bytes = elements * stride * element_size
        transactions = (span_bytes + line - 1) // line
        if not aligned:
            transactions += 1
        per_transaction = self.device.dram_transaction_bytes
        return transactions * (line // per_transaction)


@dataclass(frozen=True)
class SharedMemoryModel:
    """Bank-conflict model of shared-memory accesses."""

    device: GPUDevice
    banks: int = 32

    def load_replay_factor(self, access_stride: int) -> float:
        """Average transactions per shared-load request for a given stride.

        Stride 1 (and any stride coprime with the number of banks) is
        conflict free; an even stride of ``s`` makes ``gcd(s, banks)`` threads
        hit the same bank, multiplying the replay rate accordingly.
        """
        from math import gcd

        if access_stride <= 0:
            return 1.0
        conflict = gcd(access_stride, self.banks)
        return float(max(1, conflict))

    def fits(self, bytes_needed: int) -> bool:
        """Whether a per-block shared allocation fits the SM's shared memory."""
        return bytes_needed <= self.device.shared_memory_per_sm

    def occupancy_limit(self, bytes_per_block: int) -> int:
        """How many blocks can be resident per SM given their shared usage."""
        if bytes_per_block <= 0:
            return 8
        return max(1, min(8, self.device.shared_memory_per_sm // bytes_per_block))
