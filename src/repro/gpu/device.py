"""GPU device descriptions.

The two devices are the ones used in the paper's evaluation (Section 6):

* **GeForce GTX 470** — a desktop Fermi part (14 SMs, 448 CUDA cores,
  133.9 GB/s GDDR5);
* **NVS 5200M** — a mobile Fermi part (2 SMs, 96 CUDA cores, 14.4 GB/s DDR3).

Only parameters that the analytic performance model actually uses are stored;
they are taken from the public NVIDIA specifications of the two boards.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUDevice:
    """Architectural parameters of a CUDA GPU used by the performance model."""

    name: str
    sm_count: int
    cuda_cores: int
    shader_clock_ghz: float
    dram_bandwidth_gbs: float
    l2_bandwidth_gbs: float
    shared_bytes_per_cycle_per_sm: int
    shared_memory_per_sm: int
    l1_cache_per_sm: int
    l2_cache_bytes: int
    warp_size: int
    max_threads_per_block: int
    max_blocks: int
    dram_transaction_bytes: int
    cache_line_bytes: int
    kernel_launch_overhead_us: float
    pcie_bandwidth_gbs: float
    compute_capability: str

    # -- derived quantities -----------------------------------------------------------

    @property
    def peak_sp_gflops(self) -> float:
        """Peak single-precision GFLOP/s (2 flops per core per shader cycle)."""
        return 2.0 * self.cuda_cores * self.shader_clock_ghz

    @property
    def peak_shared_bandwidth_gbs(self) -> float:
        """Aggregate shared-memory bandwidth across all SMs in GB/s."""
        return (
            self.shared_bytes_per_cycle_per_sm
            * self.sm_count
            * self.shader_clock_ghz / 2.0  # banks run at the core (half-shader) clock
        )

    @property
    def flop_to_byte_ratio(self) -> float:
        """Machine balance: flops available per DRAM byte."""
        return self.peak_sp_gflops / self.dram_bandwidth_gbs

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.cuda_cores} cores @ {self.shader_clock_ghz} GHz, "
            f"{self.peak_sp_gflops:.0f} GFLOP/s, {self.dram_bandwidth_gbs} GB/s DRAM"
        )


GTX470 = GPUDevice(
    name="GTX 470",
    sm_count=14,
    cuda_cores=448,
    shader_clock_ghz=1.215,
    dram_bandwidth_gbs=133.9,
    l2_bandwidth_gbs=300.0,
    shared_bytes_per_cycle_per_sm=64,
    shared_memory_per_sm=48 * 1024,
    l1_cache_per_sm=16 * 1024,
    l2_cache_bytes=640 * 1024,
    warp_size=32,
    max_threads_per_block=1024,
    max_blocks=65535,
    dram_transaction_bytes=32,
    cache_line_bytes=128,
    kernel_launch_overhead_us=8.0,
    pcie_bandwidth_gbs=5.5,
    compute_capability="2.0",
)

NVS5200M = GPUDevice(
    name="NVS 5200M",
    sm_count=2,
    cuda_cores=96,
    shader_clock_ghz=1.344,
    dram_bandwidth_gbs=14.4,
    l2_bandwidth_gbs=40.0,
    shared_bytes_per_cycle_per_sm=64,
    shared_memory_per_sm=48 * 1024,
    l1_cache_per_sm=16 * 1024,
    l2_cache_bytes=128 * 1024,
    warp_size=32,
    max_threads_per_block=1024,
    max_blocks=65535,
    dram_transaction_bytes=32,
    cache_line_bytes=128,
    kernel_launch_overhead_us=10.0,
    pcie_bandwidth_gbs=2.5,
    compute_capability="2.1",
)

_DEVICES = {
    "gtx470": GTX470,
    "gtx 470": GTX470,
    "nvs5200": NVS5200M,
    "nvs 5200": NVS5200M,
    "nvs5200m": NVS5200M,
}


def get_device(name: str) -> GPUDevice:
    """Look up a device by (case/space insensitive) name."""
    key = name.strip().lower()
    if key in _DEVICES:
        return _DEVICES[key]
    raise KeyError(f"unknown device {name!r}; known: {sorted(set(_DEVICES))}")


def list_devices() -> list[GPUDevice]:
    """The devices used in the paper's evaluation."""
    return [GTX470, NVS5200M]
