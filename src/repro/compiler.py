"""The classic compiler façade over the staged :mod:`repro.api` pipeline.

:class:`HybridCompiler` used to *be* the pipeline; it is now a thin façade
over a :class:`repro.api.Session` run with the ``hybrid`` strategy, kept so
the original entry point — ``HybridCompiler().compile(program)`` returning a
:class:`CompilationResult` with every intermediate artefact — continues to
work unchanged.  New code should prefer :class:`repro.api.Session`, which
additionally offers ``stop_after=``, artifact injection, strategy selection
and per-pass instrumentation.

The stages the façade drives (see :mod:`repro.api.passes`):

1. canonicalise the stencil program and compute its dependences (Section 3.2);
2. select tile sizes with the load-to-compute model, unless explicit sizes are
   given (Section 3.7);
3. construct the hybrid hexagonal/classical tiling (Sections 3.3–3.6);
4. plan shared memory usage (Section 4.2);
5. generate CUDA source (Section 4.1/4.3) and the pseudo-PTX of the core loop;
6. build the analytic execution profile used for performance estimation.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from collections.abc import Mapping

import numpy as np

from repro.api.config import OptimizationConfig
from repro.api.session import Session
from repro.cache import DiskCache
from repro.codegen.analysis import AnalyticProfiler, ExecutionEstimate
from repro.codegen.kernel_ir import CoreLoopProfile
from repro.codegen.ptx import PtxSummary, emit_core_ptx
from repro.codegen.shared_mem import SharedMemoryPlan
from repro.gpu.device import GPUDevice, GTX470
from repro.gpu.perf_model import PerformanceModel, PerformanceReport
from repro.gpu.simulator import FunctionalSimulator, SimulationResult
from repro.model.preprocess import CanonicalForm
from repro.model.program import StencilProgram
from repro.tiling.hybrid import HybridTiling, TileSizes
from repro.tiling.tile_size import TileCostEstimate
from repro.tiling.validate import ValidationReport, validate_hybrid_tiling


@dataclass
class CompilationResult:
    """Everything the hybrid compiler produced for one stencil program."""

    program: StencilProgram
    canonical: CanonicalForm
    tiling: HybridTiling
    config: OptimizationConfig
    shared_plan: SharedMemoryPlan
    cuda_source: str
    core_profiles: list[CoreLoopProfile]
    tile_cost: TileCostEstimate | None
    device: GPUDevice

    # -- analysis ------------------------------------------------------------------------

    def execution_estimate(self, device: GPUDevice | None = None) -> ExecutionEstimate:
        """Analytic counters + launch configuration for the full problem size."""
        target = device or self.device
        profiler = AnalyticProfiler(self.tiling, self.shared_plan, self.config, target)
        return profiler.estimate()

    def estimate_performance(self, device: GPUDevice | None = None) -> PerformanceReport:
        """Roofline performance estimate on the given (or default) device."""
        target = device or self.device
        estimate = self.execution_estimate(target)
        return PerformanceModel(target).estimate(estimate.counters, estimate.launch)

    def core_ptx(self, statement: str | None = None) -> PtxSummary:
        """Pseudo-PTX of the unrolled core computation (Figure 2)."""
        return emit_core_ptx(self.program, statement)

    # -- validation ------------------------------------------------------------------------

    def validate(self) -> ValidationReport:
        """Exhaustive coverage/legality/uniformity validation (small programs)."""
        return validate_hybrid_tiling(self.tiling)

    def simulate(
        self,
        initial: Mapping[str, np.ndarray] | None = None,
        seed: int = 0,
        batch: bool = True,
    ) -> SimulationResult:
        """Functional execution on the (small) program; see the simulator docs.

        ``batch=False`` selects the scalar reference interpreter; the default
        vectorised mode is bit-for-bit identical to it.
        """
        simulator = FunctionalSimulator(
            self.tiling, self.shared_plan, self.config, batch=batch
        )
        return simulator.run(initial=initial, seed=seed)

    def simulate_and_check(self, seed: int = 0) -> SimulationResult:
        """Simulate and assert equality against the NumPy reference interpreter."""
        initial = self.program.initial_state(seed)
        result = self.simulate(initial={k: v.copy() for k, v in initial.items()}, seed=seed)
        reference = self.program.run_reference(
            initial={k: v.copy() for k, v in initial.items()}
        )
        if not result.matches_reference(reference):
            from repro.api.errors import SimulationMismatchError

            raise SimulationMismatchError(
                f"functional simulation of {self.program.name} diverges from the reference"
            )
        return result

    def describe(self) -> str:
        lines = [
            f"compilation of {self.program.name} ({self.config.label})",
            self.tiling.describe(),
            self.shared_plan.describe(),
        ]
        return "\n".join(lines)


class HybridCompiler:
    """Compile stencil programs with hybrid hexagonal/classical tiling.

    A façade over :class:`repro.api.Session` with the ``hybrid`` strategy.
    Two cache layers sit in front of the pipeline:

    * an **in-memory result memo** per compiler instance, keyed by the program
      (by identity), the tile sizes and the remaining pipeline options — hits
      refresh the entry's recency and preserve result identity, evictions
      drop the least recently *used* entry;
    * the session's pass-granular caches: an artifact LRU plus an optional
      **on-disk cache** (:class:`repro.cache.DiskCache`), keyed per pass by a
      content hash chaining the program source, the strategy, every relevant
      option and the stage schema version, so separate processes share
      compiled artefacts — and unchanged pipeline prefixes are reused even
      when only downstream options change.  Pass
      ``disk_cache=DiskCache.default()`` (what the ``hexcc`` CLI does) to
      enable the persistent layer.

    The pipeline is deterministic and every artefact is derived from the
    key, so cached results are indistinguishable from fresh compilations.
    """

    #: Maximum number of memoised compilation results per compiler instance.
    CACHE_CAPACITY = 64

    def __init__(
        self,
        device: GPUDevice = GTX470,
        disk_cache: DiskCache | None = None,
        tuning_db=None,
    ) -> None:
        self.device = device
        self.disk_cache = disk_cache
        self.session = Session(
            device=device, strategy="hybrid", disk_cache=disk_cache,
            tuning_db=tuning_db,
        )
        # Result memo keyed by (program, tile_sizes, config, storage, threads).
        # StencilProgram hashes/compares by identity and the key tuple holds
        # a strong reference to it, so the entry can never be confused with a
        # different program reusing a recycled id — including results built
        # from disk-cached artifacts, which reference their own unpickled
        # program copy rather than the caller's object.
        self._cache: OrderedDict[tuple, CompilationResult] = OrderedDict()
        #: The :class:`repro.api.PipelineRun` behind the most recent
        #: non-memoised :meth:`compile` — exposes the pass events (and their
        #: span-derived timings) without widening the façade's return type.
        self.last_run = None

    def cache_clear(self) -> None:
        """Drop all memoised results and pass artifacts (in-memory layers)."""
        self._cache.clear()
        self.session.cache_clear()

    def compile(
        self,
        program: StencilProgram | str,
        tile_sizes: TileSizes | None = None,
        config: OptimizationConfig | None = None,
        storage: str = "expanded",
        threads: tuple[int, ...] | None = None,
        tuned: bool = False,
    ) -> CompilationResult:
        """Run the full pipeline on one stencil program.

        Parameters
        ----------
        program:
            The stencil program (any size; use small sizes for simulation),
            or raw Figure-1-style C source text, which is parsed with
            :func:`repro.frontend.parse_stencil` first.
        tile_sizes:
            Explicit ``h, w0..wn``; selected by the §3.7 model when omitted.
        config:
            Optimisation configuration; the paper's best configuration (f)
            when omitted.
        storage:
            Dependence storage model passed to the canonicaliser.
        tuned:
            Apply the best known configuration from the tuning database when
            no explicit ``tile_sizes`` are given (see :meth:`Session.run`).
        """
        if isinstance(program, str):
            from repro.frontend import parse_stencil

            program = parse_stencil(program)
        config = config or OptimizationConfig.default()

        key = (program, tile_sizes, config, storage, threads, tuned)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            return cached

        run = self.session.run(
            program,
            tile_sizes=tile_sizes,
            config=config,
            storage=storage,
            threads=threads,
            stop_after="codegen",
            tuned=tuned,
        )
        self.last_run = run
        result = run.result()
        self._remember(key, result)
        return result

    def _remember(self, key: tuple, result: CompilationResult) -> None:
        """Insert into the in-memory memo, evicting the least recently used."""
        if len(self._cache) >= self.CACHE_CAPACITY:
            self._cache.popitem(last=False)
        self._cache[key] = result
        self._cache.move_to_end(key)
