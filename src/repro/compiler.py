"""The end-to-end hybrid hexagonal/classical compiler.

:class:`HybridCompiler` strings the whole pipeline of the paper together:

1. canonicalise the stencil program and compute its dependences (Section 3.2);
2. select tile sizes with the load-to-compute model, unless explicit sizes are
   given (Section 3.7);
3. construct the hybrid hexagonal/classical tiling (Sections 3.3–3.6);
4. plan shared memory usage (Section 4.2);
5. generate CUDA source (Section 4.1/4.3) and the pseudo-PTX of the core loop;
6. build the analytic execution profile used for performance estimation.

The :class:`CompilationResult` bundles every intermediate artefact so tests,
examples and benchmarks can inspect exactly what the compiler did.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.cache import DiskCache, compilation_key
from repro.codegen.analysis import AnalyticProfiler, ExecutionEstimate
from repro.codegen.cuda import CudaCodeGenerator
from repro.codegen.kernel_ir import CoreLoopProfile, analyze_core_loop
from repro.codegen.ptx import PtxSummary, emit_core_ptx
from repro.codegen.shared_mem import SharedMemoryPlan, plan_shared_memory
from repro.gpu.device import GPUDevice, GTX470
from repro.gpu.perf_model import PerformanceModel, PerformanceReport
from repro.gpu.simulator import FunctionalSimulator, SimulationResult
from repro.model.preprocess import CanonicalForm, canonicalize
from repro.model.program import StencilProgram
from repro.pipeline import OptimizationConfig
from repro.tiling.hybrid import HybridTiling, TileSizes
from repro.tiling.tile_size import TileCostEstimate, select_tile_sizes
from repro.tiling.validate import ValidationReport, validate_hybrid_tiling


@dataclass
class CompilationResult:
    """Everything the hybrid compiler produced for one stencil program."""

    program: StencilProgram
    canonical: CanonicalForm
    tiling: HybridTiling
    config: OptimizationConfig
    shared_plan: SharedMemoryPlan
    cuda_source: str
    core_profiles: list[CoreLoopProfile]
    tile_cost: TileCostEstimate | None
    device: GPUDevice

    # -- analysis ------------------------------------------------------------------------

    def execution_estimate(self, device: GPUDevice | None = None) -> ExecutionEstimate:
        """Analytic counters + launch configuration for the full problem size."""
        target = device or self.device
        profiler = AnalyticProfiler(self.tiling, self.shared_plan, self.config, target)
        return profiler.estimate()

    def estimate_performance(self, device: GPUDevice | None = None) -> PerformanceReport:
        """Roofline performance estimate on the given (or default) device."""
        target = device or self.device
        estimate = self.execution_estimate(target)
        return PerformanceModel(target).estimate(estimate.counters, estimate.launch)

    def core_ptx(self, statement: str | None = None) -> PtxSummary:
        """Pseudo-PTX of the unrolled core computation (Figure 2)."""
        return emit_core_ptx(self.program, statement)

    # -- validation ------------------------------------------------------------------------

    def validate(self) -> ValidationReport:
        """Exhaustive coverage/legality/uniformity validation (small programs)."""
        return validate_hybrid_tiling(self.tiling)

    def simulate(
        self,
        initial: Mapping[str, np.ndarray] | None = None,
        seed: int = 0,
        batch: bool = True,
    ) -> SimulationResult:
        """Functional execution on the (small) program; see the simulator docs.

        ``batch=False`` selects the scalar reference interpreter; the default
        vectorised mode is bit-for-bit identical to it.
        """
        simulator = FunctionalSimulator(
            self.tiling, self.shared_plan, self.config, batch=batch
        )
        return simulator.run(initial=initial, seed=seed)

    def simulate_and_check(self, seed: int = 0) -> SimulationResult:
        """Simulate and assert equality against the NumPy reference interpreter."""
        initial = self.program.initial_state(seed)
        result = self.simulate(initial={k: v.copy() for k, v in initial.items()}, seed=seed)
        reference = self.program.run_reference(
            initial={k: v.copy() for k, v in initial.items()}
        )
        if not result.matches_reference(reference):
            raise AssertionError(
                f"functional simulation of {self.program.name} diverges from the reference"
            )
        return result

    def describe(self) -> str:
        lines = [
            f"compilation of {self.program.name} ({self.config.label})",
            self.tiling.describe(),
            self.shared_plan.describe(),
        ]
        return "\n".join(lines)


class HybridCompiler:
    """Compile stencil programs with hybrid hexagonal/classical tiling.

    Two cache layers sit in front of the pipeline:

    * an **in-memory LRU** per compiler instance, keyed by the program (by
      identity), the tile sizes and the remaining pipeline options — hits
      refresh the entry's recency, evictions drop the least recently *used*
      entry;
    * an optional **on-disk cache** (:class:`repro.cache.DiskCache`), keyed
      by a content hash of the program source and every pipeline option, so
      separate processes and separate runs share compiled artefacts.  Pass
      ``disk_cache=DiskCache.default()`` (what the ``hexcc`` CLI does) to
      enable it.

    The pipeline is deterministic and every artefact is derived from the
    key, so cached results are indistinguishable from fresh compilations.
    """

    #: Maximum number of memoised compilations per compiler instance.
    CACHE_CAPACITY = 64

    def __init__(
        self,
        device: GPUDevice = GTX470,
        disk_cache: DiskCache | None = None,
    ) -> None:
        self.device = device
        self.disk_cache = disk_cache
        # LRU keyed by (program, tile_sizes, config, storage, threads).
        # StencilProgram hashes/compares by identity and the key tuple holds
        # a strong reference to it, so the entry can never be confused with a
        # different program reusing a recycled id — including results
        # fetched from the disk cache, which reference their own unpickled
        # program copy rather than the caller's object.
        self._cache: OrderedDict[tuple, CompilationResult] = OrderedDict()

    def cache_clear(self) -> None:
        """Drop all memoised compilation results (in-memory layer only)."""
        self._cache.clear()

    def compile(
        self,
        program: StencilProgram | str,
        tile_sizes: TileSizes | None = None,
        config: OptimizationConfig | None = None,
        storage: str = "expanded",
        threads: tuple[int, ...] | None = None,
    ) -> CompilationResult:
        """Run the full pipeline on one stencil program.

        Parameters
        ----------
        program:
            The stencil program (any size; use small sizes for simulation),
            or raw Figure-1-style C source text, which is parsed with
            :func:`repro.frontend.parse_stencil` first.
        tile_sizes:
            Explicit ``h, w0..wn``; selected by the §3.7 model when omitted.
        config:
            Optimisation configuration; the paper's best configuration (f)
            when omitted.
        storage:
            Dependence storage model passed to the canonicaliser.
        """
        if isinstance(program, str):
            from repro.frontend import parse_stencil

            program = parse_stencil(program)
        config = config or OptimizationConfig.default()

        key = (program, tile_sizes, config, storage, threads)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            return cached

        disk_key: str | None = None
        if self.disk_cache is not None:
            disk_key = compilation_key(
                program, tile_sizes, config, storage, threads, self.device
            )
            fetched = self.disk_cache.get(disk_key)
            if isinstance(fetched, CompilationResult):
                self._remember(key, fetched)
                return fetched

        canonical = canonicalize(program, storage=storage)

        tile_cost: TileCostEstimate | None = None
        if tile_sizes is None:
            tile_cost = select_tile_sizes(
                canonical,
                shared_memory_limit=self.device.shared_memory_per_sm,
                warp_size=self.device.warp_size,
                inter_tile_reuse=config.inter_tile_reuse != "none",
            )
            tile_sizes = tile_cost.sizes

        tiling = HybridTiling(canonical, tile_sizes)
        shared_plan = plan_shared_memory(tiling, config)
        generator = CudaCodeGenerator(tiling, shared_plan, config, threads=threads)
        cuda_source = generator.generate()
        core_profiles = analyze_core_loop(
            program,
            unroll=config.unroll,
            separate_full_partial=config.separate_full_partial,
            use_shared_memory=config.use_shared_memory,
        )
        result = CompilationResult(
            program=program,
            canonical=canonical,
            tiling=tiling,
            config=config,
            shared_plan=shared_plan,
            cuda_source=cuda_source,
            core_profiles=core_profiles,
            tile_cost=tile_cost,
            device=self.device,
        )
        self._remember(key, result)
        if self.disk_cache is not None and disk_key is not None:
            self.disk_cache.put(disk_key, result)
        return result

    def _remember(self, key: tuple, result: CompilationResult) -> None:
        """Insert into the in-memory LRU, evicting the least recently used."""
        if len(self._cache) >= self.CACHE_CAPACITY:
            self._cache.popitem(last=False)
        self._cache[key] = result
        self._cache.move_to_end(key)
