"""The end-to-end hybrid hexagonal/classical compiler.

:class:`HybridCompiler` strings the whole pipeline of the paper together:

1. canonicalise the stencil program and compute its dependences (Section 3.2);
2. select tile sizes with the load-to-compute model, unless explicit sizes are
   given (Section 3.7);
3. construct the hybrid hexagonal/classical tiling (Sections 3.3–3.6);
4. plan shared memory usage (Section 4.2);
5. generate CUDA source (Section 4.1/4.3) and the pseudo-PTX of the core loop;
6. build the analytic execution profile used for performance estimation.

The :class:`CompilationResult` bundles every intermediate artefact so tests,
examples and benchmarks can inspect exactly what the compiler did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.codegen.analysis import AnalyticProfiler, ExecutionEstimate
from repro.codegen.cuda import CudaCodeGenerator
from repro.codegen.kernel_ir import CoreLoopProfile, analyze_core_loop
from repro.codegen.ptx import PtxSummary, emit_core_ptx
from repro.codegen.shared_mem import SharedMemoryPlan, plan_shared_memory
from repro.gpu.device import GPUDevice, GTX470
from repro.gpu.perf_model import PerformanceModel, PerformanceReport
from repro.gpu.simulator import FunctionalSimulator, SimulationResult
from repro.model.preprocess import CanonicalForm, canonicalize
from repro.model.program import StencilProgram
from repro.pipeline import OptimizationConfig
from repro.tiling.hybrid import HybridTiling, TileSizes
from repro.tiling.tile_size import TileCostEstimate, select_tile_sizes
from repro.tiling.validate import ValidationReport, validate_hybrid_tiling


@dataclass
class CompilationResult:
    """Everything the hybrid compiler produced for one stencil program."""

    program: StencilProgram
    canonical: CanonicalForm
    tiling: HybridTiling
    config: OptimizationConfig
    shared_plan: SharedMemoryPlan
    cuda_source: str
    core_profiles: list[CoreLoopProfile]
    tile_cost: TileCostEstimate | None
    device: GPUDevice

    # -- analysis ------------------------------------------------------------------------

    def execution_estimate(self, device: GPUDevice | None = None) -> ExecutionEstimate:
        """Analytic counters + launch configuration for the full problem size."""
        target = device or self.device
        profiler = AnalyticProfiler(self.tiling, self.shared_plan, self.config, target)
        return profiler.estimate()

    def estimate_performance(self, device: GPUDevice | None = None) -> PerformanceReport:
        """Roofline performance estimate on the given (or default) device."""
        target = device or self.device
        estimate = self.execution_estimate(target)
        return PerformanceModel(target).estimate(estimate.counters, estimate.launch)

    def core_ptx(self, statement: str | None = None) -> PtxSummary:
        """Pseudo-PTX of the unrolled core computation (Figure 2)."""
        return emit_core_ptx(self.program, statement)

    # -- validation ------------------------------------------------------------------------

    def validate(self) -> ValidationReport:
        """Exhaustive coverage/legality/uniformity validation (small programs)."""
        return validate_hybrid_tiling(self.tiling)

    def simulate(
        self,
        initial: Mapping[str, np.ndarray] | None = None,
        seed: int = 0,
        batch: bool = True,
    ) -> SimulationResult:
        """Functional execution on the (small) program; see the simulator docs.

        ``batch=False`` selects the scalar reference interpreter; the default
        vectorised mode is bit-for-bit identical to it.
        """
        simulator = FunctionalSimulator(
            self.tiling, self.shared_plan, self.config, batch=batch
        )
        return simulator.run(initial=initial, seed=seed)

    def simulate_and_check(self, seed: int = 0) -> SimulationResult:
        """Simulate and assert equality against the NumPy reference interpreter."""
        initial = self.program.initial_state(seed)
        result = self.simulate(initial={k: v.copy() for k, v in initial.items()}, seed=seed)
        reference = self.program.run_reference(
            initial={k: v.copy() for k, v in initial.items()}
        )
        if not result.matches_reference(reference):
            raise AssertionError(
                f"functional simulation of {self.program.name} diverges from the reference"
            )
        return result

    def describe(self) -> str:
        lines = [
            f"compilation of {self.program.name} ({self.config.label})",
            self.tiling.describe(),
            self.shared_plan.describe(),
        ]
        return "\n".join(lines)


class HybridCompiler:
    """Compile stencil programs with hybrid hexagonal/classical tiling.

    Compilation results are memoised per compiler instance, keyed by the
    program (by identity), the tile sizes and the remaining pipeline options.
    The pipeline is deterministic and every artefact is derived from that
    key, so repeated compilations — benchmark loops, the experiment drivers
    recompiling the same stencil per configuration — return the cached
    :class:`CompilationResult` immediately.
    """

    #: Maximum number of memoised compilations per compiler instance.
    CACHE_CAPACITY = 64

    def __init__(self, device: GPUDevice = GTX470) -> None:
        self.device = device
        # Keyed by (id(program), tile_sizes, config, storage, threads); the
        # cached CompilationResult holds a strong reference to the program,
        # so its id() cannot be recycled while the entry is alive.
        self._cache: dict[tuple, CompilationResult] = {}

    def cache_clear(self) -> None:
        """Drop all memoised compilation results."""
        self._cache.clear()

    def compile(
        self,
        program: StencilProgram | str,
        tile_sizes: TileSizes | None = None,
        config: OptimizationConfig | None = None,
        storage: str = "expanded",
        threads: tuple[int, ...] | None = None,
    ) -> CompilationResult:
        """Run the full pipeline on one stencil program.

        Parameters
        ----------
        program:
            The stencil program (any size; use small sizes for simulation),
            or raw Figure-1-style C source text, which is parsed with
            :func:`repro.frontend.parse_stencil` first.
        tile_sizes:
            Explicit ``h, w0..wn``; selected by the §3.7 model when omitted.
        config:
            Optimisation configuration; the paper's best configuration (f)
            when omitted.
        storage:
            Dependence storage model passed to the canonicaliser.
        """
        if isinstance(program, str):
            from repro.frontend import parse_stencil

            program = parse_stencil(program)
        config = config or OptimizationConfig.default()

        key = (id(program), tile_sizes, config, storage, threads)
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        canonical = canonicalize(program, storage=storage)

        tile_cost: TileCostEstimate | None = None
        if tile_sizes is None:
            tile_cost = select_tile_sizes(
                canonical,
                shared_memory_limit=self.device.shared_memory_per_sm,
                warp_size=self.device.warp_size,
                inter_tile_reuse=config.inter_tile_reuse != "none",
            )
            tile_sizes = tile_cost.sizes

        tiling = HybridTiling(canonical, tile_sizes)
        shared_plan = plan_shared_memory(tiling, config)
        generator = CudaCodeGenerator(tiling, shared_plan, config, threads=threads)
        cuda_source = generator.generate()
        core_profiles = analyze_core_loop(
            program,
            unroll=config.unroll,
            separate_full_partial=config.separate_full_partial,
            use_shared_memory=config.use_shared_memory,
        )
        result = CompilationResult(
            program=program,
            canonical=canonical,
            tiling=tiling,
            config=config,
            shared_plan=shared_plan,
            cuda_source=cuda_source,
            core_profiles=core_profiles,
            tile_cost=tile_cost,
            device=self.device,
        )
        if len(self._cache) >= self.CACHE_CAPACITY:
            self._cache.pop(next(iter(self._cache)))
        self._cache[key] = result
        return result
