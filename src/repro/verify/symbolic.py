"""Symbolic schedule race detection over *all* problem sizes.

The enumerated validator (:mod:`repro.tiling.validate`) checks legality by
executing the schedule on one small grid.  This module proves (or refutes)
legality for **every** grid at once, exploiting the fact that all three
schedules are closed-form quasi-affine maps of the canonical coordinates and
all dependences are constant distance vectors (Section 3.3.3 of the paper).

The key reduction: for the hexagonal schedule, the phase a point lands in
and the *displacement* of its tile indices relative to any fixed reference
are exact functions of the residues ``λ = (l + h + 1) mod P_t`` and
``μ = ν mod P_s`` of its phase-0 box coordinates — the symbolic tile indices
``T`` and ``S0`` cancel out of every comparison between a dependence's sink
``(l, s0)`` and its source ``(l - dl, s0 - ds0)``.  Every residue class is
inhabited on all sufficiently large grids, so checking the finitely many
``(λ, μ)`` classes is a sound **and complete** decision procedure.  The
classical inner dimensions contribute, per class, a small set of possible
tile displacements ``ΔS_i ∈ {q, q+1}`` derived from the admissible residues
of the skewed numerator; the lexicographic intra-block check enumerates the
(at most ``2^(n-1)``) combinations.  The classical and diamond schedules
reduce the same way over ``l mod lcm(P, k)`` (and ``s0 mod size``).

A dependence is **ordered** when, in every residue class, the source's
schedule coordinates strictly precede the sink's at a *sequential* level
before differing at any parallel one — exactly the execution model
:mod:`repro.tiling.validate` enumerates: sequential ``T``/phases (hybrid),
sequential wavefronts (classical/diamond), parallel tiles within a
launch/wavefront, sequential inner tile loops, barrier-stepped local time,
parallel threads within a barrier step.  Any class where that fails is a
race, reported with a concrete counterexample pair reconstructed at small
tile indices (valid on every grid large enough to contain it).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.verify.report import (
    Instance,
    RaceFinding,
    ScheduleVerdict,
    VerificationError,
)

if TYPE_CHECKING:  # imported lazily at runtime to keep layering loose
    from repro.model.preprocess import CanonicalForm
    from repro.tiling.classical import ClassicalTiling
    from repro.tiling.diamond import DiamondTiling
    from repro.tiling.hybrid import HybridTiling

#: Cap on reported races per dependence and coverage findings per model —
#: one witness proves the schedule wrong; thousands restate it.
_MAX_RACES_PER_DEPENDENCE = 1
_MAX_COVERAGE_FINDINGS = 3


# -- the hybrid schedule model --------------------------------------------------------


@dataclass(frozen=True)
class InnerDim:
    """One classically tiled inner dimension of the hybrid schedule.

    ``S_i = floor((scale*s_i + skew*u) / (scale*width))`` where ``u`` is the
    local time within the assigned hexagonal phase box and
    ``skew/scale = δ1_i`` is the lower dependence slope of the dimension.
    """

    name: str
    scale: int
    skew: int
    width: int

    @property
    def period(self) -> int:
        """The numerator period ``scale * width`` of one tile."""
        return self.scale * self.width


@dataclass(frozen=True)
class HybridScheduleModel:
    """Closed-form parameters of the hybrid schedule, as the verifier sees it.

    Separating the model from :class:`repro.tiling.hybrid.HybridTiling` is
    what makes fault injection possible: the mutation corpus
    (:mod:`repro.verify.faults`) perturbs *this* object — swaps the phase
    order, drops the intra-tile barrier, flips the inner tile ordering,
    shrinks the hexagon — and the verifier must notice every time.

    The execution-model switches mirror the GPU mapping of Section 3.4:
    ``phase_order`` is the launch order of the two kernels within one host
    ``T`` iteration, ``barrier_per_step`` states that consecutive local time
    steps inside a tile are separated by ``__syncthreads()``, and
    ``inner_tiles_ascending`` that the sequential in-kernel loops over
    ``S1..Sn`` run in increasing index order.
    """

    height: int
    num_statements: int
    time_period: int
    space_period: int
    drift: int
    phase0_offset: int
    row_lower: tuple[int, ...]
    row_upper: tuple[int, ...]
    inner: tuple[InnerDim, ...]
    phase_order: tuple[int, int] = (0, 1)
    barrier_per_step: bool = True
    inner_tiles_ascending: bool = True

    @classmethod
    def from_tiling(cls, tiling: "HybridTiling") -> "HybridScheduleModel":
        shape = tiling.shape
        lower, upper = shape._row_bounds
        return cls(
            height=shape.height,
            num_statements=tiling.canonical.num_statements,
            time_period=shape.time_period,
            space_period=shape.space_period,
            drift=shape.drift,
            phase0_offset=shape.floor_delta0_h + shape.width + 1,
            row_lower=tuple(int(b) for b in lower),
            row_upper=tuple(int(b) for b in upper),
            inner=tuple(
                InnerDim(
                    name=classical.dim_name,
                    scale=classical.scale,
                    skew=classical.skew_numerator,
                    width=classical.width,
                )
                for classical in tiling.classical
            ),
        )

    def contains(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorised membership test of the hexagonal tile shape."""
        lower = np.asarray(self.row_lower)
        upper = np.asarray(self.row_upper)
        in_rows = (a >= 0) & (a < self.time_period)
        clipped = np.where(in_rows, a, 0)
        return in_rows & (b >= lower[clipped]) & (b <= upper[clipped])


@dataclass(frozen=True)
class _Assignment:
    """Phase/tile displacement of one point, per residue class (arrays)."""

    claimed: np.ndarray   # bool — some phase box contains the point
    phase: np.ndarray     # 0 (blue) / 1 (green) where claimed
    t_offset: np.ndarray  # time-tile index relative to the symbolic base T
    s_offset: np.ndarray  # S0 index relative to the symbolic base S
    local_a: np.ndarray   # local time within the claiming phase box


def _assign_relative(
    model: HybridScheduleModel, lam: np.ndarray, mu: np.ndarray, dl: int, ds: int
) -> _Assignment:
    """Assign the point displaced by ``(-dl, -ds)`` from the class anchor.

    ``(lam, mu)`` are the anchor's phase-0 residues; all returned tile
    indices are offsets against the anchor's symbolic ``(T, S)``, which is
    what makes the comparison size-independent.
    """
    p_t, p_s = model.time_period, model.space_period
    half = model.height + 1
    offset = model.phase0_offset

    raw0 = lam - dl
    e0 = raw0 // p_t
    a0 = raw0 - e0 * p_t
    n0 = mu - ds + e0 * model.drift
    s0_off = n0 // p_s
    b0 = n0 - s0_off * p_s
    in_p0 = model.contains(a0, b0)

    raw1 = lam - dl - half
    e1 = raw1 // p_t
    a1 = raw1 - e1 * p_t
    n1 = mu - offset - ds + e1 * model.drift
    s1_off = n1 // p_s
    b1 = n1 - s1_off * p_s
    in_p1 = model.contains(a1, b1)

    return _Assignment(
        claimed=in_p0 | in_p1,
        phase=np.where(in_p0, 0, 1),
        t_offset=np.where(in_p0, e0, e1),
        s_offset=np.where(in_p0, s0_off, s1_off),
        local_a=np.where(in_p0, a0, a1),
    )


def _admissible_displacements(
    dim: InnerDim, distance: int, u_sink: int, u_src: int
) -> list[tuple[int, int]]:
    """Possible inner tile displacements ``ΔS_i`` with a residue witness.

    For a sink numerator residue ``ρ`` (which must satisfy
    ``ρ ≡ skew*u_sink (mod scale)`` to come from an integer ``s_i``), the
    displacement is ``floor((ρ + δ)/period)`` with
    ``δ = -scale*ds_i + skew*(u_src - u_sink)``.  Returns the distinct
    values, each with one witness ``ρ``.
    """
    delta = -dim.scale * distance + dim.skew * (u_src - u_sink)
    base = (dim.skew * u_sink) % dim.scale if dim.scale > 1 else 0
    seen: dict[int, int] = {}
    for rho in range(base, dim.period, max(dim.scale, 1)):
        value = (rho + delta) // dim.period
        seen.setdefault(value, rho)
    return sorted(seen.items())


def _lex_violation(
    deltas: Sequence[int], du: int, model: HybridScheduleModel
) -> str | None:
    """Which level (if any) fails to order source strictly before sink.

    ``deltas`` are the source-minus-sink inner tile displacements and ``du``
    the local-time displacement; ordering is the lexicographic in-kernel
    nest ``(S1, ..., Sn, t')`` with parallel threads below ``t'``.
    """
    for delta in deltas:
        effective = delta if model.inner_tiles_ascending else -delta
        if effective < 0:
            return None
        if effective > 0:
            return "intra_tile"
    if not model.barrier_per_step:
        return "barrier"
    return "barrier" if du >= 0 else None


# -- counterexample reconstruction ----------------------------------------------------


def _statement_names(canonical: "CanonicalForm") -> list[str]:
    return [statement.name for statement in canonical.scop.statements]


def _hybrid_instance(
    canonical: "CanonicalForm",
    model: HybridScheduleModel,
    point: tuple[int, ...],
    assignment: tuple[int, int, int, int],
) -> Instance:
    names = _statement_names(canonical)
    index, t, space = canonical.from_canonical(point)
    time_tile, phase, block, local = assignment
    return Instance(
        statement=names[index],
        t=t,
        point=space,
        schedule=(("T", time_tile), ("phase", phase), ("S0", block), ("t'", local)),
    )


def _reconstruct_pair(
    canonical: "CanonicalForm",
    model: HybridScheduleModel,
    lam: int,
    mu: int,
    rhos: Sequence[int],
    dl: int,
    ds: Sequence[int],
    sink: tuple[int, int, int, int],
    source: tuple[int, int, int, int],
) -> tuple[Instance, Instance]:
    """Concrete canonical points realising residue class ``(λ, μ, ρ...)``.

    Inverts the phase-0 box map at generous symbolic indices (``T = t_base``,
    ``S = s_base``) so both endpoints have non-negative coordinates; the pair
    is a member of every grid large enough to contain it.
    """
    p_t, p_s = model.time_period, model.space_period
    half = model.height + 1
    t_base = 2 + (dl + half) // p_t
    s_base = 3 + (
        abs(int(ds[0])) + (t_base + 1) * abs(model.drift) + model.phase0_offset
    ) // p_s
    logical = t_base * p_t + lam - half
    s0 = s_base * p_s + mu - model.phase0_offset - t_base * model.drift
    coords = [logical, s0]
    u_sink = sink[3]
    for dim, rho in zip(model.inner, rhos):
        numerator = 2 * dim.period + rho
        coords.append((numerator - dim.skew * u_sink) // dim.scale)
    sink_point = tuple(coords)
    source_point = tuple(c - d for c, d in zip(sink_point, (dl, *ds)))

    def absolute(rel: tuple[int, int, int, int]) -> tuple[int, int, int, int]:
        t_off, phase, s_off, local = rel
        return (t_base + t_off, phase, s_base + s_off, local)

    return (
        _hybrid_instance(canonical, model, source_point, absolute(source)),
        _hybrid_instance(canonical, model, sink_point, absolute(sink)),
    )


# -- hybrid verification --------------------------------------------------------------


def _check_coverage(
    model: HybridScheduleModel, canonical: "CanonicalForm"
) -> tuple[bool, list[RaceFinding]]:
    """Prove the two phases partition the ``(l, s0)`` plane, symbolically.

    Residue classes again: for every ``(λ, μ)`` exactly one of the two phase
    boxes must claim the point.  Holds for every grid iff it holds per class.
    """
    p_t, p_s = model.time_period, model.space_period
    lam, mu = np.meshgrid(np.arange(p_t), np.arange(p_s), indexing="ij")
    lam, mu = lam.ravel(), mu.ravel()
    sink = _assign_relative(model, lam, mu, 0, 0)
    # Recompute the two memberships separately to distinguish gaps from
    # overlaps (the assignment above collapses them into "claimed").
    half = model.height + 1
    e1 = np.where(lam >= half, 0, -1)
    a1 = (lam - half) % p_t
    n1 = mu - model.phase0_offset + e1 * model.drift
    b1 = n1 % p_s
    in_p0 = model.contains(lam, mu)
    in_p1 = model.contains(a1, b1)
    gaps = ~in_p0 & ~in_p1
    overlaps = in_p0 & in_p1
    findings: list[RaceFinding] = []
    for kind, mask in (("no phase", gaps), ("both phases", overlaps)):
        for index in np.flatnonzero(mask)[:_MAX_COVERAGE_FINDINGS]:
            witness, _ = _reconstruct_pair(
                canonical,
                model,
                int(lam[index]),
                int(mu[index]),
                [(dim.skew * 0) % dim.scale if dim.scale > 1 else 0
                 for dim in model.inner],
                0,
                (0,) * (len(model.inner) + 1),
                (0, int(sink.phase[index]), 0, int(sink.local_a[index])),
                (0, int(sink.phase[index]), 0, int(sink.local_a[index])),
            )
            findings.append(
                RaceFinding(
                    strategy="hybrid",
                    dependence="<coverage>",
                    level="coverage",
                    message=(
                        f"phase partition broken: point (λ={int(lam[index])}, "
                        f"μ={int(mu[index])}) of the (l, s0) plane is claimed "
                        f"by {kind}"
                    ),
                    sink=witness,
                )
            )
    return not findings, findings


def verify_hybrid(
    canonical: "CanonicalForm",
    tiling_or_model: "HybridTiling | HybridScheduleModel",
) -> ScheduleVerdict:
    """Decide legality of the hybrid schedule for all problem sizes."""
    if isinstance(tiling_or_model, HybridScheduleModel):
        model = tiling_or_model
    else:
        model = HybridScheduleModel.from_tiling(tiling_or_model)
    k = model.num_statements
    p_t, p_s = model.time_period, model.space_period
    half = model.height + 1
    if half % k != 0:
        raise VerificationError(
            "symbolic hybrid verification requires statement-aligned tiles "
            f"((h+1) divisible by {k}); got h={model.height}"
        )
    names = _statement_names(canonical)
    name_to_index = {name: index for index, name in enumerate(names)}

    coverage_ok, findings = _check_coverage(model, canonical)

    lam, mu = np.meshgrid(np.arange(p_t), np.arange(p_s), indexing="ij")
    lam, mu = lam.ravel(), mu.ravel()
    sink = _assign_relative(model, lam, mu, 0, 0)
    sink_rank = np.where(sink.phase == model.phase_order[0], 0, 1)

    classes_checked = 0
    for dependence in canonical.dependences:
        dl = dependence.time_distance
        ds = dependence.space_distances
        sink_index = name_to_index[dependence.sink]
        source_index = name_to_index[dependence.source]
        if (sink_index - dl) % k != source_index:
            # No instance pair realises this combination of statement slots.
            continue
        mask = ((lam - half) % k == sink_index) & sink.claimed
        source = _assign_relative(model, lam, mu, dl, ds[0])
        mask &= source.claimed  # unclaimed points are coverage findings
        classes_checked += int(mask.sum())
        src_rank = np.where(source.phase == model.phase_order[0], 0, 1)

        outer_after = (source.t_offset > sink.t_offset) | (
            (source.t_offset == sink.t_offset) & (src_rank > sink_rank)
        )
        outer_equal = (source.t_offset == sink.t_offset) & (src_rank == sink_rank)
        crosses = outer_equal & (source.s_offset != sink.s_offset)
        same_tile = outer_equal & (source.s_offset == sink.s_offset)

        races: list[RaceFinding] = []

        def record(
            index: int,
            level: str,
            message: str,
            rhos: Sequence[int],
        ) -> None:
            src_instance, sink_instance = _reconstruct_pair(
                canonical,
                model,
                int(lam[index]),
                int(mu[index]),
                rhos,
                dl,
                ds,
                (
                    int(sink.t_offset[index]),
                    int(sink.phase[index]),
                    int(sink.s_offset[index]),
                    int(sink.local_a[index]),
                ),
                (
                    int(source.t_offset[index]),
                    int(source.phase[index]),
                    int(source.s_offset[index]),
                    int(source.local_a[index]),
                ),
            )
            races.append(
                RaceFinding(
                    strategy="hybrid",
                    dependence=str(dependence),
                    level=level,
                    message=message.format(
                        source=src_instance, sink=sink_instance
                    ),
                    source=src_instance,
                    sink=sink_instance,
                )
            )

        default_rhos = [
            (dim.skew * 0) % dim.scale if dim.scale > 1 else 0
            for dim in model.inner
        ]
        for index in np.flatnonzero(mask & outer_after):
            level = (
                "time_tile"
                if source.t_offset[index] != sink.t_offset[index]
                else "phase"
            )
            rhos = [
                (dim.skew * int(sink.local_a[index])) % dim.scale
                if dim.scale > 1
                else 0
                for dim in model.inner
            ]
            record(
                index,
                level,
                f"dependence {dependence} violated: source tile of {{source}} "
                f"executes after sink tile of {{sink}}",
                rhos,
            )
            break
        if not races:
            for index in np.flatnonzero(mask & crosses):
                rhos = [
                    (dim.skew * int(sink.local_a[index])) % dim.scale
                    if dim.scale > 1
                    else 0
                    for dim in model.inner
                ]
                record(
                    index,
                    "block",
                    f"dependence {dependence} crosses concurrent blocks: "
                    f"{{source}} -> {{sink}}",
                    rhos,
                )
                break
        if not races:
            for index in np.flatnonzero(mask & same_tile):
                u_sink = int(sink.local_a[index])
                u_src = int(source.local_a[index])
                per_dim = [
                    _admissible_displacements(dim, distance, u_sink, u_src)
                    for dim, distance in zip(model.inner, ds[1:])
                ]
                hit = False
                for combo in itertools.product(*per_dim):
                    deltas = [value for value, _ in combo]
                    level = _lex_violation(deltas, u_src - u_sink, model)
                    if level is None:
                        continue
                    rhos = [rho for _, rho in combo]
                    key_src = (*deltas, u_src)
                    key_sink = (*([0] * len(deltas)), u_sink)
                    if level == "barrier" and not model.barrier_per_step:
                        text = (
                            f"dependence {dependence} violated inside tile: "
                            f"no barrier orders local time {u_src} before "
                            f"{u_sink} ({{source}} -> {{sink}})"
                        )
                    else:
                        text = (
                            f"dependence {dependence} violated inside tile: "
                            f"source inner coordinates {key_src} do not "
                            f"precede {key_sink} ({{source}} -> {{sink}})"
                        )
                    record(index, level, text, rhos)
                    hit = True
                    break
                if hit:
                    break
        findings.extend(races[:_MAX_RACES_PER_DEPENDENCE])

    ordering = [f for f in findings if f.level != "coverage"]
    coverage = [f for f in findings if f.level == "coverage"]
    return ScheduleVerdict(
        strategy="hybrid",
        dependences_checked=len(canonical.dependences),
        classes_checked=classes_checked,
        races=tuple(coverage + ordering),
        coverage_ok=coverage_ok,
        notes=(
            "counterexamples are stated at small tile indices and hold on "
            "every grid large enough to contain them",
        ),
    )


# -- classical verification -----------------------------------------------------------


def verify_classical(
    canonical: "CanonicalForm", tilings: Sequence["ClassicalTiling"]
) -> ScheduleVerdict:
    """Decide legality of the classical wavefront schedule for all sizes.

    Execution model: time bands ``TT = l // (h+1)`` are sequential (one
    kernel launch per wavefront step), tiles within a band execute by
    wavefronts ``W = ΣS_i`` — same wavefront means concurrent — and inside a
    tile local time is barrier-stepped.
    """
    if not tilings:
        raise VerificationError("classical verification needs at least one tiling")
    period = tilings[0].time_period
    if any(t.time_period != period for t in tilings):
        raise VerificationError("classical tilings disagree on the time period")
    k = canonical.num_statements
    names = _statement_names(canonical)
    name_to_index = {name: index for index, name in enumerate(names)}
    dims = [
        InnerDim(
            name=t.dim_name,
            scale=t.scale,
            skew=t.skew_numerator,
            width=t.width,
        )
        for t in tilings
    ]
    span = math.lcm(period, k)

    races: list[RaceFinding] = []
    classes_checked = 0
    for dependence in canonical.dependences:
        dl = dependence.time_distance
        ds = dependence.space_distances
        sink_index = name_to_index[dependence.sink]
        source_index = name_to_index[dependence.source]
        if (sink_index - dl) % k != source_index:
            continue
        found = False
        for lam in range(sink_index, span, k):
            classes_checked += 1
            band_delta = (lam - dl) // period - lam // period
            if band_delta > 0:
                races.append(
                    _classical_race(
                        canonical, dims, period, lam, dl, ds, dependence,
                        "time_tile",
                        f"dependence {dependence} violated: source time band "
                        f"executes after sink time band",
                        [(d.skew * (lam % period)) % d.scale if d.scale > 1 else 0
                         for d in dims],
                    )
                )
                found = True
            elif band_delta == 0:
                u_sink = lam % period
                u_src = (lam - dl) % period
                per_dim = [
                    _admissible_displacements(dim, distance, u_sink, u_src)
                    for dim, distance in zip(dims, ds)
                ]
                for combo in itertools.product(*per_dim):
                    deltas = [value for value, _ in combo]
                    total = sum(deltas)
                    level: str | None = None
                    if total > 0:
                        level = "wavefront"
                        message = (
                            f"dependence {dependence} violated: source "
                            f"wavefront {total:+d} executes after sink wavefront"
                        )
                    elif total == 0 and any(deltas):
                        level = "block"
                        message = (
                            f"dependence {dependence} crosses concurrent tiles "
                            f"on one wavefront (ΔS={tuple(deltas)})"
                        )
                    elif not any(deltas) and u_src >= u_sink:
                        level = "barrier"
                        message = (
                            f"dependence {dependence} violated inside tile: "
                            f"local time {u_src} does not precede {u_sink}"
                        )
                    if level is not None:
                        races.append(
                            _classical_race(
                                canonical, dims, period, lam, dl, ds,
                                dependence, level, message,
                                [rho for _, rho in combo],
                            )
                        )
                        found = True
                        break
            if found:
                break

    return ScheduleVerdict(
        strategy="classical",
        dependences_checked=len(canonical.dependences),
        classes_checked=classes_checked,
        races=tuple(races),
        coverage_ok=True,
        notes=("strip-mined bands and floor-divided tiles partition by construction",),
    )


def _classical_race(
    canonical: "CanonicalForm",
    dims: Sequence[InnerDim],
    period: int,
    lam: int,
    dl: int,
    ds: Sequence[int],
    dependence: Any,
    level: str,
    message: str,
    rhos: Sequence[int],
) -> RaceFinding:
    span = math.lcm(period, canonical.num_statements)
    base = 1 + dl // span
    logical = base * span + lam
    u_sink = logical % period
    coords = [logical]
    for dim, rho in zip(dims, rhos):
        numerator = 2 * dim.period + rho
        coords.append((numerator - dim.skew * u_sink) // dim.scale)
    sink_point = tuple(coords)
    source_point = tuple(c - d for c, d in zip(sink_point, (dl, *ds)))
    names = _statement_names(canonical)

    def instance(point: tuple[int, ...]) -> Instance:
        index, t, space = canonical.from_canonical(point)
        band = point[0] // period
        tiles = tuple(
            (dim.scale * s + dim.skew * (point[0] % period)) // dim.period
            for dim, s in zip(dims, point[1:])
        )
        return Instance(
            statement=names[index],
            t=t,
            point=space,
            schedule=(
                ("TT", band),
                ("W", sum(tiles)),
                *(
                    (f"S{i + 1}", tile)
                    for i, tile in enumerate(tiles)
                ),
                ("u", point[0] % period),
            ),
        )

    return RaceFinding(
        strategy="classical",
        dependence=str(dependence),
        level=level,
        message=message,
        source=instance(source_point),
        sink=instance(sink_point),
    )


# -- diamond verification -------------------------------------------------------------


def verify_diamond(
    canonical: "CanonicalForm", tiling: "DiamondTiling"
) -> ScheduleVerdict:
    """Decide legality of the diamond schedule for all problem sizes.

    Execution model: wavefronts ``W = D0 - D1`` are sequential, tiles on one
    wavefront are concurrent, and within a tile the ``l`` steps are
    barrier-stepped with all space dimensions mapped to parallel threads.
    """
    size = tiling.size
    k = canonical.num_statements
    names = _statement_names(canonical)
    name_to_index = {name: index for index, name in enumerate(names)}
    span = math.lcm(size, k)

    races: list[RaceFinding] = []
    classes_checked = 0
    for dependence in canonical.dependences:
        dl = dependence.time_distance
        ds0 = dependence.space_distances[0]
        sink_index = name_to_index[dependence.sink]
        source_index = name_to_index[dependence.source]
        if (sink_index - dl) % k != source_index:
            continue
        found = False
        for lam in range(sink_index, span, k):
            if found:
                break
            for sigma in range(size):
                classes_checked += 1
                alpha = (sigma + lam) % size
                beta = (sigma - lam) % size
                d0 = (alpha - (ds0 + dl)) // size
                d1 = (beta - (ds0 - dl)) // size
                wave = d0 - d1
                level: str | None = None
                if wave > 0:
                    level = "wavefront"
                    message = (
                        f"dependence {dependence} violated: source wavefront "
                        f"{wave:+d} executes after sink wavefront"
                    )
                elif wave == 0 and (d0 != 0 or d1 != 0):
                    level = "block"
                    message = (
                        f"dependence {dependence} crosses concurrent diamond "
                        f"tiles (ΔD0={d0}, ΔD1={d1})"
                    )
                elif d0 == 0 and d1 == 0 and dl <= 0:
                    level = "barrier"
                    message = (
                        f"dependence {dependence} violated inside tile: no "
                        f"time step separates source from sink"
                    )
                if level is not None:
                    races.append(
                        _diamond_race(
                            canonical, tiling, lam, sigma, dl,
                            dependence.space_distances, dependence, level,
                            message,
                        )
                    )
                    found = True
                    break

    return ScheduleVerdict(
        strategy="diamond",
        dependences_checked=len(canonical.dependences),
        classes_checked=classes_checked,
        races=tuple(races),
        coverage_ok=True,
        notes=("diamond tiles partition the (l, s0) plane by construction",),
    )


def _diamond_race(
    canonical: "CanonicalForm",
    tiling: "DiamondTiling",
    lam: int,
    sigma: int,
    dl: int,
    ds: Sequence[int],
    dependence: Any,
    level: str,
    message: str,
) -> RaceFinding:
    size = tiling.size
    span = math.lcm(size, canonical.num_statements)
    base_l = 1 + dl // span
    logical = base_l * span + lam
    margin = 2 + (abs(int(ds[0])) + dl) // size
    s0 = margin * size + sigma
    inner = tuple(5 + abs(int(d)) for d in ds[1:])
    sink_point = (logical, s0, *inner)
    source_point = tuple(c - d for c, d in zip(sink_point, (dl, *ds)))
    names = _statement_names(canonical)

    def instance(point: tuple[int, ...]) -> Instance:
        index, t, space = canonical.from_canonical(point)
        d0 = (point[1] + point[0]) // size
        d1 = (point[1] - point[0]) // size
        return Instance(
            statement=names[index],
            t=t,
            point=space,
            schedule=(("W", d0 - d1), ("D0", d0), ("D1", d1)),
        )

    return RaceFinding(
        strategy="diamond",
        dependence=str(dependence),
        level=level,
        message=message,
        source=instance(source_point),
        sink=instance(sink_point),
    )


# -- dispatch -------------------------------------------------------------------------


def verify_tiling_plan(canonical: "CanonicalForm", plan: Any) -> ScheduleVerdict:
    """Verify whatever schedule a :class:`~repro.api.artifacts.TilingPlan` holds."""
    from repro.tiling.diamond import DiamondTiling
    from repro.tiling.hybrid import HybridTiling

    tiling = getattr(plan, "tiling", plan)
    if isinstance(tiling, (HybridTiling, HybridScheduleModel)):
        return verify_hybrid(canonical, tiling)
    if isinstance(tiling, DiamondTiling):
        return verify_diamond(canonical, tiling)
    if isinstance(tiling, Iterable):
        tilings = tuple(tiling)
        if tilings and all(hasattr(t, "skew_numerator") for t in tilings):
            return verify_classical(canonical, tilings)
    raise VerificationError(
        f"no symbolic verifier for schedule object {type(tiling).__name__}"
    )


__all__ = [
    "HybridScheduleModel",
    "InnerDim",
    "verify_classical",
    "verify_diamond",
    "verify_hybrid",
    "verify_tiling_plan",
]
