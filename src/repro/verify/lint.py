"""Static linter for the generated CUDA (:mod:`repro.codegen.cuda`).

A brace-tracking scanner with a small per-kernel dataflow: it seeds
``threadIdx.*`` as *divergent* (and ``threadIdx.x`` with warp stride 1),
propagates divergence and thread strides through simple integer
definitions, and checks four rule families against the declared
``__shared__`` arrays and global pointer parameters:

``sync-divergence`` (error)
    ``__syncthreads()`` under control flow whose condition (or loop
    bounds) provably diverges within a block — a deadlock on real
    hardware, since barriers must be reached by every thread.
``shared-bank-conflict`` (warning; error at replay >= 8)
    A warp accessing a ``__shared__`` array with element stride ``s``
    replays the access ``gcd(s, 32)`` times (the model
    :class:`repro.gpu.memory.SharedMemoryModel` uses); column-major
    walks over row-major tiles are the classic instance.
``shared-oob`` (error)
    A subscript that is a literal, or a loop variable with provable
    non-negative start and literal exclusive bound, reaching outside the
    declared extent.
``global-uncoalesced`` (warning)
    Thread-varying global index with stride > 1 element, or a
    thread-varying subscript in a non-innermost position — each warp
    touches more DRAM transactions than necessary
    (cf. :class:`repro.gpu.memory.CoalescingModel`).

The linter only reports what it can *prove* from the text: indices built
from unknown variables are skipped, never guessed — zero false positives
on library codegen is part of the acceptance bar, teeth are demonstrated
on fixtures.  Accesses whose subscript count differs from the declared
rank (the illustrative partial indexing the boundary code emits) are
likewise skipped.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Any

from repro.verify.report import LintFinding, LintReport

_WARP = 32

_DECL_RE = re.compile(
    r"^(?:int|unsigned|long|short|size_t|float|double)\s+(\w+)\s*=\s*(.+)$"
)
_ASSIGN_RE = re.compile(r"^(\w+)\s*=\s*(.+)$")
_SHARED_RE = re.compile(r"__shared__\s+\w+\s+(\w+)((?:\[\d+\])+)")
_KERNEL_RE = re.compile(r"__global__\s+\w+\s+(\w+)\s*\(([^)]*)\)")
_FOR_RE = re.compile(r"^for\s*\((.*)$", re.DOTALL)
_IF_RE = re.compile(r"^(?:\}?\s*else\s+)?if\s*\((.*)$", re.DOTALL)
_TOKEN_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*(?:\.[xyz])?|\d+")
_INT_RE = re.compile(r"^\d+$")


@dataclass
class _Context:
    kind: str        # "kernel" | "function" | "if" | "else" | "for" | "block"
    divergent: bool
    line: int


@dataclass
class _KernelState:
    name: str | None = None
    is_kernel: bool = False
    shared: dict[str, tuple[int, ...]] = field(default_factory=dict)
    pointers: set[str] = field(default_factory=set)
    divergent: set[str] = field(default_factory=set)
    uniform: set[str] = field(default_factory=set)
    strides: dict[str, int] = field(default_factory=dict)
    #: loop variables with a provable range [0, bound).
    bounds: dict[str, int] = field(default_factory=dict)

    @classmethod
    def fresh(cls, name: str | None, is_kernel: bool) -> "_KernelState":
        state = cls(name=name, is_kernel=is_kernel)
        state.divergent |= {"threadIdx.x", "threadIdx.y", "threadIdx.z"}
        state.strides.update({"threadIdx.x": 1, "threadIdx.y": 0, "threadIdx.z": 0})
        state.uniform |= {
            "blockIdx.x", "blockIdx.y", "blockIdx.z",
            "blockDim.x", "blockDim.y", "blockDim.z",
            "gridDim.x", "gridDim.y", "gridDim.z",
        }
        return state


def _strip_comments(source: str) -> str:
    """Blank out comments, preserving line structure and column offsets."""
    out: list[str] = []
    i, n = 0, len(source)
    while i < n:
        ch = source[i]
        if ch == "/" and i + 1 < n and source[i + 1] == "*":
            end = source.find("*/", i + 2)
            end = n if end < 0 else end + 2
            out.append("".join(c if c == "\n" else " " for c in source[i:end]))
            i = end
        elif ch == "/" and i + 1 < n and source[i + 1] == "/":
            end = source.find("\n", i)
            end = n if end < 0 else end
            out.append(" " * (end - i))
            i = end
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _split_top(text: str, separators: str) -> list[str]:
    """Split on any of ``separators`` at bracket depth zero."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in text:
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        if depth == 0 and ch in separators:
            parts.append("".join(current))
            current = [ch]  # keep the separator as a prefix of the next part
        else:
            current.append(ch)
    parts.append("".join(current))
    return parts


class _ExprInfo:
    """What the dataflow knows about one integer expression."""

    __slots__ = ("divergent", "stride", "value")

    def __init__(self, divergent: bool, stride: int | None, value: int | None):
        self.divergent = divergent
        self.stride = stride  # thread stride along threadIdx.x; None = unknown
        self.value = value    # constant value when provable


def _analyse(expr: str, state: _KernelState) -> _ExprInfo:
    expr = expr.strip()
    if not expr:
        return _ExprInfo(False, 0, None)
    tokens = _TOKEN_RE.findall(expr)
    divergent = any(t in state.divergent for t in tokens)
    if _INT_RE.match(expr):
        return _ExprInfo(False, 0, int(expr))
    # Additive decomposition at depth 0; each term multiplicative.
    stride: int | None = 0
    for part in _split_top(expr, "+-"):
        sign = -1 if part.startswith("-") else 1
        term = part.lstrip("+-").strip()
        if not term:
            continue
        term_stride = _term_stride(term, state)
        if term_stride is None or stride is None:
            stride = None
        else:
            stride += sign * term_stride
    return _ExprInfo(divergent, stride, None)


def _term_stride(term: str, state: _KernelState) -> int | None:
    """Thread stride of one multiplicative term, or None when unknown."""
    if "/" in term or "%" in term:
        info_tokens = _TOKEN_RE.findall(term)
        if all(t in state.uniform or _INT_RE.match(t) for t in info_tokens):
            return 0
        return None
    constant = 1
    varying: int | None = None
    unquantified = False  # uniform factor of unknown magnitude
    for factor in (f.lstrip("*").strip() for f in _split_top(term, "*")):
        if not factor:
            continue
        if factor.startswith("(") and factor.endswith(")"):
            inner = _analyse(factor[1:-1], state)
            if inner.stride is None:
                return None
            if inner.stride == 0:
                if inner.value is not None:
                    constant *= inner.value
                else:
                    unquantified = True
            elif varying is not None:
                return None
            else:
                varying = inner.stride
        elif _INT_RE.match(factor):
            constant *= int(factor)
        elif factor in state.strides and state.strides[factor] != 0:
            if varying is not None:
                return None
            varying = state.strides[factor]
        elif factor in state.uniform or factor in state.strides:
            unquantified = True
        else:
            return None
    if varying is None:
        return 0
    if unquantified:
        return None
    return varying * constant


def _subscripts(text: str, start: int) -> tuple[list[str], int]:
    """Consecutive ``[expr]`` groups beginning at ``text[start]``."""
    groups: list[str] = []
    i = start
    while i < len(text) and text[i] == "[":
        depth = 0
        j = i
        while j < len(text):
            if text[j] == "[":
                depth += 1
            elif text[j] == "]":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        if depth != 0:
            break
        groups.append(text[i + 1:j])
        i = j + 1
    return groups, i


class _Linter:
    def __init__(self, warp_size: int):
        self.warp = warp_size
        self.findings: list[LintFinding] = []
        self.kernels: list[str] = []
        self.notes: list[str] = []
        self._seen: set[tuple[str, int, int]] = set()

    def report(
        self, rule: str, severity: str, message: str,
        line: int, col: int, width: int, snippet: str,
    ) -> None:
        key = (rule, line, col)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(
            LintFinding(
                rule=rule, severity=severity, message=message,
                line=line, col=col, end_col=col + width,
                snippet=snippet.strip()[:120],
            )
        )

    # -- statement handling ---------------------------------------------------------

    def statement(
        self, text: str, line: int, stack: list[_Context], state: _KernelState
    ) -> None:
        stripped = text.strip()
        if not stripped or stripped.startswith("#"):
            return
        shared = _SHARED_RE.search(stripped)
        if shared is not None:
            name, dims = shared.group(1), shared.group(2)
            state.shared[name] = tuple(
                int(d) for d in re.findall(r"\[(\d+)\]", dims)
            )
            return
        if "__syncthreads" in stripped and state.is_kernel:
            divergent = [ctx for ctx in stack if ctx.divergent]
            if divergent:
                where = divergent[-1]
                self.report(
                    "sync-divergence", "error",
                    "__syncthreads() under divergent control flow (the "
                    f"{where.kind} opened at line {where.line} has a "
                    "thread-dependent condition): threads that skip the "
                    "barrier deadlock the block",
                    line, 0, len(stripped), stripped,
                )
        self._scan_accesses(stripped, line, state)
        decl = _DECL_RE.match(stripped.rstrip(";").strip())
        target = decl or _ASSIGN_RE.match(stripped.rstrip(";").strip())
        if target is not None and "[" not in target.group(1):
            self._define(target.group(1), target.group(2), state)

    def _define(self, name: str, expr: str, state: _KernelState) -> None:
        info = _analyse(expr, state)
        state.divergent.discard(name)
        state.uniform.discard(name)
        state.strides.pop(name, None)
        state.bounds.pop(name, None)
        if info.divergent:
            state.divergent.add(name)
        tokens = _TOKEN_RE.findall(expr)
        if tokens and all(
            t in state.uniform or _INT_RE.match(t) for t in tokens
        ):
            state.uniform.add(name)
        if info.stride is not None:
            state.strides[name] = info.stride

    # -- access rules ---------------------------------------------------------------

    def _scan_accesses(self, stmt: str, line: int, state: _KernelState) -> None:
        if not state.is_kernel:
            return
        for name, extents in state.shared.items():
            for match in re.finditer(rf"\b{re.escape(name)}\[", stmt):
                groups, _ = _subscripts(stmt, match.end() - 1)
                self._check_shared(
                    name, extents, groups, stmt, line, match.start(), state
                )
        for name in state.pointers:
            for match in re.finditer(rf"\b{re.escape(name)}\[", stmt):
                groups, _ = _subscripts(stmt, match.end() - 1)
                self._check_global(name, groups, stmt, line, match.start(), state)

    def _check_shared(
        self, name: str, extents: tuple[int, ...], groups: list[str],
        stmt: str, line: int, col: int, state: _KernelState,
    ) -> None:
        if len(groups) != len(extents):
            return  # partial indexing: element address is not determined
        # Out-of-bounds: literals and bounded loop variables.
        for axis, (expr, extent) in enumerate(zip(groups, extents)):
            expr = expr.strip()
            info = _analyse(expr, state)
            peak: int | None = None
            if info.value is not None:
                peak = info.value
            elif expr in state.bounds:
                peak = state.bounds[expr] - 1
            if peak is not None and peak >= extent:
                self.report(
                    "shared-oob", "error",
                    f"index {expr} reaches {peak} on axis {axis} of "
                    f"{name}[{']['.join(str(e) for e in extents)}] "
                    f"(extent {extent}): statically out of bounds",
                    line, col, len(name), stmt,
                )
        # Bank conflicts: element stride of a warp across the access.
        stride: int | None = 0
        for axis, expr in enumerate(groups):
            info = _analyse(expr, state)
            if info.stride is None:
                return  # unprovable — stay silent
            pitch = math.prod(extents[axis + 1:])
            assert stride is not None
            stride += info.stride * pitch
        if stride == 0:
            return
        replay = math.gcd(abs(stride), self.warp)
        if replay > 1:
            severity = "error" if replay >= 8 else "warning"
            self.report(
                "shared-bank-conflict", severity,
                f"{replay}-way shared-memory bank conflict: a warp accesses "
                f"{name} with element stride {stride} "
                f"(gcd({abs(stride)}, {self.warp}) = {replay} replays)",
                line, col, len(name), stmt,
            )

    def _check_global(
        self, name: str, groups: list[str], stmt: str, line: int, col: int,
        state: _KernelState,
    ) -> None:
        if not groups:
            return
        inner = groups[-1].strip()
        call = re.match(r"^\w+\s*\((.*)\)$", inner)
        if call is not None:
            # Index through an address helper: the last argument is the
            # innermost (contiguous) coordinate.
            parts = [
                a.strip().lstrip(",").strip()
                for a in _split_top(call.group(1), ",")
            ]
            args = [a for a in parts if a]
            if not args:
                return
            outer, inner = args[:-1], args[-1]
        else:
            outer = [g.strip() for g in groups[:-1]]
        for position, expr in enumerate(outer):
            info = _analyse(expr, state)
            if info.stride is not None and info.stride != 0:
                self.report(
                    "global-uncoalesced", "warning",
                    f"thread-varying index {expr!r} in non-innermost "
                    f"position {position} of access to {name}: warps touch "
                    "one DRAM transaction per thread",
                    line, col, len(name), stmt,
                )
        info = _analyse(inner, state)
        if info.stride is not None and abs(info.stride) > 1:
            self.report(
                "global-uncoalesced", "warning",
                f"innermost index of {name} has thread stride "
                f"{info.stride} elements: accesses of one warp span "
                f"{abs(info.stride)}x more DRAM transactions than a unit "
                "stride",
                line, col, len(name), stmt,
            )


def lint_cuda(
    source: str,
    plan: Any | None = None,
    device: Any | None = None,
) -> LintReport:
    """Lint one generated-CUDA translation unit.

    ``plan`` (a :class:`repro.codegen.shared_mem.SharedMemoryPlan`) and
    ``device`` (a :class:`repro.gpu.device.GPUDevice`) enable the
    cross-checks that need pipeline context — shared-memory capacity
    against the target SM, and the warp size used by the bank model.
    """
    warp = getattr(device, "warp_size", _WARP) or _WARP
    linter = _Linter(warp)
    if plan is not None and device is not None:
        budget = getattr(device, "shared_memory_per_sm", None)
        used = getattr(plan, "shared_bytes_per_block", 0)
        if budget and used > budget:
            linter.report(
                "shared-capacity", "error",
                f"declared shared memory ({used} B/block) exceeds the "
                f"{device.name} SM capacity ({budget} B)",
                1, 0, 0, "",
            )

    text = _strip_comments(source)
    # Blank preprocessor lines: they end without ';' and would otherwise
    # bleed into the following statement buffer.
    text = "\n".join(
        "" if stripped.lstrip().startswith("#") else stripped
        for stripped in text.split("\n")
    )
    lines = text.count("\n") + 1
    stack: list[_Context] = []
    state = _KernelState.fresh(None, False)
    last_popped: _Context | None = None
    buffer: list[str] = []
    line = 1
    paren_depth = 0
    stmt_line = 1

    def classify(header: str) -> _Context:
        nonlocal state
        header = header.strip()
        kernel = _KERNEL_RE.search(header)
        if kernel is not None:
            state = _KernelState.fresh(kernel.group(1), True)
            linter.kernels.append(kernel.group(1))
            for param in kernel.group(2).split(","):
                param = param.strip()
                if not param:
                    continue
                pieces = param.replace("*", " * ").split()
                if "*" in pieces:
                    state.pointers.add(pieces[-1])
                state.uniform.add(pieces[-1])
            return _Context("kernel", False, stmt_line)
        if re.match(r"^\w[\w\s]*\s+\w+\s*\(", header) and "=" not in header:
            state = _KernelState.fresh(None, False)
            return _Context("function", False, stmt_line)
        if_match = _IF_RE.match(header)
        if if_match is not None:
            condition = if_match.group(1).rstrip(") {")
            info = _analyse_condition(condition, state)
            return _Context("if", info, stmt_line)
        if header.startswith("else"):
            inherited = bool(
                last_popped and last_popped.kind == "if" and last_popped.divergent
            )
            return _Context("else", inherited, stmt_line)
        for_match = _FOR_RE.match(header)
        if for_match is not None:
            inside = for_match.group(1).rstrip(") {")
            divergent = _analyse_condition(inside, state)
            _register_loop(inside, state)
            return _Context("for", divergent, stmt_line)
        if header.startswith("while"):
            return _Context("for", _analyse_condition(header, state), stmt_line)
        return _Context("block", False, stmt_line)

    def _analyse_condition(text_: str, st: _KernelState) -> bool:
        return any(t in st.divergent for t in _TOKEN_RE.findall(text_))

    def _register_loop(inside: str, st: _KernelState) -> None:
        parts = _split_top(inside, ";")
        parts = [p.lstrip(";").strip() for p in parts]
        if len(parts) < 2:
            return
        init = _DECL_RE.match(parts[0]) or _ASSIGN_RE.match(parts[0])
        if init is None:
            return
        var, start = init.group(1), init.group(2).strip()
        linter_state_define(var, start, st)
        bound = re.match(rf"^{re.escape(var)}\s*<\s*(\d+)$", parts[1])
        nonneg = _INT_RE.match(start) or start.startswith("threadIdx")
        if bound is not None and nonneg and (
            not _INT_RE.match(start) or int(start) >= 0
        ):
            st.bounds[var] = int(bound.group(1))

    def linter_state_define(var: str, expr: str, st: _KernelState) -> None:
        linter._define(var, expr, st)

    has_content = False

    def _push(ch: str) -> None:
        nonlocal has_content, stmt_line
        if not has_content and not ch.isspace():
            stmt_line = line
            has_content = True
        buffer.append(ch)

    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            buffer.append(" ")
        elif ch == "(":
            paren_depth += 1
            _push(ch)
        elif ch == ")":
            paren_depth -= 1
            _push(ch)
        elif ch == ";" and paren_depth == 0:
            buffer.append(ch)
            linter.statement("".join(buffer), stmt_line, stack, state)
            buffer, has_content = [], False
        elif ch == "{" and paren_depth == 0:
            stack.append(classify("".join(buffer)))
            buffer, has_content = [], False
        elif ch == "}" and paren_depth == 0:
            if stack:
                last_popped = stack.pop()
                if last_popped.kind in ("kernel", "function"):
                    state = _KernelState.fresh(None, False)
            buffer, has_content = [], False
        else:
            _push(ch)
        i += 1

    return LintReport(
        findings=tuple(
            sorted(linter.findings, key=lambda f: (f.severity != "error", f.line))
        ),
        lines_scanned=lines,
        kernels=tuple(linter.kernels),
        notes=tuple(linter.notes),
    )


__all__ = ["lint_cuda"]
