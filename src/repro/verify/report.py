"""Typed findings produced by the static verifier (:mod:`repro.verify`).

Two families of results:

* :class:`RaceFinding` / :class:`ScheduleVerdict` — output of the symbolic
  schedule race detector (:mod:`repro.verify.symbolic`).  A race names the
  dependence it violates, the **ordering level** at which the schedule fails
  to order source before sink, and a concrete counterexample instance pair
  (valid on every sufficiently large grid — the detector reasons over
  symbolic problem sizes).
* :class:`LintFinding` / :class:`LintReport` — output of the generated-CUDA
  static linter (:mod:`repro.verify.lint`), each finding carrying a rule
  name, a severity and a source span into the generated text.

Both are plain frozen dataclasses so they can ride inside the cached
``verify`` pipeline artifact (:class:`repro.api.artifacts.VerificationReport`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Ordering levels a race can violate, outermost first.  ``coverage`` is not
#: an ordering level proper: it flags a point of the ``(l, s0)`` plane that
#: the phase partition fails to claim exactly once (Section 3.3.2), which
#: voids the ordering argument for every dependence through that point.
ORDERING_LEVELS: tuple[str, ...] = (
    "time_tile",   # sequential T loop on the host
    "phase",       # sequential kernel launches within one T
    "block",       # parallel S0 tiles of one launch (no ordering at all)
    "wavefront",   # sequential wavefronts (classical / diamond schedules)
    "intra_tile",  # sequential inner tile loops S1..Sn inside one block
    "barrier",     # barrier-stepped local time inside one tile
    "coverage",    # phase partition does not cover the (l, s0) plane
)


class VerificationError(ValueError):
    """The verifier cannot analyse this schedule (unsupported shape)."""


@dataclass(frozen=True)
class Instance:
    """A concrete statement instance used as a counterexample endpoint."""

    statement: str
    t: int
    point: tuple[int, ...]
    #: Named schedule coordinates, e.g. ``(("T", 2), ("phase", 0), ("S0", 4))``.
    schedule: tuple[tuple[str, int], ...] = ()

    def summary(self) -> dict[str, Any]:
        return {
            "statement": self.statement,
            "t": self.t,
            "point": list(self.point),
            "schedule": dict(self.schedule),
        }

    def __str__(self) -> str:
        coords = ", ".join(f"{name}={value}" for name, value in self.schedule)
        return f"{self.statement}(t={self.t}, {tuple(self.point)})[{coords}]"


@dataclass(frozen=True)
class RaceFinding:
    """One dependence the schedule fails to order, with a witness pair."""

    strategy: str
    dependence: str
    level: str
    message: str
    source: Instance | None = None
    sink: Instance | None = None

    def summary(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "strategy": self.strategy,
            "dependence": self.dependence,
            "level": self.level,
            "message": self.message,
        }
        if self.source is not None:
            data["source"] = self.source.summary()
        if self.sink is not None:
            data["sink"] = self.sink.summary()
        return data


@dataclass(frozen=True)
class ScheduleVerdict:
    """Outcome of symbolically checking one schedule against all dependences."""

    strategy: str
    dependences_checked: int
    classes_checked: int
    races: tuple[RaceFinding, ...] = ()
    coverage_ok: bool = True
    notes: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.races and self.coverage_ok

    def summary(self) -> dict[str, Any]:
        return {
            "strategy": self.strategy,
            "ok": self.ok,
            "dependences_checked": self.dependences_checked,
            "classes_checked": self.classes_checked,
            "coverage_ok": self.coverage_ok,
            "races": [race.summary() for race in self.races],
            "notes": list(self.notes),
        }


@dataclass(frozen=True)
class LintFinding:
    """One static finding in generated CUDA, with a source span."""

    rule: str
    severity: str  # "error" | "warning"
    message: str
    line: int      # 1-based line in the generated source
    col: int = 0
    end_col: int = 0
    snippet: str = ""

    def summary(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "line": self.line,
            "span": [self.line, self.col, self.end_col],
            "snippet": self.snippet,
        }

    def __str__(self) -> str:
        return f"{self.severity}[{self.rule}] line {self.line}: {self.message}"


@dataclass(frozen=True)
class LintReport:
    """All linter findings over one generated-CUDA translation unit."""

    findings: tuple[LintFinding, ...] = ()
    lines_scanned: int = 0
    kernels: tuple[str, ...] = ()
    notes: tuple[str, ...] = field(default=())

    @property
    def errors(self) -> tuple[LintFinding, ...]:
        return tuple(f for f in self.findings if f.severity == "error")

    @property
    def warnings(self) -> tuple[LintFinding, ...]:
        return tuple(f for f in self.findings if f.severity == "warning")

    @property
    def ok(self) -> bool:
        """No error-severity findings (warnings do not fail a build)."""
        return not self.errors

    def summary(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "lines_scanned": self.lines_scanned,
            "kernels": list(self.kernels),
            "findings": [finding.summary() for finding in self.findings],
            "notes": list(self.notes),
        }
