"""``repro.verify`` — static verification of schedules and generated CUDA.

Two analyses, both decidable because the compiler's schedules are
closed-form quasi-affine maps and its dependences constant vectors:

* :mod:`repro.verify.symbolic` — a **symbolic race detector** that proves
  (for *all* problem sizes at once) that each schedule orders every
  dependence's source before its sink under the GPU execution model, or
  reports a race with a concrete counterexample pair and the violated
  ordering level;
* :mod:`repro.verify.lint` — a **static linter** over the generated CUDA
  flagging bank conflicts, provable out-of-bounds shared accesses,
  barriers under divergent control flow and uncoalesced global accesses.

:mod:`repro.verify.faults` seeds the illegal-schedule mutation corpus that
keeps the detector honest.  The pipeline integration lives in
:mod:`repro.api` (the ``verify`` stage producing a
:class:`~repro.api.artifacts.VerificationReport`); the CLI surface is
``hexcc verify``.
"""

from repro.verify.faults import ScheduleMutation, get_mutation, mutation_corpus
from repro.verify.lint import lint_cuda
from repro.verify.report import (
    Instance,
    LintFinding,
    LintReport,
    ORDERING_LEVELS,
    RaceFinding,
    ScheduleVerdict,
    VerificationError,
)
from repro.verify.symbolic import (
    HybridScheduleModel,
    InnerDim,
    verify_classical,
    verify_diamond,
    verify_hybrid,
    verify_tiling_plan,
)

__all__ = [
    "HybridScheduleModel",
    "InnerDim",
    "Instance",
    "LintFinding",
    "LintReport",
    "ORDERING_LEVELS",
    "RaceFinding",
    "ScheduleMutation",
    "ScheduleVerdict",
    "VerificationError",
    "get_mutation",
    "lint_cuda",
    "mutation_corpus",
    "verify_classical",
    "verify_diamond",
    "verify_hybrid",
    "verify_tiling_plan",
]
