"""Schedule-mutation fault injection: does the verifier have teeth?

A verifier that accepts every schedule it is shown proves nothing.  This
module seeds a corpus of *illegal* perturbations of the hybrid schedule —
each one a realistic implementation bug — and the test suite
(:mod:`tests.faults`) asserts the symbolic verifier kills **100 %** of them
while still passing the unmutated library.

Mutation classes (each maps to a concrete bug someone could ship):

``phase_swap``
    Launch the green kernel before the blue one within a time tile —
    reverses the inter-phase ordering of Section 3.3.3.
``dropped_barrier``
    Omit the ``__syncthreads()`` between local time steps inside a tile —
    intra-tile time ordering evaporates.
``flipped_tile_order``
    Run the sequential in-kernel loops over the classical tiles ``S1..Sn``
    in decreasing order — inter-tile dependences along inner dimensions
    reverse.
``shrunk_hexagon`` / ``grown_hexagon``
    Mis-state the hexagon's row bounds (e.g. deriving them from an
    understated dependence cone) — the two phases stop partitioning the
    ``(l, s0)`` plane.
``wrong_drift`` / ``phase_offset``
    Off-by-one in the inter-phase drift (eq. 5) or the phase-0 space offset
    (eq. 3) — the printed paper and the implementation genuinely disagree on
    the latter, which is exactly the kind of bug this corpus encodes.
``dropped_skew`` / ``flipped_skew``
    Forget (or negate) the time skew of the classical inner tiling —
    negative-direction dependences cross tile boundaries backwards.

The mutations perturb the :class:`~repro.verify.symbolic.HybridScheduleModel`
the verifier analyses, not the Python tiling objects, so every class is
expressible — including execution-model bugs (barriers, launch order) that
no tiling object encodes.  The skew mutations *are* also materialisable as
real :class:`~repro.tiling.hybrid.HybridTiling` objects, which the
differential test uses to cross-check the enumerated validator.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Callable

from repro.verify.symbolic import HybridScheduleModel

MutationFn = Callable[[HybridScheduleModel], HybridScheduleModel]


@dataclass(frozen=True)
class ScheduleMutation:
    """One named illegal perturbation of the hybrid schedule model."""

    name: str
    category: str
    description: str
    #: Ordering levels the verifier may report for this mutant; the fault
    #: tests assert the first finding's level is one of these.
    expected_levels: tuple[str, ...]
    #: Mutants of some categories only bite on programs with inner
    #: dimensions (``ndim >= 2``).
    requires_inner_dims: bool
    _apply: MutationFn

    def apply(self, model: HybridScheduleModel) -> HybridScheduleModel:
        mutated = self._apply(model)
        if mutated == model:
            raise ValueError(f"mutation {self.name} left the model unchanged")
        return mutated


def _shift_rows(model: HybridScheduleModel, lower: int, upper: int) -> HybridScheduleModel:
    return replace(
        model,
        row_lower=tuple(b + lower for b in model.row_lower),
        row_upper=tuple(b + upper for b in model.row_upper),
    )


def _scale_skew(model: HybridScheduleModel, factor: int) -> HybridScheduleModel:
    return replace(
        model,
        inner=tuple(replace(dim, skew=dim.skew * factor) for dim in model.inner),
    )


_CORPUS: tuple[ScheduleMutation, ...] = (
    ScheduleMutation(
        name="phase-swap",
        category="phase_swap",
        description="launch the green kernel before the blue one",
        expected_levels=("phase",),
        requires_inner_dims=False,
        _apply=lambda m: replace(m, phase_order=(m.phase_order[1], m.phase_order[0])),
    ),
    ScheduleMutation(
        name="dropped-barrier",
        category="dropped_barrier",
        description="omit __syncthreads() between intra-tile time steps",
        expected_levels=("barrier",),
        requires_inner_dims=False,
        _apply=lambda m: replace(m, barrier_per_step=False),
    ),
    ScheduleMutation(
        name="flipped-tile-order",
        category="flipped_tile_order",
        description="iterate the inner tile loops S1..Sn in decreasing order",
        expected_levels=("intra_tile",),
        requires_inner_dims=True,
        _apply=lambda m: replace(m, inner_tiles_ascending=False),
    ),
    ScheduleMutation(
        name="shrunk-hexagon-upper",
        category="shrunk_hexagon",
        description="understate the hexagon's upper row bounds by one",
        expected_levels=("coverage",),
        requires_inner_dims=False,
        _apply=lambda m: _shift_rows(m, 0, -1),
    ),
    ScheduleMutation(
        name="shrunk-hexagon-lower",
        category="shrunk_hexagon",
        description="overstate the hexagon's lower row bounds by one",
        expected_levels=("coverage",),
        requires_inner_dims=False,
        _apply=lambda m: _shift_rows(m, 1, 0),
    ),
    ScheduleMutation(
        name="grown-hexagon",
        category="grown_hexagon",
        description="overstate the hexagon's upper row bounds by one",
        expected_levels=("coverage",),
        requires_inner_dims=False,
        _apply=lambda m: _shift_rows(m, 0, 1),
    ),
    ScheduleMutation(
        name="drift-plus-one",
        category="wrong_drift",
        description="off-by-one (high) in the inter-phase drift of eq. (5)",
        expected_levels=("coverage", "block", "phase", "time_tile"),
        requires_inner_dims=False,
        _apply=lambda m: replace(m, drift=m.drift + 1),
    ),
    ScheduleMutation(
        name="drift-minus-one",
        category="wrong_drift",
        description="off-by-one (low) in the inter-phase drift of eq. (5)",
        expected_levels=("coverage", "block", "phase", "time_tile"),
        requires_inner_dims=False,
        _apply=lambda m: replace(m, drift=m.drift - 1),
    ),
    ScheduleMutation(
        name="offset-plus-one",
        category="phase_offset",
        description="off-by-one (high) in the phase-0 space offset of eq. (3)",
        expected_levels=("coverage", "block"),
        requires_inner_dims=False,
        _apply=lambda m: replace(m, phase0_offset=m.phase0_offset + 1),
    ),
    ScheduleMutation(
        name="offset-minus-one",
        category="phase_offset",
        description="off-by-one (low) in the phase-0 space offset of eq. (3)",
        expected_levels=("coverage", "block"),
        requires_inner_dims=False,
        _apply=lambda m: replace(m, phase0_offset=m.phase0_offset - 1),
    ),
    ScheduleMutation(
        name="dropped-skew",
        category="dropped_skew",
        description="forget the time skew of the classical inner tiling",
        expected_levels=("intra_tile",),
        requires_inner_dims=True,
        _apply=lambda m: _scale_skew(m, 0),
    ),
    ScheduleMutation(
        name="flipped-skew",
        category="flipped_skew",
        description="negate the time skew of the classical inner tiling",
        expected_levels=("intra_tile",),
        requires_inner_dims=True,
        _apply=lambda m: _scale_skew(m, -1),
    ),
)


def mutation_corpus(inner_dims: int | None = None) -> tuple[ScheduleMutation, ...]:
    """The seeded corpus, optionally filtered to mutants a program supports.

    ``inner_dims`` is the number of classically tiled inner dimensions of
    the target program (``ndim - 1``); mutants that perturb the inner tiling
    are dropped when there is none to perturb.
    """
    if inner_dims is None or inner_dims > 0:
        return _CORPUS
    return tuple(m for m in _CORPUS if not m.requires_inner_dims)


def get_mutation(name: str) -> ScheduleMutation:
    """Look up one mutation by its CLI-facing name."""
    for mutation in _CORPUS:
        if mutation.name == name:
            return mutation
    known = ", ".join(m.name for m in _CORPUS)
    raise KeyError(f"unknown mutation {name!r} (known: {known})")


__all__ = ["MutationFn", "ScheduleMutation", "get_mutation", "mutation_corpus"]
