"""Command-line interface: compile, inspect, validate, simulate and benchmark.

The CLI is a pure client of :mod:`repro.api` — the staged pipeline API — and
never reaches into compiler internals.

Examples
--------
::

    hexcc list
    hexcc compile heat_3d --h 2 --widths 7,10,32 --show-cuda
    hexcc inspect heat_2d --stop-after tiling          # staged pipeline view
    hexcc inspect jacobi_2d --strategy diamond --stop-after tiling --json
    hexcc verify jacobi_2d                 # symbolic races + CUDA lint
    hexcc verify all --strategy all        # whole library, every schedule
    hexcc verify heat_3d --json            # machine-readable verdict
    hexcc verify jacobi_2d --mutate phase-swap   # fault injection (exits 1)
    hexcc verify --list-mutations
    hexcc validate jacobi_2d --size 20 --steps 10
    hexcc compile-file examples/custom_stencil.c --show-cuda
    hexcc validate-file examples/custom_stencil.c --sizes 16,16 --steps 6
    hexcc table 1          # regenerate Table 1 (GTX 470 comparison)
    hexcc tables --jobs 4  # regenerate Tables 1-5 across 4 processes
    hexcc bench --quick --json bench_out.json   # performance report (CI)
    hexcc bench --jobs 0   # fan the suites across every core
    hexcc cache stats      # on-disk compile cache usage (per-stage breakdown)
    hexcc cache clear      # drop every cached artefact
    hexcc tune heat_3d --budget 32 --objective simulate --jobs 4
    hexcc tune jacobi_2d --strategy hillclimb --seed 7
    hexcc compile heat_3d --tuned   # apply the best known configuration
    hexcc tune-table       # tuned-vs-model comparison across the database
    hexcc trace heat3d -o trace.json   # Chrome trace (Perfetto-loadable)
    hexcc profile jacobi_2d            # inclusive/exclusive pass ranking
    hexcc bench --quick --trace bench_trace.json

Exit codes are uniform across every subcommand: **0** on success, **1** on a
compile/validation/verification failure (for ``hexcc verify``: any race,
coverage gap or error-severity lint finding — warnings alone stay 0), **2**
on a usage error (unknown stencil, table, strategy, stage, mutation or
malformed option).

Every compiling command shares a persistent on-disk artefact cache
(``~/.cache/hexcc`` by default, override with ``$HEXCC_CACHE_DIR``, disable
with ``$HEXCC_CACHE_DISABLE=1``), layered at pass granularity, so repeated
invocations skip unchanged pipeline prefixes.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import obs
from repro.api import (
    STAGES,
    HybridCompiler,
    PipelineError,
    Session,
    TileSizes,
    list_strategies,
)
from repro.cache import DiskCache
from repro.frontend import FrontendError, parse_stencil_file
from repro.gpu.device import GTX470, NVS5200M, get_device
from repro.stencils import get_definition, get_stencil, list_stencils

#: Uniform exit codes (see the module docstring).
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2


class UsageError(Exception):
    """Invalid user input that argparse cannot catch (exit code 2)."""


def _stencil_name(raw: str) -> str:
    """Canonical registry name; ``heat-2d``, ``heat_2d`` and ``heat2d`` work."""
    name = raw.replace("-", "_")
    if name not in list_stencils():
        # Compact spelling: insert the underscore before a trailing
        # dimensionality suffix (``heat3d`` -> ``heat_3d``).
        if len(name) > 2 and name[-1] in "dD" and name[-2].isdigit():
            spaced = f"{name[:-2]}_{name[-2:]}"
            if spaced.replace("-", "_") in list_stencils():
                return spaced.replace("-", "_")
    return name


def _get_stencil_checked(raw_name: str, **kwargs):
    name = _stencil_name(raw_name)
    try:
        return get_stencil(name, **kwargs)
    except KeyError:
        raise UsageError(
            f"unknown stencil {name!r}; known: {', '.join(list_stencils())}"
        ) from None


def _get_device_checked(name: str):
    try:
        return get_device(name)
    except (KeyError, ValueError) as error:
        raise UsageError(str(error)) from None


def _parse_tile_sizes(args: argparse.Namespace) -> TileSizes | None:
    if args.widths is None:
        return None
    try:
        widths = tuple(int(w) for w in args.widths.split(","))
    except ValueError:
        raise UsageError(
            f"--widths expects comma separated integers, got {args.widths!r}"
        ) from None
    return TileSizes(args.h, widths)


def _disk_cache(args: argparse.Namespace) -> DiskCache | None:
    """The CLI's persistent artefact cache (honours --no-cache and the env)."""
    if getattr(args, "no_cache", False):
        return None
    return DiskCache.default()


def _flush_cache(cache: DiskCache | None) -> None:
    if cache is not None:
        cache.flush_stats()


def _cmd_list(_: argparse.Namespace) -> int:
    for name in list_stencils():
        print(name)
    return EXIT_OK


def _compile_and_report(program, args: argparse.Namespace) -> int:
    from repro.tuning import TuningDatabase

    cache = _disk_cache(args)
    tile_sizes = _parse_tile_sizes(args)
    # Explicit --widths always win; only announce a tuned config when the
    # session will actually apply one.
    tuned = getattr(args, "tuned", False) and tile_sizes is None
    tuning_db = None
    if tuned:
        tuning_db = TuningDatabase.load(getattr(args, "tuning_db", None))
    compiler = HybridCompiler(
        _get_device_checked(args.device), disk_cache=cache, tuning_db=tuning_db
    )
    if tuned:
        entry = compiler.session.resolve_tuned(program)
        if entry is not None:
            best = entry["best"]
            widths = ",".join(str(w) for w in best["widths"])
            print(
                f"applying tuned configuration h={best['height']} w=({widths}) "
                f"[strategy={entry['strategy']}, objective={entry['objective']}, "
                f"score={best['score']:.6g}]"
            )
        else:
            print(
                "no tuned configuration recorded for this program/device; "
                "falling back to the model selection "
                "(run `hexcc tune` to populate the database)"
            )
    compiled = compiler.compile(program, tile_sizes=tile_sizes, tuned=tuned)
    _flush_cache(cache)
    print(compiled.describe())
    print()
    print(compiled.estimate_performance().summary())
    if args.show_cuda:
        print()
        print(compiled.cuda_source)
    return EXIT_OK


def _validate_and_report(program, args: argparse.Namespace) -> int:
    cache = _disk_cache(args)
    compiled = HybridCompiler(disk_cache=cache).compile(
        program, tile_sizes=_parse_tile_sizes(args)
    )
    _flush_cache(cache)
    report = compiled.validate()
    print(report)
    if not report.ok:
        print("schedule validation failed", file=sys.stderr)
        return EXIT_FAILURE
    compiled.simulate_and_check()
    print("functional simulation matches the NumPy reference")
    return EXIT_OK


def _cmd_compile(args: argparse.Namespace) -> int:
    return _compile_and_report(_get_stencil_checked(args.stencil), args)


def _cmd_validate(args: argparse.Namespace) -> int:
    name = _stencil_name(args.stencil)
    try:
        definition = get_definition(name)
    except KeyError:
        raise UsageError(
            f"unknown stencil {name!r}; known: {', '.join(list_stencils())}"
        ) from None
    sizes = (args.size,) * definition.dimensions
    program = _get_stencil_checked(name, sizes=sizes, steps=args.steps)
    return _validate_and_report(program, args)


def _cmd_inspect(args: argparse.Namespace) -> int:
    """Run a pipeline prefix and dump artifact summaries + per-pass timings."""
    if args.strategy not in list_strategies():
        raise UsageError(
            f"unknown tiling strategy {args.strategy!r}; "
            f"known: {', '.join(list_strategies())}"
        )
    program = _get_stencil_checked(args.stencil)
    cache = _disk_cache(args)
    session = Session(
        device=_get_device_checked(args.device),
        strategy=args.strategy,
        disk_cache=cache,
    )
    run = session.run(
        program, tile_sizes=_parse_tile_sizes(args), stop_after=args.stop_after
    )
    _flush_cache(cache)
    if args.json:
        payload = {
            "stencil": program.name,
            "strategy": run.request.strategy,
            "device": session.device.name,
            "stop_after": run.stop_after,
            "passes": [
                {
                    "name": event.name,
                    "wall_s": event.wall_s,
                    "source": event.source,
                    "counters": dict(event.counters),
                }
                for event in run.events
            ],
            # Span-derived per-pass wall times, keyed like the trace/profile
            # span names so the three views agree.
            "timings": {
                f"pass.{event.name}": {"wall_ms": event.wall_s * 1e3}
                for event in run.events
            },
            "artifacts": {
                stage: run.artifacts[stage].summary() for stage in run.stages_run
            },
        }
        print(json.dumps(payload, indent=2))
    else:
        print(f"pipeline of {program.name} (strategy={run.request.strategy}, "
              f"stop after {run.stop_after}):")
        print(run.describe())
    return EXIT_OK


def _verify_one(session: Session, program, strategy: str, tile_sizes, mutation):
    """One (stencil, strategy) verification; returns a VerificationReport."""
    from repro.api import VerificationReport
    from repro.verify import verify_hybrid, verify_tiling_plan
    from repro.verify.symbolic import HybridScheduleModel

    if strategy == "hybrid" and mutation is None:
        # Full pipeline: symbolic schedule check plus the generated-CUDA lint.
        run = session.run(program, tile_sizes=tile_sizes, stop_after="verify")
        return run.artifact("verify")
    # Analysis-only schedules (and mutated models) never reach codegen, so
    # verify the tiling plan directly — schedule verdict only, no lint.
    run = session.run(program, tile_sizes=tile_sizes, stop_after="tiling")
    canonical = run.artifact("canonicalize").canonical
    plan = run.artifact("tiling")
    if mutation is not None:
        try:
            model = mutation.apply(HybridScheduleModel.from_tiling(plan.tiling))
        except ValueError as error:
            raise UsageError(str(error)) from None
        verdict = verify_hybrid(canonical, model)
    else:
        verdict = verify_tiling_plan(canonical, plan)
    return VerificationReport(strategy=strategy, schedule=verdict)


def _describe_verification(report) -> str:
    """One-line verdict plus indented findings for the text output."""
    schedule = report.schedule
    parts = [
        f"{len(schedule.races)} race(s)" if schedule.races else "no races",
        "coverage ok" if schedule.coverage_ok else "coverage BROKEN",
        f"{schedule.dependences_checked} dependence(s)",
        f"{schedule.classes_checked} classes",
    ]
    if report.lint is not None:
        parts.append(
            f"lint {len(report.lint.errors)} error(s) / "
            f"{len(report.lint.warnings)} warning(s)"
        )
    lines = [("OK   " if report.ok else "FAIL ") + ", ".join(parts)]
    for race in schedule.races:
        lines.append(f"  race [{race.level}] {race.dependence}: {race.message}")
        if race.source is not None:
            lines.append(f"    source {race.source}")
        if race.sink is not None:
            lines.append(f"    sink   {race.sink}")
    if report.lint is not None:
        for finding in report.lint.findings:
            lines.append(f"  {finding}")
    return "\n".join(lines)


def _cmd_verify(args: argparse.Namespace) -> int:
    """Statically verify schedules (symbolic races) and generated CUDA (lint)."""
    from repro.api import StrategyError
    from repro.verify import get_mutation, mutation_corpus

    if args.list_mutations:
        for mutation in mutation_corpus():
            print(f"{mutation.name:22s} [{mutation.category}] {mutation.description}")
        return EXIT_OK
    if args.stencil is None:
        raise UsageError("a stencil name (or 'all') is required")

    known = list_strategies()
    strategies = tuple(known) if args.strategy == "all" else (args.strategy,)
    for strategy in strategies:
        if strategy not in known:
            raise UsageError(
                f"unknown tiling strategy {strategy!r}; known: {', '.join(known)}"
            )

    mutation = None
    if args.mutate is not None:
        if strategies != ("hybrid",):
            raise UsageError("--mutate applies to the hybrid strategy only")
        try:
            mutation = get_mutation(args.mutate)
        except KeyError as error:
            raise UsageError(error.args[0]) from None

    if args.stencil == "all":
        programs = [_get_stencil_checked(name) for name in list_stencils()]
    else:
        programs = [_get_stencil_checked(args.stencil)]

    device = _get_device_checked(args.device)
    tile_sizes = _parse_tile_sizes(args)
    cache = _disk_cache(args)
    multi = len(programs) * len(strategies) > 1
    results: list[dict] = []
    failures = 0
    for strategy in strategies:
        session = Session(device=device, strategy=strategy, disk_cache=cache)
        for program in programs:
            try:
                report = _verify_one(session, program, strategy, tile_sizes, mutation)
            except StrategyError as error:
                if not multi:
                    raise
                # Strategies that cannot express this stencil (e.g. diamond on
                # higher-order time) are skipped, not failed, in sweeps.
                results.append(
                    {
                        "stencil": program.name,
                        "strategy": strategy,
                        "skipped": str(error),
                    }
                )
                continue
            failures += 0 if report.ok else 1
            results.append(
                {
                    "stencil": program.name,
                    "strategy": strategy,
                    "report": report,
                }
            )
    _flush_cache(cache)

    if args.json:
        payload = {
            "device": device.name,
            "mutation": args.mutate,
            "ok": failures == 0,
            "results": [
                {
                    "stencil": row["stencil"],
                    "strategy": row["strategy"],
                    **(
                        {"skipped": row["skipped"]}
                        if "skipped" in row
                        else {
                            "summary": row["report"].summary(),
                            "schedule": row["report"].schedule.summary(),
                            "lint": row["report"].lint.summary()
                            if row["report"].lint is not None
                            else None,
                        }
                    ),
                }
                for row in results
            ],
        }
        print(json.dumps(payload, indent=2))
    else:
        width = max(len(row["stencil"]) for row in results)
        for row in results:
            prefix = f"{row['stencil']:<{width}}  {row['strategy']:<9}  "
            if "skipped" in row:
                print(f"{prefix}SKIP {row['skipped']}")
            else:
                text = _describe_verification(row["report"])
                first, _, rest = text.partition("\n")
                print(prefix + first)
                if rest:
                    print(rest)
        checked = sum(1 for row in results if "report" in row)
        skipped = len(results) - checked
        tail = f"{checked} verified, {failures} failed"
        if skipped:
            tail += f", {skipped} skipped (strategy not applicable)"
        print(tail)
    return EXIT_FAILURE if failures else EXIT_OK


def _sizes_arg(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(part) for part in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma separated integers (e.g. 16,16), got {text!r}"
        )


def _load_stencil_file(args: argparse.Namespace):
    return parse_stencil_file(
        args.file,
        sizes=args.sizes,
        time_steps=args.steps,
    )


def _cmd_compile_file(args: argparse.Namespace) -> int:
    return _compile_and_report(_load_stencil_file(args), args)


def _cmd_validate_file(args: argparse.Namespace) -> int:
    return _validate_and_report(_load_stencil_file(args), args)


def _render_table(number: int, jobs: int, cache: DiskCache | None) -> str:
    from repro.experiments import (
        format_comparison,
        format_table3,
        format_table4,
        format_table5,
        run_ablation,
        run_comparison,
        run_counter_ablation,
        table3_characteristics,
    )

    if number == 1:
        return format_comparison(
            run_comparison(GTX470, jobs=jobs, disk_cache=cache), GTX470
        )
    if number == 2:
        return format_comparison(
            run_comparison(NVS5200M, jobs=jobs, disk_cache=cache), NVS5200M
        )
    if number == 3:
        return format_table3(table3_characteristics())
    if number == 4:
        return format_table4(run_ablation(jobs=jobs, disk_cache=cache))
    if number == 5:
        return format_table5(run_counter_ablation(jobs=jobs, disk_cache=cache))
    raise UsageError(f"unknown table {number}; the paper has tables 1-5")


def _cmd_table(args: argparse.Namespace) -> int:
    cache = _disk_cache(args)
    try:
        text = _render_table(args.number, args.jobs, cache)
    finally:
        _flush_cache(cache)
    print(text)
    return EXIT_OK


def _cmd_tables(args: argparse.Namespace) -> int:
    numbers = args.numbers or [1, 2, 3, 4, 5]
    cache = _disk_cache(args)
    try:
        for index, number in enumerate(numbers):
            if index:
                print()
            print(_render_table(number, args.jobs, cache))
    finally:
        _flush_cache(cache)
    return EXIT_OK


def _cmd_cache(args: argparse.Namespace) -> int:
    # Inspection and maintenance operate on the cache directory itself, so
    # they deliberately ignore $HEXCC_CACHE_DISABLE.
    cache = DiskCache()
    if args.action == "stats":
        print(cache.stats().describe())
    elif args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached artefact(s) from {cache.root}")
    return EXIT_OK


def _cmd_tune(args: argparse.Namespace) -> int:
    """Autotune one stencil and record the winner in the tuning database."""
    from repro.tuning import (
        TuningDatabase,
        list_objectives,
        list_search_strategies,
        resolve_db_path,
        tune,
    )
    from repro.tuning.db import default_db_path

    if args.strategy not in list_search_strategies():
        raise UsageError(
            f"unknown search strategy {args.strategy!r}; "
            f"known: {', '.join(list_search_strategies())}"
        )
    if args.objective not in list_objectives():
        raise UsageError(
            f"unknown tuning objective {args.objective!r}; "
            f"known: {', '.join(list_objectives())}"
        )
    if args.budget <= 0:
        raise UsageError("--budget must be positive")
    program = _get_stencil_checked(args.stencil)
    cache = _disk_cache(args)
    db_path = resolve_db_path(args.tuning_db) if args.check else (
        args.tuning_db if args.tuning_db is not None else default_db_path()
    )
    db = TuningDatabase.load(db_path)

    result = tune(
        program,
        strategy=args.strategy,
        objective=args.objective,
        budget=args.budget,
        seed=args.seed,
        jobs=args.jobs,
        device=_get_device_checked(args.device),
        tune_threads=args.tune_threads,
        disk_cache=cache,
    )
    _flush_cache(cache)

    if args.json:
        payload = result.to_entry()
        payload["trials"] = [
            {
                "height": trial.candidate.sizes.height,
                "widths": list(trial.candidate.sizes.widths),
                "threads": list(trial.candidate.threads)
                if trial.candidate.threads is not None
                else None,
                "score": trial.score,
                "ok": trial.ok,
            }
            for trial in result.trials
        ]
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(result.describe())

    if args.check:
        # CI gate: the freshly-found best must not regress the best score
        # recorded in the database (same program/device/objective).
        stored = [
            entry
            for entry in db.entries_for(result.digest, result.device)
            if entry.get("objective") == result.objective
        ]
        if not stored:
            print(
                f"check: no {result.objective!r} entry for {result.program_name} "
                f"on {result.device} in {db_path}",
                file=sys.stderr,
            )
            return EXIT_FAILURE
        reference = min(float(e["best"]["score"]) for e in stored)
        limit = reference * (1.0 + args.max_regression)
        if result.best.score > limit:
            print(
                f"check FAILED: best score {result.best.score:.6g} regresses the "
                f"recorded {reference:.6g} by more than "
                f"{args.max_regression:.0%} (limit {limit:.6g})",
                file=sys.stderr,
            )
            return EXIT_FAILURE
        print(
            f"check OK: best score {result.best.score:.6g} vs recorded "
            f"{reference:.6g} (limit {limit:.6g})"
        )
        return EXIT_OK

    db.record(result.to_entry())
    written = db.save(db_path)
    print(f"recorded the winner in {written} ({len(db)} entries)")
    return EXIT_OK


def _cmd_tune_table(args: argparse.Namespace) -> int:
    """Print the tuned-vs-model comparison table from the tuning database."""
    from repro.bench.tuned import format_tuned_table, tuned_rows
    from repro.tuning import TuningDatabase

    db = TuningDatabase.load(args.tuning_db)
    device = _get_device_checked(args.device).name if args.device else None
    print(format_tuned_table(tuned_rows(db, device=device)))
    return EXIT_OK


def _trace_config_compile(job: tuple[str, str, str | None]) -> str:
    """Compile one Table-4 configuration (picklable; runs in engine workers)."""
    from repro.api.config import table4_configurations

    stencil, label, cache_root = job
    cache = DiskCache(cache_root) if cache_root else None
    config = table4_configurations()[label]
    HybridCompiler(disk_cache=cache).compile(get_stencil(stencil), config=config)
    if cache is not None:
        cache.flush_stats()
    return label


def _cmd_trace(args: argparse.Namespace) -> int:
    """Record one fully-traced compile plus a fanned-out configuration sweep."""
    from repro.api.config import table4_configurations
    from repro.engine import map_ordered
    from repro.obs.export import write_trace

    program = _get_stencil_checked(args.stencil)
    cache = _disk_cache(args)
    telemetry = obs.Telemetry()
    with obs.use(telemetry):
        session = Session(
            device=_get_device_checked(args.device),
            strategy="hybrid",
            disk_cache=cache,
            telemetry=telemetry,
        )
        # All six stages, so the trace covers the whole pipeline.
        session.run(program, stop_after="analysis")
        # Fan the six Table-4 configurations across worker processes so the
        # trace shows stitched per-process tracks (engine.worker subtrees).
        cache_root = str(cache.root) if cache is not None else None
        tasks = [
            (program.name, label, cache_root) for label in table4_configurations()
        ]
        map_ordered(_trace_config_compile, tasks, jobs=args.jobs)
    _flush_cache(cache)
    spans = telemetry.recorder.drain()
    path = write_trace(args.output, spans, telemetry.metrics.snapshot())
    processes = len({span.pid for span in spans})
    print(
        f"wrote {path}: {len(spans)} spans across {processes} process(es); "
        f"open in https://ui.perfetto.dev or chrome://tracing"
    )
    return EXIT_OK


def _cmd_profile(args: argparse.Namespace) -> int:
    """Rank passes, cache I/O and serialization by inclusive/exclusive time."""
    from repro.obs.profile import format_profile, profile_rows, total_wall_s

    program = _get_stencil_checked(args.stencil)
    cache = _disk_cache(args)
    telemetry = obs.Telemetry()
    session = Session(
        device=_get_device_checked(args.device),
        strategy="hybrid",
        disk_cache=cache,
        telemetry=telemetry,
    )
    session.run(program, stop_after="analysis")
    _flush_cache(cache)
    spans = telemetry.recorder.drain()
    rows = profile_rows(spans)
    total = total_wall_s(spans)
    if args.json:
        payload = {
            "stencil": program.name,
            "device": session.device.name,
            "total_wall_s": total,
            "rows": [
                {
                    "name": row.name,
                    "count": row.count,
                    "inclusive_s": row.inclusive_s,
                    "exclusive_s": row.exclusive_s,
                }
                for row in rows
            ],
            "metrics": telemetry.metrics.snapshot(),
        }
        print(json.dumps(payload, indent=2))
    else:
        print(f"profile of {program.name} (one traced compile):")
        print(format_profile(rows, total))
    return EXIT_OK


def _cmd_perf(args: argparse.Namespace) -> int:
    """Run-history views: ``hexcc perf history`` and ``hexcc perf diff``."""
    from repro.obs.attrib import attribute_records
    from repro.obs.history import RunHistory

    store = RunHistory()
    if args.action == "history":
        records = store.records(kind=args.kind, limit=args.limit)
        if args.json:
            print(json.dumps([dict(r.data) for r in records], indent=2))
            return EXIT_OK
        if not records:
            print(f"no run history yet (looked in {store.path})")
            return EXIT_OK
        for record in records:
            print(record.describe())
        return EXIT_OK

    # diff A B — compare two compile records and attribute the delta.
    try:
        old = store.select(args.a, kind="compile")
        new = store.select(args.b, kind="compile")
    except LookupError as error:
        raise UsageError(str(error)) from None
    attribution = attribute_records(old.data, new.data)
    if args.json:
        payload = {
            "old": dict(old.data),
            "new": dict(new.data),
            "attribution": None
            if attribution is None
            else {
                "old_total_ms": attribution.old_total_ms,
                "new_total_ms": attribution.new_total_ms,
                "total_delta_ms": attribution.total_delta_ms,
                "guilty": attribution.guilty,
                "guilty_share": attribution.guilty_share,
                "cache_delta_ms": attribution.cache_delta_ms,
                "passes": [
                    {
                        "name": c.name,
                        "old_ms": c.old_ms,
                        "new_ms": c.new_ms,
                        "delta_ms": c.delta_ms,
                        "significant": c.significant,
                        "cache_transition": c.cache_transition,
                    }
                    for c in attribution.contributions
                ],
            },
        }
        print(json.dumps(payload, indent=2))
        return EXIT_OK
    print(f"old: {old.describe()}")
    print(f"new: {new.describe()}")
    if attribution is None:
        print("no per-pass timings recorded; cannot attribute the delta")
        return EXIT_OK
    print(attribution.describe())
    return EXIT_OK


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Prometheus text-format exposition of the metrics registry."""
    from repro.obs.expo import parse_prometheus_text, render_prometheus

    if getattr(args, "from_path", None) is not None:
        try:
            document = json.loads(open(args.from_path, encoding="utf-8").read())
        except json.JSONDecodeError as error:
            raise UsageError(f"{args.from_path}: not valid JSON: {error}") from None
        # Accept a raw snapshot or a document embedding one (trace/profile).
        snapshot = (
            document.get("metrics", document)
            if isinstance(document, dict)
            else None
        )
        if not isinstance(snapshot, dict):
            raise UsageError(f"{args.from_path}: no metrics snapshot found")
    elif args.stencils:
        cache = _disk_cache(args)
        telemetry = obs.Telemetry()
        with obs.use(telemetry):
            session = Session(
                device=_get_device_checked(args.device),
                strategy="hybrid",
                disk_cache=cache,
                telemetry=telemetry,
            )
            for raw in args.stencils:
                session.run(_get_stencil_checked(raw))
        _flush_cache(cache)
        snapshot = telemetry.metrics.snapshot()
    else:
        raise UsageError(
            "give stencil names to compile (hexcc metrics jacobi_2d) or "
            "--from PATH to render a recorded snapshot"
        )
    text = render_prometheus(snapshot)
    print(text, end="")
    if args.check:
        try:
            parsed = parse_prometheus_text(text)
        except ValueError as error:
            print(f"exposition INVALID: {error}", file=sys.stderr)
            return EXIT_FAILURE
        print(
            f"# exposition OK: {len(parsed.types)} familie(s), "
            f"{sum(len(s) for s in parsed.samples.values())} sample(s)",
            file=sys.stderr,
        )
    return EXIT_OK


def _cmd_bench(args: argparse.Namespace) -> int:
    from contextlib import nullcontext
    from pathlib import Path

    from repro.bench import BenchOptions, run_bench, save_report
    from repro.bench.runner import format_report, select_stencils

    suites = ("compile", "simulate") if args.suite == "all" else (args.suite,)
    telemetry = obs.Telemetry() if args.trace is not None else None
    try:
        stencils = (
            select_stencils(args.stencils.split(",")) if args.stencils else None
        )
        with obs.use(telemetry) if telemetry is not None else nullcontext():
            report = run_bench(
                BenchOptions(
                    suites=suites,
                    quick=args.quick,
                    repeats=args.repeats,
                    stencils=stencils,
                    jobs=args.jobs,
                    disk_cache=_disk_cache(args),
                )
            )
    except ValueError as error:
        raise UsageError(str(error)) from None
    print(format_report(report))
    if telemetry is not None:
        from repro.obs.export import write_trace

        path = write_trace(
            args.trace, telemetry.recorder.drain(), telemetry.metrics.snapshot()
        )
        print(f"wrote {path}")

    if args.json is not None:
        path = save_report(report, args.json)
        print(f"wrote {path}")
        return EXIT_OK
    out_dir = Path(args.out_dir)
    for suite_name, suite in report["suites"].items():
        single = dict(report)
        single["suites"] = {suite_name: suite}
        path = save_report(single, out_dir / f"BENCH_{suite_name}.json")
        print(f"wrote {path}")
    return EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hexcc",
        description="Hybrid hexagonal/classical tiling compiler (CGO 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the available stencils").set_defaults(func=_cmd_list)

    compile_parser = sub.add_parser("compile", help="compile a stencil at paper scale")
    compile_parser.add_argument("stencil")
    compile_parser.add_argument("--device", default="gtx470")
    compile_parser.add_argument("--h", type=int, default=2)
    compile_parser.add_argument("--widths", default=None, help="comma separated w0,w1,...")
    compile_parser.add_argument("--show-cuda", action="store_true")
    _add_tuned_arguments(compile_parser)
    _add_no_cache_argument(compile_parser)
    compile_parser.set_defaults(func=_cmd_compile)

    inspect_parser = sub.add_parser(
        "inspect",
        help="run a pipeline prefix and dump stage artifacts + per-pass timings",
    )
    inspect_parser.add_argument("stencil")
    inspect_parser.add_argument(
        "--stop-after", choices=list(STAGES), default="verify", metavar="STAGE",
        help=f"last stage to run (one of: {', '.join(STAGES)}; default: verify)",
    )
    inspect_parser.add_argument(
        "--strategy", default="hybrid",
        help="tiling strategy name (default: hybrid; see repro.api.list_strategies)",
    )
    inspect_parser.add_argument(
        "--json", action="store_true",
        help="emit a machine-readable report instead of the text dump",
    )
    inspect_parser.add_argument("--device", default="gtx470")
    inspect_parser.add_argument("--h", type=int, default=2)
    inspect_parser.add_argument("--widths", default=None, help="comma separated w0,w1,...")
    _add_no_cache_argument(inspect_parser)
    inspect_parser.set_defaults(func=_cmd_inspect)

    verify_parser = sub.add_parser(
        "verify",
        help="statically verify schedules (symbolic races) and generated CUDA",
    )
    verify_parser.add_argument(
        "stencil", nargs="?", default=None,
        help="stencil name, or 'all' for the whole library",
    )
    verify_parser.add_argument(
        "--strategy", default="hybrid",
        help="tiling strategy name or 'all' (default: hybrid)",
    )
    verify_parser.add_argument(
        "--json", action="store_true",
        help="emit the full verdicts (races, lint findings) as JSON",
    )
    verify_parser.add_argument(
        "--mutate", default=None, metavar="NAME",
        help="apply a named illegal schedule mutation first (fault injection; "
             "the verifier must report a race, so the command exits 1)",
    )
    verify_parser.add_argument(
        "--list-mutations", action="store_true",
        help="list the fault-injection mutation corpus and exit",
    )
    verify_parser.add_argument("--device", default="gtx470")
    verify_parser.add_argument("--h", type=int, default=2)
    verify_parser.add_argument("--widths", default=None,
                               help="comma separated w0,w1,...")
    _add_no_cache_argument(verify_parser)
    verify_parser.set_defaults(func=_cmd_verify)

    validate_parser = sub.add_parser(
        "validate", help="exhaustively validate and simulate a small instance"
    )
    validate_parser.add_argument("stencil")
    validate_parser.add_argument("--size", type=int, default=16)
    validate_parser.add_argument("--steps", type=int, default=8)
    validate_parser.add_argument("--h", type=int, default=1)
    validate_parser.add_argument("--widths", default=None)
    _add_no_cache_argument(validate_parser)
    validate_parser.set_defaults(func=_cmd_validate)

    compile_file_parser = sub.add_parser(
        "compile-file", help="compile a C stencil source file with the front end"
    )
    compile_file_parser.add_argument("file", help="path to a .c stencil source")
    compile_file_parser.add_argument("--device", default="gtx470")
    compile_file_parser.add_argument("--h", type=int, default=2)
    compile_file_parser.add_argument("--widths", default=None,
                                     help="comma separated w0,w1,...")
    compile_file_parser.add_argument("--sizes", default=None, type=_sizes_arg,
                                     help="comma separated grid extents, "
                                          "overriding the source's #defines")
    compile_file_parser.add_argument("--steps", type=int, default=None)
    compile_file_parser.add_argument("--show-cuda", action="store_true")
    _add_tuned_arguments(compile_file_parser)
    _add_no_cache_argument(compile_file_parser)
    compile_file_parser.set_defaults(func=_cmd_compile_file)

    validate_file_parser = sub.add_parser(
        "validate-file",
        help="parse, validate and simulate a C stencil source file",
    )
    validate_file_parser.add_argument("file", help="path to a .c stencil source")
    validate_file_parser.add_argument("--sizes", default=None, type=_sizes_arg,
                                      help="comma separated small grid extents")
    validate_file_parser.add_argument("--steps", type=int, default=None)
    validate_file_parser.add_argument("--h", type=int, default=1)
    validate_file_parser.add_argument("--widths", default=None)
    _add_no_cache_argument(validate_file_parser)
    validate_file_parser.set_defaults(func=_cmd_validate_file)

    table_parser = sub.add_parser("table", help="regenerate one of the paper's tables")
    table_parser.add_argument("number", type=int)
    _add_jobs_argument(table_parser)
    _add_no_cache_argument(table_parser)
    table_parser.set_defaults(func=_cmd_table)

    tables_parser = sub.add_parser(
        "tables",
        help="regenerate several (default: all) of the paper's tables",
    )
    tables_parser.add_argument(
        "numbers", type=int, nargs="*",
        help="table numbers to regenerate (default: 1 2 3 4 5)",
    )
    _add_jobs_argument(tables_parser)
    _add_no_cache_argument(tables_parser)
    tables_parser.set_defaults(func=_cmd_tables)

    cache_parser = sub.add_parser(
        "cache", help="inspect or clear the on-disk compile cache"
    )
    cache_parser.add_argument("action", choices=("stats", "clear"))
    cache_parser.set_defaults(func=_cmd_cache)

    tune_parser = sub.add_parser(
        "tune",
        help="autotune tile sizes empirically and record the winner",
    )
    tune_parser.add_argument("stencil")
    tune_parser.add_argument(
        "--strategy", default="random",
        help="search strategy: grid, random or hillclimb (default: random)",
    )
    tune_parser.add_argument(
        "--objective", default="model",
        help="scoring objective: model, simulate or counters (default: model)",
    )
    tune_parser.add_argument(
        "--budget", type=int, default=32, metavar="N",
        help="evaluation budget (the model baseline is always scored extra)",
    )
    tune_parser.add_argument(
        "--seed", type=int, default=0,
        help="search seed; identical seed + budget replays the identical "
             "sweep (default: 0)",
    )
    tune_parser.add_argument("--device", default="gtx470")
    tune_parser.add_argument(
        "--tune-threads", action="store_true",
        help="also search thread-block shapes (launch configuration)",
    )
    tune_parser.add_argument(
        "--tuning-db", default=None, metavar="PATH",
        help="database to update (default: $HEXCC_TUNING_DB or the user db)",
    )
    tune_parser.add_argument(
        "--check", action="store_true",
        help="CI gate: compare against the database instead of updating it; "
             "exit 1 when the found best regresses the recorded score",
    )
    tune_parser.add_argument(
        "--max-regression", type=float, default=0.25, metavar="FRACTION",
        help="allowed score regression for --check (default: 0.25)",
    )
    tune_parser.add_argument(
        "--json", action="store_true",
        help="emit the database entry plus every trial as JSON",
    )
    _add_jobs_argument(tune_parser)
    _add_no_cache_argument(tune_parser)
    tune_parser.set_defaults(func=_cmd_tune)

    tune_table_parser = sub.add_parser(
        "tune-table",
        help="tuned-vs-model comparison table from the tuning database",
    )
    tune_table_parser.add_argument(
        "--tuning-db", default=None, metavar="PATH",
        help="database to read (default resolution chain, see README)",
    )
    tune_table_parser.add_argument(
        "--device", default=None,
        help="only show entries of one device (default: all)",
    )
    tune_table_parser.set_defaults(func=_cmd_tune_table)

    trace_parser = sub.add_parser(
        "trace",
        help="record a Chrome trace of a compile plus a fanned-out config sweep",
    )
    trace_parser.add_argument("stencil")
    trace_parser.add_argument(
        "-o", "--output", default="trace.json", metavar="PATH",
        help="trace file to write (Chrome trace-event JSON; default: trace.json)",
    )
    trace_parser.add_argument("--device", default="gtx470")
    trace_parser.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="worker processes for the configuration sweep "
             "(0 = all cores; default: 2)",
    )
    _add_no_cache_argument(trace_parser)
    trace_parser.set_defaults(func=_cmd_trace)

    profile_parser = sub.add_parser(
        "profile",
        help="rank pipeline passes and cache I/O by inclusive/exclusive time",
    )
    profile_parser.add_argument("stencil")
    profile_parser.add_argument("--device", default="gtx470")
    profile_parser.add_argument(
        "--json", action="store_true",
        help="emit the rows plus the metrics snapshot as JSON",
    )
    _add_no_cache_argument(profile_parser)
    profile_parser.set_defaults(func=_cmd_profile)

    perf_parser = sub.add_parser(
        "perf",
        help="persistent run history: list runs or diff two of them",
    )
    perf_sub = perf_parser.add_subparsers(dest="action", required=True)
    perf_history = perf_sub.add_parser(
        "history", help="list recorded compile/bench/tune runs"
    )
    perf_history.add_argument(
        "--kind", choices=("compile", "bench", "tune"), default=None,
        help="only show records of one kind (default: all)",
    )
    perf_history.add_argument(
        "--limit", type=int, default=20, metavar="N",
        help="show the newest N records (default: 20)",
    )
    perf_history.add_argument(
        "--json", action="store_true",
        help="emit the raw records as JSON",
    )
    perf_history.set_defaults(func=_cmd_perf)
    perf_diff = perf_sub.add_parser(
        "diff",
        help="attribute the wall-time delta between two compile records",
    )
    perf_diff.add_argument(
        "a", help="baseline record: 'last', 'last~N' or an id prefix"
    )
    perf_diff.add_argument(
        "b", help="new record: 'last', 'last~N' or an id prefix"
    )
    perf_diff.add_argument(
        "--json", action="store_true",
        help="emit both records plus the attribution as JSON",
    )
    perf_diff.set_defaults(func=_cmd_perf)

    metrics_parser = sub.add_parser(
        "metrics",
        help="Prometheus text-format exposition of the metrics registry",
    )
    metrics_parser.add_argument(
        "stencils", nargs="*",
        help="stencils to compile under a fresh registry before rendering",
    )
    metrics_parser.add_argument(
        "--from", dest="from_path", default=None, metavar="PATH",
        help="render the metrics snapshot embedded in a trace/profile JSON "
             "(or a raw snapshot) instead of compiling",
    )
    metrics_parser.add_argument(
        "--check", action="store_true",
        help="re-parse the exposition and verify the format invariants "
             "(exit 1 on any violation)",
    )
    metrics_parser.add_argument("--device", default="gtx470")
    _add_no_cache_argument(metrics_parser)
    metrics_parser.set_defaults(func=_cmd_metrics)

    bench_parser = sub.add_parser(
        "bench",
        help="measure the compiler's own performance and emit BENCH_*.json",
    )
    bench_parser.add_argument(
        "--suite", choices=("compile", "simulate", "all"), default="all",
        help="which suite(s) to run (default: all)",
    )
    bench_parser.add_argument(
        "--quick", action="store_true",
        help="CI mode: representative stencil subset, fewer repeats",
    )
    bench_parser.add_argument(
        "--repeats", type=int, default=None,
        help="measurement repeats per stencil (default: 3 quick, 5 full)",
    )
    bench_parser.add_argument(
        "--stencils", default=None,
        help="comma separated stencil names (default: suite selection)",
    )
    bench_parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write one combined report to PATH instead of BENCH_<suite>.json",
    )
    bench_parser.add_argument(
        "--out-dir", default=".",
        help="directory for the per-suite BENCH_*.json files (default: .)",
    )
    bench_parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="also record the run as a Chrome trace and write it to PATH",
    )
    _add_jobs_argument(bench_parser)
    _add_no_cache_argument(bench_parser)
    bench_parser.set_defaults(func=_cmd_bench)
    return parser


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan the work across N processes (0 = all cores; default: 1); "
             "results are identical for every N",
    )


def _add_tuned_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--tuned", action="store_true",
        help="apply the best known configuration from the tuning database "
             "(explicit --widths win; without a database entry the model "
             "selection is used)",
    )
    parser.add_argument(
        "--tuning-db", default=None, metavar="PATH",
        help="tuning database for --tuned (default: $HEXCC_TUNING_DB, the "
             "user db, then the committed baseline)",
    )


def _add_no_cache_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the persistent on-disk compile cache",
    )


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exit_:
        # argparse exits 2 on usage errors and 0 for --help; normalise both
        # into return codes so embedding callers (and tests) see an int.
        return EXIT_OK if exit_.code in (0, None) else EXIT_USAGE
    try:
        return args.func(args)
    except UsageError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    except FrontendError as error:
        print(error.pretty(), file=sys.stderr)
        return EXIT_FAILURE
    except (PipelineError, ValueError) as error:
        # Strategy/pipeline failures, invalid tiling parameters and
        # simulation mismatches (SimulationMismatchError is a PipelineError).
        print(f"error: {error}", file=sys.stderr)
        _print_crash_report_path(error)
        return EXIT_FAILURE
    except OSError as error:
        print(f"error: {error.filename or ''}: {error.strerror}", file=sys.stderr)
        return EXIT_FAILURE
    except Exception as error:
        # Unexpected faults propagate (full traceback for bug reports), but
        # the crash report's location is printed first so it isn't lost.
        _print_crash_report_path(error)
        raise


def _print_crash_report_path(error: BaseException) -> None:
    path = getattr(error, "crash_report_path", None)
    if path:
        print(f"crash report: {path}", file=sys.stderr)


if __name__ == "__main__":
    raise SystemExit(main())
