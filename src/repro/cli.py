"""Command-line interface: compile, validate, simulate and benchmark stencils.

Examples
--------
::

    hexcc list
    hexcc compile heat_3d --h 2 --widths 7,10,32 --show-cuda
    hexcc validate jacobi_2d --size 20 --steps 10
    hexcc table 1          # regenerate Table 1 (GTX 470 comparison)
    hexcc table 4          # regenerate Table 4 (heat 3D ablation)
"""

from __future__ import annotations

import argparse
import sys

from repro.compiler import HybridCompiler
from repro.gpu.device import GTX470, NVS5200M, get_device
from repro.stencils import get_stencil, list_stencils
from repro.tiling.hybrid import TileSizes


def _parse_tile_sizes(args: argparse.Namespace) -> TileSizes | None:
    if args.widths is None:
        return None
    widths = tuple(int(w) for w in args.widths.split(","))
    return TileSizes(args.h, widths)


def _cmd_list(_: argparse.Namespace) -> int:
    for name in list_stencils():
        print(name)
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    program = get_stencil(args.stencil)
    compiler = HybridCompiler(get_device(args.device))
    compiled = compiler.compile(program, tile_sizes=_parse_tile_sizes(args))
    print(compiled.describe())
    print()
    print(compiled.estimate_performance().summary())
    if args.show_cuda:
        print()
        print(compiled.cuda_source)
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    sizes = tuple([args.size] * (3 if args.stencil.endswith("3d") else 2)) \
        if args.stencil not in ("jacobi_1d", "wide_1d", "higher_order_time") else (args.size,)
    program = get_stencil(args.stencil, sizes=sizes, steps=args.steps)
    compiler = HybridCompiler()
    compiled = compiler.compile(program, tile_sizes=_parse_tile_sizes(args))
    print(compiled.validate())
    compiled.simulate_and_check()
    print("functional simulation matches the NumPy reference")
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.experiments import (
        format_comparison,
        format_table3,
        format_table4,
        format_table5,
        run_ablation,
        run_comparison,
        run_counter_ablation,
        table3_characteristics,
    )

    if args.number == 1:
        print(format_comparison(run_comparison(GTX470), GTX470))
    elif args.number == 2:
        print(format_comparison(run_comparison(NVS5200M), NVS5200M))
    elif args.number == 3:
        print(format_table3(table3_characteristics()))
    elif args.number == 4:
        print(format_table4(run_ablation()))
    elif args.number == 5:
        print(format_table5(run_counter_ablation()))
    else:
        print(f"unknown table {args.number}; the paper has tables 1-5", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hexcc",
        description="Hybrid hexagonal/classical tiling compiler (CGO 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the available stencils").set_defaults(func=_cmd_list)

    compile_parser = sub.add_parser("compile", help="compile a stencil at paper scale")
    compile_parser.add_argument("stencil")
    compile_parser.add_argument("--device", default="gtx470")
    compile_parser.add_argument("--h", type=int, default=2)
    compile_parser.add_argument("--widths", default=None, help="comma separated w0,w1,...")
    compile_parser.add_argument("--show-cuda", action="store_true")
    compile_parser.set_defaults(func=_cmd_compile)

    validate_parser = sub.add_parser(
        "validate", help="exhaustively validate and simulate a small instance"
    )
    validate_parser.add_argument("stencil")
    validate_parser.add_argument("--size", type=int, default=16)
    validate_parser.add_argument("--steps", type=int, default=8)
    validate_parser.add_argument("--h", type=int, default=1)
    validate_parser.add_argument("--widths", default=None)
    validate_parser.set_defaults(func=_cmd_validate)

    table_parser = sub.add_parser("table", help="regenerate one of the paper's tables")
    table_parser.add_argument("number", type=int)
    table_parser.set_defaults(func=_cmd_table)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
