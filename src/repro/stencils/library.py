"""The stencil benchmark suite used in the paper's evaluation (Table 3).

The paper reports, for every benchmark, the number of distinct loads and the
number of floating point operations per stencil point (Table 3).  The exact
arithmetic bodies are not printed in the paper, so the bodies below are
reconstructed to match those published counts exactly; the tests in
``tests/stencils`` assert the match.

===================  =====  =============  ==========  =====
benchmark            loads  flops/stencil  data size   steps
===================  =====  =============  ==========  =====
laplacian 2D             5              6  3072²         512
heat 2D                  9              9  3072²         512
gradient 2D              5             15  3072²         512
fdtd 2D (3 stmts)    3/3/5          3/3/5  3072²         512
laplacian 3D             7              8  384³          128
heat 3D                 27             27  384³          128
gradient 3D              7             20  384³          128
===================  =====  =============  ==========  =====
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

from repro.model.expr import Call, Constant, Expr, FieldRead
from repro.model.program import StencilProgram, StencilStatement

# Default problem sizes from Table 3.
SIZE_2D = (3072, 3072)
STEPS_2D = 512
SIZE_3D = (384, 384, 384)
STEPS_3D = 128


def _read2(field: str, di: int, dj: int, time_offset: int = 1) -> FieldRead:
    return FieldRead(field, (di, dj), time_offset)


def _read3(field: str, di: int, dj: int, dk: int, time_offset: int = 1) -> FieldRead:
    return FieldRead(field, (di, dj, dk), time_offset)


# -- 2D stencils ---------------------------------------------------------------------


def build_jacobi_2d(sizes: Sequence[int] = SIZE_2D, steps: int = STEPS_2D) -> StencilProgram:
    """The Jacobi 2D stencil of Figure 1: 5 loads, 5 flops."""
    a = "A"
    expr = Constant(0.2) * (
        _read2(a, 0, 0)
        + _read2(a, 1, 0)
        + _read2(a, -1, 0)
        + _read2(a, 0, 1)
        + _read2(a, 0, -1)
    )
    statement = StencilStatement("S0", a, expr, (1, 1), (1, 1))
    return StencilProgram("jacobi_2d", ("i", "j"), sizes, steps, [statement],
                          source=jacobi_2d_source())


def build_laplacian_2d(sizes: Sequence[int] = SIZE_2D, steps: int = STEPS_2D) -> StencilProgram:
    """Laplace 2D: 5-point star, 5 loads, 6 flops."""
    a = "A"
    expr = Constant(0.5) * _read2(a, 0, 0) + Constant(0.125) * (
        _read2(a, 1, 0) + _read2(a, -1, 0) + _read2(a, 0, 1) + _read2(a, 0, -1)
    )
    statement = StencilStatement("S0", a, expr, (1, 1), (1, 1))
    return StencilProgram("laplacian_2d", ("i", "j"), sizes, steps, [statement])


def build_heat_2d(sizes: Sequence[int] = SIZE_2D, steps: int = STEPS_2D) -> StencilProgram:
    """Heat 2D: full 3x3 box, 9 loads, 9 flops."""
    a = "A"
    terms = [
        _read2(a, di, dj)
        for di in (-1, 0, 1)
        for dj in (-1, 0, 1)
    ]
    expr: Expr = terms[0]
    for term in terms[1:]:
        expr = expr + term
    expr = Constant(1.0 / 9.0) * expr
    statement = StencilStatement("S0", a, expr, (1, 1), (1, 1))
    return StencilProgram("heat_2d", ("i", "j"), sizes, steps, [statement])


def build_gradient_2d(sizes: Sequence[int] = SIZE_2D, steps: int = STEPS_2D) -> StencilProgram:
    """Gradient 2D: 5 loads, 15 flops (4 diffs, 4 squares, 4 adds, sqrt, div, mul)."""
    a = "A"
    center = _read2(a, 0, 0)
    dx1 = center - _read2(a, 0, -1)
    dx2 = center - _read2(a, 0, 1)
    dy1 = center - _read2(a, -1, 0)
    dy2 = center - _read2(a, 1, 0)
    magnitude = dx1 * dx1 + dx2 * dx2 + dy1 * dy1 + dy2 * dy2
    expr = Constant(0.5) * (center / Call("sqrtf", (magnitude + Constant(1.0),)))
    statement = StencilStatement("S0", a, expr, (1, 1), (1, 1))
    return StencilProgram("gradient_2d", ("i", "j"), sizes, steps, [statement])


def build_fdtd_2d(sizes: Sequence[int] = SIZE_2D, steps: int = STEPS_2D) -> StencilProgram:
    """FDTD 2D: a multi-statement kernel (3 statements; 3/3/5 loads, 3/3/5 flops)."""
    ey_update = StencilStatement(
        "Sey",
        "ey",
        FieldRead("ey", (0, 0), 1)
        - Constant(0.5) * (FieldRead("hz", (0, 0), 1) - FieldRead("hz", (-1, 0), 1)),
        (1, 1),
        (1, 1),
    )
    ex_update = StencilStatement(
        "Sex",
        "ex",
        FieldRead("ex", (0, 0), 1)
        - Constant(0.5) * (FieldRead("hz", (0, 0), 1) - FieldRead("hz", (0, -1), 1)),
        (1, 1),
        (1, 1),
    )
    hz_update = StencilStatement(
        "Shz",
        "hz",
        FieldRead("hz", (0, 0), 1)
        - Constant(0.7)
        * (
            FieldRead("ex", (0, 1), 0)
            - FieldRead("ex", (0, 0), 0)
            + FieldRead("ey", (1, 0), 0)
            - FieldRead("ey", (0, 0), 0)
        ),
        (1, 1),
        (1, 1),
    )
    return StencilProgram(
        "fdtd_2d", ("i", "j"), sizes, steps, [ey_update, ex_update, hz_update]
    )


# -- 3D stencils ----------------------------------------------------------------------


def build_laplacian_3d(sizes: Sequence[int] = SIZE_3D, steps: int = STEPS_3D) -> StencilProgram:
    """Laplace 3D: 7-point star, 7 loads, 8 flops."""
    a = "A"
    neighbours = (
        _read3(a, 1, 0, 0)
        + _read3(a, -1, 0, 0)
        + _read3(a, 0, 1, 0)
        + _read3(a, 0, -1, 0)
        + _read3(a, 0, 0, 1)
        + _read3(a, 0, 0, -1)
    )
    expr = Constant(0.5) * _read3(a, 0, 0, 0) + Constant(0.0833) * neighbours
    statement = StencilStatement("S0", a, expr, (1, 1, 1), (1, 1, 1))
    return StencilProgram("laplacian_3d", ("i", "j", "k"), sizes, steps, [statement])


def build_heat_3d(sizes: Sequence[int] = SIZE_3D, steps: int = STEPS_3D) -> StencilProgram:
    """Heat 3D: full 3x3x3 box, 27 loads, 27 flops."""
    a = "A"
    terms = [
        _read3(a, di, dj, dk)
        for di in (-1, 0, 1)
        for dj in (-1, 0, 1)
        for dk in (-1, 0, 1)
    ]
    expr: Expr = terms[0]
    for term in terms[1:]:
        expr = expr + term
    expr = Constant(1.0 / 27.0) * expr
    statement = StencilStatement("S0", a, expr, (1, 1, 1), (1, 1, 1))
    return StencilProgram("heat_3d", ("i", "j", "k"), sizes, steps, [statement])


def build_gradient_3d(sizes: Sequence[int] = SIZE_3D, steps: int = STEPS_3D) -> StencilProgram:
    """Gradient 3D: 7 loads, 20 flops (6 diffs, 6 squares, 5+1 adds, sqrt, div)."""
    a = "A"
    center = _read3(a, 0, 0, 0)
    diffs = [
        center - _read3(a, 1, 0, 0),
        center - _read3(a, -1, 0, 0),
        center - _read3(a, 0, 1, 0),
        center - _read3(a, 0, -1, 0),
        center - _read3(a, 0, 0, 1),
        center - _read3(a, 0, 0, -1),
    ]
    squares = [d * d for d in diffs]
    total: Expr = squares[0]
    for square in squares[1:]:
        total = total + square
    expr = center / Call("sqrtf", (total + Constant(1.0),))
    statement = StencilStatement("S0", a, expr, (1, 1, 1), (1, 1, 1))
    return StencilProgram("gradient_3d", ("i", "j", "k"), sizes, steps, [statement])


# -- extra stencils used in tests and examples -------------------------------------------------


def build_jacobi_1d(size: int = 4096, steps: int = 256) -> StencilProgram:
    """A 1-D Jacobi stencil (pure hexagonal tiling, no classical dimensions)."""
    a = "A"
    expr = Constant(1.0 / 3.0) * (
        FieldRead(a, (0,), 1) + FieldRead(a, (1,), 1) + FieldRead(a, (-1,), 1)
    )
    statement = StencilStatement("S0", a, expr, (1,), (1,))
    return StencilProgram("jacobi_1d", ("i",), (size,), steps, [statement])


def build_wide_1d(size: int = 4096, steps: int = 256) -> StencilProgram:
    """A 1-D stencil with an asymmetric, radius-2 footprint (tests the cone)."""
    a = "A"
    expr = Constant(0.25) * (
        FieldRead(a, (-2,), 1) + FieldRead(a, (-1,), 1) + FieldRead(a, (0,), 1)
    ) + Constant(0.1) * FieldRead(a, (1,), 1)
    statement = StencilStatement("S0", a, expr, (2,), (2,))
    return StencilProgram("wide_1d", ("i",), (size,), steps, [statement])


def build_higher_order_time(size: int = 2048, steps: int = 128) -> StencilProgram:
    """The paper's contrived example ``A[t][i] = f(A[t-2][i-2], A[t-1][i+2])``."""
    a = "A"
    expr = Constant(0.5) * FieldRead(a, (-2,), 2) + Constant(0.5) * FieldRead(a, (2,), 1)
    statement = StencilStatement("S0", a, expr, (2,), (2,))
    return StencilProgram("higher_order_time", ("i",), (size,), steps, [statement])


# -- registry --------------------------------------------------------------------------------


@dataclass(frozen=True)
class StencilDefinition:
    """A named benchmark stencil and its default (paper) problem size."""

    name: str
    builder: Callable[..., StencilProgram]
    default_sizes: tuple[int, ...]
    default_steps: int
    dimensions: int
    description: str
    in_paper: bool = True


_REGISTRY: dict[str, StencilDefinition] = {}


def _register(definition: StencilDefinition) -> None:
    _REGISTRY[definition.name] = definition


_register(StencilDefinition("jacobi_2d", build_jacobi_2d, SIZE_2D, STEPS_2D, 2,
                            "Jacobi 2D 5-point stencil (Figure 1)", in_paper=False))
_register(StencilDefinition("laplacian_2d", build_laplacian_2d, SIZE_2D, STEPS_2D, 2,
                            "Laplace 2D, 5 loads / 6 flops"))
_register(StencilDefinition("heat_2d", build_heat_2d, SIZE_2D, STEPS_2D, 2,
                            "Heat 2D 3x3 box, 9 loads / 9 flops"))
_register(StencilDefinition("gradient_2d", build_gradient_2d, SIZE_2D, STEPS_2D, 2,
                            "Gradient 2D, 5 loads / 15 flops"))
_register(StencilDefinition("fdtd_2d", build_fdtd_2d, SIZE_2D, STEPS_2D, 2,
                            "FDTD 2D multi-statement kernel, 3/3/5 loads"))
_register(StencilDefinition("laplacian_3d", build_laplacian_3d, SIZE_3D, STEPS_3D, 3,
                            "Laplace 3D 7-point, 7 loads / 8 flops"))
_register(StencilDefinition("heat_3d", build_heat_3d, SIZE_3D, STEPS_3D, 3,
                            "Heat 3D 3x3x3 box, 27 loads / 27 flops"))
_register(StencilDefinition("gradient_3d", build_gradient_3d, SIZE_3D, STEPS_3D, 3,
                            "Gradient 3D, 7 loads / 20 flops"))
_register(StencilDefinition("jacobi_1d", build_jacobi_1d, (4096,), 256, 1,
                            "Jacobi 1D (testing / pure hexagonal tiling)", in_paper=False))
_register(StencilDefinition("wide_1d", build_wide_1d, (4096,), 256, 1,
                            "Asymmetric radius-2 1D stencil (tests)", in_paper=False))
_register(StencilDefinition("higher_order_time", build_higher_order_time, (2048,), 128, 1,
                            "Section 3.3.2 example A[t][i] = f(A[t-2][i-2], A[t-1][i+2])",
                            in_paper=False))


def list_stencils(paper_only: bool = False) -> list[str]:
    """Names of all registered stencils."""
    return [
        name
        for name, definition in sorted(_REGISTRY.items())
        if definition.in_paper or not paper_only
    ]


def paper_benchmarks() -> list[str]:
    """The seven benchmarks of Tables 1 and 2, in the order the paper lists them."""
    return [
        "laplacian_2d",
        "heat_2d",
        "gradient_2d",
        "fdtd_2d",
        "laplacian_3d",
        "heat_3d",
        "gradient_3d",
    ]


def get_definition(name: str) -> StencilDefinition:
    """The registry entry for a stencil name."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown stencil {name!r}; known: {list_stencils()}")
    return _REGISTRY[name]


def get_stencil(
    name: str,
    sizes: Sequence[int] | None = None,
    steps: int | None = None,
) -> StencilProgram:
    """Instantiate a benchmark stencil, optionally overriding size and steps.

    Small sizes are used by the tests and the functional GPU simulator; the
    defaults are the problem sizes of Table 3.
    """
    definition = get_definition(name)
    use_sizes = tuple(sizes) if sizes is not None else definition.default_sizes
    use_steps = steps if steps is not None else definition.default_steps
    if len(use_sizes) != definition.dimensions:
        raise ValueError(
            f"stencil {name!r} is {definition.dimensions}-D but "
            f"{len(use_sizes)} sizes were given: {use_sizes}"
        )
    if definition.dimensions == 1:
        return definition.builder(use_sizes[0], use_steps)
    return definition.builder(use_sizes, use_steps)


def register_from_source(
    source: str,
    name: str | None = None,
    *,
    sizes: Sequence[int] | None = None,
    steps: int | None = None,
    description: str | None = None,
    replace: bool = False,
) -> StencilDefinition:
    """Parse C stencil source with the front end and add it to the registry.

    The source is parsed once eagerly (so malformed input fails here, with a
    source-located error) and the resulting program's sizes/steps become the
    registered defaults.  The definition's builder re-parses with the sizes
    and steps :func:`get_stencil` passes, so registered stencils support size
    overrides exactly like the built-in ones.
    """
    from repro.frontend import parse_stencil

    program = parse_stencil(source, name=name, sizes=sizes, time_steps=steps)
    if program.name in _REGISTRY and not replace:
        raise ValueError(
            f"stencil {program.name!r} is already registered "
            "(pass replace=True to overwrite)"
        )

    def builder(
        build_sizes: Sequence[int] | int = program.sizes,
        build_steps: int = program.time_steps,
    ) -> StencilProgram:
        if isinstance(build_sizes, int):
            build_sizes = (build_sizes,)
        return parse_stencil(
            source,
            name=program.name,
            sizes=tuple(build_sizes),
            time_steps=build_steps,
        )

    definition = StencilDefinition(
        name=program.name,
        builder=builder,
        default_sizes=program.sizes,
        default_steps=program.time_steps,
        dimensions=program.ndim,
        description=description or f"user stencil ({program.ndim}-D, from C source)",
        in_paper=False,
    )
    _register(definition)
    return definition


def unregister(name: str) -> None:
    """Remove a stencil from the registry (no-op if absent)."""
    _REGISTRY.pop(name, None)


def jacobi_2d_source() -> str:
    """The Jacobi 2D C source of Figure 1 of the paper."""
    return (
        "for (t=0; t < T; t++)\n"
        "  for (i=1; i < N-1; i++)\n"
        "#pragma ivdep\n"
        "    for (j=1; j < N-1; j++)\n"
        "      A[(t+1)%2][i][j] = 0.2f * (A[t%2][i][j] +\n"
        "        A[t%2][i+1][j] + A[t%2][i-1][j] +\n"
        "        A[t%2][i][j+1] + A[t%2][i][j-1]);\n"
    )


def c_source_for(name: str) -> str:
    """C source text of a registered stencil (regenerated if not stored)."""
    return get_stencil(name, sizes=None, steps=None).c_source()
