"""The benchmark stencils of the paper (Table 3) plus a few extras for tests.

Every stencil is available both as a :class:`~repro.model.program.StencilProgram`
factory (:func:`get_stencil`) and as C source text
(:func:`repro.stencils.library.c_source_for`), the latter exercising the
front end.
"""

from repro.stencils.library import (
    StencilDefinition,
    c_source_for,
    get_definition,
    get_stencil,
    jacobi_2d_source,
    list_stencils,
    paper_benchmarks,
    register_from_source,
    unregister,
)

__all__ = [
    "StencilDefinition",
    "get_definition",
    "get_stencil",
    "list_stencils",
    "paper_benchmarks",
    "register_from_source",
    "unregister",
    "c_source_for",
    "jacobi_2d_source",
]
