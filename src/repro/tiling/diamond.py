"""Diamond tiling of the ``(l, s0)`` plane, for comparison with hexagonal tiling.

Diamond tiling [Bandishti et al. 2012] is the closest prior technique to
hexagonal tiling (Section 5 of the paper).  The comparison the paper (and the
companion HiStencils 2014 note [9]) makes is qualitative:

* diamond tiles always have a *narrow peak* — a single iteration at the top
  and bottom of each tile — so the amount of fine-grained parallelism cannot
  be tuned independently of the tile height;
* even when all diamond tiles have the same rational shape, the number of
  *integer* points they contain can differ from tile to tile, which induces
  thread divergence on a GPU;
* the tile height and width are coupled (both derive from the same diagonal
  extent), whereas hexagonal tiling chooses ``h`` and ``w0`` independently.

This module implements classic diamond tiling with unit slopes so the
benchmarks can measure those differences quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

from repro.tiling.cone import DependenceCone


@dataclass(frozen=True)
class DiamondTileAssignment:
    """Tile coordinates of a point under diamond tiling."""

    wave: int        # anti-diagonal tile index (l + s0 direction)
    position: int    # diagonal tile index (l - s0 direction)


class DiamondTiling:
    """Diamond tiling of the ``(l, s0)`` plane with unit dependence slopes.

    The plane is tiled by the two skewed strip-minings::

        D0 = floor((s0 + l) / size)
        D1 = floor((s0 - l) / size)

    Each (D0, D1) pair is one diamond-shaped tile of diagonal extent ``size``.
    Tiles on the same ``D0 + D1`` wavefront can execute concurrently.
    """

    def __init__(self, size: int, cone: DependenceCone | None = None) -> None:
        if size <= 0:
            raise ValueError("diamond tile size must be positive")
        if cone is not None and (cone.delta0 > 1 or cone.delta1 > 1):
            raise ValueError(
                "unit-slope diamond tiling requires dependence slopes <= 1"
            )
        self.size = size
        self.cone = cone or DependenceCone.from_distance_vectors([(1, 1), (1, -1)])

    # -- assignment -------------------------------------------------------------------

    def assign(self, l: int, s0: int) -> DiamondTileAssignment:
        """Tile containing the canonical point ``(l, s0)``."""
        return DiamondTileAssignment(
            wave=(s0 + l) // self.size,
            position=(s0 - l) // self.size,
        )

    def wavefront(self, assignment: DiamondTileAssignment) -> int:
        """Index of the sequential wavefront the tile belongs to."""
        return assignment.wave - assignment.position

    def tile_points(
        self, assignment: DiamondTileAssignment, l_range: tuple[int, int]
    ) -> Iterator[tuple[int, int]]:
        """Points of a tile within the given logical-time range."""
        l_lo, l_hi = l_range
        for l in range(l_lo, l_hi + 1):
            s_low = assignment.wave * self.size - l
            s_high = s_low + self.size - 1
            d_low = assignment.position * self.size + l
            d_high = d_low + self.size - 1
            lo = max(s_low, d_low)
            hi = min(s_high, d_high)
            for s0 in range(lo, hi + 1):
                yield (l, s0)

    # -- the properties the paper contrasts with hexagonal tiling ---------------------------

    def tile_point_counts(self, l_extent: int, s_extent: int) -> dict[DiamondTileAssignment, int]:
        """Exact integer point count of every tile touching a window.

        Used to demonstrate that diamond tiles do *not* all contain the same
        number of integer points (Section 2 of the paper), unlike hexagonal
        tiles.
        """
        counts: dict[DiamondTileAssignment, int] = {}
        for l in range(l_extent):
            for s0 in range(s_extent):
                assignment = self.assign(l, s0)
                counts[assignment] = counts.get(assignment, 0) + 1
        return counts

    def interior_tile_counts(self, l_extent: int, s_extent: int) -> list[int]:
        """Point counts of tiles fully inside the window (no boundary effects)."""
        counts = []
        margin = self.size
        for assignment, count in self.tile_point_counts(l_extent, s_extent).items():
            points = list(self.tile_points(assignment, (0, l_extent - 1)))
            if not points:
                continue
            ls = [p[0] for p in points]
            ss = [p[1] for p in points]
            if (
                min(ls) >= margin
                and max(ls) < l_extent - margin
                and min(ss) >= margin
                and max(ss) < s_extent - margin
            ):
                counts.append(count)
        return counts

    def peak_width(self) -> int:
        """Width of the narrowest row of a diamond tile (always 1 or 2).

        Contrast with :meth:`repro.tiling.hexagon.HexagonalTileShape.peak_width`,
        which is ``w0 + 1`` and therefore adjustable.
        """
        widths = []
        assignment = DiamondTileAssignment(0, 0)
        for l in range(0, 2 * self.size):
            row = [p for p in self.tile_points(assignment, (l, l))]
            if row:
                widths.append(len(row))
        return min(widths) if widths else 0

    def legality_ok(self, distance_vectors: list[tuple[int, int]]) -> bool:
        """Whether wavefront-sequential execution of the tiling is legal."""
        for dl, ds in distance_vectors:
            if dl <= 0:
                return False
            if abs(ds) > dl:
                return False
        return True

    def __repr__(self) -> str:
        return f"DiamondTiling(size={self.size})"
