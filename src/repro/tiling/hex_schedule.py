"""The two-phase hexagonal tile schedule (Section 3.3.3, Figure 5).

The schedule maps the two-dimensional canonical space ``[l, s0]`` (``l`` is
logical time) to a three-dimensional tile space ``[T, p, S0]``:

* phase 0 ("blue" tiles)::

      T  = floor((l + h + 1) / (2h + 2))                                  (2)
      S0 = floor((s0 + ⌊δ0·h⌋ + w0 + 1 + T·(⌊δ1·h⌋ - ⌊δ0·h⌋))
                 / (2·w0 + 2 + ⌊δ0·h⌋ + ⌊δ1·h⌋))                          (3)

  Note: equation (3) as printed in the paper uses ``⌊δ1·h⌋ + w0 + 1`` for the
  phase-0 offset.  With the tile-shape constraints (6)–(13) as printed, that
  offset only yields an exact tiling when ``⌊δ0·h⌋ = ⌊δ1·h⌋``; for asymmetric
  dependence cones it leaves gaps (and creates overlaps) between the two
  phases.  Using ``⌊δ0·h⌋ + w0 + 1`` instead gives exact coverage *and* a
  legal schedule for every cone we tested (symmetric, asymmetric and
  fractional slopes), so that is what this implementation — and the
  property-based tests — use.  The two forms coincide for all benchmarks in
  the paper's evaluation (their stencils have symmetric cones).

* phase 1 ("green" tiles)::

      T  = floor(l / (2h + 2))                                            (4)
      S0 = floor((s0 + T·(⌊δ1·h⌋ - ⌊δ0·h⌋))
                 / (2·w0 + 2 + ⌊δ0·h⌋ + ⌊δ1·h⌋))                          (5)

Within one ``T`` all phase-0 tiles execute before all phase-1 tiles; tiles of
the same phase form a parallel wavefront indexed by ``S0``.  A point belongs
to the phase whose hexagon constraints it satisfies in the local coordinates
``(a, b)`` of the corresponding box; the two phases partition the plane.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from collections.abc import Iterator

import numpy as np

from repro.polyhedral.quasi_affine import QExpr, QFloorDiv, QMod, qconst, qvar
from repro.tiling.hexagon import HexagonalTileShape


class Phase(enum.IntEnum):
    """The two phases of the hexagonal schedule."""

    BLUE = 0   # executed first within a time tile
    GREEN = 1  # executed second


@dataclass(frozen=True)
class HexTileAssignment:
    """Result of assigning a canonical point to a hexagonal tile."""

    phase: Phase
    time_tile: int       # T
    space_tile: int      # S0
    local_time: int      # a — also the intra-tile time coordinate t'
    local_space: int     # b — also the intra-tile space coordinate s0'


class HexagonalSchedule:
    """Hexagonal tiling of the ``(l, s0)`` plane for a given tile shape."""

    def __init__(self, shape: HexagonalTileShape) -> None:
        self.shape = shape

    # -- per-phase box coordinates -------------------------------------------------

    def phase0_box(self, l: int, s0: int) -> tuple[int, int, int, int]:
        """Return ``(T, S0, a, b)`` of the phase-0 box containing the point."""
        shape = self.shape
        time_tile = (l + shape.height + 1) // shape.time_period
        numerator = (
            s0
            + shape.floor_delta0_h
            + shape.width
            + 1
            + time_tile * shape.drift
        )
        space_tile = numerator // shape.space_period
        local_time = (l + shape.height + 1) % shape.time_period
        local_space = numerator % shape.space_period
        return time_tile, space_tile, local_time, local_space

    def phase1_box(self, l: int, s0: int) -> tuple[int, int, int, int]:
        """Return ``(T, S0, a, b)`` of the phase-1 box containing the point."""
        shape = self.shape
        time_tile = l // shape.time_period
        numerator = s0 + time_tile * shape.drift
        space_tile = numerator // shape.space_period
        local_time = l % shape.time_period
        local_space = numerator % shape.space_period
        return time_tile, space_tile, local_time, local_space

    # -- assignment --------------------------------------------------------------------

    def assign(self, l: int, s0: int, check_unique: bool = False) -> HexTileAssignment:
        """Assign a canonical point to its unique hexagonal tile.

        With ``check_unique`` the membership in *both* phases is evaluated and
        an error is raised unless exactly one phase claims the point (this is
        how the partitioning property is tested).
        """
        t0, S0_0, a0, b0 = self.phase0_box(l, s0)
        in_phase0 = self.shape.contains(a0, b0)
        t1, S0_1, a1, b1 = self.phase1_box(l, s0)
        in_phase1 = self.shape.contains(a1, b1)

        if check_unique and in_phase0 == in_phase1:
            raise ValueError(
                f"point (l={l}, s0={s0}) claimed by "
                f"{'both phases' if in_phase0 else 'no phase'}"
            )
        if in_phase0:
            return HexTileAssignment(Phase.BLUE, t0, S0_0, a0, b0)
        if in_phase1:
            return HexTileAssignment(Phase.GREEN, t1, S0_1, a1, b1)
        raise ValueError(f"point (l={l}, s0={s0}) not covered by any hexagonal tile")

    def assign_batch(
        self, l: np.ndarray, s0: np.ndarray, check_unique: bool = False
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised :meth:`assign` over arrays of canonical points.

        Returns ``(phase, T, S0, a, b)`` as int64 arrays.  NumPy's floor
        division and modulo follow Python semantics, so every coordinate is
        elementwise identical to the scalar path.  With ``check_unique`` a
        :class:`ValueError` is raised unless exactly one phase claims every
        point (the partitioning property of Section 3.3.3).
        """
        shape = self.shape
        l = np.asarray(l, dtype=np.int64)
        s0 = np.asarray(s0, dtype=np.int64)

        t0 = (l + shape.height + 1) // shape.time_period
        numerator0 = s0 + shape.floor_delta0_h + shape.width + 1 + t0 * shape.drift
        S0_0 = numerator0 // shape.space_period
        a0 = (l + shape.height + 1) % shape.time_period
        b0 = numerator0 % shape.space_period
        in_phase0 = shape.contains_batch(a0, b0)

        t1 = l // shape.time_period
        numerator1 = s0 + t1 * shape.drift
        S0_1 = numerator1 // shape.space_period
        a1 = l % shape.time_period
        b1 = numerator1 % shape.space_period
        in_phase1 = shape.contains_batch(a1, b1)

        if check_unique:
            bad = in_phase0 == in_phase1
            if bad.any():
                index = int(np.flatnonzero(bad)[0])
                claimed = "both phases" if bool(in_phase0[index]) else "no phase"
                raise ValueError(
                    f"point (l={int(l[index])}, s0={int(s0[index])}) "
                    f"claimed by {claimed}"
                )
        elif not (in_phase0 | in_phase1).all():
            index = int(np.flatnonzero(~(in_phase0 | in_phase1))[0])
            raise ValueError(
                f"point (l={int(l[index])}, s0={int(s0[index])}) not covered "
                "by any hexagonal tile"
            )

        phase = np.where(in_phase0, int(Phase.BLUE), int(Phase.GREEN))
        return (
            phase.astype(np.int64),
            np.where(in_phase0, t0, t1),
            np.where(in_phase0, S0_0, S0_1),
            np.where(in_phase0, a0, a1),
            np.where(in_phase0, b0, b1),
        )

    def tile_points(
        self, phase: Phase, time_tile: int, space_tile: int
    ) -> Iterator[tuple[int, int]]:
        """Canonical points ``(l, s0)`` of one hexagonal tile."""
        shape = self.shape
        for a, b in shape.points():
            if phase is Phase.BLUE:
                l = time_tile * shape.time_period + a - (shape.height + 1)
                s0 = (
                    space_tile * shape.space_period
                    + b
                    - shape.floor_delta0_h
                    - shape.width
                    - 1
                    - time_tile * shape.drift
                )
            else:
                l = time_tile * shape.time_period + a
                s0 = space_tile * shape.space_period + b - time_tile * shape.drift
            yield (l, s0)

    def tiles_overlapping(
        self,
        l_range: tuple[int, int],
        s_range: tuple[int, int],
    ) -> Iterator[tuple[Phase, int, int]]:
        """All tiles that may contain points of the given canonical ranges.

        The enumeration over-approximates by one tile on each border and is
        used by validators and by the (small-grid) functional simulator.
        """
        shape = self.shape
        l_lo, l_hi = l_range
        s_lo, s_hi = s_range
        for phase in (Phase.BLUE, Phase.GREEN):
            if phase is Phase.BLUE:
                t_lo = (l_lo + shape.height + 1) // shape.time_period
                t_hi = (l_hi + shape.height + 1) // shape.time_period
            else:
                t_lo = l_lo // shape.time_period
                t_hi = l_hi // shape.time_period
            for time_tile in range(t_lo, t_hi + 1):
                if phase is Phase.BLUE:
                    offset = (
                        shape.floor_delta0_h + shape.width + 1 + time_tile * shape.drift
                    )
                else:
                    offset = time_tile * shape.drift
                s_tile_lo = (s_lo + offset) // shape.space_period - 1
                s_tile_hi = (s_hi + offset) // shape.space_period + 1
                for space_tile in range(s_tile_lo, s_tile_hi + 1):
                    yield (phase, time_tile, space_tile)

    # -- quasi-affine expressions for code generation --------------------------------------

    def time_tile_expr(self, phase: Phase, l: QExpr | None = None) -> QExpr:
        """Quasi-affine expression of ``T`` as a function of logical time."""
        logical = l if l is not None else qvar("l")
        if phase is Phase.BLUE:
            return QFloorDiv(logical + qconst(self.shape.height + 1), self.shape.time_period)
        return QFloorDiv(logical, self.shape.time_period)

    def space_tile_expr(
        self, phase: Phase, s0: QExpr | None = None, time_tile: QExpr | None = None
    ) -> QExpr:
        """Quasi-affine expression of ``S0`` given ``s0`` and ``T``."""
        shape = self.shape
        space = s0 if s0 is not None else qvar("s0")
        tile = time_tile if time_tile is not None else qvar("T")
        if phase is Phase.BLUE:
            numerator = (
                space
                + qconst(shape.floor_delta0_h + shape.width + 1)
                + tile * shape.drift
            )
        else:
            numerator = space + tile * shape.drift
        return QFloorDiv(numerator, shape.space_period)

    def local_time_expr(self, phase: Phase, l: QExpr | None = None) -> QExpr:
        """Quasi-affine expression of the intra-tile time coordinate ``a``."""
        logical = l if l is not None else qvar("l")
        if phase is Phase.BLUE:
            return QMod(logical + qconst(self.shape.height + 1), self.shape.time_period)
        return QMod(logical, self.shape.time_period)

    def local_space_expr(
        self, phase: Phase, s0: QExpr | None = None, time_tile: QExpr | None = None
    ) -> QExpr:
        """Quasi-affine expression of the intra-tile space coordinate ``b``."""
        shape = self.shape
        space = s0 if s0 is not None else qvar("s0")
        tile = time_tile if time_tile is not None else qvar("T")
        if phase is Phase.BLUE:
            numerator = (
                space
                + qconst(shape.floor_delta0_h + shape.width + 1)
                + tile * shape.drift
            )
        else:
            numerator = space + tile * shape.drift
        return QMod(numerator, shape.space_period)

    def __repr__(self) -> str:
        return f"HexagonalSchedule({self.shape})"
