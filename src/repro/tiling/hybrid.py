"""The hybrid hexagonal/classical tiling (Sections 3.5 and 3.6, Figure 6).

The hybrid schedule maps every statement instance

.. math::

    [t, s_0, ..., s_n] \\;\\to\\; [T, p, S_0, S_1, ..., S_n, t', s_0', ..., s_n']

where ``(T, p, S_0)`` come from the hexagonal schedule of the ``(l, s_0)``
plane (``l = k·t + i`` the logical time), ``S_1..S_n`` from the classical
tilings of the remaining space dimensions and the primed coordinates are the
intra-tile schedules of Section 3.5.

Execution semantics on the GPU (Section 4.1):

* ``T`` — sequential host loop;
* ``p`` — two kernels per ``T`` iteration, phase 0 then phase 1;
* ``S_0`` — parallel across thread blocks;
* ``S_1 .. S_n`` — sequential loops inside the kernel;
* ``t'`` — sequential loop with a barrier after every iteration;
* ``s_0' .. s_n'`` — parallel across the threads of the block.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.model.preprocess import CanonicalForm
from repro.polyhedral.quasi_affine import QExpr, qvar
from repro.tiling.classical import ClassicalTiling
from repro.tiling.cone import DependenceCone
from repro.tiling.hex_schedule import HexagonalSchedule, HexTileAssignment, Phase
from repro.tiling.hexagon import HexagonalTileShape, minimal_width
from repro.tiling.schedule_arrays import (
    ScheduleArrays,
    build_schedule_arrays,
    run_boundaries,
)


@dataclass(frozen=True)
class TileSizes:
    """Tile size parameters ``h`` and ``w_0 .. w_n`` of the hybrid tiling."""

    height: int
    widths: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.height < 0:
            raise ValueError("tile height h must be non-negative")
        if any(w < 0 for w in self.widths):
            raise ValueError("tile widths must be non-negative")

    @property
    def w0(self) -> int:
        return self.widths[0]

    @staticmethod
    def of(height: int, *widths: int) -> "TileSizes":
        """Convenience constructor: ``TileSizes.of(h, w0, w1, ...)``."""
        return TileSizes(height, tuple(int(w) for w in widths))

    def __str__(self) -> str:
        widths = ", ".join(str(w) for w in self.widths)
        return f"h={self.height}, w=({widths})"


@dataclass(frozen=True, order=True)
class TileCoordinate:
    """Identity of one hybrid tile: ``(T, p, S_0, ..., S_n)``."""

    time_tile: int
    phase: Phase
    space_tiles: tuple[int, ...]

    @property
    def s0_tile(self) -> int:
        return self.space_tiles[0]

    def __str__(self) -> str:
        tiles = ", ".join(str(s) for s in self.space_tiles)
        return f"T={self.time_tile} p={int(self.phase)} S=({tiles})"


@dataclass(frozen=True)
class SchedulePoint:
    """Full schedule coordinates of one statement instance."""

    tile: TileCoordinate
    local_time: int                 # t' (= a, the local logical time)
    local_space: tuple[int, ...]    # (s0' = b, s1', ..., sn')
    statement_index: int
    canonical_point: tuple[int, ...]

    def full_tuple(self) -> tuple[int, ...]:
        """The complete schedule vector ``[T, p, S0..Sn, t', s0'..sn']``."""
        return (
            self.tile.time_tile,
            int(self.tile.phase),
            *self.tile.space_tiles,
            self.local_time,
            *self.local_space,
        )

    def sequential_key(self) -> tuple[int, ...]:
        """A total order compatible with the GPU execution (used for emulation).

        Blocks (``S_0``) and threads are enumerated in ascending order, which
        is one valid interleaving of the parallel execution.
        """
        return (
            self.tile.time_tile,
            int(self.tile.phase),
            self.tile.space_tiles[0],
            *self.tile.space_tiles[1:],
            self.local_time,
            *self.local_space,
        )


class HybridTiling:
    """Hybrid hexagonal/classical tiling of a canonicalised stencil program.

    Parameters
    ----------
    canonical:
        The canonical form produced by :func:`repro.model.preprocess.canonicalize`.
    sizes:
        The tile size parameters ``h, w_0, ..., w_n``.
    require_statement_alignment:
        Enforce the paper's recommendation that ``h + 1`` be a multiple of the
        number of statements so every tile starts with the same statement
        (needed for divergence-free specialised code).
    """

    def __init__(
        self,
        canonical: CanonicalForm,
        sizes: TileSizes,
        require_statement_alignment: bool = True,
    ) -> None:
        ndim = len(canonical.space_dims)
        if len(sizes.widths) != ndim:
            raise ValueError(
                f"expected {ndim} tile widths (one per space dimension), "
                f"got {len(sizes.widths)}"
            )
        if require_statement_alignment and (sizes.height + 1) % canonical.num_statements:
            raise ValueError(
                f"h + 1 = {sizes.height + 1} must be a multiple of the number of "
                f"statements ({canonical.num_statements}) so that every tile "
                "starts with the same statement (Section 3.3.2)"
            )
        self.canonical = canonical
        self.sizes = sizes
        # Point-assignment memo: validation and simulation revisit the same
        # canonical points many times (once as a sink, once per dependence as
        # a source, once when grouping by tile).  Only the small grids used
        # for validation enumerate points, so the memo stays small.
        self._assign_cache: dict[tuple[int, ...], SchedulePoint] = {}
        # Columnar schedule + tile grouping memos (array-native path).
        self._schedule_arrays_cache: ScheduleArrays | None = None
        self._tile_groups_cache: dict[TileCoordinate, list[SchedulePoint]] | None = None

        self.cone = DependenceCone.from_distance_vectors(
            canonical.distance_vectors, dim_index=0
        )
        self.shape = HexagonalTileShape(self.cone, sizes.height, sizes.w0)
        self.hex_schedule = HexagonalSchedule(self.shape)

        self.classical: list[ClassicalTiling] = []
        for index in range(1, ndim):
            _, delta1 = canonical.space_distance_bounds(index)
            self.classical.append(
                ClassicalTiling(
                    dim_name=canonical.space_dims[index],
                    delta1=delta1,
                    width=sizes.widths[index],
                    time_period=self.shape.time_period,
                )
            )

    # -- basic derived quantities -----------------------------------------------------

    @property
    def num_statements(self) -> int:
        return self.canonical.num_statements

    @property
    def space_dims(self) -> tuple[str, ...]:
        return self.canonical.space_dims

    @property
    def ndim(self) -> int:
        return len(self.space_dims)

    def time_steps_per_tile(self) -> int:
        """Outer-loop time steps executed by one tile: ``(2h+2) / k``."""
        return self.shape.time_period // self.num_statements

    def iterations_per_full_tile(self) -> int:
        """Statement instances executed by one full (non-boundary) tile.

        This is the quantity the load-to-compute model of Section 3.7 uses;
        for a 3-D stencil with ``δ0 = δ1 = 1`` it equals
        ``2·(1 + 2h + h² + w0·(h+1))·w1·w2``.
        """
        total = self.shape.count()
        for tiling in self.classical:
            total *= tiling.width
        return total

    def minimal_w0(self) -> int:
        """Smallest legal ``w0`` for the configured height (equation (1))."""
        return minimal_width(self.cone.delta0, self.cone.delta1, self.sizes.height)

    # -- point assignment ----------------------------------------------------------------

    def assign_canonical(self, canonical_point: Sequence[int]) -> SchedulePoint:
        """Schedule coordinates of a canonical point ``(l, s0, ..., sn)``."""
        key = tuple(canonical_point)
        cached = self._assign_cache.get(key)
        if cached is not None:
            return cached
        l = canonical_point[0]
        s0 = canonical_point[1]
        hex_assignment: HexTileAssignment = self.hex_schedule.assign(l, s0)
        u = hex_assignment.local_time
        space_tiles = [hex_assignment.space_tile]
        local_space = [hex_assignment.local_space]
        for tiling, coordinate in zip(self.classical, canonical_point[2:]):
            space_tiles.append(tiling.tile_index(coordinate, u))
            local_space.append(tiling.local_coordinate(coordinate, u))
        tile = TileCoordinate(
            time_tile=hex_assignment.time_tile,
            phase=hex_assignment.phase,
            space_tiles=tuple(space_tiles),
        )
        statement_index = l % self.num_statements
        point = SchedulePoint(
            tile=tile,
            local_time=u,
            local_space=tuple(local_space),
            statement_index=statement_index,
            canonical_point=key,
        )
        self._assign_cache[key] = point
        return point

    def assign_instance(
        self, statement_index: int, t: int, point: Sequence[int]
    ) -> SchedulePoint:
        """Schedule coordinates of a statement instance ``(statement, t, s)``."""
        canonical_point = self.canonical.to_canonical(statement_index, t, point)
        return self.assign_canonical(canonical_point)

    # -- batched (array-native) assignment ------------------------------------------------

    def assign_batch(
        self, canonical_points: np.ndarray, check_unique: bool = False
    ) -> ScheduleArrays:
        """Vectorised :meth:`assign_canonical` over an ``(N, 1+ndim)`` array."""
        return build_schedule_arrays(self, canonical_points, check_unique)

    def schedule_arrays(self) -> ScheduleArrays:
        """The full columnar schedule of every statement instance (cached)."""
        cached = self._schedule_arrays_cache
        if cached is None:
            cached = self.assign_batch(self.canonical.instances_array())
            self._schedule_arrays_cache = cached
        return cached

    # -- tile enumeration -------------------------------------------------------------------

    def group_instances_by_tile(self) -> dict[TileCoordinate, list[SchedulePoint]]:
        """Group every statement instance of the program by its tile.

        Computed with one batched assignment and one ``np.lexsort`` over the
        schedule key (the object-based construction is kept as
        :meth:`group_instances_by_tile_reference`).  Only intended for the
        small grids used in validation, testing and the functional GPU
        simulator; production-size grids are analysed with the closed-form
        counts instead.
        """
        cached = self._tile_groups_cache
        if cached is not None:
            return cached
        arrays = self.schedule_arrays()
        ordered = arrays.take(arrays.sequential_order())
        starts = run_boundaries(*ordered.tile_key_columns())
        ends = np.append(starts[1:], len(ordered))
        tiles: dict[TileCoordinate, list[SchedulePoint]] = {}
        for start, end in zip(starts, ends):
            first = ordered.point(int(start))
            tiles[first.tile] = [first, *ordered.points(range(start + 1, end))]
        self._tile_groups_cache = tiles
        return tiles

    def group_instances_by_tile_reference(
        self,
    ) -> dict[TileCoordinate, list[SchedulePoint]]:
        """Object-based reference implementation of :meth:`group_instances_by_tile`."""
        tiles: dict[TileCoordinate, list[SchedulePoint]] = {}
        for _, canonical_point in self.canonical.instances():
            schedule_point = self.assign_canonical(canonical_point)
            tiles.setdefault(schedule_point.tile, []).append(schedule_point)
        for points in tiles.values():
            points.sort(key=lambda p: (tuple(p.tile.space_tiles[1:]), p.local_time, p.local_space))
        return tiles

    def execution_order(self) -> list[SchedulePoint]:
        """All instances in one sequential order compatible with the schedule.

        The order is computed by ``np.lexsort`` over the columnar schedule;
        :meth:`execution_order_reference` keeps the build-objects-then-sort
        construction for the equivalence tests.
        """
        arrays = self.schedule_arrays()
        return list(arrays.points(arrays.sequential_order()))

    def execution_order_reference(self) -> list[SchedulePoint]:
        """Object-based reference implementation of :meth:`execution_order`."""
        points = [
            self.assign_canonical(point) for _, point in self.canonical.instances()
        ]
        points.sort(key=lambda p: p.sequential_key())
        return points

    def is_full_tile(self, points_in_tile: Sequence[SchedulePoint]) -> bool:
        """Whether a tile contains the full, boundary-free iteration count."""
        return len(points_in_tile) == self.iterations_per_full_tile()

    # -- schedule expressions (Figure 6 / code generation) --------------------------------------

    def schedule_expressions(self, phase: Phase) -> dict[str, QExpr]:
        """Quasi-affine expressions of every output dimension for one phase.

        The expressions are written in terms of the canonical variables
        ``l`` (logical time) and the space dimension names; the code generator
        substitutes the appropriate loop iterators.
        """
        logical = qvar("l")
        expressions: dict[str, QExpr] = {}
        expressions["T"] = self.hex_schedule.time_tile_expr(phase, logical)
        expressions["S0"] = self.hex_schedule.space_tile_expr(
            phase, qvar(self.space_dims[0]), expressions["T"]
        )
        u_expr = self.hex_schedule.local_time_expr(phase, logical)
        for index, tiling in enumerate(self.classical, start=1):
            expressions[f"S{index}"] = tiling.tile_index_expr(
                qvar(self.space_dims[index]), u_expr
            )
        expressions["t_local"] = u_expr
        expressions["s0_local"] = self.hex_schedule.local_space_expr(
            phase, qvar(self.space_dims[0]), expressions["T"]
        )
        for index, tiling in enumerate(self.classical, start=1):
            expressions[f"s{index}_local"] = tiling.local_coordinate_expr(
                qvar(self.space_dims[index]), u_expr
            )
        return expressions

    def describe(self) -> str:
        """A human-readable summary of the tiling (used by the CLI and docs)."""
        lines = [
            f"hybrid tiling of {self.canonical.program.name}",
            f"  statements            : {self.num_statements}",
            f"  hexagonal dimension   : {self.space_dims[0]}",
            f"  cone                  : {self.cone}",
            f"  tile sizes            : {self.sizes}",
            f"  time period (2h+2)    : {self.shape.time_period}",
            f"  space period          : {self.shape.space_period}",
            f"  iterations / full tile: {self.iterations_per_full_tile()}",
            f"  time steps / tile     : {self.time_steps_per_tile()}",
        ]
        for tiling in self.classical:
            lines.append(f"  classical {tiling.dim_name:>4}      : {tiling}")
        return "\n".join(lines)

    def __getstate__(self) -> dict:
        """Drop the (re-derivable) memo caches when pickling."""
        state = self.__dict__.copy()
        state["_assign_cache"] = {}
        state["_schedule_arrays_cache"] = None
        state["_tile_groups_cache"] = None
        return state

    def __repr__(self) -> str:
        return f"HybridTiling({self.canonical.program.name}, {self.sizes})"
