"""Tiling algorithms: hexagonal, classical, hybrid and diamond.

This package implements Section 3 of the paper:

* :mod:`repro.tiling.cone` — opposite dependence cone and the slopes
  ``δ0``/``δ1`` (Section 3.3.2, Figure 3);
* :mod:`repro.tiling.hexagon` — the hexagonal tile shape, its constraints and
  the minimal-width condition (equation (1), Figure 4);
* :mod:`repro.tiling.hex_schedule` — the two-phase hexagonal tile schedule
  (equations (2)–(5), Figure 5);
* :mod:`repro.tiling.classical` — classical (parallelogram) tiling of the
  remaining space dimensions (equations (14)–(16));
* :mod:`repro.tiling.hybrid` — the combined hybrid schedule (Section 3.6,
  Figure 6) including intra-tile schedules (Section 3.5);
* :mod:`repro.tiling.tile_size` — load-to-compute based tile-size selection
  (Section 3.7);
* :mod:`repro.tiling.diamond` — diamond tiling, used for the qualitative
  comparison of Section 5;
* :mod:`repro.tiling.validate` — legality, coverage and parallelism checks.
"""

from repro.tiling.cone import DependenceCone
from repro.tiling.hexagon import HexagonalTileShape
from repro.tiling.hex_schedule import HexagonalSchedule, Phase
from repro.tiling.classical import ClassicalTiling
from repro.tiling.hybrid import HybridTiling, TileCoordinate, TileSizes
from repro.tiling.tile_size import TileSizeModel, select_tile_sizes
from repro.tiling.diamond import DiamondTiling
from repro.tiling.validate import (
    ScheduleValidationError,
    check_coverage,
    check_legality,
    check_tile_uniformity,
    validate_hybrid_tiling,
)

__all__ = [
    "DependenceCone",
    "HexagonalTileShape",
    "HexagonalSchedule",
    "Phase",
    "ClassicalTiling",
    "HybridTiling",
    "TileCoordinate",
    "TileSizes",
    "TileSizeModel",
    "select_tile_sizes",
    "DiamondTiling",
    "ScheduleValidationError",
    "check_coverage",
    "check_legality",
    "check_tile_uniformity",
    "validate_hybrid_tiling",
]
