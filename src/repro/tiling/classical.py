"""Classical (parallelogram) tiling of the inner space dimensions (Section 3.4).

Each space dimension ``s_i`` with ``i >= 1`` is strip-mined separately.  The
tile index and intra-tile coordinate are::

    S_i  = floor((s_i + δ1_i · u) / w_i)          (14)
    s'_i = (s_i + δ1_i · u) mod w_i               (17)

where ``u`` is the local (logical) time within the current hexagonal tile::

    u = (l + h + 1) mod (2h + 2)    for phase 0   (15)
    u = l mod (2h + 2)              for phase 1   (16)

Only the lower slope ``δ1_i`` of the dependence cone is needed: tiles along a
classically tiled dimension are executed *sequentially* (in increasing
``S_i``), so dependences pointing towards higher ``s_i`` are automatically
satisfied and only those pointing towards lower ``s_i`` must be compensated by
the skew.

Rational slopes are handled exactly by scaling numerator and denominator, so
the computed tile indices are always integers and match the quasi-affine
expressions emitted into the generated code.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.polyhedral.quasi_affine import QExpr, QFloorDiv, QMod, QMul, qvar
from repro.tiling.hex_schedule import Phase


@dataclass(frozen=True)
class ClassicalTiling:
    """Parallelogram tiling of one inner space dimension.

    Parameters
    ----------
    dim_name:
        Name of the tiled space dimension (``s1``, ``s2``, ...).
    delta1:
        Lower dependence slope for this dimension (``Δs_i >= -δ1_i·Δl``).
    width:
        Tile width ``w_i`` along this dimension.
    time_period:
        Height of the tiles, fixed to the hexagonal period ``2h + 2`` so the
        classical tiling composes with the hexagonal one.
    """

    dim_name: str
    delta1: Fraction
    width: int
    time_period: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("classical tile width must be positive")
        if self.delta1 < 0:
            raise ValueError("the skewing slope delta1 must be non-negative")
        if self.time_period <= 0:
            raise ValueError("time period must be positive")

    # -- scaling helpers ------------------------------------------------------------

    @property
    def scale(self) -> int:
        """Denominator of ``δ1_i``; all arithmetic is scaled by this factor."""
        return self.delta1.denominator

    @property
    def skew_numerator(self) -> int:
        return self.delta1.numerator

    # -- point-wise evaluation --------------------------------------------------------

    def local_time(self, l: int, phase: Phase, height: int) -> int:
        """The normalised time ``u`` of equations (15)/(16)."""
        if phase is Phase.BLUE:
            return (l + height + 1) % self.time_period
        return l % self.time_period

    def tile_index(self, s: int, u: int) -> int:
        """``S_i`` — equation (14), computed exactly for rational slopes."""
        numerator = self.scale * s + self.skew_numerator * u
        return numerator // (self.scale * self.width)

    def local_coordinate(self, s: int, u: int) -> int:
        """``s'_i`` — equation (17), scaled by :attr:`scale`.

        For integral slopes this is exactly ``(s_i + δ1_i·u) mod w_i``; for
        rational slopes the scaled remainder is returned, which preserves both
        uniqueness within the tile and the execution order.
        """
        numerator = self.scale * s + self.skew_numerator * u
        return numerator % (self.scale * self.width)

    def tile_index_batch(self, s, u):
        """Vectorised :meth:`tile_index`: NumPy floor division matches Python."""
        numerator = self.scale * s + self.skew_numerator * u
        return numerator // (self.scale * self.width)

    def local_coordinate_batch(self, s, u):
        """Vectorised :meth:`local_coordinate` (elementwise identical)."""
        numerator = self.scale * s + self.skew_numerator * u
        return numerator % (self.scale * self.width)

    def tile_origin(self, tile_index: int, u: int) -> Fraction:
        """Smallest (rational) ``s_i`` covered by a tile at normalised time ``u``."""
        return Fraction(tile_index * self.width * self.scale - self.skew_numerator * u, self.scale)

    def tile_extent(self) -> int:
        """Number of points along ``s_i`` per tile (the width ``w_i``)."""
        return self.width

    # -- quasi-affine expressions (for code generation) ----------------------------------

    def _numerator_expr(self, s: QExpr, u: QExpr) -> QExpr:
        scaled_s = QMul(s, self.scale) if self.scale != 1 else s
        if self.skew_numerator == 0:
            return scaled_s
        return scaled_s + QMul(u, self.skew_numerator)

    def tile_index_expr(self, s: QExpr | None = None, u: QExpr | None = None) -> QExpr:
        """Quasi-affine form of equation (14)."""
        s_expr = s if s is not None else qvar(self.dim_name)
        u_expr = u if u is not None else qvar("u")
        return QFloorDiv(self._numerator_expr(s_expr, u_expr), self.scale * self.width)

    def local_coordinate_expr(self, s: QExpr | None = None, u: QExpr | None = None) -> QExpr:
        """Quasi-affine form of equation (17)."""
        s_expr = s if s is not None else qvar(self.dim_name)
        u_expr = u if u is not None else qvar("u")
        return QMod(self._numerator_expr(s_expr, u_expr), self.scale * self.width)

    def normalized_time_expr(self, phase: Phase, height: int, l: QExpr | None = None) -> QExpr:
        """Quasi-affine form of equations (15)/(16)."""
        l_expr = l if l is not None else qvar("l")
        if phase is Phase.BLUE:
            return QMod(l_expr + (height + 1), self.time_period)
        return QMod(l_expr, self.time_period)

    def __str__(self) -> str:
        return (
            f"ClassicalTiling({self.dim_name}, w={self.width}, "
            f"delta1={self.delta1}, period={self.time_period})"
        )
