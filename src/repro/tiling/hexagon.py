"""The hexagonal tile shape (Section 3.3.2, Figure 4).

A hexagonal tile is described in the local coordinates ``(a, b)`` of the
rectangular box of one ``(T, S0)`` tile, where ``a`` is the local (logical)
time coordinate and ``b`` the local space coordinate.  The tile is the set of
integer points satisfying the constraints (6), (7), (8), (10), (12) and (13)
of the paper:

.. math::

    δ0·a - b &\\le (2h+1)·δ0 - ⌊δ0·h⌋            \\qquad (6) \\\\
    a &\\le 2h+1                                   \\qquad (7) \\\\
    δ1·a + b &\\le (2h+1)·δ1 + ⌊δ0·h⌋ + w_0        \\qquad (8) \\\\
    δ1·a + b &\\ge h·δ1 - (d_1-1)/d_1              \\qquad (10) \\\\
    δ0·a - b &\\ge h·δ0 - ⌊δ0·h⌋ - w_0 - ⌊δ1·h⌋ - (d_0-1)/d_0  \\qquad (12) \\\\
    a &\\ge 0                                      \\qquad (13)

where ``d_0`` and ``d_1`` are the denominators of ``δ0`` and ``δ1``.  The
width parameter must satisfy the convexity condition (1):

.. math::

    w_0 \\ge \\max(δ0 + \\{δ0·h\\}, δ1 + \\{δ1·h\\}) - 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from functools import cached_property
from collections.abc import Iterator

import numpy as np

from repro.polyhedral.affine import LinearExpr
from repro.polyhedral.basic_set import BasicSet
from repro.polyhedral.constraint import Constraint
from repro.polyhedral.space import Space
from repro.tiling.cone import DependenceCone


def _floor(value: Fraction) -> int:
    return math.floor(value)


def _fractional_part(value: Fraction) -> Fraction:
    return value - _floor(value)


def minimal_width(delta0: Fraction, delta1: Fraction, height: int) -> int:
    """Smallest integer ``w0`` satisfying the convexity condition (1)."""
    bound = max(
        delta0 + _fractional_part(delta0 * height),
        delta1 + _fractional_part(delta1 * height),
    ) - 1
    return max(0, math.ceil(bound))


@dataclass(frozen=True)
class HexagonalTileShape:
    """A hexagonal tile of height parameter ``h`` and width parameter ``w0``.

    The actual tile spans ``2h+2`` logical time steps (two half-tiles of
    ``h+1`` steps) and between ``w0+1`` and ``w0+1+⌊δ0h⌋+⌊δ1h⌋`` points along
    the space dimension, so the full period along the space dimension covered
    by one phase-0 plus one phase-1 tile is ``2w0+2+⌊δ0h⌋+⌊δ1h⌋``.
    """

    cone: DependenceCone
    height: int
    width: int

    def __post_init__(self) -> None:
        if self.height < 0:
            raise ValueError("tile height h must be non-negative")
        if self.width < 0:
            raise ValueError("tile width w0 must be non-negative")
        needed = minimal_width(self.cone.delta0, self.cone.delta1, self.height)
        if self.width < needed:
            raise ValueError(
                f"width w0={self.width} violates the convexity condition (1); "
                f"need w0 >= {needed} for h={self.height}, cone={self.cone}"
            )

    # -- derived quantities -------------------------------------------------------

    @property
    def delta0(self) -> Fraction:
        return self.cone.delta0

    @property
    def delta1(self) -> Fraction:
        return self.cone.delta1

    @cached_property
    def floor_delta0_h(self) -> int:
        """``⌊δ0·h⌋`` — the widening of the tile towards lower ``b``."""
        return _floor(self.delta0 * self.height)

    @cached_property
    def floor_delta1_h(self) -> int:
        """``⌊δ1·h⌋`` — the widening of the tile towards higher ``b``."""
        return _floor(self.delta1 * self.height)

    @cached_property
    def time_period(self) -> int:
        """Logical time steps per (two-phase) tile row: ``2h + 2``."""
        return 2 * self.height + 2

    @cached_property
    def space_period(self) -> int:
        """Space extent per phase-0 + phase-1 tile pair along ``s0``."""
        return 2 * self.width + 2 + self.floor_delta0_h + self.floor_delta1_h

    @cached_property
    def drift(self) -> int:
        """Offset ``⌊δ1·h⌋ - ⌊δ0·h⌋`` applied per time tile (tiles "lean")."""
        return self.floor_delta1_h - self.floor_delta0_h

    # -- the tile shape -------------------------------------------------------------

    @cached_property
    def space(self) -> Space:
        return Space(("a", "b"), name="hexagon")

    @cached_property
    def constraints(self) -> list[Constraint]:
        """The constraints (6), (7), (8), (10), (12), (13) on ``(a, b)``."""
        a = LinearExpr.var("a")
        b = LinearExpr.var("b")
        h = self.height
        w0 = self.width
        delta0 = self.delta0
        delta1 = self.delta1
        d0h = self.floor_delta0_h
        d1h = self.floor_delta1_h
        denominator0 = delta0.denominator
        denominator1 = delta1.denominator

        constraints = [
            # (6)  δ0·a - b <= (2h+1)·δ0 - ⌊δ0·h⌋
            Constraint.le(a * delta0 - b, delta0 * (2 * h + 1) - d0h),
            # (7)  a <= 2h+1
            Constraint.le(a, 2 * h + 1),
            # (8)  δ1·a + b <= (2h+1)·δ1 + ⌊δ0·h⌋ + w0
            Constraint.le(a * delta1 + b, delta1 * (2 * h + 1) + d0h + w0),
            # (10) δ1·a + b >= h·δ1 - (d1-1)/d1
            Constraint.ge(
                a * delta1 + b,
                delta1 * h - Fraction(denominator1 - 1, denominator1),
            ),
            # (12) δ0·a - b >= h·δ0 - ⌊δ0·h⌋ - w0 - ⌊δ1·h⌋ - (d0-1)/d0
            Constraint.ge(
                a * delta0 - b,
                delta0 * h - d0h - w0 - d1h - Fraction(denominator0 - 1, denominator0),
            ),
            # (13) a >= 0
            Constraint.ge(a, 0),
        ]
        return constraints

    @cached_property
    def basic_set(self) -> BasicSet:
        """The tile as an integer set over ``(a, b)``."""
        return BasicSet(self.space, self.constraints)

    @cached_property
    def _row_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Inclusive ``(lower, upper)`` bounds of ``b`` per row ``a``.

        One batched integer pass over all ``2h + 2`` rows: each rational
        bound ``p/q`` is reduced with ``ceil(p/q) = -((-p) // q)`` and
        ``floor(p/q) = p // q`` on scaled integer numerators, so the result
        is exact (no floating point) and bit-identical to the per-row
        :class:`~fractions.Fraction` evaluation kept as the reference in
        :meth:`_compute_row_range`.
        """
        h = self.height
        w0 = self.width
        d0h = self.floor_delta0_h
        d1h = self.floor_delta1_h
        n0, q0 = self.delta0.numerator, self.delta0.denominator
        n1, q1 = self.delta1.numerator, self.delta1.denominator
        a = np.arange(0, 2 * h + 2, dtype=np.int64)
        # From (6):  b >= δ0·(a - (2h+1)) + ⌊δ0·h⌋
        lower_a = -((-(n0 * (a - (2 * h + 1)))) // q0) + d0h
        # From (10): b >= (δ1·(h - a)·q1 - (q1-1)) / q1
        lower_b = -((-(n1 * (h - a) - (q1 - 1))) // q1)
        # From (8):  b <= δ1·(2h+1-a) + ⌊δ0·h⌋ + w0
        upper_a = (n1 * (2 * h + 1 - a)) // q1 + d0h + w0
        # From (12): b <= (δ0·(a-h)·q0 + (q0-1))/q0 + ⌊δ0·h⌋ + w0 + ⌊δ1·h⌋
        upper_b = (n0 * (a - h) + (q0 - 1)) // q0 + d0h + w0 + d1h
        return np.maximum(lower_a, lower_b), np.minimum(upper_a, upper_b)

    @cached_property
    def _row_ranges(self) -> tuple[range, ...]:
        """``row_range(a)`` for every ``a`` in ``[0, 2h+1]``, precomputed once.

        Membership tests run once per statement instance and phase, so the
        row bounds are evaluated a single time (one batched pass) and the
        per-point check reduces to two integer comparisons.
        """
        lower, upper = self._row_bounds
        return tuple(
            range(int(lo), int(hi) + 1) for lo, hi in zip(lower, upper)
        )

    def contains(self, a: int, b: int) -> bool:
        """Whether local point ``(a, b)`` belongs to the hexagon.

        Equivalent to checking the constraints (6)-(13): (7) and (13) bound
        ``a``, the remaining four constraints are exactly the row bounds.
        """
        if a < 0 or a > 2 * self.height + 1:
            return False
        return b in self._row_ranges[a]

    def contains_batch(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`contains` over arrays of local points."""
        lower, upper = self._row_bounds
        valid = (a >= 0) & (a <= 2 * self.height + 1)
        clipped = np.where(valid, a, 0)
        return valid & (b >= lower[clipped]) & (b <= upper[clipped])

    def points(self) -> Iterator[tuple[int, int]]:
        """All integer points of the tile, ordered by ``(a, b)``."""
        for a in range(0, 2 * self.height + 2):
            for b in self.row_range(a):
                yield (a, b)

    def row_range(self, a: int) -> range:
        """Integer ``b`` values of the tile at local time ``a``."""
        if a < 0 or a > 2 * self.height + 1:
            return range(0)
        return self._row_ranges[a]

    def _compute_row_range(self, a: int) -> range:
        h = self.height
        w0 = self.width
        delta0 = self.delta0
        delta1 = self.delta1
        d0h = self.floor_delta0_h
        d1h = self.floor_delta1_h
        # From (6):  b >= δ0·a - (2h+1)·δ0 + ⌊δ0·h⌋
        lower_a = delta0 * a - delta0 * (2 * h + 1) + d0h
        # From (10): b >= h·δ1 - (d1-1)/d1 - δ1·a
        lower_b = delta1 * h - Fraction(delta1.denominator - 1, delta1.denominator) - delta1 * a
        # From (8):  b <= (2h+1)·δ1 + ⌊δ0·h⌋ + w0 - δ1·a
        upper_a = delta1 * (2 * h + 1) + d0h + w0 - delta1 * a
        # From (12): b <= δ0·a - h·δ0 + ⌊δ0·h⌋ + w0 + ⌊δ1·h⌋ + (d0-1)/d0
        upper_b = (
            delta0 * a
            - delta0 * h
            + d0h
            + w0
            + d1h
            + Fraction(delta0.denominator - 1, delta0.denominator)
        )
        lower = max(lower_a, lower_b)
        upper = min(upper_a, upper_b)
        return range(math.ceil(lower), math.floor(upper) + 1)

    @cached_property
    def _point_count(self) -> int:
        return sum(len(rows) for rows in self._row_ranges)

    def count(self) -> int:
        """Number of integer points in the tile.

        Every *full* tile of the tiling contains exactly this many points —
        the property that distinguishes hexagonal from diamond tiling
        (Section 2 of the paper).
        """
        return self._point_count

    def row_width(self, a: int) -> int:
        """Number of points of the tile at local time ``a``."""
        return len(self.row_range(a))

    def peak_width(self) -> int:
        """Width of the narrowest row (the adjustable "peak" of Section 2)."""
        return min(self.row_width(a) for a in range(0, 2 * self.height + 2))

    def max_width(self) -> int:
        """Width of the widest row of the tile."""
        return max(self.row_width(a) for a in range(0, 2 * self.height + 2))

    @cached_property
    def _bounding_box(self) -> tuple[tuple[int, int], tuple[int, int]]:
        lows = [rows[0] for rows in self._row_ranges if len(rows)]
        highs = [rows[-1] for rows in self._row_ranges if len(rows)]
        return ((0, 2 * self.height + 1), (min(lows), max(highs)))

    def bounding_box(self) -> tuple[tuple[int, int], tuple[int, int]]:
        """Bounding box ``((a_min, a_max), (b_min, b_max))`` of the tile."""
        return self._bounding_box

    def __str__(self) -> str:
        return (
            f"HexagonalTileShape(h={self.height}, w0={self.width}, "
            f"delta0={self.delta0}, delta1={self.delta1}, points={self.count()})"
        )

    # -- ASCII rendering (used by examples and the Figure 4 bench) -----------------

    def render(self) -> str:
        """Render the tile as ASCII art (rows = time, columns = space)."""
        (_, _), (b_min, b_max) = self.bounding_box()
        lines = []
        for a in range(2 * self.height + 1, -1, -1):
            row = []
            row_points = set(self.row_range(a))
            for b in range(b_min, b_max + 1):
                row.append("#" if b in row_points else ".")
            lines.append(f"a={a:2d} " + "".join(row))
        return "\n".join(lines)
