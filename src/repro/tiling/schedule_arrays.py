"""Array-native schedule representation (columnar :class:`SchedulePoint`).

The object-based scheduling API of :mod:`repro.tiling.hybrid` materialises one
:class:`~repro.tiling.hybrid.SchedulePoint` per statement instance, which puts
a Python allocation and a Python comparison on every point of the iteration
space.  This module holds the batched counterpart: one
:class:`ScheduleArrays` carries the full schedule of ``N`` instances as int64
columns, assignment is a handful of NumPy passes (the hexagonal phase split,
the classical strip-mining and the statement decoding are all elementwise
integer arithmetic) and every ordering question becomes an ``np.lexsort``
over the schedule key.

The object-based path is kept as the executable reference; the equivalence
tests in ``tests/tiling/test_array_equivalence.py`` assert that both paths
produce identical orderings, groupings and validation verdicts across the
stencil library.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.tiling.hybrid import HybridTiling, SchedulePoint, TileCoordinate


@dataclass(frozen=True)
class ScheduleArrays:
    """Schedule coordinates of ``N`` statement instances, one column each.

    All arrays are int64 and share the row order of the canonical points they
    were built from.  ``space_tiles`` and ``local_space`` have one column per
    space dimension (``S_0 .. S_n`` and ``s'_0 .. s'_n``).
    """

    canonical: np.ndarray        # (N, 1 + ndim) — l, s0 .. sn
    statement_index: np.ndarray  # (N,)
    time_tile: np.ndarray        # (N,) — T
    phase: np.ndarray            # (N,) — p
    space_tiles: np.ndarray      # (N, ndim) — S0 .. Sn
    local_time: np.ndarray       # (N,) — t'
    local_space: np.ndarray      # (N, ndim) — s'0 .. s'n

    def __len__(self) -> int:
        return len(self.canonical)

    @property
    def ndim(self) -> int:
        return self.space_tiles.shape[1]

    # -- ordering ----------------------------------------------------------------

    def sequential_key_columns(self) -> tuple[np.ndarray, ...]:
        """Columns of the GPU-compatible total order, most significant first.

        Mirrors :meth:`repro.tiling.hybrid.SchedulePoint.sequential_key`:
        ``(T, p, S0, S1..Sn, t', s'0..s'n)``.
        """
        return (
            self.time_tile,
            self.phase,
            *(self.space_tiles[:, axis] for axis in range(self.ndim)),
            self.local_time,
            *(self.local_space[:, axis] for axis in range(self.ndim)),
        )

    def tile_key_columns(self) -> tuple[np.ndarray, ...]:
        """Columns identifying the tile: ``(T, p, S0 .. Sn)``."""
        return (
            self.time_tile,
            self.phase,
            *(self.space_tiles[:, axis] for axis in range(self.ndim)),
        )

    def sequential_order(self) -> np.ndarray:
        """Stable permutation sorting the rows by the sequential key."""
        keys = self.sequential_key_columns()
        return np.lexsort(tuple(reversed(keys)))

    def take(self, indices: np.ndarray) -> "ScheduleArrays":
        """Row subset/permutation (``arrays.take(order)`` sorts the schedule)."""
        return ScheduleArrays(
            canonical=self.canonical[indices],
            statement_index=self.statement_index[indices],
            time_tile=self.time_tile[indices],
            phase=self.phase[indices],
            space_tiles=self.space_tiles[indices],
            local_time=self.local_time[indices],
            local_space=self.local_space[indices],
        )

    # -- object interop ------------------------------------------------------------

    def point(self, index: int) -> "SchedulePoint":
        """Materialise one row as a :class:`SchedulePoint` (error reporting)."""
        from repro.tiling.hex_schedule import Phase
        from repro.tiling.hybrid import SchedulePoint, TileCoordinate

        tile = TileCoordinate(
            time_tile=int(self.time_tile[index]),
            phase=Phase(int(self.phase[index])),
            space_tiles=tuple(int(v) for v in self.space_tiles[index]),
        )
        return SchedulePoint(
            tile=tile,
            local_time=int(self.local_time[index]),
            local_space=tuple(int(v) for v in self.local_space[index]),
            statement_index=int(self.statement_index[index]),
            canonical_point=tuple(int(v) for v in self.canonical[index]),
        )

    def points(self, order: np.ndarray | None = None) -> Iterator["SchedulePoint"]:
        """Materialise rows as :class:`SchedulePoint` objects, lazily."""
        indices = range(len(self)) if order is None else order
        for index in indices:
            yield self.point(int(index))


def build_schedule_arrays(
    tiling: "HybridTiling",
    canonical_points: np.ndarray,
    check_unique: bool = False,
) -> ScheduleArrays:
    """Batched :meth:`HybridTiling.assign_canonical` over a point array.

    ``canonical_points`` is an ``(N, 1 + ndim)`` integer array of canonical
    coordinates ``(l, s0 .. sn)``.  Every output column is elementwise
    identical to the scalar assignment path.
    """
    points = np.asarray(canonical_points, dtype=np.int64)
    if points.ndim != 2 or points.shape[1] != 1 + tiling.ndim:
        raise ValueError(
            f"expected an (N, {1 + tiling.ndim}) canonical point array, "
            f"got shape {points.shape}"
        )
    l = points[:, 0]
    phase, time_tile, s0_tile, local_time, s0_local = (
        tiling.hex_schedule.assign_batch(l, points[:, 1], check_unique=check_unique)
    )
    space_tiles = np.empty((len(points), tiling.ndim), dtype=np.int64)
    local_space = np.empty((len(points), tiling.ndim), dtype=np.int64)
    space_tiles[:, 0] = s0_tile
    local_space[:, 0] = s0_local
    for axis, classical in enumerate(tiling.classical, start=1):
        coordinate = points[:, 1 + axis]
        space_tiles[:, axis] = classical.tile_index_batch(coordinate, local_time)
        local_space[:, axis] = classical.local_coordinate_batch(
            coordinate, local_time
        )
    return ScheduleArrays(
        canonical=points,
        statement_index=l % tiling.num_statements,
        time_tile=time_tile,
        phase=phase,
        space_tiles=space_tiles,
        local_time=local_time,
        local_space=local_space,
    )


def run_boundaries(*columns: np.ndarray) -> np.ndarray:
    """Start indices of the runs of equal composite keys in sorted columns.

    Given columns already sorted lexicographically, returns the indices where
    the composite key ``(columns[0][i], columns[1][i], ...)`` differs from the
    previous row (always including row 0).
    """
    if not columns:
        raise ValueError("need at least one key column")
    n = len(columns[0])
    if n == 0:
        return np.empty(0, dtype=np.intp)
    change = np.zeros(n, dtype=bool)
    change[0] = True
    for column in columns:
        change[1:] |= column[1:] != column[:-1]
    return np.flatnonzero(change)


def lexicographic_less(
    left: tuple[np.ndarray, ...], right: tuple[np.ndarray, ...]
) -> np.ndarray:
    """Elementwise ``left < right`` for tuples of key columns."""
    if len(left) != len(right):
        raise ValueError("key tuples must have the same arity")
    less = np.zeros(len(left[0]), dtype=bool)
    equal = np.ones(len(left[0]), dtype=bool)
    for lcol, rcol in zip(left, right):
        less |= equal & (lcol < rcol)
        equal &= lcol == rcol
    return less
