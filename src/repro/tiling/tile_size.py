"""Tile size selection based on the load-to-compute ratio (Section 3.7).

The model follows the paper: for a generic (non-boundary) tile it computes

* the number of statement instances executed by the tile, and
* the number of values loaded from global memory by the tile,

both as exact functions of the tile size parameters ``h, w_0, ..., w_n``, and
then picks the parameters with the smallest load-to-compute ratio among those
whose shared-memory footprint fits the hardware bound.  Loads are modelled as
the size of the rectangular shared-memory box PPCG allocates for the tile
(Section 4.2); with inter-tile reuse enabled (Section 4.2.2) only the part of
the box that was not already loaded by the preceding tile along the innermost
(classically tiled, sequentially executed) dimension is counted.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from collections.abc import Iterable, Mapping

from repro.model.preprocess import CanonicalForm
from repro.tiling.cone import DependenceCone
from repro.tiling.hexagon import HexagonalTileShape, minimal_width
from repro.tiling.hybrid import TileSizes

#: Reasons a tile-size candidate can be pruned during a search.  Shared with
#: the autotuner's candidate generator (:mod:`repro.tuning.space`) so both
#: report the same vocabulary in ``hexcc inspect``/``hexcc tune``.
PRUNE_SHARED_MEMORY = "shared_memory_overflow"
PRUNE_LEGALITY = "legality"
PRUNE_OCCUPANCY = "occupancy_floor"
PRUNE_REASONS = (PRUNE_SHARED_MEMORY, PRUNE_LEGALITY, PRUNE_OCCUPANCY)


def new_prune_counters() -> dict[str, int]:
    """A fresh ``reason -> count`` mapping, plus the ``evaluated`` counter."""
    counters = {reason: 0 for reason in PRUNE_REASONS}
    counters["evaluated"] = 0
    return counters


def height_is_legal(height: int, num_statements: int) -> bool:
    """``h + 1`` must be a multiple of the statement count (Section 3.3).

    Shared between :func:`select_tile_sizes` and the autotuner's candidate
    generator so the two searches can never disagree on legality.
    """
    return (height + 1) % num_statements == 0


def inner_width_keeps_full_warps(
    widths: tuple[int, ...], ndim: int, warp_size: int
) -> bool:
    """2-D+ stencils must fill whole warps along the innermost dimension.

    Partial warps idle cores on every barrier step (Section 2); 1-D stencils
    have no classically-tiled inner dimension, so no constraint applies.
    """
    return ndim < 2 or widths[-1] % warp_size == 0


@dataclass(frozen=True)
class TileCostEstimate:
    """Cost figures of one tile size choice."""

    sizes: TileSizes
    iterations: int
    loads: int
    stores: int
    shared_memory_bytes: int
    #: When produced by a search (:func:`select_tile_sizes`), the counts of
    #: candidates pruned per reason plus the ``evaluated`` count — why the
    #: rest of the space was rejected.  Excluded from equality so estimates
    #: from different searches still compare by their cost figures.
    rejections: Mapping[str, int] | None = field(
        default=None, compare=False, repr=False
    )

    @property
    def load_to_compute(self) -> float:
        """Loads per executed iteration — the figure of merit of Section 3.7."""
        if self.iterations == 0:
            return float("inf")
        return self.loads / self.iterations

    def __str__(self) -> str:
        return (
            f"TileCostEstimate({self.sizes}, iterations={self.iterations}, "
            f"loads={self.loads}, shared={self.shared_memory_bytes}B, "
            f"ratio={self.load_to_compute:.3f})"
        )


class TileSizeModel:
    """Analytic cost model of a hybrid tile for one stencil program."""

    def __init__(self, canonical: CanonicalForm, element_size: int = 4) -> None:
        self.canonical = canonical
        self.element_size = element_size
        self.cone = DependenceCone.from_distance_vectors(
            canonical.distance_vectors, dim_index=0
        )
        self._space_bounds = [
            canonical.space_distance_bounds(index)
            for index in range(len(canonical.space_dims))
        ]
        self._read_radii = self._compute_read_radii()
        # The search of select_tile_sizes revisits the same (h, w0) pair for
        # every combination of the remaining widths; the hexagonal shape (and
        # its exact-rational row geometry) only depends on (h, w0).
        self._shape_cache: dict[tuple[int, int], HexagonalTileShape] = {}

    def _compute_read_radii(self) -> dict[str, list[tuple[int, int]]]:
        """Per-field, per-dimension (negative, positive) read radii."""
        radii: dict[str, list[tuple[int, int]]] = {}
        for statement in self.canonical.program.statements:
            for read in statement.reads:
                entry = radii.setdefault(
                    read.field, [(0, 0)] * self.canonical.program.ndim
                )
                for axis, offset in enumerate(read.offsets):
                    low, high = entry[axis]
                    entry[axis] = (min(low, offset), max(high, offset))
        return radii

    # -- per-tile quantities ---------------------------------------------------------------

    def shape(self, sizes: TileSizes) -> HexagonalTileShape:
        key = (sizes.height, sizes.w0)
        shape = self._shape_cache.get(key)
        if shape is None:
            shape = HexagonalTileShape(self.cone, sizes.height, sizes.w0)
            self._shape_cache[key] = shape
        return shape

    def iterations(self, sizes: TileSizes) -> int:
        """Statement instances per full tile (matches the formula of §3.7)."""
        total = self.shape(sizes).count()
        for width in sizes.widths[1:]:
            total *= width
        return total

    def tile_box_extents(self, sizes: TileSizes) -> list[int]:
        """Data-space extent of the tile's footprint box along each space dim."""
        shape = self.shape(sizes)
        (_, _), (b_min, b_max) = shape.bounding_box()
        extents = [b_max - b_min + 1]
        for index, width in enumerate(sizes.widths[1:], start=1):
            _, delta1 = self._space_bounds[index]
            skew_span = int(delta1 * (shape.time_period - 1))
            extents.append(width + skew_span)
        return extents

    def footprint_elements(self, sizes: TileSizes, inter_tile_reuse: bool = False) -> int:
        """Array elements the tile must read from global memory.

        The footprint is the union over all fields of the rectangular box
        covering the tile's accesses to that field (the PPCG shared-memory
        allocation strategy).  With ``inter_tile_reuse`` the innermost
        dimension only contributes the non-overlapping part ``w_inner``.
        """
        extents = self.tile_box_extents(sizes)
        total = 0
        for field, radii in self._read_radii.items():
            field_total = 1
            for axis, extent in enumerate(extents):
                low, high = radii[axis]
                span = extent + (high - low)
                if inter_tile_reuse and axis == len(extents) - 1 and len(extents) > 1:
                    span = sizes.widths[axis]
                field_total *= span
            total += field_total
        return total

    def stores_per_tile(self, sizes: TileSizes) -> int:
        """Values written back to global memory per tile (one per iteration)."""
        return self.iterations(sizes)

    def shared_memory_bytes(self, sizes: TileSizes) -> int:
        """Shared memory needed to stage the tile's footprint boxes."""
        extents = self.tile_box_extents(sizes)
        total = 0
        for field, radii in self._read_radii.items():
            field_total = 1
            for axis, extent in enumerate(extents):
                low, high = radii[axis]
                field_total *= extent + (high - low)
            total += field_total
        return total * self.element_size

    def estimate(self, sizes: TileSizes, inter_tile_reuse: bool = True) -> TileCostEstimate:
        """Full cost estimate for one tile size choice."""
        return TileCostEstimate(
            sizes=sizes,
            iterations=self.iterations(sizes),
            loads=self.footprint_elements(sizes, inter_tile_reuse=inter_tile_reuse),
            stores=self.stores_per_tile(sizes),
            shared_memory_bytes=self.shared_memory_bytes(sizes),
        )

    # -- the closed-form of Section 3.7 --------------------------------------------------------

    def closed_form_iterations_3d(self, sizes: TileSizes) -> int:
        """``2·(1 + 2h + h² + w0·(h+1))·w1·w2`` — only valid for δ0 = δ1 = 1.

        Exposed so the tests can check the enumerative count against the
        closed form quoted in the paper.
        """
        if self.cone.delta0 != 1 or self.cone.delta1 != 1:
            raise ValueError("the closed form of §3.7 assumes δ0 = δ1 = 1")
        if len(sizes.widths) != 3:
            raise ValueError("the closed form of §3.7 is for 3D stencils")
        h = sizes.height
        w0 = sizes.w0
        return 2 * (1 + 2 * h + h * h + w0 * (h + 1)) * sizes.widths[1] * sizes.widths[2]


def select_tile_sizes(
    canonical: CanonicalForm,
    shared_memory_limit: int = 48 * 1024,
    warp_size: int = 32,
    height_candidates: Iterable[int] | None = None,
    width_candidates: Iterable[int] | None = None,
    inner_width_candidates: Iterable[int] | None = None,
    inter_tile_reuse: bool = True,
) -> TileCostEstimate:
    """Search the tile-size space and return the best estimate (Section 3.7).

    Constraints applied during the search:

    * ``h + 1`` must be a multiple of the number of statements;
    * ``w_0`` must satisfy the convexity condition (1);
    * the innermost tile width must be a multiple of the warp size so full
      warps execute, accesses are stride-one and loads are cache-line aligned
      (Section 2);
    * the shared-memory footprint must stay below ``shared_memory_limit``.

    The returned estimate carries a ``rejections`` mapping counting, per
    :data:`PRUNE_REASONS`, how many candidate points the search pruned (a
    ``w_0`` below the convexity minimum is *clamped* to it and counted as a
    legality prune of the raw point) plus the number actually ``evaluated``.
    """
    model = TileSizeModel(canonical)
    k = canonical.num_statements
    ndim = len(canonical.space_dims)

    # Caller-supplied axes are trusted as-is (callers may deliberately probe
    # off-grid points); only the built-in default axes are filtered — and
    # counted per prune reason.  The default inner widths are warp multiples
    # by construction, so ``occupancy_floor`` is zero unless a custom axis
    # violates the full-warp constraint knowingly.
    default_heights = height_candidates is None
    default_inner = inner_width_candidates is None
    if height_candidates is None:
        height_candidates = list(range(0, 17))
    if width_candidates is None:
        width_candidates = [1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16, 20, 24, 32]
    if inner_width_candidates is None:
        inner_width_candidates = [warp_size, 2 * warp_size, 4 * warp_size]

    heights = list(height_candidates)
    widths = list(width_candidates)
    inner_widths = list(inner_width_candidates)
    pruned = new_prune_counters()

    best: TileCostEstimate | None = None
    for height in heights:
        if default_heights and not height_is_legal(height, k):
            pruned[PRUNE_LEGALITY] += 1
            continue
        min_w0 = minimal_width(model.cone.delta0, model.cone.delta1, height)
        if ndim == 1:
            raw_w0s = [(w,) for w in widths]
        else:
            middle_dims = ndim - 2
            middle_choices = list(
                itertools.product(widths, repeat=middle_dims) if middle_dims else [()]
            )
            raw_w0s = [
                (w0, *middle, inner)
                for w0 in widths
                for middle in middle_choices
                for inner in inner_widths
            ]
        for raw in raw_w0s:
            if raw[0] < min_w0:
                # Condition (1) of Section 3.3: the hexagon degenerates below
                # this width.  The point is clamped to the minimum (so the
                # boundary candidate is still explored) and the raw point
                # counted as a legality prune.
                pruned[PRUNE_LEGALITY] += 1
            candidate = (max(raw[0], min_w0), *raw[1:])
            if default_inner and not inner_width_keeps_full_warps(
                candidate, ndim, warp_size
            ):
                pruned[PRUNE_OCCUPANCY] += 1
                continue
            sizes = TileSizes(height, tuple(candidate))
            estimate = model.estimate(sizes, inter_tile_reuse=inter_tile_reuse)
            if estimate.shared_memory_bytes > shared_memory_limit:
                pruned[PRUNE_SHARED_MEMORY] += 1
                continue
            pruned["evaluated"] += 1
            if best is None or _better(estimate, best):
                best = estimate
    if best is None:
        raise ValueError(
            "no legal tile size found within the shared-memory limit "
            f"(pruned: {PRUNE_SHARED_MEMORY}={pruned[PRUNE_SHARED_MEMORY]}, "
            f"{PRUNE_LEGALITY}={pruned[PRUNE_LEGALITY]}, "
            f"{PRUNE_OCCUPANCY}={pruned[PRUNE_OCCUPANCY]}); "
            "decrease the tile widths or increase the limit"
        )
    return replace(best, rejections=pruned)


def _better(candidate: TileCostEstimate, incumbent: TileCostEstimate) -> bool:
    """Prefer a lower load-to-compute ratio; break ties with fewer iterations."""
    if candidate.load_to_compute != incumbent.load_to_compute:
        return candidate.load_to_compute < incumbent.load_to_compute
    return candidate.iterations > incumbent.iterations
