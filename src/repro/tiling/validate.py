"""Validation of hybrid tilings: coverage, legality and tile uniformity.

These checks are the executable counterpart of the correctness argument of
Section 3.3.3 of the paper.  They work by exhaustive enumeration and are
therefore meant for the small problem instances used in tests; the point is
that the *same* schedule construction code is used for the small validated
instances and for the full-size benchmark configurations.

Three properties are checked:

* **coverage / uniqueness** — every statement instance is claimed by exactly
  one phase, i.e. the blue and green hexagons partition the iteration space;
* **legality** — for every dependence, the source instance is executed before
  the sink instance under the GPU execution model (sequential ``T`` and
  phases, parallel ``S0`` blocks, sequential ``S1..Sn`` and ``t'`` loops with
  a barrier after each ``t'``, parallel threads inside a barrier step);
* **uniformity** — all full (non-boundary) tiles contain exactly the same
  number of statement instances, the property that separates hexagonal from
  diamond tiling (Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tiling.hybrid import HybridTiling, SchedulePoint


class ScheduleValidationError(AssertionError):
    """A coverage, legality or uniformity violation was detected."""


@dataclass
class ValidationReport:
    """Summary of a full validation run."""

    instances_checked: int = 0
    dependences_checked: int = 0
    full_tiles: int = 0
    partial_tiles: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def __str__(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} violations"
        return (
            f"ValidationReport({status}, instances={self.instances_checked}, "
            f"dependences={self.dependences_checked}, "
            f"full_tiles={self.full_tiles}, partial_tiles={self.partial_tiles})"
        )


def check_coverage(tiling: HybridTiling) -> int:
    """Verify that every instance belongs to exactly one phase.

    Returns the number of instances checked; raises
    :class:`ScheduleValidationError` on the first violation.
    """
    checked = 0
    for _, canonical_point in tiling.canonical.instances():
        l, s0 = canonical_point[0], canonical_point[1]
        try:
            tiling.hex_schedule.assign(l, s0, check_unique=True)
        except ValueError as error:
            raise ScheduleValidationError(str(error)) from error
        checked += 1
    return checked


def check_legality(tiling: HybridTiling) -> int:
    """Verify that every dependence is respected by the hybrid schedule.

    Returns the number of (dependence, instance) pairs checked.
    """
    canonical = tiling.canonical
    domains = {
        index: statement.domain
        for index, statement in enumerate(canonical.scop.statements)
    }
    name_to_index = {
        statement.name: index
        for index, statement in enumerate(canonical.scop.statements)
    }
    # Pre-index the dependences by their sink statement so the inner loop
    # only visits dependences that can actually end at the current instance.
    by_sink: dict[int, list[tuple[int, object]]] = {}
    for dependence in canonical.dependences:
        by_sink.setdefault(name_to_index[dependence.sink], []).append(
            (name_to_index[dependence.source], dependence)
        )
    num_statements = canonical.num_statements
    checked = 0
    for _, sink_point in canonical.instances():
        sink = tiling.assign_canonical(sink_point)
        for source_index, dependence in by_sink.get(sink.statement_index, ()):
            source_point = tuple(
                coordinate - distance
                for coordinate, distance in zip(sink_point, dependence.distance)
            )
            if source_point[0] % num_statements != source_index:
                # The dependence distance moves to a logical time slot that is
                # not owned by the source statement: no instance there.
                continue
            source_t = source_point[0] // num_statements
            source_instance = (source_t, *source_point[1:])
            if not domains[source_index].contains(source_instance):
                continue
            source = tiling.assign_canonical(source_point)
            _check_pair_ordering(source, sink, dependence)
            checked += 1
    return checked


def _check_pair_ordering(source: SchedulePoint, sink: SchedulePoint, dependence) -> None:
    """Raise unless ``source`` executes before ``sink`` on the GPU."""
    source_outer = (source.tile.time_tile, int(source.tile.phase))
    sink_outer = (sink.tile.time_tile, int(sink.tile.phase))
    if source_outer < sink_outer:
        return
    if source_outer > sink_outer:
        raise ScheduleValidationError(
            f"dependence {dependence} violated: source tile {source.tile} "
            f"executes after sink tile {sink.tile}"
        )
    # Same time tile and phase: blocks run in parallel, so the two instances
    # must live in the same hexagonal (S0) tile.
    if source.tile.space_tiles[0] != sink.tile.space_tiles[0]:
        raise ScheduleValidationError(
            f"dependence {dependence} crosses concurrent blocks: "
            f"{source.tile} -> {sink.tile}"
        )
    source_inner = (tuple(source.tile.space_tiles[1:]), source.local_time)
    sink_inner = (tuple(sink.tile.space_tiles[1:]), sink.local_time)
    if source_inner >= sink_inner:
        raise ScheduleValidationError(
            f"dependence {dependence} violated inside tile {sink.tile}: "
            f"source inner coordinates {source_inner} do not precede "
            f"{sink_inner}"
        )


def check_tile_uniformity(tiling: HybridTiling) -> tuple[int, int]:
    """Check that all full tiles have the same iteration count.

    Returns ``(full_tiles, partial_tiles)``.  A tile is *full* when its point
    count equals :meth:`HybridTiling.iterations_per_full_tile`; partial tiles
    (at the domain boundary) may contain fewer points but never more.
    """
    expected = tiling.iterations_per_full_tile()
    full = 0
    partial = 0
    for tile, points in tiling.group_instances_by_tile().items():
        if len(points) > expected:
            raise ScheduleValidationError(
                f"tile {tile} contains {len(points)} points, more than the "
                f"uniform full-tile count {expected}"
            )
        if len(points) == expected:
            full += 1
        else:
            partial += 1
    return full, partial


def validate_hybrid_tiling(tiling: HybridTiling) -> ValidationReport:
    """Run all validation passes and return a report.

    Raises :class:`ScheduleValidationError` as soon as a violation is found.
    """
    report = ValidationReport()
    report.instances_checked = check_coverage(tiling)
    report.dependences_checked = check_legality(tiling)
    report.full_tiles, report.partial_tiles = check_tile_uniformity(tiling)
    return report
