"""Validation of hybrid tilings: coverage, legality and tile uniformity.

These checks are the executable counterpart of the correctness argument of
Section 3.3.3 of the paper.  They work by exhaustive enumeration and are
therefore meant for the small problem instances used in tests; the point is
that the *same* schedule construction code is used for the small validated
instances and for the full-size benchmark configurations.

Three properties are checked:

* **coverage / uniqueness** — every statement instance is claimed by exactly
  one phase, i.e. the blue and green hexagons partition the iteration space;
* **legality** — for every dependence, the source instance is executed before
  the sink instance under the GPU execution model (sequential ``T`` and
  phases, parallel ``S0`` blocks, sequential ``S1..Sn`` and ``t'`` loops with
  a barrier after each ``t'``, parallel threads inside a barrier step);
* **uniformity** — all full (non-boundary) tiles contain exactly the same
  number of statement instances, the property that separates hexagonal from
  diamond tiling (Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.tiling.hybrid import HybridTiling, SchedulePoint
from repro.tiling.schedule_arrays import lexicographic_less


class ScheduleValidationError(AssertionError):
    """A coverage, legality or uniformity violation was detected."""


@dataclass
class ValidationReport:
    """Summary of a full validation run."""

    instances_checked: int = 0
    dependences_checked: int = 0
    full_tiles: int = 0
    partial_tiles: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def __str__(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} violations"
        return (
            f"ValidationReport({status}, instances={self.instances_checked}, "
            f"dependences={self.dependences_checked}, "
            f"full_tiles={self.full_tiles}, partial_tiles={self.partial_tiles})"
        )


def check_coverage(tiling: HybridTiling) -> int:
    """Verify that every instance belongs to exactly one phase.

    One batched phase-membership pass over all instances.  Returns the number
    of instances checked; raises :class:`ScheduleValidationError` on a
    violation.
    """
    points = tiling.canonical.instances_array()
    try:
        tiling.hex_schedule.assign_batch(
            points[:, 0], points[:, 1], check_unique=True
        )
    except ValueError as error:
        raise ScheduleValidationError(str(error)) from error
    return len(points)


def check_coverage_reference(tiling: HybridTiling) -> int:
    """Point-at-a-time reference implementation of :func:`check_coverage`."""
    checked = 0
    for _, canonical_point in tiling.canonical.instances():
        l, s0 = canonical_point[0], canonical_point[1]
        try:
            tiling.hex_schedule.assign(l, s0, check_unique=True)
        except ValueError as error:
            raise ScheduleValidationError(str(error)) from error
        checked += 1
    return checked


def check_legality(tiling: HybridTiling) -> int:
    """Verify that every dependence is respected by the hybrid schedule.

    One batched pass per dependence: source points are derived by array
    subtraction, filtered through the source statement's domain
    (:meth:`~repro.polyhedral.basic_set.BasicSet.contains_batch`), assigned in
    one batch and compared against the sinks with vectorised lexicographic
    tests.  Returns the number of (dependence, instance) pairs checked.
    """
    canonical = tiling.canonical
    arrays = tiling.schedule_arrays()
    points = canonical.instances_array()
    domains = {
        index: statement.domain
        for index, statement in enumerate(canonical.scop.statements)
    }
    name_to_index = {
        statement.name: index
        for index, statement in enumerate(canonical.scop.statements)
    }
    num_statements = canonical.num_statements
    checked = 0
    for dependence in canonical.dependences:
        sink_index = name_to_index[dependence.sink]
        source_index = name_to_index[dependence.source]
        sink_rows = np.flatnonzero(arrays.statement_index == sink_index)
        if not len(sink_rows):
            continue
        distance = np.asarray(dependence.distance, dtype=np.int64)
        source_points = points[sink_rows] - distance
        # The dependence distance shifts every sink of this statement by the
        # same logical-time offset, so the "does the slot belong to the source
        # statement" test is one modulo check, not a per-instance loop.
        if int(source_points[0, 0]) % num_statements != source_index:
            continue
        source_t = source_points[:, 0] // num_statements
        in_domain = domains[source_index].contains_batch(
            np.column_stack((source_t, source_points[:, 1:]))
        )
        if not in_domain.any():
            continue
        sinks = arrays.take(sink_rows[in_domain])
        sources = tiling.assign_batch(source_points[in_domain])
        _check_pair_ordering_batch(sources, sinks, dependence)
        checked += int(in_domain.sum())
    return checked


def _check_pair_ordering_batch(sources, sinks, dependence) -> None:
    """Vectorised :func:`_check_pair_ordering` over aligned source/sink rows."""
    source_outer = (sources.time_tile, sources.phase)
    sink_outer = (sinks.time_tile, sinks.phase)
    outer_before = lexicographic_less(source_outer, sink_outer)
    outer_after = lexicographic_less(sink_outer, source_outer)
    if outer_after.any():
        index = int(np.flatnonzero(outer_after)[0])
        raise ScheduleValidationError(
            f"dependence {dependence} violated: source tile "
            f"{sources.point(index).tile} executes after sink tile "
            f"{sinks.point(index).tile}"
        )
    same_outer = ~outer_before
    # Same time tile and phase: blocks run in parallel, so the two instances
    # must live in the same hexagonal (S0) tile.
    crossing = same_outer & (sources.space_tiles[:, 0] != sinks.space_tiles[:, 0])
    if crossing.any():
        index = int(np.flatnonzero(crossing)[0])
        raise ScheduleValidationError(
            f"dependence {dependence} crosses concurrent blocks: "
            f"{sources.point(index).tile} -> {sinks.point(index).tile}"
        )
    inner_columns = range(1, sources.ndim)
    source_inner = (
        *(sources.space_tiles[:, axis] for axis in inner_columns),
        sources.local_time,
    )
    sink_inner = (
        *(sinks.space_tiles[:, axis] for axis in inner_columns),
        sinks.local_time,
    )
    stalled = same_outer & ~lexicographic_less(source_inner, sink_inner)
    if stalled.any():
        index = int(np.flatnonzero(stalled)[0])
        source_point = sources.point(index)
        sink_point = sinks.point(index)
        source_key = (tuple(source_point.tile.space_tiles[1:]), source_point.local_time)
        sink_key = (tuple(sink_point.tile.space_tiles[1:]), sink_point.local_time)
        raise ScheduleValidationError(
            f"dependence {dependence} violated inside tile {sink_point.tile}: "
            f"source inner coordinates {source_key} do not precede "
            f"{sink_key}"
        )


def check_legality_reference(tiling: HybridTiling) -> int:
    """Point-at-a-time reference implementation of :func:`check_legality`.

    Goes through :meth:`HybridTiling.assign_canonical` for every source and
    sink, so it also exercises the object-based assignment path.
    """
    canonical = tiling.canonical
    domains = {
        index: statement.domain
        for index, statement in enumerate(canonical.scop.statements)
    }
    name_to_index = {
        statement.name: index
        for index, statement in enumerate(canonical.scop.statements)
    }
    # Pre-index the dependences by their sink statement so the inner loop
    # only visits dependences that can actually end at the current instance.
    by_sink: dict[int, list[tuple[int, object]]] = {}
    for dependence in canonical.dependences:
        by_sink.setdefault(name_to_index[dependence.sink], []).append(
            (name_to_index[dependence.source], dependence)
        )
    num_statements = canonical.num_statements
    checked = 0
    for _, sink_point in canonical.instances():
        sink = tiling.assign_canonical(sink_point)
        for source_index, dependence in by_sink.get(sink.statement_index, ()):
            source_point = tuple(
                coordinate - distance
                for coordinate, distance in zip(sink_point, dependence.distance)
            )
            if source_point[0] % num_statements != source_index:
                # The dependence distance moves to a logical time slot that is
                # not owned by the source statement: no instance there.
                continue
            source_t = source_point[0] // num_statements
            source_instance = (source_t, *source_point[1:])
            if not domains[source_index].contains(source_instance):
                continue
            source = tiling.assign_canonical(source_point)
            _check_pair_ordering(source, sink, dependence)
            checked += 1
    return checked


def _check_pair_ordering(source: SchedulePoint, sink: SchedulePoint, dependence) -> None:
    """Raise unless ``source`` executes before ``sink`` on the GPU."""
    source_outer = (source.tile.time_tile, int(source.tile.phase))
    sink_outer = (sink.tile.time_tile, int(sink.tile.phase))
    if source_outer < sink_outer:
        return
    if source_outer > sink_outer:
        raise ScheduleValidationError(
            f"dependence {dependence} violated: source tile {source.tile} "
            f"executes after sink tile {sink.tile}"
        )
    # Same time tile and phase: blocks run in parallel, so the two instances
    # must live in the same hexagonal (S0) tile.
    if source.tile.space_tiles[0] != sink.tile.space_tiles[0]:
        raise ScheduleValidationError(
            f"dependence {dependence} crosses concurrent blocks: "
            f"{source.tile} -> {sink.tile}"
        )
    source_inner = (tuple(source.tile.space_tiles[1:]), source.local_time)
    sink_inner = (tuple(sink.tile.space_tiles[1:]), sink.local_time)
    if source_inner >= sink_inner:
        raise ScheduleValidationError(
            f"dependence {dependence} violated inside tile {sink.tile}: "
            f"source inner coordinates {source_inner} do not precede "
            f"{sink_inner}"
        )


def check_tile_uniformity(tiling: HybridTiling) -> tuple[int, int]:
    """Check that all full tiles have the same iteration count.

    One ``np.unique`` pass over the composite tile keys.  Returns
    ``(full_tiles, partial_tiles)``.  A tile is *full* when its point count
    equals :meth:`HybridTiling.iterations_per_full_tile`; partial tiles (at
    the domain boundary) may contain fewer points but never more.
    """
    expected = tiling.iterations_per_full_tile()
    arrays = tiling.schedule_arrays()
    tile_keys = np.column_stack(arrays.tile_key_columns())
    _, first_rows, counts = np.unique(
        tile_keys, axis=0, return_index=True, return_counts=True
    )
    oversized = counts > expected
    if oversized.any():
        index = int(np.flatnonzero(oversized)[0])
        tile = arrays.point(int(first_rows[index])).tile
        raise ScheduleValidationError(
            f"tile {tile} contains {int(counts[index])} points, more than the "
            f"uniform full-tile count {expected}"
        )
    full = int((counts == expected).sum())
    return full, len(counts) - full


def check_tile_uniformity_reference(tiling: HybridTiling) -> tuple[int, int]:
    """Object-based reference implementation of :func:`check_tile_uniformity`."""
    expected = tiling.iterations_per_full_tile()
    full = 0
    partial = 0
    for tile, points in tiling.group_instances_by_tile_reference().items():
        if len(points) > expected:
            raise ScheduleValidationError(
                f"tile {tile} contains {len(points)} points, more than the "
                f"uniform full-tile count {expected}"
            )
        if len(points) == expected:
            full += 1
        else:
            partial += 1
    return full, partial


def validate_hybrid_tiling(
    tiling: HybridTiling, reference: bool = False
) -> ValidationReport:
    """Run all validation passes and return a report.

    Raises :class:`ScheduleValidationError` as soon as a violation is found.
    ``reference=True`` selects the retained object-based implementations; the
    default batched passes produce identical reports (asserted by the
    equivalence tests).
    """
    report = ValidationReport()
    if reference:
        report.instances_checked = check_coverage_reference(tiling)
        report.dependences_checked = check_legality_reference(tiling)
        report.full_tiles, report.partial_tiles = check_tile_uniformity_reference(
            tiling
        )
    else:
        report.instances_checked = check_coverage(tiling)
        report.dependences_checked = check_legality(tiling)
        report.full_tiles, report.partial_tiles = check_tile_uniformity(tiling)
    return report
