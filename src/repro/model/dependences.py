"""Dependence analysis for stencil programs.

The hexagonal tile construction (Section 3.3.2 of the paper) only needs the
set of *dependence distance vectors* in the canonical schedule space
``[k*t + i, s0, ..., sn]``.  For the class of programs accepted by the front
end — constant-offset stencil reads — those distances are constant vectors
that can be read off the access offsets directly, which is what this module
does (playing the role of isl's dataflow analysis [Feautrier 1991]).

Two storage models are supported:

* ``expanded`` — every time step writes a fresh array version (the paper's
  ``A[t][i]`` example); only flow (read-after-write) dependences exist.
* ``rotating`` — values live in a rotating double buffer (``A[t%2]`` as in
  Figure 1); additional anti and output dependences constrain the schedule.

Both models produce dependence cones that are valid for hybrid tiling; the
benchmarks of the paper have symmetric stencils, for which the two models
yield the same cone.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.model.program import StencilProgram


class DependenceKind(enum.Enum):
    """Classification of a data dependence."""

    FLOW = "flow"      # read after write
    ANTI = "anti"      # write after read
    OUTPUT = "output"  # write after write


@dataclass(frozen=True)
class Dependence:
    """A dependence between two statements with a constant distance vector.

    ``distance`` is expressed in the canonical schedule space
    ``[k*t + i, s0, ..., sn]``: the first component is the distance along the
    logical time dimension, the remaining components along the space
    dimensions.  ``sink`` depends on ``source``: the source instance at
    ``sink_instance - distance`` must execute before the sink instance.
    """

    source: str
    sink: str
    kind: DependenceKind
    distance: tuple[int, ...]

    @property
    def time_distance(self) -> int:
        return self.distance[0]

    @property
    def space_distances(self) -> tuple[int, ...]:
        return self.distance[1:]

    def __str__(self) -> str:
        return (
            f"{self.source} -> {self.sink} [{self.kind.value}] "
            f"distance={self.distance}"
        )


class DependenceError(ValueError):
    """The program violates the structural assumptions of Section 3.2/3.3.1."""


def compute_dependences(
    program: StencilProgram,
    storage: str = "expanded",
) -> list[Dependence]:
    """Compute the dependences of a stencil program.

    Parameters
    ----------
    program:
        The stencil program.
    storage:
        ``"expanded"`` for single-assignment (time-expanded) arrays or
        ``"rotating"`` for double-buffered storage; see the module docstring.
    """
    if storage not in ("expanded", "rotating"):
        raise ValueError("storage must be 'expanded' or 'rotating'")

    k = program.num_statements
    writer_index: dict[str, int] = {}
    for index, statement in enumerate(program.statements):
        if statement.target in writer_index:
            raise DependenceError(
                f"field {statement.target!r} is written by more than one statement; "
                "the canonicalisation of Section 3.2 requires a single writer"
            )
        writer_index[statement.target] = index

    dependences: list[Dependence] = []
    for sink_index, statement in enumerate(program.statements):
        for read in statement.unique_reads:
            if read.field not in writer_index:
                # Read of a read-only input field: no dependence.
                continue
            source_index = writer_index[read.field]
            time_distance = k * read.time_offset + (sink_index - source_index)
            if time_distance <= 0:
                raise DependenceError(
                    f"statement {statement.name!r} reads {read.field!r} with "
                    f"time offset {read.time_offset} but the producing statement "
                    "does not execute earlier; the input is not a valid stencil"
                )
            distance = (time_distance, *(-o for o in read.offsets))
            dependences.append(
                Dependence(
                    source=program.statements[source_index].name,
                    sink=statement.name,
                    kind=DependenceKind.FLOW,
                    distance=distance,
                )
            )
            if storage == "rotating":
                # Anti dependence: the storage cell read here is overwritten by
                # the writer's next visit to that buffer.  With a rotating
                # buffer of depth ``time_offset + 1`` the next overwrite of the
                # same cell happens ``time_offset + 1`` time iterations after
                # the producing write, i.e. one iteration after the read.
                anti_time = k * 1 + (source_index - sink_index)
                if anti_time > 0:
                    dependences.append(
                        Dependence(
                            source=statement.name,
                            sink=program.statements[source_index].name,
                            kind=DependenceKind.ANTI,
                            distance=(anti_time, *read.offsets),
                        )
                    )
    if storage == "rotating":
        depth = program.max_time_offset() + 1
        for statement in program.statements:
            dependences.append(
                Dependence(
                    source=statement.name,
                    sink=statement.name,
                    kind=DependenceKind.OUTPUT,
                    distance=(k * depth, *([0] * program.ndim)),
                )
            )
    return dependences


def dependence_distance_vectors(
    dependences: Iterable[Dependence],
) -> list[tuple[int, ...]]:
    """Distinct distance vectors of a dependence collection."""
    seen: set[tuple[int, ...]] = set()
    result: list[tuple[int, ...]] = []
    for dependence in dependences:
        if dependence.distance not in seen:
            seen.add(dependence.distance)
            result.append(dependence.distance)
    return result


def validate_stencil_assumptions(
    program: StencilProgram,
    dependences: Sequence[Dependence],
) -> None:
    """Check the input restrictions of Sections 3.2 and 3.3.1.

    * every dependence is carried by the (logical) time dimension, so the
      space dimensions are fully parallel within a time iteration;
    * space distances are bounded (trivially true for constant distances).
    """
    for dependence in dependences:
        if dependence.time_distance <= 0:
            raise DependenceError(
                f"dependence {dependence} is not carried by the time dimension"
            )
