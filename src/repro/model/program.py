"""Executable stencil programs.

A :class:`StencilProgram` is the canonical, analysable description of an
iterative stencil computation: a set of fields over a rectangular grid and an
ordered list of update statements applied at every time step.  It corresponds
to the class of inputs the paper's Section 3.2 accepts — an outer time loop
containing ``k >= 1`` perfect loop nests none of whose inner loops carry
dependences.

The program can execute itself with NumPy (:meth:`StencilProgram.run_reference`)
which provides the ground truth all code generators and the GPU simulator are
validated against.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from collections.abc import Mapping, Sequence

import numpy as np

from repro.model.expr import (
    BinOp,
    Call,
    Constant,
    Expr,
    FieldRead,
    count_flops,
    distinct_reads,
    gather_reads,
)


def _figure1_expr(expr: Expr, loop_vars: Sequence[str], time_var: str = "t") -> str:
    """Print an expression in the time-indexed form ``A[t-k][i+1][j]``.

    This is the inverse of what the front end's lowering accepts: a write at
    ``A[t][...]`` reading ``A[t-k][...]`` yields ``time_offset == k``.
    """
    if isinstance(expr, Constant):
        return f"{expr.value}f"
    if isinstance(expr, FieldRead):
        if expr.time_offset == 0:
            time_sub = f"[{time_var}]"
        else:
            time_sub = f"[{time_var}-{expr.time_offset}]"
        subscripts = []
        for name, offset in zip(loop_vars, expr.offsets):
            if offset == 0:
                subscripts.append(f"[{name}]")
            elif offset > 0:
                subscripts.append(f"[{name}+{offset}]")
            else:
                subscripts.append(f"[{name}-{-offset}]")
        return f"{expr.field}{time_sub}{''.join(subscripts)}"
    if isinstance(expr, BinOp):
        lhs = _figure1_expr(expr.lhs, loop_vars, time_var)
        rhs = _figure1_expr(expr.rhs, loop_vars, time_var)
        return f"({lhs} {expr.op} {rhs})"
    if isinstance(expr, Call):
        args = ", ".join(_figure1_expr(a, loop_vars, time_var) for a in expr.args)
        return f"{expr.name}({args})"
    raise TypeError(f"cannot print {type(expr).__name__} as Figure-1 C")


@dataclass(frozen=True)
class Field:
    """A named grid field (array) of single precision floats."""

    name: str
    element_size: int = 4  # bytes; the paper uses single precision throughout

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class StencilStatement:
    """One update statement of the stencil.

    Parameters
    ----------
    name:
        Statement label (``S0``, ``update_ex`` ...).
    target:
        Name of the field written by the statement.
    expr:
        Right-hand side expression over :class:`~repro.model.expr.FieldRead`
        leaves.
    lower_margin / upper_margin:
        Number of boundary layers, per space dimension, that the statement
        does *not* update (Dirichlet boundary).  A classic Jacobi stencil over
        ``i in [1, N-2]`` has margins ``(1, 1)`` on both sides.
    """

    name: str
    target: str
    expr: Expr
    lower_margin: tuple[int, ...]
    upper_margin: tuple[int, ...]

    @property
    def reads(self) -> list[FieldRead]:
        """All reads, duplicates preserved (one per textual occurrence)."""
        return gather_reads(self.expr)

    @property
    def unique_reads(self) -> list[FieldRead]:
        """Distinct reads (what must be loaded at least once per point)."""
        return distinct_reads(self.expr)

    @property
    def flops(self) -> int:
        """Floating point operations per updated point."""
        return count_flops(self.expr)

    @property
    def loads(self) -> int:
        """Distinct loads per updated point (the "Loads" column of Table 3)."""
        return len(self.unique_reads)

    def max_time_offset(self) -> int:
        return max((r.time_offset for r in self.reads), default=1)

    def spatial_radius(self) -> int:
        """Largest absolute spatial offset used by any read."""
        radius = 0
        for read in self.reads:
            for offset in read.offsets:
                radius = max(radius, abs(offset))
        return radius


class StencilProgram:
    """An iterative stencil computation over a rectangular grid.

    Parameters
    ----------
    name:
        Program name (used in reports and generated code).
    space_dims:
        Names of the space dimensions, outermost first; the innermost
        dimension is assumed to be the unit-stride dimension (Section 3.6).
    sizes:
        Grid extent along each space dimension.
    time_steps:
        Number of outer time iterations.
    statements:
        Ordered update statements executed within one time iteration.
    fields:
        Optional explicit field list; inferred from the statements otherwise.
    """

    def __init__(
        self,
        name: str,
        space_dims: Sequence[str],
        sizes: Sequence[int],
        time_steps: int,
        statements: Sequence[StencilStatement],
        fields: Sequence[Field] | None = None,
        source: str | None = None,
    ) -> None:
        if len(space_dims) != len(sizes):
            raise ValueError("space_dims and sizes must have the same length")
        if not statements:
            raise ValueError("a stencil program needs at least one statement")
        self.name = name
        self.space_dims = tuple(space_dims)
        self.sizes = tuple(int(s) for s in sizes)
        self.time_steps = int(time_steps)
        self.statements = list(statements)
        self.source = source

        field_names: list[str] = []
        for statement in self.statements:
            if statement.target not in field_names:
                field_names.append(statement.target)
            for read in statement.reads:
                if read.field not in field_names:
                    field_names.append(read.field)
            if len(statement.lower_margin) != len(self.space_dims):
                raise ValueError(
                    f"statement {statement.name}: margin arity does not match grid"
                )
        if fields is None:
            self.fields = {name: Field(name) for name in field_names}
        else:
            self.fields = {f.name: f for f in fields}
            missing = [n for n in field_names if n not in self.fields]
            if missing:
                raise ValueError(f"statements reference undeclared fields {missing}")

    # -- basic queries -------------------------------------------------------

    @property
    def ndim(self) -> int:
        """Number of space dimensions."""
        return len(self.space_dims)

    @property
    def num_statements(self) -> int:
        return len(self.statements)

    def statement(self, name: str) -> StencilStatement:
        for statement in self.statements:
            if statement.name == name:
                return statement
        raise KeyError(name)

    def max_time_offset(self) -> int:
        return max(s.max_time_offset() for s in self.statements)

    def spatial_radius(self) -> int:
        return max(s.spatial_radius() for s in self.statements)

    def grid_points(self) -> int:
        total = 1
        for size in self.sizes:
            total *= size
        return total

    def interior_points(self, statement: StencilStatement) -> int:
        total = 1
        for size, lo, hi in zip(self.sizes, statement.lower_margin, statement.upper_margin):
            extent = size - lo - hi
            if extent <= 0:
                return 0
            total *= extent
        return total

    def stencil_updates(self, time_steps: int | None = None) -> int:
        """Total number of stencil point updates over the whole run."""
        steps = self.time_steps if time_steps is None else time_steps
        return steps * sum(self.interior_points(s) for s in self.statements)

    def flops_total(self, time_steps: int | None = None) -> int:
        steps = self.time_steps if time_steps is None else time_steps
        return steps * sum(
            self.interior_points(s) * s.flops for s in self.statements
        )

    def data_bytes(self) -> int:
        """Total size of all fields in bytes."""
        return sum(
            self.grid_points() * field.element_size for field in self.fields.values()
        )

    # -- characteristics (Table 3) ------------------------------------------------

    def characteristics(self) -> list[dict[str, int | str]]:
        """Per-statement characteristics as reported in Table 3 of the paper."""
        rows = []
        for statement in self.statements:
            rows.append(
                {
                    "statement": statement.name,
                    "loads": statement.loads,
                    "flops": statement.flops,
                    "data_size": "x".join(str(s) for s in self.sizes),
                    "steps": self.time_steps,
                }
            )
        return rows

    # -- reference execution -------------------------------------------------------

    def initial_state(self, seed: int = 0) -> dict[str, np.ndarray]:
        """Deterministic pseudo-random initial condition for every field."""
        rng = np.random.default_rng(seed)
        return {
            name: rng.standard_normal(self.sizes).astype(np.float32)
            for name in self.fields
        }

    def run_reference(
        self,
        initial: Mapping[str, np.ndarray] | None = None,
        time_steps: int | None = None,
        seed: int = 0,
    ) -> dict[str, np.ndarray]:
        """Run the stencil with plain NumPy and return the final field values.

        Semantics: at each time step the statements execute in program order;
        a read with ``time_offset == 0`` sees values already produced earlier
        in the same time step, a read with ``time_offset == k >= 1`` sees the
        field as it was after time step ``t - k`` completed.  Boundary points
        (the declared margins) are never written and keep their initial
        values, i.e. Dirichlet boundary conditions.
        """
        steps = self.time_steps if time_steps is None else time_steps
        if initial is None:
            initial = self.initial_state(seed)
        history_depth = max(self.max_time_offset(), 1) + 1
        history: dict[str, deque[np.ndarray]] = {}
        for name in self.fields:
            if name not in initial:
                raise KeyError(f"missing initial value for field {name!r}")
            array = np.array(initial[name], dtype=np.float32)
            if array.shape != self.sizes:
                raise ValueError(
                    f"field {name!r} has shape {array.shape}, expected {self.sizes}"
                )
            history[name] = deque(
                [array.copy() for _ in range(history_depth)], maxlen=history_depth
            )

        for _ in range(steps):
            current = {name: history[name][-1].copy() for name in self.fields}
            for statement in self.statements:
                region = self._interior_slices(statement)
                updated = self._evaluate_statement(statement, history, current, region)
                current[statement.target][region] = updated
            for name in self.fields:
                history[name].append(current[name])

        return {name: history[name][-1].copy() for name in self.fields}

    def _interior_slices(self, statement: StencilStatement) -> tuple[slice, ...]:
        slices = []
        for size, lo, hi in zip(self.sizes, statement.lower_margin, statement.upper_margin):
            slices.append(slice(lo, size - hi))
        return tuple(slices)

    def _evaluate_statement(
        self,
        statement: StencilStatement,
        history: Mapping[str, deque],
        current: Mapping[str, np.ndarray],
        region: tuple[slice, ...],
    ) -> np.ndarray:
        def read(access: FieldRead) -> np.ndarray:
            if access.time_offset == 0:
                source = current[access.field]
            else:
                source = history[access.field][-access.time_offset]
            shifted = []
            for axis, base in enumerate(region):
                offset = access.offsets[axis]
                shifted.append(slice(base.start + offset, base.stop + offset))
            return source[tuple(shifted)]

        result = statement.expr.evaluate(read)
        return np.asarray(result, dtype=np.float32)

    # -- C source (Figure 1 style) ----------------------------------------------------

    def c_source(self) -> str:
        """Return (or regenerate) a C source form of the program.

        If the program was built by the front end the original source is
        returned; otherwise a Figure-1-style time-indexed loop nest is
        produced.  The regenerated form is accepted by
        :func:`repro.frontend.parse_stencil`, so every program round-trips
        through C source: writes go to ``A[t][i][j]`` and a read with
        ``time_offset == k`` appears as ``A[t-k][i][j]``.
        """
        if self.source is not None:
            return self.source
        depth = max(self.max_time_offset(), 1) + 1
        lines = [f"/* {self.name} */", f"#define T {self.time_steps}"]
        for axis, size in enumerate(self.sizes):
            lines.append(f"#define N{axis} {size}")
        lines.append("")
        extents = "".join(f"[N{axis}]" for axis in range(self.ndim))
        for name in self.fields:
            lines.append(f"float {name}[{depth}]{extents};")
        lines.append("")
        lines.append("for (t = 0; t < T; t++) {")
        for statement in self.statements:
            indent = "  "
            loop_vars = []
            for axis, dim in enumerate(self.space_dims):
                lo = statement.lower_margin[axis]
                hi = statement.upper_margin[axis]
                bound = f"N{axis} - {hi}" if hi else f"N{axis}"
                if axis == self.ndim - 1:
                    lines.append("#pragma ivdep")
                lines.append(
                    f"{indent}for ({dim} = {lo}; {dim} < {bound}; {dim}++)"
                )
                indent += "  "
                loop_vars.append(dim)
            body = _figure1_expr(statement.expr, loop_vars)
            subscripts = "".join(f"[{v}]" for v in loop_vars)
            lines.append(f"{indent}{statement.target}[t]{subscripts} = {body};")
        lines.append("}")
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        return (
            f"StencilProgram({self.name!r}, dims={self.space_dims}, "
            f"sizes={self.sizes}, steps={self.time_steps}, "
            f"statements={len(self.statements)})"
        )
