"""Expression trees for stencil statement bodies.

A statement body is an arithmetic expression over *field reads*.  The same
tree serves three purposes:

* **functional execution** — :meth:`Expr.evaluate` is polymorphic over the
  values the read callback returns, so evaluating with NumPy array views
  yields a vectorised whole-grid update, and evaluating with scalars yields a
  single point update (used by the GPU functional simulator);
* **static analysis** — FLOP counting and load counting feed Table 3 and the
  tile-size model of Section 3.7;
* **code generation** — :meth:`Expr.to_c` prints the body of the generated
  CUDA kernels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Sequence

ReadCallback = Callable[["FieldRead"], object]

_BINARY_OPERATORS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}

_CALL_TABLE = {
    "sqrtf": lambda x: x ** 0.5,
    "sqrt": lambda x: x ** 0.5,
    "fabsf": abs,
    "fabs": abs,
    "expf": lambda x: math.e ** x if isinstance(x, float) else _np_exp(x),
    # np.minimum/np.maximum are elementwise, so fminf/fmaxf evaluate both on
    # scalars (bit-identical to min/max on float32 values) and on whole
    # arrays (reference interpreter, batched simulator).
    "fminf": lambda a, b: _np_minmax("minimum", a, b),
    "fmaxf": lambda a, b: _np_minmax("maximum", a, b),
}

# FLOP cost per intrinsic call, used when counting the arithmetic throughput
# of a stencil (a square root or division counts as one flop, following the
# convention the paper uses for Table 3).
_CALL_FLOPS = {
    "sqrtf": 1,
    "sqrt": 1,
    "fabsf": 1,
    "fabs": 1,
    "expf": 1,
    "fminf": 1,
    "fmaxf": 1,
}


def _np_exp(x: object) -> object:
    import numpy

    return numpy.exp(x)


def _np_minmax(name: str, a: object, b: object) -> object:
    import numpy

    return getattr(numpy, name)(a, b)


class Expr:
    """Base class for stencil body expressions."""

    def evaluate(self, read: ReadCallback) -> object:
        raise NotImplementedError

    def to_c(self, index_names: Sequence[str], time_expr: str = "t") -> str:
        raise NotImplementedError

    def children(self) -> Iterable["Expr"]:
        return ()

    # -- convenience operators so stencils read naturally in the builder -----

    def __add__(self, other: "Expr | float | int") -> "Expr":
        return BinOp("+", self, _coerce(other))

    def __radd__(self, other: "Expr | float | int") -> "Expr":
        return BinOp("+", _coerce(other), self)

    def __sub__(self, other: "Expr | float | int") -> "Expr":
        return BinOp("-", self, _coerce(other))

    def __rsub__(self, other: "Expr | float | int") -> "Expr":
        return BinOp("-", _coerce(other), self)

    def __mul__(self, other: "Expr | float | int") -> "Expr":
        return BinOp("*", self, _coerce(other))

    def __rmul__(self, other: "Expr | float | int") -> "Expr":
        return BinOp("*", _coerce(other), self)

    def __truediv__(self, other: "Expr | float | int") -> "Expr":
        return BinOp("/", self, _coerce(other))

    def __rtruediv__(self, other: "Expr | float | int") -> "Expr":
        return BinOp("/", _coerce(other), self)


@dataclass(frozen=True)
class Constant(Expr):
    """A floating point literal."""

    value: float

    def evaluate(self, read: ReadCallback) -> object:
        return self.value

    def to_c(self, index_names: Sequence[str], time_expr: str = "t") -> str:
        return f"{self.value}f"

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class FieldRead(Expr):
    """A read of ``field`` at a constant offset from the current point.

    ``time_offset`` is expressed in *whole time iterations of the outer loop*:
    ``1`` means "the value produced one time iteration ago" (the common case),
    ``0`` means "the value produced earlier in the same time iteration by a
    preceding statement" (multi-statement stencils such as FDTD), and larger
    values give higher-order stencils in time.
    """

    field: str
    offsets: tuple[int, ...]
    time_offset: int = 1

    def evaluate(self, read: ReadCallback) -> object:
        return read(self)

    def to_c(self, index_names: Sequence[str], time_expr: str = "t") -> str:
        subscripts = []
        for name, offset in zip(index_names, self.offsets):
            if offset == 0:
                subscripts.append(f"[{name}]")
            elif offset > 0:
                subscripts.append(f"[{name} + {offset}]")
            else:
                subscripts.append(f"[{name} - {-offset}]")
        return f"{self.field}{''.join(subscripts)}"

    def __str__(self) -> str:
        offs = ",".join(str(o) for o in self.offsets)
        return f"{self.field}@t-{self.time_offset}[{offs}]"


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary arithmetic operation."""

    op: str
    lhs: Expr
    rhs: Expr

    def __post_init__(self) -> None:
        if self.op not in _BINARY_OPERATORS:
            raise ValueError(f"unsupported operator {self.op!r}")

    def evaluate(self, read: ReadCallback) -> object:
        return _BINARY_OPERATORS[self.op](
            self.lhs.evaluate(read), self.rhs.evaluate(read)
        )

    def to_c(self, index_names: Sequence[str], time_expr: str = "t") -> str:
        return (
            f"({self.lhs.to_c(index_names, time_expr)} {self.op} "
            f"{self.rhs.to_c(index_names, time_expr)})"
        )

    def children(self) -> Iterable[Expr]:
        return (self.lhs, self.rhs)

    def __str__(self) -> str:
        return f"({self.lhs} {self.op} {self.rhs})"


@dataclass(frozen=True)
class Call(Expr):
    """A call to a math intrinsic (``sqrtf``, ``fabsf``, ...)."""

    name: str
    args: tuple[Expr, ...]

    def __post_init__(self) -> None:
        if self.name not in _CALL_TABLE:
            raise ValueError(f"unsupported intrinsic {self.name!r}")

    def evaluate(self, read: ReadCallback) -> object:
        values = [arg.evaluate(read) for arg in self.args]
        if self.name in ("sqrtf", "sqrt"):
            value = values[0]
            try:
                import numpy

                return numpy.sqrt(value)
            except Exception:  # pragma: no cover - numpy is a hard dependency
                return math.sqrt(value)
        return _CALL_TABLE[self.name](*values)

    def to_c(self, index_names: Sequence[str], time_expr: str = "t") -> str:
        args = ", ".join(arg.to_c(index_names, time_expr) for arg in self.args)
        return f"{self.name}({args})"

    def children(self) -> Iterable[Expr]:
        return self.args

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


# -- analyses -----------------------------------------------------------------


def walk(expr: Expr):
    """Pre-order traversal of an expression tree."""
    yield expr
    for child in expr.children():
        yield from walk(child)


def count_flops(expr: Expr) -> int:
    """Number of floating point operations performed by one evaluation.

    Shared sub-expression objects (the same :class:`Expr` instance appearing
    several times in the tree, e.g. ``dx * dx``) are counted once: the code
    generator emits them into a register and reuses it, exactly as a compiler
    performing common sub-expression elimination would.
    """
    total = 0
    seen: set[int] = set()
    for node in walk(expr):
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, BinOp):
            total += 1
        elif isinstance(node, Call):
            total += _CALL_FLOPS[node.name]
    return total


def gather_reads(expr: Expr) -> list[FieldRead]:
    """All field reads, in evaluation order (duplicates preserved)."""
    return [node for node in walk(expr) if isinstance(node, FieldRead)]


def distinct_reads(expr: Expr) -> list[FieldRead]:
    """Distinct field reads (what a cache or register reuse would load once)."""
    seen: set[FieldRead] = set()
    result: list[FieldRead] = []
    for node in gather_reads(expr):
        if node not in seen:
            seen.add(node)
            result.append(node)
    return result


def _coerce(value: "Expr | float | int") -> Expr:
    if isinstance(value, Expr):
        return value
    return Constant(float(value))
