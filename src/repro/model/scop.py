"""Polyhedral view of a stencil program (the "SCoP").

This is the representation pet would extract for PPCG (Section 3.1 of the
paper): per-statement iteration domains, access relations and the initial
schedule of Section 3.2 in which all dependences are carried by the single
outer (logical time) dimension and the remaining dimensions are fully
parallel.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.model.program import StencilProgram, StencilStatement
from repro.polyhedral.affine import LinearExpr
from repro.polyhedral.basic_set import BasicSet
from repro.polyhedral.constraint import Constraint
from repro.polyhedral.imap import AffineMap
from repro.polyhedral.space import Space


class AccessKind(enum.Enum):
    """Whether an access reads or writes the array."""

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class Access:
    """An affine array access of one statement.

    ``relation`` maps the statement's iteration space ``[t, s0, ...]`` to the
    array index space of ``array``.  ``time_offset`` records how many time
    iterations before the access the value was produced (reads only).
    """

    array: str
    kind: AccessKind
    relation: AffineMap
    time_offset: int = 0

    def __str__(self) -> str:
        arrow = "R" if self.kind is AccessKind.READ else "W"
        return f"{arrow}:{self.array} {self.relation}"


@dataclass(frozen=True)
class ScopStatement:
    """A statement of the SCoP: domain, accesses and initial schedule."""

    name: str
    index: int
    domain: BasicSet
    accesses: tuple[Access, ...]
    schedule: AffineMap
    stencil: StencilStatement

    @property
    def writes(self) -> list[Access]:
        return [a for a in self.accesses if a.kind is AccessKind.WRITE]

    @property
    def reads(self) -> list[Access]:
        return [a for a in self.accesses if a.kind is AccessKind.READ]


@dataclass(frozen=True)
class Scop:
    """A static control part extracted from a stencil program."""

    program: StencilProgram
    statements: tuple[ScopStatement, ...]
    schedule_space: Space

    @property
    def num_statements(self) -> int:
        return len(self.statements)

    def statement(self, name: str) -> ScopStatement:
        for statement in self.statements:
            if statement.name == name:
                return statement
        raise KeyError(name)

    def iteration_count(self) -> int:
        """Total number of statement instances (exact, by counting domains)."""
        return sum(s.domain.count() for s in self.statements)


def build_scop(program: StencilProgram) -> Scop:
    """Extract the polyhedral representation of a stencil program.

    Every statement gets:

    * an iteration domain ``{ [t, s0, ..] : 0 <= t < T, margins hold }``;
    * one write access relation and one read access relation per distinct
      read in its body;
    * the canonical initial schedule
      ``[t, s0, ...] -> [k*t + i, s0, ...]`` of Section 3.2, where ``k`` is
      the number of statements and ``i`` the statement's position.
    """
    k = program.num_statements
    space_dims = program.space_dims
    iter_space = Space(("t", *space_dims))
    schedule_space = Space(("tt", *space_dims), name="schedule")
    array_space = Space(tuple(f"a{j}" for j in range(program.ndim)))

    statements: list[ScopStatement] = []
    for index, statement in enumerate(program.statements):
        domain = _statement_domain(program, statement, iter_space)
        accesses = _statement_accesses(
            program, statement, iter_space, array_space
        )
        schedule = _initial_schedule(iter_space, schedule_space, k, index)
        statements.append(
            ScopStatement(
                name=statement.name,
                index=index,
                domain=domain,
                accesses=tuple(accesses),
                schedule=schedule,
                stencil=statement,
            )
        )
    return Scop(program=program, statements=tuple(statements), schedule_space=schedule_space)


def _statement_domain(
    program: StencilProgram,
    statement: StencilStatement,
    iter_space: Space,
) -> BasicSet:
    constraints = [
        Constraint.ge(LinearExpr.var("t"), 0),
        Constraint.le(LinearExpr.var("t"), program.time_steps - 1),
    ]
    for axis, dim in enumerate(program.space_dims):
        lower = statement.lower_margin[axis]
        upper = program.sizes[axis] - 1 - statement.upper_margin[axis]
        constraints.append(Constraint.ge(LinearExpr.var(dim), lower))
        constraints.append(Constraint.le(LinearExpr.var(dim), upper))
    return BasicSet(iter_space.renamed(statement.name), constraints)


def _statement_accesses(
    program: StencilProgram,
    statement: StencilStatement,
    iter_space: Space,
    array_space: Space,
) -> list[Access]:
    accesses: list[Access] = []
    write_map = AffineMap.from_offsets(
        iter_space,
        array_space,
        list(program.space_dims),
        [0] * program.ndim,
    )
    accesses.append(Access(statement.target, AccessKind.WRITE, write_map, 0))
    for read in statement.unique_reads:
        read_map = AffineMap.from_offsets(
            iter_space,
            array_space,
            list(program.space_dims),
            list(read.offsets),
        )
        accesses.append(
            Access(read.field, AccessKind.READ, read_map, read.time_offset)
        )
    return accesses


def _initial_schedule(
    iter_space: Space, schedule_space: Space, k: int, index: int
) -> AffineMap:
    outputs = [LinearExpr.var("t") * k + index]
    outputs.extend(LinearExpr.var(d) for d in schedule_space.dims[1:])
    return AffineMap(iter_space, schedule_space, outputs)
