"""Canonicalisation of stencil programs (Section 3.2 of the paper).

The hybrid tiling of Section 3.6 is defined on a *canonical* schedule space
``[l, s0, ..., sn]`` where ``l = k*t + i`` is the logical time (``k`` the
number of statements, ``i`` the statement's position inside the time loop)
and all dependences are carried by ``l``.  :func:`canonicalize` validates the
structural assumptions, computes the dependence distances in that space and
packages everything the tiling algorithms need.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from collections.abc import Iterator, Sequence

from repro.model.dependences import (
    Dependence,
    DependenceError,
    compute_dependences,
    dependence_distance_vectors,
    validate_stencil_assumptions,
)
from repro.model.program import StencilProgram
from repro.model.scop import Scop, build_scop


@dataclass(frozen=True)
class CanonicalForm:
    """A stencil program together with its canonical schedule space.

    Attributes
    ----------
    program:
        The original stencil program.
    scop:
        Its polyhedral representation.
    num_statements:
        ``k`` — the number of statements interleaved on the logical time axis.
    space_dims:
        Names of the space dimensions, in schedule order (the hexagonally
        tiled dimension first; see :meth:`reorder_space`).
    dependences:
        All dependences in the canonical space.
    distance_vectors:
        The distinct dependence distance vectors ``(dl, ds0, ..., dsn)``.
    logical_time_extent:
        Number of logical time values, ``k * time_steps``.
    """

    program: StencilProgram
    scop: Scop
    num_statements: int
    space_dims: tuple[str, ...]
    dependences: tuple[Dependence, ...]
    distance_vectors: tuple[tuple[int, ...], ...]
    logical_time_extent: int
    storage: str = "expanded"

    # -- coordinate conversions ------------------------------------------------

    def to_canonical(
        self, statement_index: int, t: int, point: Sequence[int]
    ) -> tuple[int, ...]:
        """Map a statement instance to the canonical space ``[l, s...]``."""
        return (self.num_statements * t + statement_index, *point)

    def from_canonical(
        self, canonical_point: Sequence[int]
    ) -> tuple[int, int, tuple[int, ...]]:
        """Inverse of :meth:`to_canonical`; returns ``(statement_index, t, s)``."""
        logical = canonical_point[0]
        statement_index = logical % self.num_statements
        t = logical // self.num_statements
        return statement_index, t, tuple(canonical_point[1:])

    def instances(self) -> Iterator[tuple[int, tuple[int, ...]]]:
        """Iterate over all statement instances as canonical points.

        Yields ``(statement_index, canonical_point)`` pairs.  Only intended
        for the small grids used in validation and testing.  The enumeration
        is memoised: the validator, the tile grouping and the functional
        simulator all walk the same instance list.
        """
        yield from self.instances_list()

    def instances_list(self) -> list[tuple[int, tuple[int, ...]]]:
        """All statement instances as a cached list; see :meth:`instances`."""
        cached = self.__dict__.get("_instances_cache")
        if cached is None:
            cached = [
                (index, self.to_canonical(index, point[0], point[1:]))
                for index, scop_statement in enumerate(self.scop.statements)
                for point in scop_statement.domain.points()
            ]
            # The dataclass is frozen; stash the memo directly in __dict__.
            object.__setattr__(self, "_instances_cache", cached)
        return cached

    def instances_array(self):
        """All canonical points as a cached ``(N, 1 + ndim)`` int64 array.

        Row order matches :meth:`instances_list`; this is the columnar input
        of the array-native scheduling passes.
        """
        import numpy as np

        cached = self.__dict__.get("_instances_array_cache")
        if cached is None:
            instances = self.instances_list()
            cached = np.array(
                [point for _, point in instances], dtype=np.int64
            ).reshape(len(instances), 1 + len(self.space_dims))
            cached.setflags(write=False)
            object.__setattr__(self, "_instances_array_cache", cached)
        return cached

    def __getstate__(self) -> dict:
        """Drop the instance-enumeration memos when pickling."""
        state = self.__dict__.copy()
        state.pop("_instances_cache", None)
        state.pop("_instances_array_cache", None)
        return state

    # -- dependence geometry -----------------------------------------------------

    def space_distance_bounds(self, dim_index: int) -> tuple[Fraction, Fraction]:
        """Bounds ``(delta0, delta1)`` of the dependence slopes for a space dim.

        ``delta0`` bounds the distance from above (``ds <= delta0 * dl``) and
        ``delta1`` from below (``ds >= -delta1 * dl``); both are the smallest
        such non-negative rationals, as required by Section 3.3.2.
        """
        delta0 = Fraction(0)
        delta1 = Fraction(0)
        for distance in self.distance_vectors:
            dl = distance[0]
            ds = distance[1 + dim_index]
            delta0 = max(delta0, Fraction(ds, dl))
            delta1 = max(delta1, Fraction(-ds, dl))
        return delta0, delta1

    def reorder_space(self, hexagonal_dim: str) -> "CanonicalForm":
        """Return a canonical form with ``hexagonal_dim`` as the first space dim.

        Section 3.6 notes that any spatial dimension may be hexagonally tiled
        as long as the innermost (stride-one) dimension keeps its position; the
        caller is responsible for not moving the innermost dimension.
        """
        if hexagonal_dim not in self.space_dims:
            raise ValueError(f"unknown space dimension {hexagonal_dim!r}")
        if hexagonal_dim == self.space_dims[0]:
            return self
        order = [hexagonal_dim] + [d for d in self.space_dims if d != hexagonal_dim]
        permutation = [self.space_dims.index(d) for d in order]
        new_vectors = tuple(
            (vector[0], *[vector[1 + p] for p in permutation])
            for vector in self.distance_vectors
        )
        new_dependences = tuple(
            Dependence(
                d.source,
                d.sink,
                d.kind,
                (d.distance[0], *[d.distance[1 + p] for p in permutation]),
            )
            for d in self.dependences
        )
        return CanonicalForm(
            program=self.program,
            scop=self.scop,
            num_statements=self.num_statements,
            space_dims=tuple(order),
            dependences=new_dependences,
            distance_vectors=new_vectors,
            logical_time_extent=self.logical_time_extent,
            storage=self.storage,
        )


def canonicalize(
    program: StencilProgram,
    storage: str = "expanded",
) -> CanonicalForm:
    """Validate and canonicalise a stencil program (Section 3.2).

    Raises :class:`~repro.model.dependences.DependenceError` when the program
    does not satisfy the assumptions of Sections 3.2/3.3.1 (for instance when
    a dependence is not carried by the time dimension).
    """
    scop = build_scop(program)
    dependences = compute_dependences(program, storage=storage)
    validate_stencil_assumptions(program, dependences)
    vectors = dependence_distance_vectors(dependences)
    if not vectors:
        raise DependenceError(
            "the program has no dependences at all; time tiling is pointless "
            "and the hexagonal construction is undefined"
        )
    return CanonicalForm(
        program=program,
        scop=scop,
        num_statements=program.num_statements,
        space_dims=program.space_dims,
        dependences=tuple(dependences),
        distance_vectors=tuple(vectors),
        logical_time_extent=program.num_statements * program.time_steps,
        storage=storage,
    )
