"""Program model: stencil programs, their polyhedral view and dependences.

The model mirrors what pet + isl give the original PPCG-based implementation
(Section 3.1/3.2 of the paper):

* :class:`StencilProgram` — the executable description of an iterative
  stencil: fields, statements, grid sizes and time steps.  It can run itself
  with NumPy (the reference the GPU simulator is checked against).
* :class:`Scop` — the polyhedral view: iteration domains, access relations
  and the canonical initial schedule ``L_i[t, s...] -> [k*t + i, s...]``.
* :func:`compute_dependences` — dependence analysis producing the distance
  vectors that drive the hexagonal tile construction.
"""

from repro.model.expr import (
    BinOp,
    Call,
    Constant,
    Expr,
    FieldRead,
    count_flops,
    gather_reads,
)
from repro.model.program import Field, StencilProgram, StencilStatement
from repro.model.scop import Access, AccessKind, Scop, ScopStatement, build_scop
from repro.model.dependences import (
    Dependence,
    DependenceKind,
    compute_dependences,
    dependence_distance_vectors,
)
from repro.model.preprocess import CanonicalForm, canonicalize

__all__ = [
    "Expr",
    "Constant",
    "FieldRead",
    "BinOp",
    "Call",
    "count_flops",
    "gather_reads",
    "Field",
    "StencilStatement",
    "StencilProgram",
    "Access",
    "AccessKind",
    "Scop",
    "ScopStatement",
    "build_scop",
    "Dependence",
    "DependenceKind",
    "compute_dependences",
    "dependence_distance_vectors",
    "CanonicalForm",
    "canonicalize",
]
