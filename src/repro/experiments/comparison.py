"""Tables 1 and 2: comparison of hybrid tiling with the baseline compilers."""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

from repro.baselines import OvertileBaseline, Par4AllBaseline, PPCGBaseline, PatusBaseline
from repro.cache import DiskCache
from repro.api import HybridCompiler
from repro.engine import map_ordered
from repro.experiments.paper_data import (
    PAPER_TABLE1_GTX470,
    PAPER_TABLE2_NVS5200,
    PAPER_TILE_SIZES,
)
from repro.gpu.device import GPUDevice, GTX470
from repro.stencils import get_stencil, paper_benchmarks

TOOLS = ("ppcg", "par4all", "overtile", "hybrid")


@dataclass
class ComparisonRow:
    """Result of one (benchmark, tool) combination."""

    benchmark: str
    tool: str
    gstencils_per_second: float | None
    speedup_over_ppcg: float | None
    paper_gstencils: float | None
    strategy: str = ""
    failure: str | None = None


def _paper_reference(device: GPUDevice) -> dict[str, dict[str, float | None]]:
    return PAPER_TABLE1_GTX470 if device.name == GTX470.name else PAPER_TABLE2_NVS5200


def comparison_rows_for_benchmark(
    benchmark: str,
    device: GPUDevice = GTX470,
    include_patus: bool = False,
    disk_cache: DiskCache | None = None,
) -> list[ComparisonRow]:
    """All (tool, benchmark) rows of one benchmark (picklable engine task)."""
    reference = _paper_reference(device)
    hybrid_compiler = HybridCompiler(device, disk_cache=disk_cache)
    baselines = {
        "ppcg": PPCGBaseline(),
        "par4all": Par4AllBaseline(),
        "overtile": OvertileBaseline(tuning_device=device),
    }
    if include_patus:
        baselines["patus"] = PatusBaseline()

    program = get_stencil(benchmark)
    paper_row = reference.get(benchmark, {})
    results: dict[str, ComparisonRow] = {}

    ppcg_gs: float | None = None
    for tool, baseline in baselines.items():
        outcome = baseline.compile(program)
        if not outcome.supported:
            results[tool] = ComparisonRow(
                benchmark=benchmark,
                tool=tool,
                gstencils_per_second=None,
                speedup_over_ppcg=None,
                paper_gstencils=paper_row.get(tool),
                failure=outcome.failure_reason,
            )
            continue
        report = outcome.performance(device)
        assert report is not None
        gs = report.gstencils_per_second
        if tool == "ppcg":
            ppcg_gs = gs
        results[tool] = ComparisonRow(
            benchmark=benchmark,
            tool=tool,
            gstencils_per_second=gs,
            speedup_over_ppcg=None,
            paper_gstencils=paper_row.get(tool),
            strategy=outcome.strategy,
        )

    compiled = hybrid_compiler.compile(
        program, tile_sizes=PAPER_TILE_SIZES.get(benchmark)
    )
    report = compiled.estimate_performance(device)
    results["hybrid"] = ComparisonRow(
        benchmark=benchmark,
        tool="hybrid",
        gstencils_per_second=report.gstencils_per_second,
        speedup_over_ppcg=None,
        paper_gstencils=paper_row.get("hybrid"),
        strategy=f"hybrid hexagonal/classical, {compiled.tiling.sizes}",
    )

    rows: list[ComparisonRow] = []
    for row in results.values():
        if row.gstencils_per_second is not None and ppcg_gs:
            row.speedup_over_ppcg = row.gstencils_per_second / ppcg_gs
        rows.append(row)
    if disk_cache is not None:
        disk_cache.flush_stats()
    return rows


def run_comparison(
    device: GPUDevice = GTX470,
    benchmarks: list[str] | None = None,
    include_patus: bool = False,
    jobs: int = 1,
    disk_cache: DiskCache | None = None,
) -> list[ComparisonRow]:
    """Run the Table 1 / Table 2 comparison on one device.

    Every tool (hybrid compiler and baseline models) is evaluated on the
    paper-sized problem instances through the same analytic GPU model, so the
    comparison reflects differences between the tiling strategies rather than
    tuned constants.  ``jobs`` fans the per-benchmark sweep over the
    execution engine; the row order is identical for every job count.
    """
    benchmarks = benchmarks or paper_benchmarks()
    task = partial(
        comparison_rows_for_benchmark,
        device=device,
        include_patus=include_patus,
        disk_cache=disk_cache,
    )
    return [row for rows in map_ordered(task, benchmarks, jobs=jobs) for row in rows]


def format_comparison(rows: list[ComparisonRow], device: GPUDevice) -> str:
    """Render the comparison like Table 1 / Table 2 of the paper."""
    lines = [
        f"Performance on {device.name}: GStencils/second (speedup over PPCG) "
        "[paper value in brackets]",
        f"{'benchmark':<15}" + "".join(f"{tool:>24}" for tool in TOOLS),
        "-" * (15 + 24 * len(TOOLS)),
    ]
    benchmarks = []
    for row in rows:
        if row.benchmark not in benchmarks:
            benchmarks.append(row.benchmark)
    by_key = {(r.benchmark, r.tool): r for r in rows}
    for benchmark in benchmarks:
        cells = [f"{benchmark:<15}"]
        for tool in TOOLS:
            row = by_key.get((benchmark, tool))
            if row is None:
                cells.append(f"{'-':>24}")
            elif row.gstencils_per_second is None:
                cells.append(f"{'invalid CUDA':>24}")
            else:
                speedup = (
                    f" ({(row.speedup_over_ppcg - 1) * 100:+.0f}%)"
                    if row.speedup_over_ppcg
                    else ""
                )
                paper = (
                    f" [{row.paper_gstencils:g}]" if row.paper_gstencils is not None else ""
                )
                cells.append(f"{row.gstencils_per_second:9.2f}{speedup}{paper:>10}"[:24].rjust(24))
        lines.append("".join(cells))
    return "\n".join(lines)
