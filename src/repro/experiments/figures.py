"""Data behind Figures 2–6 of the paper."""

from __future__ import annotations

from fractions import Fraction

from repro.codegen.ptx import PtxSummary, emit_core_ptx
from repro.model.preprocess import canonicalize
from repro.stencils import get_stencil
from repro.tiling.cone import DependenceCone
from repro.tiling.hex_schedule import HexagonalSchedule, Phase
from repro.tiling.hexagon import HexagonalTileShape
from repro.tiling.hybrid import HybridTiling, TileSizes


def figure2_core_ptx(benchmark: str = "jacobi_2d") -> PtxSummary:
    """Figure 2: pseudo-PTX of the tuned Jacobi 2D core.

    The paper's block performs 3 shared loads, 1 shared store and 5 compute
    instructions, with 2 of the 5 operands reused in registers.
    """
    program = get_stencil(benchmark, sizes=(64, 64), steps=8)
    return emit_core_ptx(program)


def figure3_dependence_cone() -> dict[str, object]:
    """Figure 3: the opposite dependence cone of ``A[t][i] = f(A[t-2][i-2], A[t-1][i+2])``."""
    program = get_stencil("higher_order_time", sizes=(64,), steps=8)
    canonical = canonicalize(program)
    cone = DependenceCone.from_distance_vectors(canonical.distance_vectors)
    cone_lp = DependenceCone.from_distance_vectors_lp(canonical.distance_vectors)
    return {
        "distance_vectors": list(canonical.distance_vectors),
        "delta0": cone.delta0,
        "delta1": cone.delta1,
        "delta0_lp": cone_lp.delta0,
        "delta1_lp": cone_lp.delta1,
        "opposite_rays": cone.opposite_rays(),
    }


def figure4_hexagon(
    delta0: Fraction | int = 1,
    delta1: Fraction | int = 1,
    height: int = 2,
    width: int = 3,
) -> dict[str, object]:
    """Figure 4: the hexagonal tile shape (default: the figure's h=2, w0=3)."""
    cone = DependenceCone(Fraction(delta0), Fraction(delta1))
    shape = HexagonalTileShape(cone, height, width)
    return {
        "shape": shape,
        "points": shape.count(),
        "peak_width": shape.peak_width(),
        "max_width": shape.max_width(),
        "time_period": shape.time_period,
        "space_period": shape.space_period,
        "ascii": shape.render(),
    }


def figure5_tiling_pattern(
    height: int = 2, width: int = 3, extent: int = 60
) -> dict[str, object]:
    """Figure 5: the two-phase hexagonal tiling pattern and its wavefronts."""
    cone = DependenceCone(Fraction(1), Fraction(1))
    shape = HexagonalTileShape(cone, height, width)
    schedule = HexagonalSchedule(shape)
    per_phase: dict[Phase, set[tuple[int, int]]] = {Phase.BLUE: set(), Phase.GREEN: set()}
    wavefront_sizes: dict[tuple[int, Phase], set[int]] = {}
    for l in range(extent):
        for s0 in range(extent):
            assignment = schedule.assign(l, s0, check_unique=True)
            per_phase[assignment.phase].add((assignment.time_tile, assignment.space_tile))
            wavefront_sizes.setdefault(
                (assignment.time_tile, assignment.phase), set()
            ).add(assignment.space_tile)
    return {
        "blue_tiles": len(per_phase[Phase.BLUE]),
        "green_tiles": len(per_phase[Phase.GREEN]),
        "points_per_full_tile": shape.count(),
        "parallel_tiles_per_wavefront": {
            key: len(values) for key, values in sorted(wavefront_sizes.items())
        },
    }


def figure6_schedule(benchmark: str = "heat_3d") -> dict[str, str]:
    """Figure 6: the closed-form hybrid schedule for ±1 dependence distances.

    Returns the quasi-affine expressions of every output dimension for both
    phases, rendered as C expressions.
    """
    program = get_stencil(benchmark, sizes=(32, 32, 32), steps=8)
    canonical = canonicalize(program)
    tiling = HybridTiling(canonical, TileSizes.of(2, 3, 4, 4))
    result: dict[str, str] = {}
    for phase in (Phase.BLUE, Phase.GREEN):
        expressions = tiling.schedule_expressions(phase)
        for name, expression in expressions.items():
            result[f"phase{int(phase)}_{name}"] = expression.to_c()
    return result
