"""Tables 4 and 5: the shared-memory optimisation ablation on heat 3D."""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

from repro.cache import DiskCache
from repro.api import HybridCompiler
from repro.engine import map_ordered
from repro.experiments.paper_data import PAPER_TABLE4, PAPER_TABLE5, PAPER_TILE_SIZES
from repro.gpu.device import GPUDevice, GTX470, NVS5200M
from repro.api import table4_configurations
from repro.stencils import get_stencil
from repro.tiling.hybrid import TileSizes


@dataclass
class AblationRow:
    """One configuration of Table 4 on one device."""

    configuration: str
    device: str
    gflops: float
    gstencils_per_second: float
    speedup_over_previous: float | None
    bound_by: str
    paper_gflops: float | None


def ablation_rows_for_device(
    device: GPUDevice,
    benchmark: str = "heat_3d",
    tile_sizes: TileSizes | None = None,
    disk_cache: DiskCache | None = None,
) -> list[AblationRow]:
    """Table 4 rows of one device (picklable engine task).

    The configurations of one device stay sequential: each row's speedup
    column refers to the previous configuration.
    """
    tile_sizes = tile_sizes or PAPER_TILE_SIZES[benchmark]
    program = get_stencil(benchmark)
    compiler = HybridCompiler(device, disk_cache=disk_cache)
    rows: list[AblationRow] = []
    previous: float | None = None
    for label, config in table4_configurations().items():
        compiled = compiler.compile(program, tile_sizes=tile_sizes, config=config)
        report = compiled.estimate_performance(device)
        speedup = report.gflops / previous if previous else None
        paper = PAPER_TABLE4.get(device.name, {}).get(label)
        rows.append(
            AblationRow(
                configuration=label,
                device=device.name,
                gflops=report.gflops,
                gstencils_per_second=report.gstencils_per_second,
                speedup_over_previous=speedup,
                bound_by=report.bound_by,
                paper_gflops=paper,
            )
        )
        previous = report.gflops
    if disk_cache is not None:
        disk_cache.flush_stats()
    return rows


def run_ablation(
    benchmark: str = "heat_3d",
    devices: tuple[GPUDevice, ...] = (NVS5200M, GTX470),
    tile_sizes: TileSizes | None = None,
    jobs: int = 1,
    disk_cache: DiskCache | None = None,
) -> list[AblationRow]:
    """Reproduce Table 4: GFLOPS of heat 3D under configurations (a)-(f).

    ``jobs`` fans the per-device sweep over the execution engine with
    deterministic row ordering.
    """
    task = partial(
        ablation_rows_for_device,
        benchmark=benchmark,
        tile_sizes=tile_sizes,
        disk_cache=disk_cache,
    )
    return [row for rows in map_ordered(task, devices, jobs=jobs) for row in rows]


def counter_row_for_config(
    label: str,
    benchmark: str = "heat_3d",
    device: GPUDevice = GTX470,
    tile_sizes: TileSizes | None = None,
    disk_cache: DiskCache | None = None,
) -> dict[str, object]:
    """One Table 5 row (picklable engine task)."""
    tile_sizes = tile_sizes or PAPER_TILE_SIZES[benchmark]
    program = get_stencil(benchmark)
    config = table4_configurations()[label]
    compiler = HybridCompiler(device, disk_cache=disk_cache)
    compiled = compiler.compile(program, tile_sizes=tile_sizes, config=config)
    estimate = compiled.execution_estimate(device)
    table5 = estimate.counters.as_table5_row()
    paper = PAPER_TABLE5.get(label, {})
    if disk_cache is not None:
        disk_cache.flush_stats()
    return {
        "configuration": label,
        "gld_inst_32bit": table5["gld_inst_32bit"],
        "dram_read_transactions": table5["dram_read_transactions"],
        "l2_read_transactions": table5["l2_read_transactions"],
        "shared_loads_per_request": table5["shared_loads_per_request"],
        "gld_efficiency_percent": table5["gld_efficiency_percent"],
        "paper": paper,
    }


def run_counter_ablation(
    benchmark: str = "heat_3d",
    device: GPUDevice = GTX470,
    tile_sizes: TileSizes | None = None,
    jobs: int = 1,
    disk_cache: DiskCache | None = None,
) -> list[dict[str, object]]:
    """Reproduce Table 5: performance counters for configurations (a)-(f).

    ``jobs`` fans the per-configuration sweep over the execution engine with
    deterministic row ordering.
    """
    task = partial(
        counter_row_for_config,
        benchmark=benchmark,
        device=device,
        tile_sizes=tile_sizes,
        disk_cache=disk_cache,
    )
    labels = list(table4_configurations())
    return map_ordered(task, labels, jobs=jobs)


def format_table4(rows: list[AblationRow]) -> str:
    lines = [
        "Table 4 — optimisation steps, heat 3D: GFLOPS (speedup over previous) [paper]",
        f"{'config':<8}{'device':<12}{'GFLOPS':>10}{'step':>9}{'bound by':>16}{'paper':>8}",
        "-" * 63,
    ]
    for row in rows:
        step = (
            f"{(row.speedup_over_previous - 1) * 100:+.0f}%"
            if row.speedup_over_previous is not None
            else "-"
        )
        paper = f"{row.paper_gflops:g}" if row.paper_gflops is not None else "-"
        lines.append(
            f"({row.configuration})    {row.device:<12}{row.gflops:>10.1f}{step:>9}"
            f"{row.bound_by:>16}{paper:>8}"
        )
    return "\n".join(lines)


def format_table5(rows: list[dict[str, object]]) -> str:
    lines = [
        "Table 5 — performance counters (events x 1e9) [paper values in brackets]",
        f"{'cfg':<5}{'gld inst':>16}{'dram read':>16}{'l2 read':>16}"
        f"{'shared/req':>12}{'gld eff':>10}",
        "-" * 75,
    ]
    for row in rows:
        paper = row["paper"]

        def with_paper(value: float, key: str, format_spec: str = ".2f") -> str:
            reference = paper.get(key) if isinstance(paper, dict) else None
            text = f"{value:{format_spec}}"
            if reference is not None:
                text += f" [{reference:g}]"
            return text

        lines.append(
            f"({row['configuration']})  "
            f"{with_paper(row['gld_inst_32bit'], 'gld', '.1f'):>16}"
            f"{with_paper(row['dram_read_transactions'], 'dram'):>16}"
            f"{with_paper(row['l2_read_transactions'], 'l2'):>16}"
            f"{with_paper(row['shared_loads_per_request'], 'shared_per_request', '.1f'):>12}"
            f"{with_paper(row['gld_efficiency_percent'], 'gld_eff', '.0f'):>10}"
        )
    return "\n".join(lines)
