"""Experiment harnesses regenerating every table and figure of the paper.

Each module returns plain data structures (lists of row dictionaries) plus a
formatter, so the same code backs the pytest benchmarks in ``benchmarks/``,
the examples and EXPERIMENTS.md.
"""

from repro.experiments.paper_data import (
    PAPER_TABLE1_GTX470,
    PAPER_TABLE2_NVS5200,
    PAPER_TABLE4,
    PAPER_TABLE5,
    PAPER_TILE_SIZES,
)
from repro.experiments.characteristics import table3_characteristics, format_table3
from repro.experiments.comparison import (
    ComparisonRow,
    format_comparison,
    run_comparison,
)
from repro.experiments.ablation import (
    run_ablation,
    run_counter_ablation,
    format_table4,
    format_table5,
)
from repro.experiments.figures import (
    figure2_core_ptx,
    figure3_dependence_cone,
    figure4_hexagon,
    figure5_tiling_pattern,
    figure6_schedule,
)

__all__ = [
    "PAPER_TABLE1_GTX470",
    "PAPER_TABLE2_NVS5200",
    "PAPER_TABLE4",
    "PAPER_TABLE5",
    "PAPER_TILE_SIZES",
    "table3_characteristics",
    "format_table3",
    "ComparisonRow",
    "run_comparison",
    "format_comparison",
    "run_ablation",
    "run_counter_ablation",
    "format_table4",
    "format_table5",
    "figure2_core_ptx",
    "figure3_dependence_cone",
    "figure4_hexagon",
    "figure5_tiling_pattern",
    "figure6_schedule",
]
