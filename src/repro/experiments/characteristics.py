"""Table 3: characteristics of the benchmark stencils."""

from __future__ import annotations

from repro.stencils import get_stencil, paper_benchmarks


def table3_characteristics() -> list[dict[str, object]]:
    """One row per (benchmark, statement), mirroring Table 3 of the paper."""
    rows: list[dict[str, object]] = []
    for name in paper_benchmarks():
        program = get_stencil(name)
        for statement in program.statements:
            rows.append(
                {
                    "benchmark": name,
                    "statement": statement.name,
                    "loads": statement.loads,
                    "flops": statement.flops,
                    "data_size": "x".join(str(s) for s in program.sizes),
                    "steps": program.time_steps,
                }
            )
    return rows


def format_table3(rows: list[dict[str, object]] | None = None) -> str:
    """Render Table 3 as plain text."""
    rows = rows if rows is not None else table3_characteristics()
    lines = [
        f"{'benchmark':<16} {'stmt':<5} {'loads':>5} {'flops':>5} {'data size':>14} {'steps':>6}",
        "-" * 58,
    ]
    for row in rows:
        lines.append(
            f"{row['benchmark']:<16} {row['statement']:<5} {row['loads']:>5} "
            f"{row['flops']:>5} {row['data_size']:>14} {row['steps']:>6}"
        )
    return "\n".join(lines)
