"""Numbers reported in the paper, kept for side-by-side comparison.

These are transcribed from Tables 1, 2, 4 and 5 of the paper and are used by
EXPERIMENTS.md and by the benchmarks to compare the *shape* of our model's
results (who wins, by roughly what factor) against the published results.
They are never used as inputs to the model.
"""

from __future__ import annotations

from repro.tiling.hybrid import TileSizes

# Table 1: GStencils/second on the GTX 470.
PAPER_TABLE1_GTX470: dict[str, dict[str, float | None]] = {
    "laplacian_2d": {"ppcg": 5.4, "par4all": 7.0, "overtile": 10.6, "hybrid": 15.0},
    "heat_2d": {"ppcg": 5.1, "par4all": 5.4, "overtile": 6.9, "hybrid": 15.0},
    "gradient_2d": {"ppcg": 3.9, "par4all": 5.5, "overtile": 6.7, "hybrid": 7.3},
    "fdtd_2d": {"ppcg": 0.76, "par4all": None, "overtile": 5.3, "hybrid": 7.3},
    "laplacian_3d": {"ppcg": 2.0, "par4all": 2.0, "overtile": 3.1, "hybrid": 4.3},
    "heat_3d": {"ppcg": 1.8, "par4all": 1.9, "overtile": 2.6, "hybrid": 3.9},
    "gradient_3d": {"ppcg": 2.1, "par4all": 3.1, "overtile": 3.6, "hybrid": 3.6},
}

# Table 2: GStencils/second on the NVS 5200M.
PAPER_TABLE2_NVS5200: dict[str, dict[str, float | None]] = {
    "laplacian_2d": {"ppcg": 1.0, "par4all": 1.1, "overtile": 2.1, "hybrid": 3.2},
    "heat_2d": {"ppcg": 0.97, "par4all": 0.79, "overtile": 1.5, "hybrid": 2.9},
    "gradient_2d": {"ppcg": 0.61, "par4all": 0.9, "overtile": 1.1, "hybrid": 1.4},
    "fdtd_2d": {"ppcg": 0.098, "par4all": None, "overtile": 0.9, "hybrid": 1.0},
    "laplacian_3d": {"ppcg": 0.32, "par4all": 0.34, "overtile": 0.66, "hybrid": 0.91},
    "heat_3d": {"ppcg": 0.29, "par4all": 0.35, "overtile": 0.37, "hybrid": 0.73},
    "gradient_3d": {"ppcg": 0.32, "par4all": 0.69, "overtile": 0.61, "hybrid": 0.73},
}

# Table 4: GFLOPS of the heat 3D kernel for the optimisation steps (a)-(f).
PAPER_TABLE4: dict[str, dict[str, float]] = {
    "NVS 5200M": {"a": 8, "b": 8, "c": 11, "d": 12, "e": 11, "f": 19},
    "GTX 470": {"a": 39, "b": 44, "c": 65, "d": 70, "e": 73, "f": 105},
}

# Table 5: performance counters (events x 1e9, shared loads/request, efficiency %).
PAPER_TABLE5: dict[str, dict[str, float | None]] = {
    "a": {"gld": 171.0, "dram": 1.7, "l2": 12.0, "shared_per_request": None, "gld_eff": 54.0},
    "b": {"gld": 8.7, "dram": 1.8, "l2": 1.4, "shared_per_request": 1.0, "gld_eff": 30.0},
    "c": {"gld": 8.7, "dram": 1.8, "l2": 1.4, "shared_per_request": 1.0, "gld_eff": 30.0},
    "d": {"gld": 8.8, "dram": 1.0, "l2": 0.95, "shared_per_request": 1.0, "gld_eff": 56.0},
    "e": {"gld": 7.6, "dram": 0.97, "l2": 0.49, "shared_per_request": 1.8, "gld_eff": 100.0},
    "f": {"gld": 7.6, "dram": 0.95, "l2": 0.48, "shared_per_request": 1.0, "gld_eff": 100.0},
}

# Tile sizes used for the headline comparison.  The 2D single-statement
# kernels run 8 time steps per tile (2h+2 = 8), the 3D kernels 4 per tile,
# heat 3D uses the configuration of Table 4 (h=2, w=(7,10,32), 1x10x32
# threads), and fdtd's h is chosen so h+1 is a multiple of its 3 statements.
PAPER_TILE_SIZES: dict[str, TileSizes] = {
    "jacobi_2d": TileSizes.of(3, 4, 64),
    "laplacian_2d": TileSizes.of(3, 4, 64),
    "heat_2d": TileSizes.of(3, 4, 64),
    "gradient_2d": TileSizes.of(3, 4, 64),
    "fdtd_2d": TileSizes.of(5, 4, 64),
    "laplacian_3d": TileSizes.of(1, 3, 8, 32),
    "heat_3d": TileSizes.of(2, 7, 10, 32),
    "gradient_3d": TileSizes.of(1, 3, 8, 32),
}

# Observations from the running text of Section 6 that benchmarks check.
PAPER_TIME_STEPS_PER_TILE = {"2d": 8, "3d": 4}
PAPER_HEAT3D_SPEEDUP_OVER_A = 2.5   # "overall speedup of 250%" (Section 6.2)
