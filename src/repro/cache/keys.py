"""Content-hash cache keys for pipeline-stage artefacts.

A key must identify everything a stage's output depends on: the program
*content* (not its object identity — two sessions never share ids; the
content is its regenerated C source, which
:meth:`repro.model.program.StencilProgram.c_source` round-trips bit-for-bit
through the front end, covering grid sizes and time steps via the
``#define`` header), the options the stage reads, the tiling strategy, the
stage's artifact schema version, the key of the upstream stage and the
compiler code itself (:func:`code_fingerprint`).
:func:`stage_key` assembles all of that; the session's pass manager
(:mod:`repro.api.session`) supplies the per-stage parts.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from pathlib import Path

from repro.cache.disk import SCHEMA_VERSION


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """A digest of the ``repro`` package sources, computed once per process.

    Every artefact is a pure function of (inputs, compiler code); hashing the
    code into the key means editing any pipeline module naturally invalidates
    the cache — no hand-maintained version bump, no stale artefacts (and
    stale counters) served after a code change.
    """
    import repro

    digest = hashlib.sha256()
    root = Path(repro.__file__).resolve().parent
    try:
        sources = sorted(root.rglob("*.py"))
        for path in sources:
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
    except OSError:
        # Unreadable tree (unusual packaging): fall back to the version
        # string rather than failing compilation.
        digest.update(getattr(repro, "__version__", "unknown").encode())
    return digest.hexdigest()


def stage_key(
    stage: str,
    stage_schema: int,
    strategy: str,
    parts: list[str],
    parent: str | None = None,
) -> str:
    """SHA-256 key of one pipeline stage's artifact.

    Every stage key includes the global artefact schema, the compiler code
    fingerprint, the stage name, the **stage artifact schema version** and the
    **tiling strategy name** — so a ``classical`` plan can never be served
    for a ``hybrid`` request, and an artifact layout change invalidates only
    its own stage.  ``parent`` chains the key of the upstream stage, making
    each key a content hash of the whole prefix of the pipeline that produced
    the artifact.
    """
    digest = hashlib.sha256()
    components = [
        f"schema={SCHEMA_VERSION}",
        f"code={code_fingerprint()}",
        f"stage={stage}",
        f"stage-schema={stage_schema}",
        f"strategy={strategy}",
        f"parent={parent or 'root'}",
        *parts,
    ]
    digest.update("\n".join(components).encode())
    return digest.hexdigest()


