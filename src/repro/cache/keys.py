"""Content-hash cache keys for compilation artefacts.

A key must identify everything the pipeline output depends on: the program
*content* (not its object identity — two sessions never share ids), the tile
sizes, the optimisation configuration, the storage model, the thread shape,
the target device, the artefact schema and the compiler code itself
(:func:`code_fingerprint`).  The program content is its
regenerated C source (:meth:`repro.model.program.StencilProgram.c_source`
round-trips bit-for-bit through the front end), which also covers the grid
sizes and time-step count via the ``#define`` header.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from pathlib import Path

from repro.cache.disk import SCHEMA_VERSION


def _describe(value: object) -> str:
    """A stable textual form of one key component."""
    if value is None:
        return "none"
    return repr(value)


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """A digest of the ``repro`` package sources, computed once per process.

    Every artefact is a pure function of (inputs, compiler code); hashing the
    code into the key means editing any pipeline module naturally invalidates
    the cache — no hand-maintained version bump, no stale artefacts (and
    stale counters) served after a code change.
    """
    import repro

    digest = hashlib.sha256()
    root = Path(repro.__file__).resolve().parent
    try:
        sources = sorted(root.rglob("*.py"))
        for path in sources:
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
    except OSError:
        # Unreadable tree (unusual packaging): fall back to the version
        # string rather than failing compilation.
        digest.update(getattr(repro, "__version__", "unknown").encode())
    return digest.hexdigest()


def compilation_key(
    program,
    tile_sizes=None,
    config=None,
    storage: str = "expanded",
    threads=None,
    device=None,
) -> str:
    """SHA-256 key of one :meth:`HybridCompiler.compile` invocation."""
    digest = hashlib.sha256()
    parts = [
        f"schema={SCHEMA_VERSION}",
        f"code={code_fingerprint()}",
        f"program-name={program.name}",
        f"sizes={tuple(program.sizes)}",
        f"steps={program.time_steps}",
        f"tile-sizes={_describe(tile_sizes)}",
        f"config={_describe(config)}",
        f"storage={storage}",
        f"threads={_describe(threads)}",
        f"device={device.name if device is not None else 'none'}",
    ]
    digest.update("\n".join(parts).encode())
    digest.update(b"\n--program-source--\n")
    digest.update(program.c_source().encode())
    return digest.hexdigest()
