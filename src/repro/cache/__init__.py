"""Persistent, content-addressed caching of compilation artefacts.

The in-memory memo of :class:`repro.compiler.HybridCompiler` dies with the
interpreter; this package adds the on-disk layer underneath it (the PyOP2
model: array-level execution plus disk-cached compiled artefacts), so
repeated ``hexcc`` / bench / experiment invocations — and the worker
processes of the parallel execution engine — skip recompilation entirely.
"""

from repro.cache.disk import CacheStats, DiskCache, default_cache_dir
from repro.cache.keys import stage_key

__all__ = [
    "CacheStats",
    "DiskCache",
    "default_cache_dir",
    "stage_key",
]
