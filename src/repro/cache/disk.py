"""A content-hash-keyed, schema-versioned on-disk artefact cache.

Entries are pickled payloads wrapped in a ``(kind, schema_version, payload)``
envelope and written atomically (temp file + ``os.replace``), so concurrent
writers — the process-pool workers of :mod:`repro.engine` — can share one
cache directory without locking: the worst case is the same artefact being
compiled twice, never a torn read.

Robustness rules:

* a corrupt entry (truncated pickle, wrong envelope, unpicklable payload) is
  **ignored and deleted**, never fatal;
* an entry written by a different schema version is ignored and deleted;
* hit/miss/store counts are kept per instance and merged (best effort) into a
  ``stats.json`` next to the entries, so ``hexcc cache stats`` can report the
  cumulative numbers across processes.
"""

from __future__ import annotations

import contextlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs

#: Bump when the pickled artefact layout changes incompatibly; old entries
#: are then ignored (and garbage collected) instead of being unpickled.
SCHEMA_VERSION = 1

_ENVELOPE_KIND = "hexcc-artefact"

#: Environment variable overriding the cache location.
CACHE_DIR_ENV = "HEXCC_CACHE_DIR"

#: Set to a non-empty value to disable the default disk cache entirely.
CACHE_DISABLE_ENV = "HEXCC_CACHE_DISABLE"


def default_cache_dir() -> Path:
    """The default on-disk cache location.

    ``$HEXCC_CACHE_DIR`` when set, else ``$XDG_CACHE_HOME/hexcc``, else
    ``~/.cache/hexcc``.
    """
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "hexcc"


@dataclass(frozen=True)
class CacheStats:
    """Counters and sizes of one cache directory."""

    root: str
    entries: int
    bytes: int
    hits: int
    misses: int
    stores: int
    evicted: int
    #: Per-pipeline-stage hit/miss/store breakdown (stage name -> counters),
    #: so sweep-heavy workloads (``hexcc tune``) are observable per pass.
    stages: dict = field(default_factory=dict)

    def describe(self) -> str:
        lines = [
            f"cache root : {self.root}",
            f"entries    : {self.entries}",
            f"size       : {self.bytes / 1024.0:.1f} KiB",
            f"hits       : {self.hits}",
            f"misses     : {self.misses}",
            f"stores     : {self.stores}",
            f"evicted    : {self.evicted}",
        ]
        if self.stages:
            lines.append("per-stage  :")
            lines.append(f"  {'stage':<14} {'hits':>8} {'misses':>8} {'stores':>8}")
            for stage in sorted(self.stages):
                counters = self.stages[stage]
                lines.append(
                    f"  {stage:<14} {counters.get('hits', 0):>8} "
                    f"{counters.get('misses', 0):>8} {counters.get('stores', 0):>8}"
                )
        return "\n".join(lines)


class DiskCache:
    """Content-addressed pickle cache rooted at one directory.

    Entries live under ``<root>/v<SCHEMA_VERSION>/<key>.pkl``; the schema
    version in the path means a layout change simply starts a fresh
    namespace, and the version in the envelope protects against entries
    copied across namespaces.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.entry_dir = self.root / f"v{SCHEMA_VERSION}"
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evicted = 0
        # stage name -> {"hits": n, "misses": n, "stores": n}
        self.stage_counters: dict[str, dict[str, int]] = {}

    def _count_stage(self, stage: str | None, event: str) -> None:
        if stage is None:
            return
        counters = self.stage_counters.setdefault(
            stage, {"hits": 0, "misses": 0, "stores": 0}
        )
        counters[event] += 1

    @staticmethod
    def default() -> "DiskCache | None":
        """The default cache, or ``None`` when disabled via the environment."""
        if os.environ.get(CACHE_DISABLE_ENV):
            return None
        return DiskCache()

    # -- entry IO ---------------------------------------------------------------

    def _path(self, key: str) -> Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"cache keys must be lowercase hex digests, got {key!r}")
        return self.entry_dir / f"{key}.pkl"

    def get(self, key: str, stage: str | None = None) -> object | None:
        """Fetch and unpickle one entry; corrupt or stale entries are dropped.

        ``stage`` (a pipeline pass name) attributes the hit/miss to a
        per-stage counter for ``hexcc cache stats`` and to the telemetry
        ``cache.hit``/``cache.miss`` metrics.
        """
        with obs.span("cache.get", stage=stage) as span:
            path = self._path(key)
            try:
                blob = path.read_bytes()
            except OSError:
                span.set(outcome="miss")
                self._miss(stage)
                return None
            try:
                with obs.span("cache.deserialize", stage=stage, bytes=len(blob)):
                    envelope = pickle.loads(blob)
                kind, version, payload = envelope
                if kind != _ENVELOPE_KIND or version != SCHEMA_VERSION:
                    raise ValueError(f"stale envelope {kind!r} v{version!r}")
            except Exception:
                # Truncated write, foreign file or stale schema: treat as a
                # miss and garbage-collect the entry so it is not re-read
                # forever.
                self._discard(path)
                span.set(outcome="stale")
                self._miss(stage)
                return None
            span.set(outcome="hit", bytes=len(blob))
            self.hits += 1
            self._count_stage(stage, "hits")
            obs.count("cache.hit", stage=stage)
            return payload

    def _miss(self, stage: str | None) -> None:
        self.misses += 1
        self._count_stage(stage, "misses")
        obs.count("cache.miss", stage=stage)

    def put(self, key: str, payload: object, stage: str | None = None) -> None:
        """Atomically write one entry (last writer wins)."""
        with obs.span("cache.put", stage=stage) as span:
            path = self._path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            with obs.span("cache.serialize", stage=stage):
                blob = pickle.dumps(
                    (_ENVELOPE_KIND, SCHEMA_VERSION, payload),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            span.set(bytes=len(blob))
            descriptor, temp_name = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".pkl"
            )
            try:
                with os.fdopen(descriptor, "wb") as handle:
                    handle.write(blob)
                os.replace(temp_name, path)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(temp_name)
                raise
            self.stores += 1
            self._count_stage(stage, "stores")
            obs.count("cache.store", stage=stage)

    def _discard(self, path: Path) -> None:
        with contextlib.suppress(OSError):
            path.unlink()
            self.evicted += 1

    # -- maintenance ------------------------------------------------------------

    def _entries(self) -> list[Path]:
        if not self.entry_dir.is_dir():
            return []
        return sorted(
            p for p in self.entry_dir.iterdir()
            if p.suffix == ".pkl" and not p.name.startswith(".tmp-")
        )

    def clear(self) -> int:
        """Remove every entry (all schema namespaces) and reset the stats."""
        removed = 0
        if self.root.is_dir():
            for namespace in sorted(self.root.iterdir()):
                if not namespace.is_dir() or not namespace.name.startswith("v"):
                    continue
                for path in sorted(namespace.iterdir()):
                    if path.suffix == ".pkl":
                        with contextlib.suppress(OSError):
                            path.unlink()
                            removed += 1
        stats_path = self.root / "stats.json"
        with contextlib.suppress(OSError):
            stats_path.unlink()
        return removed

    def stats(self) -> CacheStats:
        """Current stats: this instance's counters merged with ``stats.json``.

        Robust on a fresh or concurrently-modified cache directory: a
        missing directory, a malformed ``stats.json`` or an entry deleted
        between listing and ``stat()`` all degrade to zeros, never raise.
        """
        persisted, persisted_stages = self._read_persisted_stats()
        total_bytes = 0
        count = 0
        for path in self._entries():
            try:
                total_bytes += path.stat().st_size
            except OSError:
                continue  # deleted by a concurrent clear/GC: skip, don't crash
            count += 1
        stages: dict[str, dict[str, int]] = {
            name: dict(counters) for name, counters in persisted_stages.items()
        }
        for name, counters in self.stage_counters.items():
            merged = stages.setdefault(name, {"hits": 0, "misses": 0, "stores": 0})
            for event, value in counters.items():
                merged[event] = merged.get(event, 0) + value
        return CacheStats(
            root=str(self.root),
            entries=count,
            bytes=total_bytes,
            hits=self.hits + persisted.get("hits", 0),
            misses=self.misses + persisted.get("misses", 0),
            stores=self.stores + persisted.get("stores", 0),
            evicted=self.evicted + persisted.get("evicted", 0),
            stages=stages,
        )

    # -- cross-process counters ---------------------------------------------------

    def _read_persisted_stats(self) -> tuple[dict[str, int], dict[str, dict[str, int]]]:
        """The ``(totals, per_stage)`` counters of ``stats.json``, best effort."""
        try:
            raw = json.loads((self.root / "stats.json").read_text())
        except (OSError, ValueError):
            return {}, {}
        if not isinstance(raw, dict):
            # A foreign or truncated stats file must read as empty, not crash
            # ``hexcc cache stats``.
            return {}, {}
        totals = {k: int(v) for k, v in raw.items() if isinstance(v, (int, float))}
        stages: dict[str, dict[str, int]] = {}
        if isinstance(raw.get("stages"), dict):
            for name, counters in raw["stages"].items():
                if not isinstance(counters, dict):
                    continue
                stages[str(name)] = {
                    str(event): int(value)
                    for event, value in counters.items()
                    if isinstance(value, (int, float))
                }
        return totals, stages

    def flush_stats(self) -> None:
        """Merge this instance's counters into ``stats.json`` (best effort).

        Read-modify-write without locking: concurrent flushes may undercount,
        which is acceptable for an informational counter.
        """
        if not (self.hits or self.misses or self.stores or self.evicted):
            return
        merged, merged_stages = self._read_persisted_stats()
        for name in ("hits", "misses", "stores", "evicted"):
            merged[name] = merged.get(name, 0) + getattr(self, name)
        for name, counters in self.stage_counters.items():
            stage = merged_stages.setdefault(name, {})
            for event, value in counters.items():
                stage[event] = stage.get(event, 0) + value
        document: dict = dict(merged)
        if merged_stages:
            document["stages"] = merged_stages
        self.root.mkdir(parents=True, exist_ok=True)
        descriptor, temp_name = tempfile.mkstemp(dir=self.root, prefix=".stats-")
        try:
            with os.fdopen(descriptor, "w") as handle:
                json.dump(document, handle)
            os.replace(temp_name, self.root / "stats.json")
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(temp_name)
            raise
        self.hits = self.misses = self.stores = self.evicted = 0
        self.stage_counters = {}

    def __repr__(self) -> str:
        return f"DiskCache({str(self.root)!r})"
