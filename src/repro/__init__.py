"""repro — reproduction of "Hybrid Hexagonal/Classical Tiling for GPUs" (CGO 2014).

The package implements, in pure Python, the full compilation pipeline
described in the paper:

* a polyhedral substrate (:mod:`repro.polyhedral`) standing in for isl,
* a stencil front end (:mod:`repro.frontend`) standing in for pet,
* the program model and dependence analysis (:mod:`repro.model`),
* hexagonal, classical, hybrid and diamond tilings (:mod:`repro.tiling`),
* CUDA code generation with shared-memory management (:mod:`repro.codegen`),
* a GPU execution/performance model (:mod:`repro.gpu`),
* baseline compilers used in the paper's evaluation (:mod:`repro.baselines`),
* the benchmark stencils (:mod:`repro.stencils`), and
* experiment harnesses regenerating every table and figure
  (:mod:`repro.experiments`).

The supported library surface is :mod:`repro.api` — the staged pipeline
(:class:`repro.api.Session`) plus the classic :class:`HybridCompiler` façade
— together with the helpers in :mod:`repro.stencils`.
"""

from importlib import import_module
from typing import Any

__version__ = "1.0.0"

# Public names re-exported lazily so that importing a submodule (for example
# ``repro.polyhedral``) does not pull in the whole compiler stack.
_EXPORTS = {
    "HybridCompiler": "repro.compiler",
    "CompilationResult": "repro.compiler",
    "Session": "repro.api",
    "OptimizationConfig": "repro.api",
    "TileSizes": "repro.api",
    "get_stencil": "repro.stencils",
    "list_stencils": "repro.stencils",
    "parse_stencil": "repro.frontend",
    "register_from_source": "repro.stencils",
    "FrontendError": "repro.frontend",
}

__all__ = sorted(_EXPORTS) + ["__version__"]


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    module = import_module(module_name)
    return getattr(module, name)
