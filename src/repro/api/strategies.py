"""Pluggable tiling strategies, selected by name.

The paper's compiler hardwires the hybrid hexagonal/classical tiling; the
staged API instead looks the tiling stage up in a registry, so a
:class:`~repro.api.session.Session` can be pointed at ``hybrid`` (the paper's
scheme, full code generation), ``classical`` (time-skewed parallelogram
tiling) or ``diamond`` (Bandishti-style diamond tiling, Section 5) — or at a
user-registered strategy — without any call-site rewiring.

Only ``hybrid`` plans support the downstream ``memory``/``codegen`` stages;
the comparison strategies produce analysis-grade :class:`TilingPlan`
artifacts for ``stop_after="tiling"`` inspection, mirroring how the paper
uses them (qualitative comparison, Tables in Section 5).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any

from repro.api.artifacts import TilingPlan
from repro.api.errors import StrategyError

if TYPE_CHECKING:
    from repro.model.preprocess import CanonicalForm


class TilingStrategy(ABC):
    """One way of tiling the canonical iteration space.

    Subclasses set :attr:`name` (the registry key) and implement
    :meth:`plan`.  ``request`` is the session's
    :class:`~repro.api.session.CompilationRequest`; strategies read its
    ``tile_sizes``, ``config`` and ``device`` fields.
    """

    name: str = ""
    #: Whether plans of this strategy can continue into memory/codegen.
    supports_codegen: bool = False

    @abstractmethod
    def plan(self, request: Any, canonical: CanonicalForm) -> TilingPlan:
        """Build the tiling plan for one canonicalised program."""

    def _model_sizes(self, request: Any, canonical: CanonicalForm):
        """Tile sizes via the §3.7 load-to-compute model (shared helper)."""
        from repro.tiling.tile_size import select_tile_sizes

        return select_tile_sizes(
            canonical,
            shared_memory_limit=request.device.shared_memory_per_sm,
            warp_size=request.device.warp_size,
            inter_tile_reuse=request.config.inter_tile_reuse != "none",
        )


class HybridStrategy(TilingStrategy):
    """The paper's hybrid hexagonal/classical tiling (Sections 3.3–3.7)."""

    name = "hybrid"
    supports_codegen = True

    def plan(self, request: Any, canonical: CanonicalForm) -> TilingPlan:
        from repro.tiling.hybrid import HybridTiling

        tile_cost = None
        sizes = request.tile_sizes
        if sizes is None:
            tile_cost = self._model_sizes(request, canonical)
            sizes = tile_cost.sizes
        tiling = HybridTiling(canonical, sizes)
        return TilingPlan(
            strategy=self.name,
            sizes=sizes,
            tiling=tiling,
            tile_cost=tile_cost,
            supports_codegen=True,
            details={
                "time_period": tiling.shape.time_period,
                "space_period": tiling.shape.space_period,
                "iterations_per_full_tile": tiling.iterations_per_full_tile(),
                "peak_width": tiling.shape.peak_width(),
                "concurrent_start": True,
            },
        )


class ClassicalStrategy(TilingStrategy):
    """Time-skewed parallelogram tiling of every space dimension.

    The classical scheme the paper compares against: strip-mine time by
    ``h + 1`` and skew each space dimension by its lower dependence slope.
    Tiles on one wavefront run concurrently but there is no concurrent start,
    and the peak parallelism grows only gradually (Section 2).
    """

    name = "classical"
    supports_codegen = False

    def plan(self, request: Any, canonical: CanonicalForm) -> TilingPlan:
        from repro.tiling.classical import ClassicalTiling

        tile_cost = None
        sizes = request.tile_sizes
        if sizes is None:
            tile_cost = self._model_sizes(request, canonical)
            sizes = tile_cost.sizes
        ndim = len(canonical.space_dims)
        if len(sizes.widths) != ndim:
            raise StrategyError(
                f"classical tiling of {canonical.program.name} needs {ndim} tile "
                f"widths, got {len(sizes.widths)}"
            )
        time_period = sizes.height + 1
        tilings = []
        slopes = []
        for index in range(ndim):
            _, delta1 = canonical.space_distance_bounds(index)
            slopes.append(str(delta1))
            tilings.append(
                ClassicalTiling(
                    dim_name=canonical.space_dims[index],
                    delta1=delta1,
                    width=sizes.widths[index],
                    time_period=time_period,
                )
            )
        return TilingPlan(
            strategy=self.name,
            sizes=sizes,
            tiling=tuple(tilings),
            tile_cost=tile_cost,
            supports_codegen=False,
            details={
                "time_period": time_period,
                "skew_slopes": slopes,
                "concurrent_start": False,
            },
        )


class DiamondStrategy(TilingStrategy):
    """Diamond tiling of the ``(l, s0)`` plane (Section 5 comparison)."""

    name = "diamond"
    supports_codegen = False

    def plan(self, request: Any, canonical: CanonicalForm) -> TilingPlan:
        from repro.tiling.cone import DependenceCone
        from repro.tiling.diamond import DiamondTiling

        tile_cost = None
        sizes = request.tile_sizes
        if sizes is None:
            tile_cost = self._model_sizes(request, canonical)
            sizes = tile_cost.sizes
        cone = DependenceCone.from_distance_vectors(
            canonical.distance_vectors, dim_index=0
        )
        try:
            tiling = DiamondTiling(max(sizes.w0, 1), cone)
        except ValueError as error:
            raise StrategyError(
                f"diamond tiling cannot handle {canonical.program.name}: {error}"
            ) from error
        return TilingPlan(
            strategy=self.name,
            sizes=sizes,
            tiling=tiling,
            tile_cost=tile_cost,
            supports_codegen=False,
            details={
                "size": tiling.size,
                "peak_width": tiling.peak_width(),
                "concurrent_start": False,
            },
        )


_REGISTRY: dict[str, TilingStrategy] = {}


def register_strategy(strategy: TilingStrategy, replace: bool = False) -> TilingStrategy:
    """Add a strategy instance to the registry (keyed by ``strategy.name``)."""
    if not strategy.name:
        raise ValueError("tiling strategies must set a non-empty name")
    if strategy.name in _REGISTRY and not replace:
        raise ValueError(f"tiling strategy {strategy.name!r} is already registered")
    _REGISTRY[strategy.name] = strategy
    return strategy


def get_strategy(name: str) -> TilingStrategy:
    """Look a strategy up by name; raises :class:`StrategyError` if unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise StrategyError(
            f"unknown tiling strategy {name!r}; known: {list_strategies()}"
        ) from None


def list_strategies() -> list[str]:
    """Names of all registered strategies, sorted."""
    return sorted(_REGISTRY)


register_strategy(HybridStrategy())
register_strategy(ClassicalStrategy())
register_strategy(DiamondStrategy())
