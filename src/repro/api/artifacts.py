"""Typed, frozen stage artifacts of the compilation pipeline.

Each pipeline stage consumes the artifacts of the stages before it and
produces exactly one artifact:

====================  ======================  ==============================
stage                 artifact                wraps
====================  ======================  ==============================
``parse``             :class:`ParsedProgram`  :class:`StencilProgram`
``canonicalize``      :class:`CanonicalIR`    :class:`CanonicalForm`
``tiling``            :class:`TilingPlan`     a tiling (strategy-specific)
``memory``            :class:`MemoryPlan`     :class:`SharedMemoryPlan`
``codegen``           :class:`GeneratedCode`  CUDA source + core profiles
``analysis``          :class:`AnalysisBundle` counters + roofline report
``verify``            :class:`VerificationReport` race + lint verdicts
====================  ======================  ==============================

Every artifact is a frozen dataclass, carries a ``SCHEMA_VERSION`` class
attribute (mixed into its pass-level cache key, so an incompatible layout
change can never be served from a stale cache entry) and offers a
``summary()`` of JSON-safe scalars used by ``hexcc inspect`` and the
instrumentation events.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # heavyweight types only needed for annotations
    from repro.codegen.analysis import ExecutionEstimate
    from repro.codegen.kernel_ir import CoreLoopProfile
    from repro.codegen.shared_mem import SharedMemoryPlan
    from repro.gpu.perf_model import PerformanceReport
    from repro.model.preprocess import CanonicalForm
    from repro.model.program import StencilProgram
    from repro.tiling.hybrid import TileSizes
    from repro.tiling.tile_size import TileCostEstimate
    from repro.verify.report import LintReport, ScheduleVerdict

#: Pipeline stage names, in execution order.
STAGES: tuple[str, ...] = (
    "parse",
    "canonicalize",
    "tiling",
    "memory",
    "codegen",
    "analysis",
    "verify",
)


def _json_safe(value: Any) -> Any:
    """Clamp a summary value to JSON-representable scalars."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return str(value)


@dataclass(frozen=True)
class ParsedProgram:
    """The front-end output: a stencil program, optionally with its source."""

    SCHEMA_VERSION = 1

    program: StencilProgram
    source: str | None = None  # original text when parsed from C source

    def summary(self) -> dict[str, Any]:
        program = self.program
        return _json_safe(
            {
                "name": program.name,
                "dimensions": program.ndim,
                "sizes": tuple(program.sizes),
                "time_steps": program.time_steps,
                "statements": len(program.statements),
            }
        )


@dataclass(frozen=True)
class CanonicalIR:
    """The canonical schedule space and dependence analysis (Section 3.2)."""

    SCHEMA_VERSION = 1

    canonical: CanonicalForm
    storage: str

    def summary(self) -> dict[str, Any]:
        canonical = self.canonical
        return _json_safe(
            {
                "space_dims": canonical.space_dims,
                "num_statements": canonical.num_statements,
                "dependences": len(canonical.dependences),
                "distance_vectors": [list(v) for v in canonical.distance_vectors],
                "logical_time_extent": canonical.logical_time_extent,
                "storage": self.storage,
            }
        )


@dataclass(frozen=True)
class TilingPlan:
    """One tiling of the canonical space, produced by a named strategy.

    ``tiling`` is strategy-specific: :class:`repro.tiling.hybrid.HybridTiling`
    for the ``hybrid`` strategy, the analysis objects of
    :mod:`repro.tiling.classical` / :mod:`repro.tiling.diamond` for the
    comparison strategies.  Only plans with ``supports_codegen=True`` can
    continue into the ``memory`` and later stages.
    """

    SCHEMA_VERSION = 1

    strategy: str
    sizes: TileSizes | None
    tiling: Any
    tile_cost: TileCostEstimate | None = None
    supports_codegen: bool = False
    details: Mapping[str, Any] | None = None

    def summary(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "strategy": self.strategy,
            "supports_codegen": self.supports_codegen,
        }
        if self.sizes is not None:
            data["tile_height"] = self.sizes.height
            data["tile_widths"] = tuple(self.sizes.widths)
        if self.tile_cost is not None:
            data["model_loads_per_tile"] = self.tile_cost.loads
            data["model_iterations_per_tile"] = self.tile_cost.iterations
            data["model_shared_memory_bytes"] = self.tile_cost.shared_memory_bytes
            if self.tile_cost.rejections:
                # Why the rest of the §3.7 search space was pruned (shared
                # memory overflow, legality, occupancy floor) — surfaced by
                # ``hexcc inspect --stop-after tiling --json``.
                data["model_pruned"] = dict(self.tile_cost.rejections)
        if self.details:
            data.update(self.details)
        return _json_safe(data)


@dataclass(frozen=True)
class MemoryPlan:
    """The shared-memory strategy of Section 4.2."""

    SCHEMA_VERSION = 1

    plan: SharedMemoryPlan

    def summary(self) -> dict[str, Any]:
        plan = self.plan
        return _json_safe(
            {
                "uses_shared_memory": plan.uses_shared_memory,
                "shared_bytes_per_block": plan.shared_bytes_per_block,
                "loads_per_tile": plan.loads_per_tile,
                "reused_per_tile": plan.reused_per_tile,
                "stores_per_tile": plan.stores_per_tile,
                "aligned": plan.aligned,
                "fields": [footprint.field for footprint in plan.footprints],
            }
        )


@dataclass(frozen=True)
class GeneratedCode:
    """The generated CUDA source plus the core-loop instruction profiles."""

    SCHEMA_VERSION = 1

    cuda_source: str
    core_profiles: tuple[CoreLoopProfile, ...]
    threads: tuple[int, ...] | None = None

    def summary(self) -> dict[str, Any]:
        return _json_safe(
            {
                "cuda_lines": self.cuda_source.count("\n") + 1,
                "kernels": self.cuda_source.count("__global__"),
                "core_profiles": [profile.statement for profile in self.core_profiles],
                "threads": self.threads,
            }
        )


@dataclass(frozen=True)
class AnalysisBundle:
    """Analytic execution counters and the roofline performance estimate."""

    SCHEMA_VERSION = 1

    estimate: ExecutionEstimate
    report: PerformanceReport
    device_name: str

    def summary(self) -> dict[str, Any]:
        counts = self.estimate.tile_counts
        return _json_safe(
            {
                "device": self.device_name,
                "gflops": round(self.report.gflops, 3),
                "gstencils_per_second": round(self.report.gstencils_per_second, 4),
                "bound_by": self.report.bound_by,
                "time_tiles": counts.time_tiles,
                "blocks_per_launch": counts.blocks_per_launch,
                "total_tiles": counts.total_tiles,
            }
        )


@dataclass(frozen=True)
class VerificationReport:
    """Static verification verdicts: symbolic races + generated-CUDA lint.

    ``schedule`` is the symbolic race detector's verdict over all problem
    sizes (:mod:`repro.verify.symbolic`); ``lint`` the static linter's
    findings over the generated CUDA (:mod:`repro.verify.lint`), ``None``
    for analysis-only strategies that generate no code.
    """

    SCHEMA_VERSION = 1

    strategy: str
    schedule: "ScheduleVerdict"
    lint: "LintReport | None" = None

    @property
    def ok(self) -> bool:
        """No races, full phase coverage, no error-severity lint findings."""
        return self.schedule.ok and (self.lint is None or self.lint.ok)

    def summary(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "strategy": self.strategy,
            "ok": self.ok,
            "schedule_ok": self.schedule.ok,
            "races": len(self.schedule.races),
            "coverage_ok": self.schedule.coverage_ok,
            "dependences_checked": self.schedule.dependences_checked,
            "classes_checked": self.schedule.classes_checked,
        }
        if self.schedule.races:
            data["race_messages"] = [
                race.message for race in self.schedule.races[:5]
            ]
        if self.lint is not None:
            data["lint_errors"] = len(self.lint.errors)
            data["lint_warnings"] = len(self.lint.warnings)
            if self.lint.findings:
                data["lint_messages"] = [
                    str(finding) for finding in self.lint.findings[:5]
                ]
        return _json_safe(data)


#: Artifact class produced by each stage, in pipeline order.
STAGE_ARTIFACTS: dict[str, type] = {
    "parse": ParsedProgram,
    "canonicalize": CanonicalIR,
    "tiling": TilingPlan,
    "memory": MemoryPlan,
    "codegen": GeneratedCode,
    "analysis": AnalysisBundle,
    "verify": VerificationReport,
}
