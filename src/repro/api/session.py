"""The staged pipeline API: :class:`Session`, :class:`PipelineRun`, events.

A :class:`Session` is the library entry point to the compiler.  It owns the
target device, the tiling-strategy selection, a pass-granular in-memory LRU
and (optionally) the persistent on-disk artefact cache, and it orchestrates
the passes of :data:`repro.api.passes.PIPELINE_PASSES`:

``parse → canonicalize → tiling → memory → codegen → analysis``

Key capabilities the monolithic ``HybridCompiler.compile()`` never exposed:

* ``stop_after="tiling"`` — run any prefix of the pipeline and inspect the
  typed artifact it produced;
* ``inject={"tiling": plan}`` — re-enter the pipeline with a hand-modified
  artifact (e.g. a custom :class:`TilingPlan`) and let the downstream passes
  consume it;
* per-pass instrumentation — every run records a :class:`PassEvent` (wall
  time, cache provenance, artifact counters) per executed pass, and
  observers receive events as they happen;
* caching at **pass granularity** — unchanged prefixes of the pipeline are
  reused from the in-memory LRU or the disk cache even when downstream
  options (optimisation configuration, thread shape, device) change.

:class:`repro.compiler.HybridCompiler` is a thin façade over this class.
"""

from __future__ import annotations

import hashlib
import os
import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Mapping
from typing import Any

from repro import obs
from repro.api.artifacts import STAGE_ARTIFACTS, STAGES
from repro.api.config import OptimizationConfig
from repro.api.errors import PipelineError, StrategyError
from repro.api.passes import PIPELINE_PASSES
from repro.api.strategies import get_strategy
from repro.cache import DiskCache
from repro.gpu.device import GPUDevice, GTX470
from repro.model.program import StencilProgram
from repro.tiling.hybrid import TileSizes

#: Stage the façade (and ``Session.run`` by default) stops after: analysis is
#: cheap but on-demand, matching the lazy ``CompilationResult`` accessors.
DEFAULT_STOP = "codegen"

#: Deliberate per-pass slowdowns, e.g. ``HEXCC_FAULT_DELAY=tiling:40`` (ms,
#: comma-separated pairs).  The sleep happens inside the pass span, so the
#: injected time is attributed to that pass everywhere — this is how the CI
#: attribution-smoke step (and the tests) manufacture a known-guilty pass.
FAULT_DELAY_ENV = "HEXCC_FAULT_DELAY"


def _fault_delays() -> dict[str, float]:
    """Parse ``$HEXCC_FAULT_DELAY`` into pass-name → seconds (empty if unset)."""
    raw = os.environ.get(FAULT_DELAY_ENV)
    if not raw:
        return {}
    delays: dict[str, float] = {}
    for part in raw.split(","):
        name, _, amount = part.partition(":")
        try:
            delays[name.strip()] = float(amount) / 1e3
        except ValueError:
            continue
    return delays


@dataclass(frozen=True)
class CompilationRequest:
    """Everything one pipeline run depends on (the immutable run inputs)."""

    program: StencilProgram | str
    tile_sizes: TileSizes | None
    config: OptimizationConfig
    storage: str
    threads: tuple[int, ...] | None
    strategy: str
    device: GPUDevice


@dataclass(frozen=True)
class PassEvent:
    """Instrumentation record of one executed pass."""

    name: str
    wall_s: float
    source: str  # "computed" | "memory" | "disk" | "injected"
    counters: Mapping[str, float] = field(default_factory=dict)

    def describe(self) -> str:
        return f"{self.name:<12} {self.wall_s * 1e3:9.3f} ms  [{self.source}]"


def program_digest(program: StencilProgram) -> str:
    """Content digest of one program, pinning its full problem instance.

    The regenerated C source alone is not enough: library stencils that keep
    their extents symbolic (the Figure-1 ``jacobi_2d`` source uses ``N``/``T``
    with no ``#define`` header) regenerate identical text at every problem
    size, so the sizes and step count are hashed explicitly.
    """
    digest = hashlib.sha256()
    digest.update(
        f"name={program.name};sizes={tuple(program.sizes)};"
        f"steps={program.time_steps}\n".encode()
    )
    digest.update(program.c_source().encode())
    return digest.hexdigest()


def _artifact_counters(artifact: Any) -> dict[str, float]:
    """The numeric subset of an artifact summary (instrumentation counters)."""
    counters: dict[str, float] = {}
    summary = getattr(artifact, "summary", None)
    if summary is None:
        return counters
    for name, value in summary().items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        counters[name] = value
    return counters


class PipelineRun:
    """The artifacts and instrumentation events of one :meth:`Session.run`."""

    def __init__(
        self,
        request: CompilationRequest,
        artifacts: dict[str, Any],
        events: list[PassEvent],
        stop_after: str,
        tuned_entry: Mapping[str, Any] | None = None,
        digest: str = "",
    ) -> None:
        self.request = request
        self.artifacts = artifacts
        self.events = events
        self.stop_after = stop_after
        #: The tuning-database entry applied to this run (``tuned=True`` and
        #: a hit), or ``None`` when the run used explicit/model sizes.
        self.tuned_entry = tuned_entry
        #: Content digest of the compiled program (keys run-history records).
        self.digest = digest

    def artifact(self, stage: str) -> Any:
        """The artifact one stage produced; raises if the stage did not run."""
        if stage not in STAGES:
            raise ValueError(f"unknown pipeline stage {stage!r}; known: {list(STAGES)}")
        try:
            return self.artifacts[stage]
        except KeyError:
            raise PipelineError(
                f"stage {stage!r} did not run (stopped after {self.stop_after!r})"
            ) from None

    @property
    def stages_run(self) -> tuple[str, ...]:
        """Names of the passes that actually ran, in order."""
        return tuple(event.name for event in self.events)

    def timings(self) -> dict[str, float]:
        """Per-pass wall time in seconds, keyed by pass name."""
        return {event.name: event.wall_s for event in self.events}

    def result(self):
        """The classic :class:`repro.compiler.CompilationResult` façade view."""
        from repro.compiler import CompilationResult

        code = self.artifact("codegen")
        plan = self.artifact("tiling")
        canonical_ir = self.artifact("canonicalize")
        return CompilationResult(
            program=canonical_ir.canonical.program,
            canonical=canonical_ir.canonical,
            tiling=plan.tiling,
            config=self.request.config,
            shared_plan=self.artifact("memory").plan,
            cuda_source=code.cuda_source,
            core_profiles=list(code.core_profiles),
            tile_cost=plan.tile_cost,
            device=self.request.device,
        )

    def describe(self) -> str:
        """Human-readable stage-by-stage dump (used by ``hexcc inspect``)."""
        lines: list[str] = []
        for event in self.events:
            lines.append(event.describe())
            summary = self.artifacts[event.name].summary()
            for name, value in summary.items():
                lines.append(f"    {name:<24} {value}")
        total = sum(event.wall_s for event in self.events)
        lines.append(f"{'total':<12} {total * 1e3:9.3f} ms")
        return "\n".join(lines)


class Session:
    """A configured pipeline: device + strategy + caches + observers.

    Parameters
    ----------
    device:
        Target GPU model (defaults to the paper's GTX 470).
    strategy:
        Default tiling strategy name (``"hybrid"``, ``"classical"``,
        ``"diamond"`` or any registered name); overridable per run.
    disk_cache:
        Optional persistent artefact cache shared across processes; artifacts
        are stored at pass granularity.
    cache_capacity:
        Size of the in-memory pass-artifact LRU.
    observers:
        Callables invoked with each :class:`PassEvent` as passes finish.
        This is the legacy instrumentation surface, kept as a thin shim over
        the telemetry layer: dispatch is exception-safe (a raising observer
        is counted in the ``session.observer_errors`` metric and warned
        about once per session, never aborting the compile).  New code
        should prefer ``telemetry=``.
    tuning_db:
        Where ``run(tuned=True)`` looks best known configurations up: a
        :class:`repro.tuning.TuningDatabase`, a path to one, or ``None`` for
        the default resolution chain (``$HEXCC_TUNING_DB`` → the user
        database → the committed baseline shipped with the package).
    telemetry:
        A :class:`repro.obs.Telemetry` receiving this session's spans and
        metrics.  ``None`` (the default) uses whatever telemetry is ambient
        at :meth:`run` time (see :func:`repro.obs.use`) — the shared no-op
        unless a caller activated one.  An explicit telemetry is installed
        as ambient for the duration of each run, so nested machinery (disk
        cache, engine fan-outs, strategies) records into it too.
    """

    def __init__(
        self,
        device: GPUDevice = GTX470,
        strategy: str = "hybrid",
        disk_cache: DiskCache | None = None,
        cache_capacity: int = 256,
        observers: Iterable[Callable[[PassEvent], None]] = (),
        tuning_db: Any = None,
        telemetry: obs.Telemetry | None = None,
    ) -> None:
        get_strategy(strategy)  # fail fast on unknown names
        self.device = device
        self.strategy = strategy
        self.disk_cache = disk_cache
        self.cache_capacity = cache_capacity
        self.observers = tuple(observers)
        self.tuning_db = tuning_db
        self.telemetry = telemetry
        self._artifact_cache: OrderedDict[str, Any] = OrderedDict()
        self._observer_warned = False

    # -- tuned-config resolution --------------------------------------------------

    def _resolved_tuning_db(self):
        """The session's :class:`TuningDatabase`, loaded at most once."""
        from repro.tuning.db import TuningDatabase

        if not isinstance(self.tuning_db, TuningDatabase):
            # None or a path: resolve through the default chain and memoise.
            self.tuning_db = TuningDatabase.load(self.tuning_db)
        return self.tuning_db

    def resolve_tuned(self, program: StencilProgram | str) -> Mapping[str, Any] | None:
        """The tuning-database entry ``run(tuned=True)`` would apply, if any."""
        if isinstance(program, str):
            from repro.frontend import parse_stencil

            program = parse_stencil(program)
        return self._resolved_tuning_db().best_for(
            program_digest(program), self.device.name
        )

    def cache_clear(self) -> None:
        """Drop every memoised pass artifact (in-memory layer only)."""
        self._artifact_cache.clear()

    # -- the pass manager ---------------------------------------------------------

    def run(
        self,
        program: StencilProgram | str,
        tile_sizes: TileSizes | None = None,
        config: OptimizationConfig | None = None,
        storage: str = "expanded",
        threads: tuple[int, ...] | None = None,
        strategy: str | None = None,
        stop_after: str | None = None,
        inject: Mapping[str, Any] | None = None,
        tuned: bool = False,
    ) -> PipelineRun:
        """Run the pipeline (or a prefix of it) on one stencil program.

        Parameters
        ----------
        program:
            A :class:`StencilProgram` or raw Figure-1-style C source text.
        tile_sizes:
            Explicit ``h, w0..wn``; strategy/model-selected when omitted.
        config:
            Optimisation configuration (paper's best, (f), when omitted).
        storage:
            Dependence storage model passed to the canonicaliser.
        threads:
            Thread-block shape override for code generation.
        strategy:
            Tiling strategy name for this run (session default when omitted).
        stop_after:
            Last stage to execute (``"codegen"`` by default; use
            ``"analysis"`` for the full pipeline).
        inject:
            Pre-built artifacts keyed by stage name.  Injected stages do not
            run; downstream passes consume the injected artifact and are not
            cached (their inputs are no longer derivable from the request).
        tuned:
            Apply the best known configuration from the session's tuning
            database (see ``tuning_db``): the entry's tile sizes (and block
            shape, unless ``threads`` is given) replace the model selection.
            Explicit ``tile_sizes`` always win; with no database entry the
            run falls back to the model selection unchanged.  Tuned runs
            carry explicit sizes, so their cache keys can never alias the
            model-selected (``tile-sizes=auto``) entries.
        """
        stop = stop_after or DEFAULT_STOP
        if stop not in STAGES:
            raise ValueError(f"unknown pipeline stage {stop!r}; known: {list(STAGES)}")
        inject = dict(inject or {})
        for stage, artifact in inject.items():
            if stage not in STAGES:
                raise ValueError(
                    f"cannot inject unknown stage {stage!r}; known: {list(STAGES)}"
                )
            expected = STAGE_ARTIFACTS[stage]
            if not isinstance(artifact, expected):
                raise PipelineError(
                    f"injected artifact for stage {stage!r} must be a "
                    f"{expected.__name__}, got {type(artifact).__name__}"
                )
        tuned_entry: Mapping[str, Any] | None = None
        if tuned and tile_sizes is None:
            tuned_entry = self.resolve_tuned(program)
            if tuned_entry is not None:
                best = tuned_entry["best"]
                tile_sizes = TileSizes(int(best["height"]), tuple(best["widths"]))
                if threads is None and best.get("threads") is not None:
                    threads = tuple(best["threads"])
        request = CompilationRequest(
            program=program,
            tile_sizes=tile_sizes,
            config=config or OptimizationConfig.default(),
            storage=storage,
            threads=threads,
            strategy=strategy or self.strategy,
            device=self.device,
        )
        get_strategy(request.strategy)  # fail fast before running any pass

        # The session's explicit telemetry wins; otherwise record into
        # whatever is ambient (the shared no-op unless a caller activated
        # one).  Installing it as ambient makes the nested machinery — disk
        # cache, strategies, engine fan-outs — record into the same trace.
        telemetry = self.telemetry if self.telemetry is not None else obs.current()
        label = program.name if isinstance(program, StencilProgram) else "<source>"
        stage_keys: dict[str, str] = {}
        with obs.use(telemetry), telemetry.span(
            "session.run",
            program=label,
            strategy=request.strategy,
            device=request.device.name,
            stop=stop,
        ) as run_span:
            try:
                artifacts, events = self._execute(
                    request, stop, inject, telemetry, stage_keys
                )
            except StrategyError:
                # An expected "this strategy cannot express that" outcome,
                # not a pipeline fault: no crash report.
                raise
            except Exception as error:
                obs.event(
                    "pipeline.error",
                    level="error",
                    program=label,
                    error=f"{type(error).__name__}: {error}",
                )
                obs.log.attach_crash_report(
                    error,
                    obs.write_crash_report(
                        error,
                        context={
                            "operation": "compile",
                            "program": label,
                            "strategy": request.strategy,
                            "device": request.device.name,
                            "stop": stop,
                        },
                        telemetry=telemetry,
                        stage_keys=stage_keys,
                    ),
                )
                raise
        telemetry.metrics.observe(
            "compile.wall_ms", run_span.duration_s * 1e3, stop=stop
        )
        digest = (
            program_digest(artifacts["parse"].program)
            if "parse" in artifacts
            else ""
        )
        self._record_history(request, label, digest, stop, run_span, events)
        return PipelineRun(
            request, artifacts, events, stop, tuned_entry=tuned_entry, digest=digest
        )

    def _record_history(
        self,
        request: CompilationRequest,
        label: str,
        digest: str,
        stop: str,
        run_span: Any,
        events: list[PassEvent],
    ) -> None:
        """Append this run to the persistent history (best-effort, O(1))."""
        from repro.obs import history

        if not history.history_enabled():
            return
        history.RunHistory().append(
            "compile",
            history.compile_record(
                program=label,
                digest=digest,
                strategy=request.strategy,
                device=request.device.name,
                stop=stop,
                wall_ms=run_span.duration_s * 1e3,
                passes=[
                    {
                        "name": event.name,
                        "wall_ms": round(event.wall_s * 1e3, 6),
                        "source": event.source,
                        "counters": dict(event.counters),
                    }
                    for event in events
                ],
            ),
        )

    def _execute(
        self,
        request: CompilationRequest,
        stop: str,
        inject: Mapping[str, Any],
        telemetry: obs.Telemetry,
        stage_keys: dict[str, str] | None = None,
    ) -> tuple[dict[str, Any], list[PassEvent]]:
        """The pass loop; every pass is timed through its telemetry span.

        ``stage_keys`` (when given) is filled with the cache key of every
        keyed pass as it runs, so a crash report can name the artifacts the
        run had already produced.
        """
        artifacts: dict[str, Any] = {}
        events: list[PassEvent] = []
        parent_key: str | None = ""  # "" = pipeline root; None = uncacheable
        digest = ""
        fault_delays = _fault_delays()
        for pipeline_pass in PIPELINE_PASSES:
            with telemetry.span(f"pass.{pipeline_pass.name}") as pass_span:
                delay = fault_delays.get(pipeline_pass.name)
                if delay:
                    # Inside the span: the injected time shows up as this
                    # pass's wall time in every downstream view.
                    time.sleep(delay)
                injected = inject.get(pipeline_pass.name)
                if injected is not None:
                    artifact, source = injected, "injected"
                    parent_key = None  # downstream keys are no longer derivable
                else:
                    key = None
                    if parent_key is not None and pipeline_pass.cacheable:
                        key = pipeline_pass.key(
                            request, artifacts, parent_key or None, digest
                        )
                        if key is None:
                            # A cacheable pass that cannot key its output
                            # (e.g. a user-registered strategy whose code the
                            # fingerprint cannot see): stop caching from here.
                            parent_key = None
                    artifact, source = self._fetch_or_run(
                        pipeline_pass, key, request, artifacts
                    )
                    if key is not None:
                        # Uncacheable-by-design passes (parse) leave the chain
                        # intact: their content reaches downstream keys via
                        # the program digest.
                        parent_key = key
                        if stage_keys is not None:
                            stage_keys[pipeline_pass.name] = key
                pass_span.set(source=source)
            artifacts[pipeline_pass.name] = artifact
            if pipeline_pass.name == "parse":
                digest = program_digest(artifact.program)
            # The span is the single timing source: PassEvent.wall_s, the
            # trace, `hexcc profile` and the bench timings all agree.
            event = PassEvent(
                name=pipeline_pass.name,
                wall_s=pass_span.duration_s,
                source=source,
                counters=_artifact_counters(artifact),
            )
            events.append(event)
            obs.event(
                "pass.done",
                stage=pipeline_pass.name,
                source=source,
                wall_ms=round(event.wall_s * 1e3, 6),
            )
            self._notify_observers(event, telemetry)
            if pipeline_pass.name == stop:
                break
        return artifacts, events

    def _notify_observers(self, event: PassEvent, telemetry: obs.Telemetry) -> None:
        """Exception-safe observer dispatch (the legacy instrumentation shim).

        A raising observer must never abort a compile mid-pipeline: the
        failure is counted in the ``session.observer_errors`` metric and
        warned about once per session, then dispatch continues.
        """
        for observer in self.observers:
            try:
                observer(event)
            except Exception as error:  # noqa: BLE001 — observer code is foreign
                telemetry.metrics.count("session.observer_errors")
                if not self._observer_warned:
                    self._observer_warned = True
                    warnings.warn(
                        f"pass-event observer {observer!r} raised "
                        f"{type(error).__name__}: {error}; further observer "
                        "failures in this session are counted in the "
                        "session.observer_errors metric and ignored",
                        RuntimeWarning,
                        stacklevel=4,
                    )

    # -- cache layering -----------------------------------------------------------

    def _fetch_or_run(
        self,
        pipeline_pass: Any,
        key: str | None,
        request: CompilationRequest,
        artifacts: Mapping[str, Any],
    ) -> tuple[Any, str]:
        """Memory LRU → disk cache → compute, returning (artifact, source)."""
        if key is not None:
            cached = self._artifact_cache.get(key)
            if cached is not None:
                self._artifact_cache.move_to_end(key)
                return cached, "memory"
            if self.disk_cache is not None:
                fetched = self.disk_cache.get(key, stage=pipeline_pass.name)
                if isinstance(fetched, pipeline_pass.produces):
                    self._remember(key, fetched)
                    return fetched, "disk"
        artifact = pipeline_pass.run(request, artifacts)
        if key is not None:
            self._remember(key, artifact)
            if self.disk_cache is not None:
                self.disk_cache.put(key, artifact, stage=pipeline_pass.name)
        return artifact, "computed"

    def _remember(self, key: str, artifact: Any) -> None:
        if len(self._artifact_cache) >= self.cache_capacity:
            self._artifact_cache.popitem(last=False)
        self._artifact_cache[key] = artifact
        self._artifact_cache.move_to_end(key)

    def __repr__(self) -> str:
        return (
            f"Session(device={self.device.name!r}, strategy={self.strategy!r}, "
            f"disk_cache={self.disk_cache!r})"
        )
