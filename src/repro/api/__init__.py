"""``repro.api`` — the public, staged compilation API.

This package is the supported library surface of the reproduction.  Clients
(the ``hexcc`` CLI, the bench runner, the experiment harnesses, the examples
and downstream users) program against it instead of reaching into
``repro.compiler`` internals:

* :class:`Session` / :class:`PipelineRun` — the staged pass pipeline with
  typed artifacts, ``stop_after=``, artifact injection and per-pass
  instrumentation;
* the artifact types (:class:`ParsedProgram` → :class:`CanonicalIR` →
  :class:`TilingPlan` → :class:`MemoryPlan` → :class:`GeneratedCode` →
  :class:`AnalysisBundle` → :class:`VerificationReport`) and the
  :data:`STAGES` ordering;
* the strategy registry (:func:`register_strategy`, :func:`get_strategy`,
  :func:`list_strategies`) selecting ``hybrid`` / ``classical`` / ``diamond``
  tilings by name;
* the compilation options (:class:`OptimizationConfig`, :class:`TileSizes`,
  :func:`table4_configurations`), absorbed from the deprecated
  ``repro.pipeline`` module;
* the classic façades (:class:`HybridCompiler`, :class:`CompilationResult`),
  now thin wrappers over a :class:`Session` run.

The names below are re-exported lazily so importing :mod:`repro.api` stays
cheap; ``__all__`` is pinned by an API-snapshot test
(``tests/api/test_surface.py``) — extending the surface is a deliberate,
test-acknowledged act.
"""

from importlib import import_module
from typing import Any

_EXPORTS = {
    # staged pipeline
    "Session": "repro.api.session",
    "PipelineRun": "repro.api.session",
    "PassEvent": "repro.api.session",
    "CompilationRequest": "repro.api.session",
    # stage artifacts
    "STAGES": "repro.api.artifacts",
    "ParsedProgram": "repro.api.artifacts",
    "CanonicalIR": "repro.api.artifacts",
    "TilingPlan": "repro.api.artifacts",
    "MemoryPlan": "repro.api.artifacts",
    "GeneratedCode": "repro.api.artifacts",
    "AnalysisBundle": "repro.api.artifacts",
    "VerificationReport": "repro.api.artifacts",
    # strategy registry
    "TilingStrategy": "repro.api.strategies",
    "register_strategy": "repro.api.strategies",
    "get_strategy": "repro.api.strategies",
    "list_strategies": "repro.api.strategies",
    # compilation options
    "OptimizationConfig": "repro.api.config",
    "TileSizes": "repro.api.config",
    "table4_configurations": "repro.api.config",
    # errors
    "PipelineError": "repro.api.errors",
    "StrategyError": "repro.api.errors",
    "SimulationMismatchError": "repro.api.errors",
    # classic façades
    "HybridCompiler": "repro.compiler",
    "CompilationResult": "repro.compiler",
    # program sources: the stencil library and the C front end
    "get_stencil": "repro.stencils",
    "list_stencils": "repro.stencils",
    "register_from_source": "repro.stencils",
    "unregister": "repro.stencils",
    "parse_stencil": "repro.frontend",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.api' has no attribute {name!r}")
    return getattr(import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
