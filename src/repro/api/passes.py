"""The named passes of the compilation pipeline.

Each :class:`Pass` consumes the artifacts of the passes before it and
produces one typed artifact (see :mod:`repro.api.artifacts`).  A pass also
knows how to compute its **pass-level cache key**: a content hash chaining
the upstream pass's key with everything this pass's output depends on, plus
the strategy name and the artifact's schema version
(:func:`repro.cache.keys.stage_key`).  The session's pass manager uses those
keys to memoise and disk-cache artifacts at pass granularity, so e.g. a
Table-4 ablation recompiles only the memory/codegen stages while the
canonicalisation and tiling artifacts are shared across all six
configurations.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from repro.api.artifacts import (
    AnalysisBundle,
    CanonicalIR,
    GeneratedCode,
    MemoryPlan,
    ParsedProgram,
    TilingPlan,
    VerificationReport,
)
from repro.api.errors import PipelineError
from repro.api.strategies import get_strategy
from repro.cache.keys import stage_key


def _config_parts(config: Any) -> str:
    return f"config={config!r}"


class Pass:
    """One named stage of the pipeline."""

    name: str = ""
    produces: type = object
    #: Whether this pass participates in caching at all.  A *cacheable* pass
    #: whose :meth:`key` returns ``None`` additionally breaks the key chain:
    #: its output is not derivable from the request, so downstream passes
    #: must not be cached either.
    cacheable: bool = True

    def key(
        self,
        request: Any,
        artifacts: Mapping[str, Any],
        parent: str | None,
        program_digest: str,
    ) -> str | None:
        """Cache key of this pass's artifact; ``None`` marks it uncacheable."""
        return None

    def run(self, request: Any, artifacts: Mapping[str, Any]) -> Any:
        raise NotImplementedError

    def _stage_key(self, request: Any, parts: list[str], parent: str | None) -> str:
        return stage_key(
            stage=self.name,
            stage_schema=self.produces.SCHEMA_VERSION,
            strategy=request.strategy,
            parts=parts,
            parent=parent,
        )


class ParsePass(Pass):
    """Front end: accept raw C source or an already-built program."""

    name = "parse"
    produces = ParsedProgram

    # Never cached: wrapping an in-memory program is free, and parsing is a
    # tiny fraction of a compilation — caching it would only duplicate the
    # program object on disk.  The chain stays intact: the parsed program's
    # content reaches every downstream key through the program digest.
    cacheable = False

    def run(self, request: Any, artifacts: Mapping[str, Any]) -> ParsedProgram:
        program = request.program
        if isinstance(program, str):
            from repro.frontend import parse_stencil

            return ParsedProgram(program=parse_stencil(program), source=program)
        return ParsedProgram(program=program)


class CanonicalizePass(Pass):
    """Canonical schedule space + dependence analysis (Section 3.2)."""

    name = "canonicalize"
    produces = CanonicalIR

    def key(self, request, artifacts, parent, program_digest):
        return self._stage_key(
            request,
            [f"program={program_digest}", f"storage={request.storage}"],
            parent,
        )

    def run(self, request: Any, artifacts: Mapping[str, Any]) -> CanonicalIR:
        from repro.model.preprocess import canonicalize

        parsed: ParsedProgram = artifacts["parse"]
        canonical = canonicalize(parsed.program, storage=request.storage)
        return CanonicalIR(canonical=canonical, storage=request.storage)


class TilingPass(Pass):
    """Tile-size selection + tiling construction via the named strategy."""

    name = "tiling"
    produces = TilingPlan

    def key(self, request, artifacts, parent, program_digest):
        strategy = get_strategy(request.strategy)
        if not type(strategy).__module__.startswith("repro."):
            # User-registered strategy: its code is outside the repro package,
            # so the code fingerprint cannot see edits to it.  Returning None
            # makes this pass (and everything downstream) uncacheable rather
            # than risking a stale plan served for changed strategy code.
            return None
        if request.tile_sizes is not None:
            sizes_part = f"tile-sizes={request.tile_sizes!r}"
        else:
            # Model-selected sizes: the selection is a deterministic function
            # of these inputs, so they stand in for the concrete sizes.
            sizes_part = (
                "tile-sizes=auto"
                f";reuse={request.config.inter_tile_reuse != 'none'}"
                f";shared={request.device.shared_memory_per_sm}"
                f";warp={request.device.warp_size}"
            )
        return self._stage_key(request, [sizes_part], parent)

    def run(self, request: Any, artifacts: Mapping[str, Any]) -> TilingPlan:
        canonical_ir: CanonicalIR = artifacts["canonicalize"]
        strategy = get_strategy(request.strategy)
        return strategy.plan(request, canonical_ir.canonical)


class MemoryPass(Pass):
    """Shared-memory planning (Section 4.2)."""

    name = "memory"
    produces = MemoryPlan

    def key(self, request, artifacts, parent, program_digest):
        return self._stage_key(request, [_config_parts(request.config)], parent)

    def run(self, request: Any, artifacts: Mapping[str, Any]) -> MemoryPlan:
        from repro.codegen.shared_mem import plan_shared_memory

        plan: TilingPlan = artifacts["tiling"]
        if not plan.supports_codegen:
            raise PipelineError(
                f"tiling strategy {plan.strategy!r} produces analysis-only plans; "
                "re-run with strategy='hybrid' or stop_after='tiling'"
            )
        return MemoryPlan(plan=plan_shared_memory(plan.tiling, request.config))


class CodegenPass(Pass):
    """CUDA source generation + core-loop instruction profiling."""

    name = "codegen"
    produces = GeneratedCode

    def key(self, request, artifacts, parent, program_digest):
        parts = [_config_parts(request.config), f"threads={request.threads!r}"]
        return self._stage_key(request, parts, parent)

    def run(self, request: Any, artifacts: Mapping[str, Any]) -> GeneratedCode:
        from repro.codegen.cuda import CudaCodeGenerator
        from repro.codegen.kernel_ir import analyze_core_loop

        plan: TilingPlan = artifacts["tiling"]
        memory: MemoryPlan = artifacts["memory"]
        generator = CudaCodeGenerator(
            plan.tiling, memory.plan, request.config, threads=request.threads
        )
        profiles = analyze_core_loop(
            artifacts["parse"].program,
            unroll=request.config.unroll,
            separate_full_partial=request.config.separate_full_partial,
            use_shared_memory=request.config.use_shared_memory,
        )
        return GeneratedCode(
            cuda_source=generator.generate(),
            core_profiles=tuple(profiles),
            threads=request.threads,
        )


class AnalysisPass(Pass):
    """Analytic execution counters + roofline estimate (Section 6)."""

    name = "analysis"
    produces = AnalysisBundle

    def key(self, request, artifacts, parent, program_digest):
        return self._stage_key(request, [f"device={request.device.name}"], parent)

    def run(self, request: Any, artifacts: Mapping[str, Any]) -> AnalysisBundle:
        from repro.codegen.analysis import AnalyticProfiler
        from repro.gpu.perf_model import PerformanceModel

        plan: TilingPlan = artifacts["tiling"]
        memory: MemoryPlan = artifacts["memory"]
        profiler = AnalyticProfiler(
            plan.tiling, memory.plan, request.config, request.device
        )
        estimate = profiler.estimate()
        report = PerformanceModel(request.device).estimate(
            estimate.counters, estimate.launch
        )
        return AnalysisBundle(
            estimate=estimate, report=report, device_name=request.device.name
        )


class VerifyPass(Pass):
    """Static verification: symbolic race detection + generated-CUDA lint.

    Optional tail stage (the default ``stop_after`` of :meth:`Session.run`
    is still ``codegen``): proves the schedule orders every dependence for
    *all* problem sizes and lints the emitted CUDA.  Everything the verdict
    depends on — program, tiling, config, threads, device — already flows
    in through the chained parent key, so no extra parts are needed.
    """

    name = "verify"
    produces = VerificationReport

    def key(self, request, artifacts, parent, program_digest):
        return self._stage_key(request, [], parent)

    def run(self, request: Any, artifacts: Mapping[str, Any]) -> VerificationReport:
        from repro import obs
        from repro.verify.lint import lint_cuda
        from repro.verify.symbolic import verify_tiling_plan

        canonical: CanonicalIR = artifacts["canonicalize"]
        plan: TilingPlan = artifacts["tiling"]
        with obs.span("verify.symbolic", strategy=plan.strategy):
            verdict = verify_tiling_plan(canonical.canonical, plan)
        obs.count("verify.races", len(verdict.races), strategy=plan.strategy)

        lint = None
        code: GeneratedCode | None = artifacts.get("codegen")
        if code is not None:
            memory: MemoryPlan | None = artifacts.get("memory")
            with obs.span("verify.lint", kernel_lines=code.cuda_source.count("\n")):
                lint = lint_cuda(
                    code.cuda_source,
                    plan=memory.plan if memory is not None else None,
                    device=request.device,
                )
            obs.count("verify.lint.findings", len(lint.findings))
        return VerificationReport(strategy=plan.strategy, schedule=verdict, lint=lint)


#: The pipeline, in execution order.
PIPELINE_PASSES: tuple[Pass, ...] = (
    ParsePass(),
    CanonicalizePass(),
    TilingPass(),
    MemoryPass(),
    CodegenPass(),
    AnalysisPass(),
    VerifyPass(),
)
