"""Exceptions raised by the staged pipeline API."""

from __future__ import annotations


class PipelineError(Exception):
    """A stage of the pipeline could not run or produced an invalid artifact."""


class StrategyError(PipelineError):
    """A tiling strategy is unknown or cannot handle the requested program."""


class SimulationMismatchError(PipelineError, AssertionError):
    """Functional simulation diverged from the NumPy reference interpreter.

    Subclasses :class:`AssertionError` for backwards compatibility with
    callers of :meth:`CompilationResult.simulate_and_check` written before
    this type existed.
    """
