"""Compilation options: tile sizes and the optimisation configurations of §6.2.

The :class:`OptimizationConfig` switches correspond exactly to the rows of
Table 4 of the paper:

=====  ==============================================================
row    configuration
=====  ==============================================================
(a)    no shared memory (operate on global memory through the caches)
(b)    explicit shared memory with a separate copy-in / copy-out phase
(c)    (b) + interleaved copy-out (Section 4.2.1)
(d)    (c) + cache-line aligned loads (Section 4.2.3)
(e)    (d) + inter-tile value reuse with a *static* shared mapping
(f)    (d) + inter-tile value reuse with a *dynamic* shared mapping
=====  ==============================================================

This module used to live at :mod:`repro.pipeline`; that name remains as a
deprecated alias.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.tiling.hybrid import TileSizes

__all__ = ["OptimizationConfig", "TileSizes", "table4_configurations"]


@dataclass(frozen=True)
class OptimizationConfig:
    """Code-generation options of Section 4 / Section 6.2."""

    use_shared_memory: bool = True
    interleave_copy_out: bool = True
    align_loads: bool = True
    inter_tile_reuse: str = "dynamic"     # "none" | "static" | "dynamic"
    unroll: bool = True
    separate_full_partial: bool = True

    def __post_init__(self) -> None:
        if self.inter_tile_reuse not in ("none", "static", "dynamic"):
            raise ValueError("inter_tile_reuse must be 'none', 'static' or 'dynamic'")
        if self.inter_tile_reuse != "none" and not self.use_shared_memory:
            raise ValueError("inter-tile reuse requires shared memory")

    # -- the named configurations of Table 4 ------------------------------------------

    @staticmethod
    def config_a() -> "OptimizationConfig":
        """(a) hybrid tiling, global memory only."""
        return OptimizationConfig(
            use_shared_memory=False,
            interleave_copy_out=False,
            align_loads=False,
            inter_tile_reuse="none",
        )

    @staticmethod
    def config_b() -> "OptimizationConfig":
        """(b) shared memory with separate copy phases."""
        return OptimizationConfig(
            use_shared_memory=True,
            interleave_copy_out=False,
            align_loads=False,
            inter_tile_reuse="none",
        )

    @staticmethod
    def config_c() -> "OptimizationConfig":
        """(c) = (b) + interleaved copy-out."""
        return replace(OptimizationConfig.config_b(), interleave_copy_out=True)

    @staticmethod
    def config_d() -> "OptimizationConfig":
        """(d) = (c) + aligned loads."""
        return replace(OptimizationConfig.config_c(), align_loads=True)

    @staticmethod
    def config_e() -> "OptimizationConfig":
        """(e) = (d) + static inter-tile value reuse."""
        return replace(OptimizationConfig.config_d(), inter_tile_reuse="static")

    @staticmethod
    def config_f() -> "OptimizationConfig":
        """(f) = (d) + dynamic inter-tile value reuse (the default, best config)."""
        return replace(OptimizationConfig.config_d(), inter_tile_reuse="dynamic")

    @staticmethod
    def default() -> "OptimizationConfig":
        """The configuration the paper uses for Tables 1 and 2 (same as (f))."""
        return OptimizationConfig.config_f()

    @property
    def label(self) -> str:
        """The Table 4 row label of this configuration, if it is one of them."""
        for label, config in table4_configurations().items():
            if config == self:
                return label
        return "custom"


def table4_configurations() -> dict[str, OptimizationConfig]:
    """The six configurations of Table 4, keyed by their row label."""
    return {
        "a": OptimizationConfig.config_a(),
        "b": OptimizationConfig.config_b(),
        "c": OptimizationConfig.config_c(),
        "d": OptimizationConfig.config_d(),
        "e": OptimizationConfig.config_e(),
        "f": OptimizationConfig.config_f(),
    }
