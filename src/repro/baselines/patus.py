"""Patus baseline: auto-tuned spatial blocking with an experimental CUDA path.

Patus [Christen et al. 2011] is a stencil DSL and auto-tuning framework whose
primary targets are CPUs; its CUDA back end was experimental at the time of
the paper and only produced working code for the 3D laplacian and heat
kernels (Section 6.1).  The model reproduces that support matrix and the
reported performance level: spatial blocking tuned by exhaustive search, no
time tiling, global-memory accesses with good coalescing.
"""

from __future__ import annotations

from repro.baselines.base import BaselineCompiler, BaselineResult
from repro.codegen.kernel_ir import analyze_core_loop, average_instructions_per_point
from repro.gpu.counters import PerformanceCounters
from repro.gpu.perf_model import LaunchConfiguration
from repro.model.program import StencilProgram

_SUPPORTED = {"laplacian_3d", "heat_3d"}


class PatusBaseline(BaselineCompiler):
    """Model of Patus' experimental CUDA back end."""

    name = "patus"
    threads_per_block = 128

    def compile(self, program: StencilProgram) -> BaselineResult:
        if program.name not in _SUPPORTED:
            return self.unsupported(
                program,
                "Patus 0.1.3's experimental CUDA back end only generated code "
                "for the 3D laplacian and heat kernels (Section 6.1)",
            )

        updates = float(program.stencil_updates())
        steps = program.time_steps
        grid = float(self.grid_elements(program))
        statement = program.statements[0]

        counters = PerformanceCounters()
        counters.stencil_updates = updates
        counters.flops = float(program.flops_total())

        counters.gld_instructions = updates * statement.loads
        counters.requested_global_bytes = counters.gld_instructions * 4.0
        counters.transferred_global_bytes = grid * 4.0 * steps * 1.1
        counters.dram_read_transactions = counters.transferred_global_bytes / 32.0
        distinct_rows = len({read.offsets[:-1] for read in statement.unique_reads})
        counters.l2_read_transactions = updates / 32.0 * distinct_rows * 2.0
        counters.gst_instructions = updates
        counters.dram_write_transactions = updates * 4.0 / 32.0

        profiles = analyze_core_loop(
            program,
            unroll=True,                    # Patus unrolls aggressively
            separate_full_partial=True,
            use_shared_memory=False,
        )
        counters.instructions = updates * average_instructions_per_point(profiles)

        counters.kernel_launches = float(steps)
        counters.host_device_bytes = 2.0 * program.data_bytes()

        launch = LaunchConfiguration(
            threads_per_block=self.threads_per_block,
            blocks=max(1, int(grid // self.threads_per_block)),
            shared_bytes_per_block=0,
            unrolled=True,
            divergence_free=True,
            useful_fraction=1.0,
            overlap_stores=True,
        )
        return BaselineResult(
            tool=self.name,
            program_name=program.name,
            supported=True,
            counters=counters,
            launch=launch,
            strategy="auto-tuned spatial blocking, experimental CUDA back end",
        )
