"""Overtile baseline: overlapped (trapezoidal) time tiling with redundancy.

Overtile [Holewinski et al. 2012] time-tiles stencils for GPUs by having each
thread block compute an enlarged tile whose halo region is recomputed
redundantly, so blocks never need to exchange intermediate results.  This
buys reuse along the time dimension at the cost of

* redundant computation that grows with the time-tile height and the stencil
  radius (quadratically/cubically with the dimensionality), and
* thread divergence and extra shared memory for the halo values.

The model includes Overtile's auto-tuner: it sweeps the time-tile height and
block edge (the paper explored 800 configurations per benchmark) and keeps
the best predicted configuration.  For the 3D kernels the redundant halo
volume makes every time-tiled configuration lose, so the tuner falls back to
pure spatial tiling — exactly the behaviour the paper observed ("Overtile is
not able to effectively exploit time tiling for 3D kernels").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import BaselineCompiler, BaselineResult
from repro.codegen.kernel_ir import analyze_core_loop, average_instructions_per_point
from repro.gpu.counters import PerformanceCounters
from repro.gpu.device import GPUDevice, GTX470
from repro.gpu.perf_model import LaunchConfiguration, PerformanceModel
from repro.model.program import StencilProgram


@dataclass(frozen=True)
class OvertileConfiguration:
    """One point of the Overtile auto-tuning space."""

    time_height: int
    block_edge: int

    def __str__(self) -> str:
        return f"time={self.time_height}, edge={self.block_edge}"


class OvertileBaseline(BaselineCompiler):
    """Model of Overtile's overlapped tiling plus its auto-tuner."""

    name = "overtile"
    threads_per_block = 256
    time_heights = (1, 2, 3, 4, 6, 8)
    block_edges = (16, 32, 64)

    def __init__(self, tuning_device: GPUDevice = GTX470) -> None:
        self.tuning_device = tuning_device

    # -- auto-tuner -----------------------------------------------------------------------

    def compile(self, program: StencilProgram) -> BaselineResult:
        best: BaselineResult | None = None
        best_time = float("inf")
        model = PerformanceModel(self.tuning_device)
        for height in self.time_heights:
            for edge in self.block_edges:
                configuration = OvertileConfiguration(height, edge)
                if not self._fits_shared_memory(program, configuration):
                    continue
                candidate = self._compile_with(program, configuration)
                assert candidate.counters is not None and candidate.launch is not None
                report = model.estimate(candidate.counters, candidate.launch)
                if report.total_time_s < best_time:
                    best_time = report.total_time_s
                    best = candidate
        assert best is not None
        return best

    def _fits_shared_memory(
        self, program: StencilProgram, configuration: OvertileConfiguration
    ) -> bool:
        """Overlapped tiles must hold their (inflated) footprint in shared memory.

        This is what prevents Overtile from exploiting time tiling on the 3D
        kernels: the halo-inflated 3D footprint of any useful time-tile height
        exceeds the 48 KB of shared memory, so only spatial tiling (or a very
        small time height) remains feasible — matching the paper's observation.
        """
        radius = program.spatial_radius()
        span = configuration.block_edge + 2 * radius * configuration.time_height
        footprint = (span ** program.ndim) * 4 * len(program.fields)
        return footprint <= self.tuning_device.shared_memory_per_sm

    # -- one configuration -------------------------------------------------------------------

    def _compile_with(
        self, program: StencilProgram, configuration: OvertileConfiguration
    ) -> BaselineResult:
        updates = float(program.stencil_updates())
        steps = program.time_steps
        grid = float(self.grid_elements(program))
        radius = program.spatial_radius()
        height = configuration.time_height
        edge = configuration.block_edge

        # Redundancy: a block computing an edge^d output tile over `height`
        # time steps must compute (edge + 2*r*(height-1))^d points at the
        # bottom of the trapezoid, shrinking as time advances.
        redundancy = 1.0
        for _ in range(program.ndim):
            redundancy *= (edge + 2 * radius * (height - 1)) / edge
        redundancy = (1.0 + redundancy) / 2.0  # average over the trapezoid

        computed = updates * redundancy
        counters = PerformanceCounters()
        counters.stencil_updates = updates
        counters.redundant_updates = computed - updates
        flops_per_update = program.flops_total() / updates
        counters.flops = computed * flops_per_update

        # Global traffic: the grid is read and written once per *time tile*
        # (that is the whole point of time tiling), with the halo reloaded.
        halo = self.halo_fraction(program, edge)
        fields = len(program.fields)
        time_tiles = max(1, steps // height)
        counters.gld_instructions = grid * halo * fields * time_tiles
        counters.requested_global_bytes = counters.gld_instructions * 4.0
        counters.transferred_global_bytes = counters.requested_global_bytes * 1.1
        counters.dram_read_transactions = counters.transferred_global_bytes / 32.0
        counters.l2_read_transactions = counters.dram_read_transactions * 1.2
        counters.gst_instructions = updates
        counters.dram_write_transactions = updates * 4.0 / 32.0

        counters.shared_load_requests = computed * self.average_loads(program) / 32.0
        counters.shared_load_transactions = counters.shared_load_requests
        counters.shared_store_requests = computed / 32.0 + counters.gld_instructions / 32.0

        profiles = analyze_core_loop(
            program,
            unroll=True,
            separate_full_partial=False,
            use_shared_memory=True,
        )
        counters.instructions = computed * average_instructions_per_point(profiles)
        counters.instructions += counters.gld_instructions * 3.0

        counters.kernel_launches = float(time_tiles)
        counters.barriers = float(time_tiles * height)
        counters.host_device_bytes = 2.0 * program.data_bytes()

        shared_bytes = int(
            4 * fields * (edge + 2 * radius * height) ** min(program.ndim, 2)
        )
        launch = LaunchConfiguration(
            threads_per_block=self.threads_per_block,
            blocks=max(1, int(grid // (edge ** program.ndim))),
            shared_bytes_per_block=min(shared_bytes, 48 * 1024),
            unrolled=True,
            divergence_free=height <= 1,
            useful_fraction=max(0.05, updates / computed),
            overlap_stores=True,
        )
        return BaselineResult(
            tool=self.name,
            program_name=program.name,
            supported=True,
            counters=counters,
            launch=launch,
            strategy=(
                f"overlapped tiling, {configuration}, redundancy {redundancy:.2f}x"
                + (" (fell back to spatial tiling)" if height == 1 else "")
            ),
        )
