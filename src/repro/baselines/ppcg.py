"""PPCG baseline: classical spatial tiling, one kernel launch per time step.

Unmodified PPCG (the tool the hybrid compiler is built into) tiles the
parallel spatial dimensions, maps them to blocks and threads, stages the block
tile through shared memory, and wraps the whole thing into the sequential
outer time loop on the host: every time step (and every statement of a
multi-statement kernel) is a separate kernel launch, and every time step
streams the full grid from and to global memory — there is no reuse along the
time dimension (Section 6.1: "PPCG ... performing classical (time) tiling
with parallel boundaries", which for these stencils degenerates to spatial
tiling only).
"""

from __future__ import annotations

from repro.baselines.base import BaselineCompiler, BaselineResult
from repro.codegen.kernel_ir import analyze_core_loop, average_instructions_per_point
from repro.gpu.counters import PerformanceCounters
from repro.gpu.perf_model import LaunchConfiguration
from repro.model.program import StencilProgram


class PPCGBaseline(BaselineCompiler):
    """Model of unmodified PPCG's generated CUDA code."""

    name = "ppcg"
    tile_edge = 32            # PPCG's empirically tuned 32x16-ish spatial tiles
    threads_per_block = 256

    def compile(self, program: StencilProgram) -> BaselineResult:
        updates = float(program.stencil_updates())
        steps = program.time_steps
        grid = float(self.grid_elements(program))

        counters = PerformanceCounters()
        counters.stencil_updates = updates
        counters.flops = float(program.flops_total())

        halo = self.halo_fraction(program, self.tile_edge)
        # Shared-memory staging: every block loads its tile plus halo once per
        # time step (per statement that reads the corresponding fields).
        fields_read = self.fields_read_per_statement(program)
        staged_elements = 0.0
        for n_fields in fields_read:
            staged_elements += grid * halo * n_fields * steps
        counters.gld_instructions = staged_elements
        counters.requested_global_bytes = staged_elements * 4.0
        # Per time step the full grid of every read field is streamed from
        # DRAM (rows are contiguous and aligned, so transfers are efficient).
        read_bytes = 0.0
        for n_fields in fields_read:
            read_bytes += grid * 4.0 * n_fields * steps
        counters.transferred_global_bytes = read_bytes * 1.05  # halo rows
        counters.dram_read_transactions = counters.transferred_global_bytes / 32.0
        counters.l2_read_transactions = counters.dram_read_transactions * 1.3
        counters.gst_instructions = updates
        counters.dram_write_transactions = updates * 4.0 / 32.0

        # Shared-memory traffic of the compute phase (no register reuse:
        # PPCG does not unroll the point loops).
        counters.shared_load_requests = updates * self.average_loads(program) / 32.0
        counters.shared_load_transactions = counters.shared_load_requests
        counters.shared_store_requests = updates / 32.0 + staged_elements / 32.0

        profiles = analyze_core_loop(
            program,
            unroll=False,
            separate_full_partial=False,
            use_shared_memory=True,
        )
        counters.instructions = updates * average_instructions_per_point(profiles)
        counters.instructions += staged_elements * 3.0

        counters.kernel_launches = float(steps * program.num_statements)
        counters.barriers = counters.kernel_launches
        counters.host_device_bytes = 2.0 * program.data_bytes()

        blocks = max(1, int(grid // (self.tile_edge ** program.ndim)))
        radius = program.spatial_radius()
        shared_bytes = int(
            4 * (self.tile_edge + 2 * radius) ** min(program.ndim, 2)
            * max(1, max(fields_read))
        )
        launch = LaunchConfiguration(
            threads_per_block=self.threads_per_block,
            blocks=blocks,
            shared_bytes_per_block=shared_bytes,
            unrolled=False,
            divergence_free=False,
            useful_fraction=1.0,
            overlap_stores=True,
        )
        return BaselineResult(
            tool=self.name,
            program_name=program.name,
            supported=True,
            counters=counters,
            launch=launch,
            strategy=(
                f"spatial {self.tile_edge}-wide tiling, {steps * program.num_statements} "
                "kernel launches, no time tiling"
            ),
        )
