"""Par4All baseline: per-time-step global-memory code from array regions.

Par4All is not a polyhedral compiler; it derives communication and kernel
bounds from convex array-region analysis and generates straightforward CUDA
where every statement instance reads its operands from global memory (served
by the hardware caches) and writes its result back.  There is no explicit
shared-memory staging, no time tiling and no unrolling, but also very little
per-point overhead, which is why it beats PPCG on compute-heavy kernels such
as gradient 2D/3D (Tables 1 and 2) while losing on cache-unfriendly ones.

Par4All 1.4.1 produced invalid CUDA for the multi-statement fdtd-2d benchmark
("invalid CUDA" in Tables 1/2); the model reproduces that as an unsupported
result.
"""

from __future__ import annotations

from repro.baselines.base import BaselineCompiler, BaselineResult
from repro.codegen.kernel_ir import analyze_core_loop, average_instructions_per_point
from repro.gpu.counters import PerformanceCounters
from repro.gpu.perf_model import LaunchConfiguration
from repro.model.program import StencilProgram


class Par4AllBaseline(BaselineCompiler):
    """Model of Par4All's generated CUDA code."""

    name = "par4all"
    threads_per_block = 256

    def compile(self, program: StencilProgram) -> BaselineResult:
        if program.num_statements > 1:
            # The paper reports "invalid CUDA" for fdtd-2d.
            return self.unsupported(
                program,
                "Par4All 1.4.1 generates invalid CUDA for multi-statement "
                "stencils (reproduces the 'invalid CUDA' entry of Tables 1/2)",
            )

        updates = float(program.stencil_updates())
        steps = program.time_steps
        grid = float(self.grid_elements(program))
        statement = program.statements[0]

        counters = PerformanceCounters()
        counters.stencil_updates = updates
        counters.flops = float(program.flops_total())

        # Every read is a global load instruction; the caches capture the
        # spatial reuse between neighbouring threads, so the DRAM traffic per
        # time step is roughly one sweep of each read field plus one of the
        # written field.
        counters.gld_instructions = updates * statement.loads
        counters.requested_global_bytes = counters.gld_instructions * 4.0
        distinct_fields = len({read.field for read in statement.reads})
        counters.transferred_global_bytes = grid * 4.0 * distinct_fields * steps * 1.15
        counters.dram_read_transactions = counters.transferred_global_bytes / 32.0
        counters.gst_instructions = updates
        counters.dram_write_transactions = updates * 4.0 / 32.0

        # Reads that miss L1 but hit in L2: one line per distinct row of the
        # stencil's footprint per warp.
        distinct_rows = len({read.offsets[:-1] for read in statement.unique_reads})
        counters.l2_read_transactions = updates / 32.0 * distinct_rows * 4.0

        profiles = analyze_core_loop(
            program,
            unroll=False,
            separate_full_partial=True,
            use_shared_memory=False,
        )
        counters.instructions = updates * average_instructions_per_point(profiles)

        counters.kernel_launches = float(steps)
        counters.barriers = float(steps)
        counters.host_device_bytes = 2.0 * program.data_bytes()

        launch = LaunchConfiguration(
            threads_per_block=self.threads_per_block,
            blocks=max(1, int(grid // self.threads_per_block)),
            shared_bytes_per_block=0,
            unrolled=False,
            divergence_free=True,
            useful_fraction=1.0,
            overlap_stores=True,
        )
        return BaselineResult(
            tool=self.name,
            program_name=program.name,
            supported=True,
            counters=counters,
            launch=launch,
            strategy="per-time-step global-memory kernels, dynamic tile sizing heuristic",
        )
