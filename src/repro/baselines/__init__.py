"""Baseline stencil compilers used in the paper's evaluation (Section 6.1).

The original binaries (PPCG, Par4All, Overtile, Patus) are not available in
this environment, so each baseline reimplements the *tiling and code
generation strategy* the corresponding tool applies to the benchmarks, and
feeds the resulting (counted) execution profile through the same GPU
performance model as the hybrid compiler.  See DESIGN.md for the substitution
rationale.

* :class:`PPCGBaseline` — classical spatial tiling, one kernel (per statement)
  per time step, shared-memory staging, no time tiling, no unrolling;
* :class:`Par4AllBaseline` — per-time-step global-memory code generated from
  array-region analysis; rejects the multi-statement fdtd-2d kernel ("invalid
  CUDA" in Tables 1/2);
* :class:`OvertileBaseline` — overlapped (trapezoidal) time tiling with
  redundant halo computation and an auto-tuner over tile sizes;
* :class:`PatusBaseline` — auto-tuned spatial blocking; only the 3D laplacian
  and heat kernels were supported by its experimental CUDA back end.
"""

from repro.baselines.base import BaselineCompiler, BaselineResult
from repro.baselines.ppcg import PPCGBaseline
from repro.baselines.par4all import Par4AllBaseline
from repro.baselines.overtile import OvertileBaseline
from repro.baselines.patus import PatusBaseline

__all__ = [
    "BaselineCompiler",
    "BaselineResult",
    "PPCGBaseline",
    "Par4AllBaseline",
    "OvertileBaseline",
    "PatusBaseline",
    "all_baselines",
]


def all_baselines() -> list[BaselineCompiler]:
    """The four baseline compilers, in the order the paper's tables list them."""
    return [PPCGBaseline(), Par4AllBaseline(), OvertileBaseline(), PatusBaseline()]
