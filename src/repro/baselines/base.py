"""Common infrastructure of the baseline compiler models."""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.counters import PerformanceCounters
from repro.gpu.device import GPUDevice
from repro.gpu.perf_model import LaunchConfiguration, PerformanceModel, PerformanceReport
from repro.model.program import StencilProgram


@dataclass
class BaselineResult:
    """Outcome of running one baseline strategy on one stencil program."""

    tool: str
    program_name: str
    supported: bool
    counters: PerformanceCounters | None = None
    launch: LaunchConfiguration | None = None
    failure_reason: str | None = None
    strategy: str = ""

    def performance(self, device: GPUDevice) -> PerformanceReport | None:
        """Performance estimate, or ``None`` when the tool failed on the input."""
        if not self.supported or self.counters is None or self.launch is None:
            return None
        return PerformanceModel(device).estimate(self.counters, self.launch)


class BaselineCompiler:
    """Base class of the baseline strategy models."""

    name = "baseline"

    def compile(self, program: StencilProgram) -> BaselineResult:
        raise NotImplementedError

    # -- shared counting helpers -------------------------------------------------------------

    @staticmethod
    def grid_elements(program: StencilProgram) -> int:
        return program.grid_points()

    @staticmethod
    def average_loads(program: StencilProgram) -> float:
        return sum(s.loads for s in program.statements) / len(program.statements)

    @staticmethod
    def fields_read_per_statement(program: StencilProgram) -> list[int]:
        """Number of distinct fields each statement reads."""
        result = []
        for statement in program.statements:
            result.append(len({read.field for read in statement.reads}))
        return result

    @staticmethod
    def halo_fraction(program: StencilProgram, tile_edge: int) -> float:
        """Extra footprint fraction a ``tile_edge``-wide spatial block loads."""
        radius = program.spatial_radius()
        ratio = 1.0
        for _ in range(program.ndim):
            ratio *= (tile_edge + 2 * radius) / tile_edge
        return ratio

    def unsupported(self, program: StencilProgram, reason: str) -> BaselineResult:
        return BaselineResult(
            tool=self.name,
            program_name=program.name,
            supported=False,
            failure_reason=reason,
        )
