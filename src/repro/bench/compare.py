"""Diff two ``BENCH_*.json`` reports and gate on regressions.

Usable as a library (:func:`compare_reports`) and as a CLI::

    python -m repro.bench.compare BENCH_baseline.json bench_out.json \
        --max-regression 25%

Exit codes: ``0`` no regression, ``1`` regression (or a stencil disappeared
from the new report), ``2`` bad usage or malformed report.

Wall-time entries regress when ``new >= old * (1 + threshold)`` on the
*minimum* wall time (best-of-N is robust to scheduling noise, which only
ever adds time; a real regression slows every run) and the old time is
above the noise floor (``--min-time``).  Counters are
deterministic, so any counter drift is reported; it fails the comparison
only with ``--strict-counters`` (wall time is environment-noise, counters
drifting means the pipeline itself changed behaviour).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from collections.abc import Mapping
from typing import Any

from repro.bench.schema import SchemaError, load_report
from repro.obs.attrib import Attribution, attribute_entries

DEFAULT_MAX_REGRESSION = 0.25
DEFAULT_MIN_TIME = 1e-3  # seconds; entries faster than this never regress


@dataclass(frozen=True)
class Delta:
    """One measured difference between the two reports."""

    suite: str
    stencil: str
    metric: str
    old: float
    new: float
    #: Per-pass decomposition of a wall-time regression (compile-suite
    #: entries carry per-pass timings); ``None`` when not derivable.
    attribution: Attribution | None = field(default=None, compare=False)

    @property
    def ratio(self) -> float:
        if self.old == 0:
            return float("inf") if self.new else 1.0
        return self.new / self.old

    def __str__(self) -> str:
        return (
            f"{self.suite}/{self.stencil} {self.metric}: "
            f"{self.old:.6g} -> {self.new:.6g} ({self.ratio:.2f}x)"
        )


@dataclass
class ComparisonResult:
    """Outcome of diffing a baseline report against a new report."""

    threshold: float
    regressions: list[Delta] = field(default_factory=list)
    improvements: list[Delta] = field(default_factory=list)
    counter_drifts: list[Delta] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)
    added: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """No wall-time regression and no entry vanished from the new report."""
        return not self.regressions and not self.missing

    def summary(self) -> str:
        lines = [
            f"compared with max regression {self.threshold:.0%}: "
            + ("OK" if self.ok else "FAIL")
        ]
        for delta in self.regressions:
            lines.append(f"  REGRESSION {delta}")
            if delta.attribution is not None:
                for line in delta.attribution.describe().splitlines():
                    lines.append(f"    {line}")
        for key in self.missing:
            lines.append(f"  MISSING    {key} (in baseline, absent from new report)")
        for delta in self.counter_drifts:
            lines.append(f"  COUNTER    {delta}")
        for delta in self.improvements:
            lines.append(f"  improved   {delta}")
        for key in self.added:
            lines.append(f"  added      {key}")
        return "\n".join(lines)


def compare_reports(
    baseline: Mapping[str, Any],
    new: Mapping[str, Any],
    max_regression: float = DEFAULT_MAX_REGRESSION,
    min_time: float = DEFAULT_MIN_TIME,
) -> ComparisonResult:
    """Compare two schema-valid reports; see the module docstring for rules."""
    if max_regression < 0:
        raise ValueError("max_regression must be non-negative")
    result = ComparisonResult(threshold=max_regression)

    old_suites = baseline["suites"]
    new_suites = new["suites"]
    for suite_name, old_suite in old_suites.items():
        new_suite = new_suites.get(suite_name)
        if new_suite is None:
            result.missing.append(suite_name)
            continue
        old_stencils = old_suite["stencils"]
        new_stencils = new_suite["stencils"]
        for stencil, old_entry in old_stencils.items():
            new_entry = new_stencils.get(stencil)
            if new_entry is None:
                result.missing.append(f"{suite_name}/{stencil}")
                continue
            _compare_entry(
                result,
                suite_name,
                stencil,
                old_entry,
                new_entry,
                max_regression,
                min_time,
            )
        for stencil in new_stencils:
            if stencil not in old_stencils:
                result.added.append(f"{suite_name}/{stencil}")
    for suite_name in new_suites:
        if suite_name not in old_suites:
            result.added.append(suite_name)
    return result


def _compare_entry(
    result: ComparisonResult,
    suite: str,
    stencil: str,
    old_entry: Mapping[str, Any],
    new_entry: Mapping[str, Any],
    max_regression: float,
    min_time: float,
) -> None:
    # Gate on the *minimum* wall time: scheduling noise only ever adds time,
    # so best-of-N is the stable statistic, while a real regression slows
    # every run including the fastest.  Old reports without "min" (the schema
    # only mandates "median") fall back to the median.
    if "min" in old_entry["wall_s"] and "min" in new_entry["wall_s"]:
        metric = "min"
    else:
        metric = "median"
    old_time = float(old_entry["wall_s"][metric])
    new_time = float(new_entry["wall_s"][metric])
    delta = Delta(suite, stencil, f"wall_s.{metric}", old_time, new_time)
    # The boundary is inclusive (exactly threshold-much slower fails), but
    # an unchanged time never regresses, whatever the threshold.
    if (
        old_time >= min_time
        and new_time > old_time
        and new_time >= old_time * (1.0 + max_regression)
    ):
        # Decompose the regression into per-pass contributions when both
        # entries carry per-pass timings, so the failure names the guilty
        # pass instead of just the stencil.
        delta = Delta(
            suite,
            stencil,
            f"wall_s.{metric}",
            old_time,
            new_time,
            attribution=attribute_entries(old_entry, new_entry),
        )
        result.regressions.append(delta)
    elif new_time < old_time * (1.0 - max_regression):
        result.improvements.append(delta)

    old_counters = old_entry.get("counters", {})
    new_counters = new_entry.get("counters", {})
    for name in sorted(set(old_counters) | set(new_counters)):
        old_value = float(old_counters.get(name, 0.0))
        new_value = float(new_counters.get(name, 0.0))
        scale = max(abs(old_value), abs(new_value), 1.0)
        if abs(new_value - old_value) > 1e-9 * scale:
            result.counter_drifts.append(
                Delta(suite, stencil, f"counters.{name}", old_value, new_value)
            )


def parse_threshold(text: str) -> float:
    """Parse ``"25%"`` or ``"0.25"`` into the fraction ``0.25``."""
    stripped = text.strip()
    try:
        if stripped.endswith("%"):
            return float(stripped[:-1]) / 100.0
        return float(stripped)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a fraction like 0.25 or a percentage like 25%, got {text!r}"
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.compare",
        description="Compare two hexcc bench reports and fail on regressions.",
    )
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("new", help="new BENCH_*.json to check against the baseline")
    parser.add_argument(
        "--max-regression",
        type=parse_threshold,
        default=DEFAULT_MAX_REGRESSION,
        metavar="FRACTION",
        help="allowed wall-time slowdown, e.g. 25%% or 0.25 (default: 25%%)",
    )
    parser.add_argument(
        "--min-time",
        type=float,
        default=DEFAULT_MIN_TIME,
        metavar="SECONDS",
        help="noise floor: baseline wall times (min statistic) below this "
        "never regress (default: %(default)s)",
    )
    parser.add_argument(
        "--strict-counters",
        action="store_true",
        help="also fail when deterministic counters drifted",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        baseline = load_report(args.baseline)
        new = load_report(args.new)
    except (OSError, SchemaError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    result = compare_reports(
        baseline, new, max_regression=args.max_regression, min_time=args.min_time
    )
    print(result.summary())
    if not result.ok:
        return 1
    if args.strict_counters and result.counter_drifts:
        print("failing because counters drifted (--strict-counters)")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
