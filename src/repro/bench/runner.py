"""The harness behind ``hexcc bench``.

Two suites measure the cost of this reproduction's own machinery:

* **compile** — the full :class:`~repro.api.HybridCompiler` pipeline on
  every stencil at its paper-scale problem size, with model-selected tile
  sizes.  Each repeat uses a fresh compiler so the in-memory memo does not
  short-circuit the measurement; with a disk cache
  (:class:`~repro.cache.DiskCache`) attached, the warmup populates or hits
  the persistent entry and the repeats measure the steady cross-run state
  (pass no cache to measure the raw pipeline).  The recorded counters are
  the analytic execution estimate (deterministic for a given code state).
* **simulate** — exhaustive schedule validation plus functional simulation
  on small problem instances (the same configuration the test suite uses).
  The recorded counters are the simulator's exact counters.

Both suites fan across the execution engine (:mod:`repro.engine`) when
``jobs > 1``; results are assembled in input order, so the report content is
identical for every job count.  Wall times are wall-clock and therefore
machine-dependent; counters are deterministic and double as a semantic
fingerprint of the pipeline.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from functools import partial
from collections.abc import Sequence
from typing import Any

from repro import obs
from repro.bench.schema import make_report, timing_entry
from repro.cache import DiskCache
from repro.engine import map_ordered

# Stencils exercised by ``--quick`` (CI): the Figure-1 stencil, a dense 2-D
# stencil, the multi-statement kernel, one 3-D stencil and the 1-D case.
QUICK_STENCILS = ("jacobi_1d", "jacobi_2d", "heat_2d", "fdtd_2d", "laplacian_3d")

# Small problem instances used by the simulate suite, by dimensionality:
# (sizes, time steps).  Chosen to match the scale of the test suite so the
# exhaustive validator stays fast.
_SIMULATE_INSTANCES: dict[int, tuple[tuple[int, ...], int]] = {
    1: ((128,), 16),
    2: ((16, 16), 6),
    3: ((10, 10, 10), 4),
}


@dataclass(frozen=True)
class BenchOptions:
    """What ``hexcc bench`` should run."""

    suites: tuple[str, ...] = ("compile", "simulate")
    quick: bool = False
    repeats: int | None = None  # per-suite default when None
    stencils: tuple[str, ...] | None = None  # library selection when None
    jobs: int = 1  # process-pool width; 0/None = all cores
    disk_cache: DiskCache | None = None  # shared artefact cache, if any

    def effective_repeats(self) -> int:
        if self.repeats is not None:
            return max(1, self.repeats)
        return 3 if self.quick else 5

    def effective_stencils(self) -> tuple[str, ...]:
        from repro.stencils import list_stencils

        if self.stencils is not None:
            return self.stencils
        if self.quick:
            return QUICK_STENCILS
        return tuple(list_stencils())


def _counters_dict(counters: Any) -> dict[str, float]:
    return {name: float(value) for name, value in asdict(counters).items()}


def _time_call(function) -> tuple[float, Any]:
    start = time.perf_counter()
    result = function()
    return time.perf_counter() - start, result


def measure_compile_stencil(
    name: str, repeats: int, disk_cache: DiskCache | None = None
) -> tuple[str, dict[str, Any], dict[str, int]]:
    """One compile-suite measurement (picklable; runs in engine workers).

    Returns ``(stencil, report_entry, cache_counters)``.
    """
    from repro.api import HybridCompiler
    from repro.stencils import get_stencil

    program = get_stencil(name)
    # Warmup: process-wide caches, page-in; with a disk cache this is also
    # the compile that populates (or hits) the persistent entry, so the
    # measured repeats below see the steady cross-run state.
    HybridCompiler(disk_cache=disk_cache).compile(program)
    runs: list[float] = []
    stage_runs: dict[str, list[float]] = {}
    stage_sources: dict[str, dict[str, int]] = {}
    result = None
    compiler = None
    with obs.span("bench.measure", suite="compile", stencil=name, repeats=repeats):
        for _ in range(repeats):
            compiler = HybridCompiler(disk_cache=disk_cache)
            elapsed, result = _time_call(lambda: compiler.compile(program))
            runs.append(elapsed)
            # Per-stage wall times from the pass spans of the measured run,
            # keyed by span name so bench, inspect and profile agree; the
            # cache provenance rides along so regression attribution can
            # tell a pass regression from a cold-vs-warm-cache flip.
            for event in compiler.last_run.events:
                key = f"pass.{event.name}"
                stage_runs.setdefault(key, []).append(event.wall_s)
                counts = stage_sources.setdefault(key, {})
                counts[event.source] = counts.get(event.source, 0) + 1
    estimate = result.execution_estimate()
    entry = {
        "wall_s": timing_entry(runs),
        "timings": {
            stage: timing_entry(values) for stage, values in stage_runs.items()
        },
        "sources": stage_sources,
        "counters": _counters_dict(estimate.counters),
        "meta": {
            "sizes": list(program.sizes),
            "steps": program.time_steps,
            "tile_sizes": {
                "h": result.tiling.sizes.height,
                "w": list(result.tiling.sizes.widths),
            },
            "config": result.config.label,
        },
    }
    return name, entry, _flush_cache(disk_cache)


def measure_simulate_stencil(
    name: str, repeats: int, disk_cache: DiskCache | None = None
) -> tuple[str, dict[str, Any], dict[str, int]]:
    """One simulate-suite measurement (picklable; runs in engine workers)."""
    from repro.api import HybridCompiler
    from repro.stencils import get_definition, get_stencil

    definition = get_definition(name)
    sizes, steps = _SIMULATE_INSTANCES[definition.dimensions]
    program = get_stencil(name, sizes=sizes, steps=steps)
    compiled = HybridCompiler(disk_cache=disk_cache).compile(program)

    # Warmup: the first validate/simulate populates the point-enumeration
    # and schedule-array memos; the gate should measure the stable,
    # deterministic warm path.
    report = compiled.validate()
    if not report.ok:
        raise RuntimeError(f"{name}: schedule validation failed: {report}")
    compiled.simulate(seed=0)

    validate_runs: list[float] = []
    simulate_runs: list[float] = []
    total_runs: list[float] = []
    simulation = None
    with obs.span("bench.measure", suite="simulate", stencil=name, repeats=repeats):
        for _ in range(repeats):
            elapsed_validate, report = _time_call(compiled.validate)
            if not report.ok:
                raise RuntimeError(f"{name}: schedule validation failed: {report}")
            elapsed_simulate, simulation = _time_call(
                lambda: compiled.simulate(seed=0)
            )
            validate_runs.append(elapsed_validate)
            simulate_runs.append(elapsed_simulate)
            total_runs.append(elapsed_validate + elapsed_simulate)
    entry = {
        "wall_s": timing_entry(total_runs),
        "stages": {
            "validate_s": timing_entry(validate_runs),
            "simulate_s": timing_entry(simulate_runs),
        },
        "counters": _counters_dict(simulation.counters),
        "meta": {
            "sizes": list(sizes),
            "steps": steps,
            "tiles_executed": simulation.tiles_executed,
            "full_tiles": simulation.full_tiles,
            "partial_tiles": simulation.partial_tiles,
        },
    }
    return name, entry, _flush_cache(disk_cache)


def _flush_cache(disk_cache: DiskCache | None) -> dict[str, int]:
    """Persist and return one measurement's disk-cache counters."""
    if disk_cache is None:
        return {}
    counters = {
        "hits": disk_cache.hits,
        "misses": disk_cache.misses,
        "stores": disk_cache.stores,
    }
    disk_cache.flush_stats()
    return counters


def _run_suite(
    measure,
    stencils: Sequence[str],
    repeats: int,
    options: BenchOptions,
    cache_totals: dict[str, int],
) -> dict[str, dict[str, Any]]:
    """Fan one suite over the engine; results assembled in input order."""
    task = partial(measure, repeats=repeats, disk_cache=options.disk_cache)
    results: dict[str, dict[str, Any]] = {}
    for name, entry, cache_counters in map_ordered(task, stencils, jobs=options.jobs):
        results[name] = entry
        for counter, value in cache_counters.items():
            cache_totals[counter] = cache_totals.get(counter, 0) + value
    return results


def run_bench(options: BenchOptions) -> dict[str, Any]:
    """Run the requested suites and return a schema-valid report."""
    unknown = [s for s in options.suites if s not in ("compile", "simulate")]
    if unknown:
        raise ValueError(f"unknown bench suites {unknown}; known: compile, simulate")
    repeats = options.effective_repeats()
    stencils = options.effective_stencils()
    suites: dict[str, dict[str, Any]] = {}
    cache_totals: dict[str, int] = {}
    with obs.span(
        "bench.run", suites=",".join(options.suites), stencils=len(stencils)
    ):
        if "compile" in options.suites:
            suites["compile"] = _run_suite(
                measure_compile_stencil, stencils, repeats, options, cache_totals
            )
        if "simulate" in options.suites:
            suites["simulate"] = _run_suite(
                measure_simulate_stencil, stencils, repeats, options, cache_totals
            )
    report = make_report(suites, quick=options.quick, repeats=repeats)
    if options.disk_cache is not None:
        for counter in ("hits", "misses", "stores"):
            cache_totals.setdefault(counter, 0)
        report["disk_cache"] = {"root": str(options.disk_cache.root), **cache_totals}
    _record_bench_history(options, suites)
    return report


def _record_bench_history(
    options: BenchOptions, suites: dict[str, dict[str, Any]]
) -> None:
    """One run-history record per measured suite (best-effort)."""
    from repro.gpu.device import GTX470
    from repro.obs import history

    if not history.history_enabled():
        return
    store = history.RunHistory()
    for suite_name, stencils in suites.items():
        entries = [{"stencil": stencil, **entry} for stencil, entry in stencils.items()]
        store.append(
            "bench",
            history.bench_record(suite=suite_name, device=GTX470.name, entries=entries),
        )


def format_report(report: dict[str, Any]) -> str:
    """A short human-readable table of one report (for the CLI)."""
    lines: list[str] = []
    for suite_name, suite in report["suites"].items():
        lines.append(f"{suite_name} suite ({report['repeats']} repeats):")
        for stencil, entry in sorted(suite["stencils"].items()):
            wall = entry["wall_s"]
            lines.append(
                f"  {stencil:20s} median {wall['median'] * 1e3:9.3f} ms"
                f"  min {wall['min'] * 1e3:9.3f} ms"
            )
    cache = report.get("disk_cache")
    if cache is not None:
        lines.append(
            f"disk cache: {cache['hits']} hits, {cache['misses']} misses, "
            f"{cache['stores']} stores ({cache['root']})"
        )
    return "\n".join(lines)


def select_stencils(names: Sequence[str]) -> tuple[str, ...]:
    """Validate a user-provided stencil list against the registry."""
    from repro.stencils import list_stencils

    known = set(list_stencils())
    bad = [n for n in names if n not in known]
    if bad:
        raise ValueError(f"unknown stencils {bad}; known: {sorted(known)}")
    return tuple(names)
