"""The harness behind ``hexcc bench``.

Two suites measure the cost of this reproduction's own machinery:

* **compile** — the full :class:`~repro.compiler.HybridCompiler` pipeline on
  every stencil at its paper-scale problem size, with model-selected tile
  sizes.  Each repeat uses a fresh compiler so the compiled-schedule cache
  does not short-circuit the measurement.  The recorded counters are the
  analytic execution estimate (deterministic for a given code state).
* **simulate** — exhaustive schedule validation plus functional simulation
  on small problem instances (the same configuration the test suite uses).
  The recorded counters are the simulator's exact counters.

Wall times are wall-clock and therefore machine-dependent; counters are
deterministic and double as a semantic fingerprint of the pipeline.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Any, Iterable, Sequence

from repro.bench.schema import make_report, timing_entry

# Stencils exercised by ``--quick`` (CI): the Figure-1 stencil, a dense 2-D
# stencil, the multi-statement kernel, one 3-D stencil and the 1-D case.
QUICK_STENCILS = ("jacobi_1d", "jacobi_2d", "heat_2d", "fdtd_2d", "laplacian_3d")

# Small problem instances used by the simulate suite, by dimensionality:
# (sizes, time steps).  Chosen to match the scale of the test suite so the
# exhaustive validator stays fast.
_SIMULATE_INSTANCES: dict[int, tuple[tuple[int, ...], int]] = {
    1: ((128,), 16),
    2: ((16, 16), 6),
    3: ((10, 10, 10), 4),
}


@dataclass(frozen=True)
class BenchOptions:
    """What ``hexcc bench`` should run."""

    suites: tuple[str, ...] = ("compile", "simulate")
    quick: bool = False
    repeats: int | None = None  # per-suite default when None
    stencils: tuple[str, ...] | None = None  # library selection when None

    def effective_repeats(self) -> int:
        if self.repeats is not None:
            return max(1, self.repeats)
        return 3 if self.quick else 5

    def effective_stencils(self) -> tuple[str, ...]:
        from repro.stencils import list_stencils

        if self.stencils is not None:
            return self.stencils
        if self.quick:
            return QUICK_STENCILS
        return tuple(list_stencils())


def _counters_dict(counters: Any) -> dict[str, float]:
    return {name: float(value) for name, value in asdict(counters).items()}


def _time_call(function) -> tuple[float, Any]:
    start = time.perf_counter()
    result = function()
    return time.perf_counter() - start, result


def run_compile_suite(
    stencils: Iterable[str], repeats: int
) -> dict[str, dict[str, Any]]:
    """Time the full compilation pipeline at paper scale, per stencil."""
    from repro.compiler import HybridCompiler
    from repro.stencils import get_stencil

    results: dict[str, dict[str, Any]] = {}
    for name in stencils:
        program = get_stencil(name)
        HybridCompiler().compile(program)  # warmup: process-wide caches, page-in
        runs: list[float] = []
        result = None
        for _ in range(repeats):
            compiler = HybridCompiler()
            elapsed, result = _time_call(lambda: compiler.compile(program))
            runs.append(elapsed)
        estimate = result.execution_estimate()
        results[name] = {
            "wall_s": timing_entry(runs),
            "counters": _counters_dict(estimate.counters),
            "meta": {
                "sizes": list(program.sizes),
                "steps": program.time_steps,
                "tile_sizes": {
                    "h": result.tiling.sizes.height,
                    "w": list(result.tiling.sizes.widths),
                },
                "config": result.config.label,
            },
        }
    return results


def run_simulate_suite(
    stencils: Iterable[str], repeats: int
) -> dict[str, dict[str, Any]]:
    """Time exhaustive validation + functional simulation on small instances."""
    from repro.compiler import HybridCompiler
    from repro.stencils import get_definition, get_stencil

    results: dict[str, dict[str, Any]] = {}
    for name in stencils:
        definition = get_definition(name)
        sizes, steps = _SIMULATE_INSTANCES[definition.dimensions]
        program = get_stencil(name, sizes=sizes, steps=steps)
        compiled = HybridCompiler().compile(program)

        # Warmup: the first validate/simulate populates the point-enumeration
        # and assignment memos (~3x slower than steady state); the gate should
        # measure the stable, deterministic warm path.
        report = compiled.validate()
        if not report.ok:
            raise RuntimeError(f"{name}: schedule validation failed: {report}")
        compiled.simulate(seed=0)

        validate_runs: list[float] = []
        simulate_runs: list[float] = []
        total_runs: list[float] = []
        simulation = None
        for _ in range(repeats):
            elapsed_validate, report = _time_call(compiled.validate)
            if not report.ok:
                raise RuntimeError(f"{name}: schedule validation failed: {report}")
            elapsed_simulate, simulation = _time_call(
                lambda: compiled.simulate(seed=0)
            )
            validate_runs.append(elapsed_validate)
            simulate_runs.append(elapsed_simulate)
            total_runs.append(elapsed_validate + elapsed_simulate)
        results[name] = {
            "wall_s": timing_entry(total_runs),
            "stages": {
                "validate_s": timing_entry(validate_runs),
                "simulate_s": timing_entry(simulate_runs),
            },
            "counters": _counters_dict(simulation.counters),
            "meta": {
                "sizes": list(sizes),
                "steps": steps,
                "tiles_executed": simulation.tiles_executed,
                "full_tiles": simulation.full_tiles,
                "partial_tiles": simulation.partial_tiles,
            },
        }
    return results


def run_bench(options: BenchOptions) -> dict[str, Any]:
    """Run the requested suites and return a schema-valid report."""
    unknown = [s for s in options.suites if s not in ("compile", "simulate")]
    if unknown:
        raise ValueError(f"unknown bench suites {unknown}; know compile, simulate")
    repeats = options.effective_repeats()
    stencils = options.effective_stencils()
    suites: dict[str, dict[str, Any]] = {}
    if "compile" in options.suites:
        suites["compile"] = run_compile_suite(stencils, repeats)
    if "simulate" in options.suites:
        suites["simulate"] = run_simulate_suite(stencils, repeats)
    return make_report(suites, quick=options.quick, repeats=repeats)


def format_report(report: dict[str, Any]) -> str:
    """A short human-readable table of one report (for the CLI)."""
    lines: list[str] = []
    for suite_name, suite in report["suites"].items():
        lines.append(f"{suite_name} suite ({report['repeats']} repeats):")
        for stencil, entry in sorted(suite["stencils"].items()):
            wall = entry["wall_s"]
            lines.append(
                f"  {stencil:20s} median {wall['median'] * 1e3:9.3f} ms"
                f"  min {wall['min'] * 1e3:9.3f} ms"
            )
    return "\n".join(lines)


def select_stencils(names: Sequence[str]) -> tuple[str, ...]:
    """Validate a user-provided stencil list against the registry."""
    from repro.stencils import list_stencils

    known = set(list_stencils())
    bad = [n for n in names if n not in known]
    if bad:
        raise ValueError(f"unknown stencils {bad}; known: {sorted(known)}")
    return tuple(names)
