"""The versioned ``BENCH_*.json`` report format.

A report is a plain JSON document:

.. code-block:: json

    {
      "schema_version": 1,
      "kind": "hexcc-bench",
      "created": "2026-07-30T12:00:00+00:00",
      "quick": true,
      "repeats": 3,
      "environment": {"python": "...", "numpy": "...", ...},
      "suites": {
        "compile": {
          "stencils": {
            "heat_3d": {
              "wall_s": {"median": 0.004, "min": 0.004, "runs": [...]},
              "counters": {"flops": 1.2e11, ...},
              "meta": {"sizes": [384, 384, 384], "steps": 128, ...}
            }
          }
        },
        "simulate": {"stencils": {...}}
      }
    }

Wall times are measured and therefore environment-dependent; the counters
are analytic (compile suite) or exact (simulate suite) and must not drift
between runs on the same code.  :func:`validate_report` checks the
structural invariants the comparator relies on, so schema errors surface
with a clear message instead of a ``KeyError`` deep inside the diff.
"""

from __future__ import annotations

import json
import platform
from datetime import datetime, timezone
from pathlib import Path
from statistics import median
from collections.abc import Mapping, Sequence
from typing import Any

SCHEMA_VERSION = 1
REPORT_KIND = "hexcc-bench"


class SchemaError(ValueError):
    """A report does not conform to the ``BENCH_*.json`` schema."""


def environment_metadata() -> dict[str, Any]:
    """Metadata identifying the machine and software stack of a run."""
    import numpy

    import repro

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "numpy": numpy.__version__,
        "repro": repro.__version__,
    }


def timing_entry(runs: Sequence[float]) -> dict[str, Any]:
    """Summary statistics of one measured stage (seconds)."""
    if not runs:
        raise SchemaError("a timing entry needs at least one run")
    values = [float(r) for r in runs]
    return {
        "median": median(values),
        "min": min(values),
        "max": max(values),
        "runs": values,
    }


def make_report(
    suites: Mapping[str, Mapping[str, Any]],
    quick: bool,
    repeats: int,
) -> dict[str, Any]:
    """Assemble a full report from per-suite stencil results."""
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": REPORT_KIND,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "quick": bool(quick),
        "repeats": int(repeats),
        "environment": environment_metadata(),
        "suites": {
            name: {"stencils": dict(stencils)} for name, stencils in suites.items()
        },
    }


def validate_report(report: Mapping[str, Any]) -> None:
    """Raise :class:`SchemaError` unless ``report`` is structurally valid."""
    if not isinstance(report, Mapping):
        raise SchemaError("report must be a JSON object")
    kind = report.get("kind")
    if kind != REPORT_KIND:
        raise SchemaError(f"unexpected report kind {kind!r}; want {REPORT_KIND!r}")
    version = report.get("schema_version")
    if version != SCHEMA_VERSION:
        raise SchemaError(
            f"unsupported schema_version {version!r}; this build reads "
            f"version {SCHEMA_VERSION}"
        )
    suites = report.get("suites")
    if not isinstance(suites, Mapping) or not suites:
        raise SchemaError("report has no suites")
    for suite_name, suite in suites.items():
        stencils = suite.get("stencils") if isinstance(suite, Mapping) else None
        if not isinstance(stencils, Mapping):
            raise SchemaError(f"suite {suite_name!r} has no stencils mapping")
        for stencil_name, entry in stencils.items():
            if not isinstance(entry, Mapping):
                raise SchemaError(
                    f"{suite_name}/{stencil_name} is not a JSON object"
                )
            wall = entry.get("wall_s")
            if not isinstance(wall, Mapping) or "median" not in wall:
                raise SchemaError(
                    f"{suite_name}/{stencil_name} lacks a wall_s.median timing"
                )
            if not isinstance(wall["median"], (int, float)):
                raise SchemaError(
                    f"{suite_name}/{stencil_name} wall_s.median is not a number"
                )
            counters = entry.get("counters", {})
            if not isinstance(counters, Mapping):
                raise SchemaError(
                    f"{suite_name}/{stencil_name} counters is not a JSON object"
                )


def save_report(report: Mapping[str, Any], path: str | Path) -> Path:
    """Validate and write a report; returns the written path."""
    validate_report(report)
    destination = Path(path)
    destination.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return destination


def load_report(path: str | Path) -> dict[str, Any]:
    """Read and validate a report from disk."""
    try:
        report = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise SchemaError(f"{path}: not valid JSON: {error}") from error
    validate_report(report)
    return report
