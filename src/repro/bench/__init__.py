"""Performance measurement subsystem.

The paper this repository reproduces is fundamentally a performance result,
so the reproduction tracks the performance of its *own* machinery: schedule
construction, validation and functional simulation.  This package provides

* :mod:`repro.bench.schema` — the versioned ``BENCH_*.json`` report format
  (per-stencil wall-time medians, analytic counters, environment metadata);
* :mod:`repro.bench.runner` — the harness behind ``hexcc bench``, running
  the compile / validate / simulate stages over the stencil library;
* :mod:`repro.bench.compare` — a comparator that diffs two reports and
  fails past a regression threshold (used by CI against the checked-in
  ``benchmarks/BENCH_baseline.json``), also runnable as
  ``python -m repro.bench.compare``.
"""

from importlib import import_module
from typing import Any

# Re-exported lazily so that ``python -m repro.bench.compare`` does not
# import the submodule twice (once via the package, once as __main__).
_EXPORTS = {
    "ComparisonResult": "repro.bench.compare",
    "compare_reports": "repro.bench.compare",
    "BenchOptions": "repro.bench.runner",
    "run_bench": "repro.bench.runner",
    "SCHEMA_VERSION": "repro.bench.schema",
    "environment_metadata": "repro.bench.schema",
    "load_report": "repro.bench.schema",
    "make_report": "repro.bench.schema",
    "save_report": "repro.bench.schema",
    "validate_report": "repro.bench.schema",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.bench' has no attribute {name!r}")
    return getattr(import_module(module_name), name)
