"""Tuned-vs-model comparison table (``hexcc tune-table``).

Every tuning-database entry records both the configuration the search found
and the §3.7 model-selected baseline *scored under the same objective*, so
the comparison needs no recompilation: the table is a pure view of the
database, deterministic and instant.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Any

from repro.tuning.db import TuningDatabase


def _sort_key(entry: Mapping[str, Any]) -> tuple[str, str, str, str]:
    return (
        entry.get("program", ""),
        entry.get("device", ""),
        entry.get("objective", ""),
        entry.get("strategy", ""),
    )


def tuned_rows(db: TuningDatabase, device: str | None = None) -> list[dict[str, Any]]:
    """One row per database entry (optionally filtered by device name)."""
    rows = []
    for entry in sorted(db, key=_sort_key):
        if device is not None and entry.get("device") != device:
            continue
        best = entry.get("best", {})
        baseline = entry.get("baseline", {})
        model_score = float(baseline.get("score", float("inf")))
        tuned_score = float(best.get("score", float("inf")))
        rows.append(
            {
                "program": entry.get("program", "?"),
                "device": entry.get("device", "?"),
                "strategy": entry.get("strategy", "?"),
                "objective": entry.get("objective", "?"),
                "model_config": _config_text(baseline),
                "model_score": model_score,
                "tuned_config": _config_text(best),
                "tuned_score": tuned_score,
                "speedup": model_score / tuned_score if tuned_score > 0 else 1.0,
            }
        )
    return rows


def _config_text(candidate: Mapping[str, Any]) -> str:
    widths = ",".join(str(w) for w in candidate.get("widths", []))
    text = f"h={candidate.get('height', '?')} w={widths}"
    if candidate.get("threads"):
        text += " t=" + ",".join(str(t) for t in candidate["threads"])
    return text


def format_tuned_table(rows: Iterable[Mapping[str, Any]]) -> str:
    """Render the comparison as a fixed-width text table."""
    rows = list(rows)
    if not rows:
        return "tuning database is empty (run `hexcc tune <stencil>` first)"
    header = (
        f"{'stencil':<18} {'device':<10} {'strategy':<10} {'objective':<9} "
        f"{'model config':<22} {'model':>10} {'tuned config':<22} "
        f"{'tuned':>10} {'speedup':>8}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['program']:<18} {row['device']:<10} {row['strategy']:<10} "
            f"{row['objective']:<9} {row['model_config']:<22} "
            f"{row['model_score']:>10.4g} {row['tuned_config']:<22} "
            f"{row['tuned_score']:>10.4g} {row['speedup']:>7.3f}x"
        )
    return "\n".join(lines)
