"""Unions of convex integer sets.

An :class:`ISet` is a finite union of :class:`BasicSet` pieces over the same
space, mirroring isl's ``set``/``union_set``.  Subtraction of convex sets (the
operation at the heart of the hexagonal tile construction, Section 3.3.2 of
the paper) naturally produces such unions.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence

from repro.polyhedral.basic_set import BasicSet
from repro.polyhedral.constraint import Constraint
from repro.polyhedral.space import Space


class ISet:
    """A finite union of :class:`BasicSet` pieces over a common space."""

    def __init__(self, space: Space, pieces: Iterable[BasicSet] = ()) -> None:
        self.space = space
        self.pieces: list[BasicSet] = []
        for piece in pieces:
            if piece.space.dims != space.dims:
                raise ValueError("all pieces must share the set's space")
            if not piece.is_rationally_empty():
                self.pieces.append(piece)

    # -- constructors -----------------------------------------------------------

    @staticmethod
    def from_basic(basic: BasicSet) -> "ISet":
        return ISet(basic.space, [basic])

    @staticmethod
    def empty(space: Space) -> "ISet":
        return ISet(space, [])

    @staticmethod
    def universe(space: Space) -> "ISet":
        return ISet(space, [BasicSet.universe(space)])

    # -- queries ----------------------------------------------------------------

    def contains(self, point: Sequence[int] | Mapping[str, int]) -> bool:
        return any(piece.contains(point) for piece in self.pieces)

    def __contains__(self, point: Sequence[int] | Mapping[str, int]) -> bool:
        return self.contains(point)

    def is_empty(self) -> bool:
        """Whether the union contains no integer point."""
        return all(piece.is_empty() for piece in self.pieces)

    def points(self) -> Iterator[tuple[int, ...]]:
        """Iterate integer points of the union without duplicates."""
        seen: set[tuple[int, ...]] = set()
        for piece in self.pieces:
            for point in piece.points():
                if point not in seen:
                    seen.add(point)
                    yield point

    def count(self) -> int:
        """Exact number of integer points in the union (must be bounded)."""
        return sum(1 for _ in self.points())

    def bounding_box(self) -> list[tuple[int, int]] | None:
        """Bounding box of the union (None if empty or unbounded)."""
        boxes = [piece.bounding_box() for piece in self.pieces]
        boxes = [box for box in boxes if box is not None]
        if not boxes:
            return None
        merged: list[tuple[int, int]] = []
        for axis in range(self.space.ndim):
            merged.append(
                (
                    min(box[axis][0] for box in boxes),
                    max(box[axis][1] for box in boxes),
                )
            )
        return merged

    # -- set algebra -------------------------------------------------------------

    def union(self, other: "ISet | BasicSet") -> "ISet":
        other_set = _coerce(other)
        return ISet(self.space, [*self.pieces, *other_set.pieces])

    def intersect(self, other: "ISet | BasicSet") -> "ISet":
        other_set = _coerce(other)
        pieces = []
        for a in self.pieces:
            for b in other_set.pieces:
                pieces.append(a.intersect(b))
        return ISet(self.space, pieces)

    def subtract(self, other: "ISet | BasicSet") -> "ISet":
        """Integer set difference ``self \\ other``.

        Subtracting a convex piece distributes the negation of each of its
        constraints over the current pieces; the result is a (possibly
        overlapping) union that covers exactly the difference.
        """
        other_set = _coerce(other)
        result = self
        for piece in other_set.pieces:
            result = result._subtract_basic(piece)
        return result

    def _subtract_basic(self, other: BasicSet) -> "ISet":
        new_pieces: list[BasicSet] = []
        for piece in self.pieces:
            if not other.constraints:
                continue  # subtracting the universe removes everything
            for index, constraint in enumerate(other.constraints):
                negated = constraint.negated()
                # Keep points satisfying the first `index` constraints of
                # `other` but violating constraint `index`; this yields a
                # disjoint decomposition of the difference.
                prefix = other.constraints[:index]
                for neg in negated:
                    candidate = piece.add_constraints([*prefix, neg])
                    if not candidate.is_rationally_empty():
                        new_pieces.append(candidate)
        return ISet(self.space, new_pieces)

    def coalesce(self) -> "ISet":
        """Drop pieces that contain no integer points."""
        return ISet(self.space, [p for p in self.pieces if not p.is_empty()])

    # -- transformation ------------------------------------------------------------

    def translate(self, offsets: Mapping[str, int]) -> "ISet":
        return ISet(self.space, [p.translate(offsets) for p in self.pieces])

    def add_constraint(self, constraint: Constraint) -> "ISet":
        return ISet(self.space, [p.add_constraint(constraint) for p in self.pieces])

    def __str__(self) -> str:
        if not self.pieces:
            return f"{{ {self.space} : false }}"
        return " ∪ ".join(str(piece) for piece in self.pieces)

    def __repr__(self) -> str:
        return f"ISet({len(self.pieces)} pieces over {self.space})"


def _coerce(value: "ISet | BasicSet") -> ISet:
    if isinstance(value, ISet):
        return value
    return ISet.from_basic(value)
