"""Convex integer sets defined by affine constraints.

A :class:`BasicSet` is the integer-point set of a convex rational polyhedron,
described by a conjunction of affine constraints over a named
:class:`~repro.polyhedral.space.Space`.  This mirrors isl's ``basic_set``.

The operations implemented are the ones the tiling and code-generation
pipeline needs: membership, intersection, bounding boxes (via exact LP),
Fourier–Motzkin projection, enumeration of integer points and exact point
counting for bounded sets.
"""

from __future__ import annotations

import itertools
import math
from fractions import Fraction
from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence

from repro.polyhedral.affine import LinearExpr, Rational
from repro.polyhedral.constraint import Constraint
from repro.polyhedral.lp import LPStatus, lp_maximize, lp_minimize
from repro.polyhedral.space import Space


class BasicSet:
    """Integer points of a convex polyhedron over a named space."""

    def __init__(self, space: Space, constraints: Iterable[Constraint] = ()) -> None:
        self.space = space
        self.constraints: list[Constraint] = []
        for constraint in constraints:
            unknown = constraint.variables() - set(space.dims)
            if unknown:
                raise ValueError(
                    f"constraint {constraint} uses unknown dims {sorted(unknown)}"
                )
            if constraint.is_trivially_true():
                continue
            self.constraints.append(constraint)
        # Lazy caches; every mutating operation returns a new BasicSet, so
        # results computed from the constraint system stay valid.
        self._membership_rows: list[tuple[tuple[tuple[int, int], ...], int, bool]] | None = None
        self._point_list: list[tuple[int, ...]] | None = None
        self._rationally_empty: bool | None = None

    # -- constructors ------------------------------------------------------------

    @staticmethod
    def universe(space: Space) -> "BasicSet":
        """The set of all integer points of the space."""
        return BasicSet(space, [])

    @staticmethod
    def empty(space: Space) -> "BasicSet":
        """An explicitly empty set."""
        return BasicSet(space, [Constraint.ge(LinearExpr.const(-1), 0)])

    @staticmethod
    def from_bounds(space: Space, bounds: Mapping[str, tuple[int, int]]) -> "BasicSet":
        """A box ``lower <= dim <= upper`` for each entry of ``bounds``."""
        constraints = []
        for dim, (lower, upper) in bounds.items():
            var = LinearExpr.var(dim)
            constraints.append(Constraint.ge(var, lower))
            constraints.append(Constraint.le(var, upper))
        return BasicSet(space, constraints)

    @staticmethod
    def box(space: Space, lowers: Sequence[int], uppers: Sequence[int]) -> "BasicSet":
        """A box with per-dimension inclusive bounds given in space order."""
        if len(lowers) != space.ndim or len(uppers) != space.ndim:
            raise ValueError("bounds must match the space dimensionality")
        bounds = {d: (lowers[i], uppers[i]) for i, d in enumerate(space.dims)}
        return BasicSet.from_bounds(space, bounds)

    # -- membership and evaluation --------------------------------------------------

    def contains(self, point: Sequence[int] | Mapping[str, int]) -> bool:
        """Whether the integer point belongs to the set."""
        if isinstance(point, Mapping):
            values = tuple(int(point[d]) for d in self.space.dims)
        else:
            if len(point) != self.space.ndim:
                raise ValueError(
                    f"point has {len(point)} coordinates, space has {self.space.ndim}"
                )
            values = tuple(int(v) for v in point)
        for coeffs, constant, is_equality in self._compiled_rows():
            total = constant
            for index, coeff in coeffs:
                total += coeff * values[index]
            if (total != 0) if is_equality else (total < 0):
                return False
        return True

    def _compiled_rows(self) -> list[tuple[tuple[tuple[int, int], ...], int, bool]]:
        """Constraints as ``(((dim_index, coeff), ...), constant, is_eq)`` rows.

        Coefficients come from the sign-preserving integer scaling of each
        constraint, so membership reduces to integer dot products.
        """
        rows = self._membership_rows
        if rows is None:
            index_of = {name: i for i, name in enumerate(self.space.dims)}
            rows = []
            for constraint in self.constraints:
                coeffs, constant = constraint.expr.scaled_integer_form()
                rows.append(
                    (
                        tuple((index_of[name], coeff) for name, coeff in coeffs),
                        constant,
                        constraint.is_equality,
                    )
                )
            self._membership_rows = rows
        return rows

    def contains_batch(self, points):
        """Vectorised :meth:`contains` over an ``(N, ndim)`` integer array.

        Evaluates the compiled integer constraint rows as array dot products;
        returns a boolean ``np.ndarray`` mask of length ``N``.
        """
        import numpy as np

        points = np.asarray(points, dtype=np.int64)
        if points.ndim != 2 or points.shape[1] != self.space.ndim:
            raise ValueError(
                f"expected an (N, {self.space.ndim}) point array, "
                f"got shape {points.shape}"
            )
        mask = np.ones(len(points), dtype=bool)
        for coeffs, constant, is_equality in self._compiled_rows():
            total = np.full(len(points), constant, dtype=np.int64)
            for index, coeff in coeffs:
                total += coeff * points[:, index]
            mask &= (total == 0) if is_equality else (total >= 0)
        return mask

    def __contains__(self, point: Sequence[int] | Mapping[str, int]) -> bool:
        return self.contains(point)

    def __getstate__(self) -> dict:
        """Drop the lazy caches when pickling (disk cache, process pool)."""
        state = self.__dict__.copy()
        state["_membership_rows"] = None
        state["_point_list"] = None
        state["_rationally_empty"] = None
        return state

    # -- simple set algebra -------------------------------------------------------------

    def intersect(self, other: "BasicSet") -> "BasicSet":
        """Conjunction of both constraint systems (spaces must match dims)."""
        if self.space.dims != other.space.dims:
            raise ValueError("cannot intersect sets over different spaces")
        return BasicSet(self.space, [*self.constraints, *other.constraints])

    def add_constraint(self, constraint: Constraint) -> "BasicSet":
        """Return a new set with one extra constraint."""
        return BasicSet(self.space, [*self.constraints, constraint])

    def add_constraints(self, constraints: Iterable[Constraint]) -> "BasicSet":
        return BasicSet(self.space, [*self.constraints, *constraints])

    def gist(self) -> "BasicSet":
        """Drop constraints implied by the others (cheap redundancy removal)."""
        kept: list[Constraint] = []
        for i, candidate in enumerate(self.constraints):
            others = [c for j, c in enumerate(self.constraints) if j != i]
            # The candidate is redundant if the set without it cannot violate it.
            negation = candidate.negated()
            redundant = True
            for neg in negation:
                trial = BasicSet(self.space, [*others, neg])
                if not trial.is_rationally_empty():
                    redundant = False
                    break
            if not redundant:
                kept.append(candidate)
        return BasicSet(self.space, kept)

    def rename_dims(self, mapping: Mapping[str, str]) -> "BasicSet":
        """Rename dimensions of the set."""
        new_dims = tuple(mapping.get(d, d) for d in self.space.dims)
        return BasicSet(
            Space(new_dims, self.space.name),
            [c.rename(dict(mapping)) for c in self.constraints],
        )

    # -- emptiness, bounds, sampling -----------------------------------------------------

    def is_rationally_empty(self) -> bool:
        """Whether the rational relaxation of the set is empty."""
        if self._rationally_empty is None:
            result = lp_minimize(LinearExpr.zero(), self.constraints, self.space.dims)
            self._rationally_empty = result.status is LPStatus.INFEASIBLE
        return self._rationally_empty

    def is_empty(self, enumeration_limit: int = 200_000) -> bool:
        """Whether the set contains no integer point.

        The rational relaxation is checked first; if it is non-empty and the
        set is bounded with at most ``enumeration_limit`` candidate points the
        answer is exact (by enumeration), otherwise a rational sample point is
        rounded and checked, falling back to the rational answer.  The sets
        manipulated by the tiling pipeline are small and bounded, so in
        practice the answer is always exact.
        """
        if self.is_rationally_empty():
            return True
        box = self.bounding_box()
        if box is not None:
            candidates = 1
            for lower, upper in box:
                candidates *= max(0, upper - lower + 1)
                if candidates > enumeration_limit:
                    break
            if candidates <= enumeration_limit:
                return next(iter(self.points()), None) is None
        sample = self.sample_point()
        return sample is None

    def dim_min(self, dim: str) -> Fraction | None:
        """Rational minimum of ``dim`` over the set (None if unbounded/empty)."""
        result = lp_minimize(LinearExpr.var(dim), self.constraints, self.space.dims)
        if result.status is LPStatus.OPTIMAL:
            return result.value
        return None

    def dim_max(self, dim: str) -> Fraction | None:
        """Rational maximum of ``dim`` over the set (None if unbounded/empty)."""
        result = lp_maximize(LinearExpr.var(dim), self.constraints, self.space.dims)
        if result.status is LPStatus.OPTIMAL:
            return result.value
        return None

    def expr_min(self, expr: LinearExpr) -> Fraction | None:
        result = lp_minimize(expr, self.constraints, self.space.dims)
        return result.value if result.status is LPStatus.OPTIMAL else None

    def expr_max(self, expr: LinearExpr) -> Fraction | None:
        result = lp_maximize(expr, self.constraints, self.space.dims)
        return result.value if result.status is LPStatus.OPTIMAL else None

    def bounding_box(self) -> list[tuple[int, int]] | None:
        """Integer bounding box ``[(lo, hi), ...]`` in dimension order.

        Returns ``None`` when the set is rationally empty or unbounded in some
        dimension.
        """
        if self.is_rationally_empty():
            return None
        box: list[tuple[int, int]] = []
        for dim in self.space.dims:
            lower = self.dim_min(dim)
            upper = self.dim_max(dim)
            if lower is None or upper is None:
                return None
            box.append((math.ceil(lower), math.floor(upper)))
        return box

    def sample_point(self) -> tuple[int, ...] | None:
        """Some integer point of the set, or None if none is found."""
        for point in itertools.islice(self.points(), 1):
            return point
        return None

    # -- enumeration and counting ------------------------------------------------------------

    def points(self) -> Iterator[tuple[int, ...]]:
        """Iterate over the integer points of a bounded set.

        Enumeration walks the bounding box dimension by dimension, narrowing
        bounds with LP as coordinates are fixed, so it is efficient for the
        thin, skewed tile shapes that occur in hexagonal tiling.  The result
        is memoised: repeated full enumerations (validation passes, the
        functional simulator) replay the cached point list.
        """
        if self._point_list is not None:
            yield from self._point_list
            return
        if self.is_rationally_empty():
            self._point_list = []
            return
        collected: list[tuple[int, ...]] = []
        for point in self._enumerate([], self.constraints):
            collected.append(point)
            yield point
        self._point_list = collected

    def _enumerate(
        self,
        prefix: list[int],
        constraints: list[Constraint],
    ) -> Iterator[tuple[int, ...]]:
        depth = len(prefix)
        if depth == self.space.ndim:
            yield tuple(prefix)
            return
        dim = self.space.dims[depth]
        remaining_dims = self.space.dims[depth:]
        lower = lp_minimize(LinearExpr.var(dim), constraints, remaining_dims)
        upper = lp_maximize(LinearExpr.var(dim), constraints, remaining_dims)
        if lower.status is not LPStatus.OPTIMAL or upper.status is not LPStatus.OPTIMAL:
            raise ValueError(
                f"cannot enumerate unbounded or empty dimension {dim!r}"
            )
        low = math.ceil(lower.value)
        high = math.floor(upper.value)
        for value in range(low, high + 1):
            fixed = [
                c.substitute({dim: LinearExpr.const(value)}) for c in constraints
            ]
            trivially_false = any(c.is_trivially_false() for c in fixed)
            if trivially_false:
                continue
            fixed = [c for c in fixed if not c.is_trivially_true()]
            if depth + 1 < self.space.ndim:
                feasible = lp_minimize(
                    LinearExpr.zero(), fixed, self.space.dims[depth + 1 :]
                )
                if feasible.status is LPStatus.INFEASIBLE:
                    continue
            yield from self._enumerate(prefix + [value], fixed)

    def count(self) -> int:
        """Exact number of integer points (the set must be bounded)."""
        return sum(1 for _ in self.points())

    # -- projection -----------------------------------------------------------------

    def project_out(self, dims: Iterable[str]) -> "BasicSet":
        """Existentially project out the given dimensions (Fourier–Motzkin).

        The projection is computed on the rational relaxation, which is an
        over-approximation of the integer projection; it is exact for the box
        and cone shapes used in this code base and is only used where an
        over-approximation is safe (footprints and bounds).
        """
        to_remove = [d for d in dims]
        constraints = list(self.constraints)
        remaining_dims = [d for d in self.space.dims if d not in to_remove]
        for dim in to_remove:
            constraints = _fourier_motzkin_step(constraints, dim)
        new_space = Space(tuple(remaining_dims), self.space.name)
        return BasicSet(new_space, constraints)

    def project_onto(self, dims: Sequence[str]) -> "BasicSet":
        """Project onto the given dimensions (drop all others)."""
        drop = [d for d in self.space.dims if d not in dims]
        projected = self.project_out(drop)
        order = [d for d in dims if d in projected.space.dims]
        return BasicSet(Space(tuple(order), self.space.name), projected.constraints)

    # -- transformation ---------------------------------------------------------------

    def translate(self, offsets: Mapping[str, int]) -> "BasicSet":
        """Translate the set by integer offsets along named dimensions."""
        bindings = {
            dim: LinearExpr.var(dim) - offset for dim, offset in offsets.items()
        }
        return BasicSet(
            self.space, [c.substitute(bindings) for c in self.constraints]
        )

    def filter_points(
        self, predicate: Callable[[tuple[int, ...]], bool]
    ) -> list[tuple[int, ...]]:
        """Enumerate and keep the points satisfying ``predicate``."""
        return [p for p in self.points() if predicate(p)]

    # -- dunder -----------------------------------------------------------------------

    def __str__(self) -> str:
        constraint_text = " and ".join(str(c) for c in self.constraints) or "true"
        return f"{{ {self.space} : {constraint_text} }}"

    def __repr__(self) -> str:
        return f"BasicSet({self})"


def _fourier_motzkin_step(
    constraints: list[Constraint], dim: str
) -> list[Constraint]:
    """Eliminate ``dim`` from a conjunction of constraints."""
    lower: list[tuple[Fraction, LinearExpr]] = []  # coeff > 0:  coeff*d >= -rest
    upper: list[tuple[Fraction, LinearExpr]] = []  # coeff < 0: -coeff*d <= rest
    independent: list[Constraint] = []
    equalities: list[Constraint] = []

    for constraint in constraints:
        coeff = constraint.expr.coefficient(dim)
        if coeff == 0:
            independent.append(constraint)
        elif constraint.is_equality:
            equalities.append(constraint)
        elif coeff > 0:
            lower.append((coeff, constraint.expr))
        else:
            upper.append((coeff, constraint.expr))

    if equalities:
        # Use the first equality to substitute the dimension away, then recurse.
        eq = equalities[0]
        coeff = eq.expr.coefficient(dim)
        # dim = -(rest)/coeff
        rest = eq.expr - LinearExpr.var(dim, coeff)
        replacement = rest * (Fraction(-1) / coeff)
        substituted = []
        for constraint in constraints:
            if constraint is eq:
                continue
            substituted.append(constraint.substitute({dim: replacement}))
        return [c for c in substituted if not c.is_trivially_true()]

    result = list(independent)
    for coeff_low, expr_low in lower:
        for coeff_up, expr_up in upper:
            # expr_low >= 0 with positive coeff, expr_up >= 0 with negative coeff.
            combined = expr_low * (-coeff_up) + expr_up * coeff_low
            constraint = Constraint(combined, is_equality=False)
            if not constraint.is_trivially_true():
                result.append(constraint.normalized())
    return result
