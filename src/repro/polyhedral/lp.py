"""Exact rational linear programming (two-phase simplex).

The tiling algorithm needs a handful of small LPs:

* the slopes ``δ0`` and ``δ1`` of the opposite dependence cone
  (Section 3.3.2 of the paper) are the optima of small LPs over the
  dependence distance vectors;
* bounding boxes of iteration domains and tile footprints are obtained by
  minimising / maximising each coordinate subject to the set's constraints;
* rational emptiness of a constraint system is a phase-1 feasibility check.

All arithmetic uses :class:`fractions.Fraction`; Bland's rule is used for
pivot selection so the algorithm terminates on degenerate problems.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from collections.abc import Sequence

from repro.polyhedral.affine import LinearExpr
from repro.polyhedral.constraint import Constraint


class LPStatus(enum.Enum):
    """Outcome of an LP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"


@dataclass(frozen=True)
class LPResult:
    """Result of an LP solve.

    ``value`` and ``point`` are only meaningful when ``status`` is
    :attr:`LPStatus.OPTIMAL`.
    """

    status: LPStatus
    value: Fraction | None = None
    point: dict[str, Fraction] | None = None

    @property
    def is_optimal(self) -> bool:
        return self.status is LPStatus.OPTIMAL


def lp_minimize(
    objective: LinearExpr,
    constraints: Sequence[Constraint],
    variables: Sequence[str] | None = None,
) -> LPResult:
    """Minimise ``objective`` subject to ``constraints`` over the rationals.

    Variables are free (may take any sign).  ``variables`` fixes the variable
    order and may include variables not mentioned in the constraints.
    """
    solver = _Simplex(objective, constraints, variables)
    return solver.solve()


def lp_maximize(
    objective: LinearExpr,
    constraints: Sequence[Constraint],
    variables: Sequence[str] | None = None,
) -> LPResult:
    """Maximise ``objective`` subject to ``constraints`` over the rationals."""
    result = lp_minimize(objective * -1, constraints, variables)
    if result.status is LPStatus.OPTIMAL:
        assert result.value is not None
        return LPResult(LPStatus.OPTIMAL, -result.value, result.point)
    return result


def lp_feasible(
    constraints: Sequence[Constraint],
    variables: Sequence[str] | None = None,
) -> bool:
    """Whether the constraint system has a rational solution."""
    result = lp_minimize(LinearExpr.zero(), constraints, variables)
    return result.status is not LPStatus.INFEASIBLE


class _Simplex:
    """Two-phase tableau simplex over exact rationals.

    Free variables are split into a difference of two non-negative variables.
    Constraints are converted to equalities with slack variables; artificial
    variables are added for phase 1.
    """

    def __init__(
        self,
        objective: LinearExpr,
        constraints: Sequence[Constraint],
        variables: Sequence[str] | None,
    ) -> None:
        names: list[str] = list(variables) if variables is not None else []
        seen = set(names)
        for source in [objective, *[c.expr for c in constraints]]:
            for name in sorted(source.variables()):
                if name not in seen:
                    names.append(name)
                    seen.add(name)
        self.var_names = names
        self.objective = objective
        self.constraints = list(constraints)

    # Each free variable x becomes x_pos - x_neg with both >= 0.
    # Column layout: [pos_0, neg_0, pos_1, neg_1, ..., slacks..., artificials...]

    def solve(self) -> LPResult:
        rows: list[list[Fraction]] = []
        rhs: list[Fraction] = []
        n_vars = len(self.var_names)
        n_split = 2 * n_vars

        row_specs: list[tuple[list[Fraction], Fraction, bool]] = []
        for constraint in self.constraints:
            coeffs = [constraint.expr.coefficient(v) for v in self.var_names]
            const = constraint.expr.constant
            if constraint.is_equality:
                # sum coeffs*x + const == 0  ->  sum coeffs*x == -const
                row_specs.append((coeffs, -const, True))
            else:
                # sum coeffs*x + const >= 0  ->  -sum coeffs*x <= const
                row_specs.append(([-c for c in coeffs], const, False))

        n_ineq = sum(1 for _, _, is_eq in row_specs if not is_eq)
        n_slack = n_ineq
        slack_index = 0
        for coeffs, bound, is_eq in row_specs:
            row = [Fraction(0)] * (n_split + n_slack)
            for j, coeff in enumerate(coeffs):
                row[2 * j] = coeff
                row[2 * j + 1] = -coeff
            if not is_eq:
                row[n_split + slack_index] = Fraction(1)
                slack_index += 1
            rows.append(row)
            rhs.append(bound)

        # Make all right-hand sides non-negative.
        for i in range(len(rows)):
            if rhs[i] < 0:
                rows[i] = [-v for v in rows[i]]
                rhs[i] = -rhs[i]

        n_total = n_split + n_slack
        n_rows = len(rows)
        # Add one artificial variable per row (simple and always correct).
        for i in range(n_rows):
            rows[i] = rows[i] + [
                Fraction(1) if j == i else Fraction(0) for j in range(n_rows)
            ]
        basis = [n_total + i for i in range(n_rows)]
        n_cols = n_total + n_rows

        tableau = [rows[i] + [rhs[i]] for i in range(n_rows)]

        # Phase 1: minimise the sum of artificial variables.
        phase1_costs = [Fraction(0)] * n_cols
        for j in range(n_total, n_cols):
            phase1_costs[j] = Fraction(1)
        status = self._optimize(tableau, basis, phase1_costs, n_cols)
        if status is LPStatus.UNBOUNDED:  # pragma: no cover - cannot happen
            return LPResult(LPStatus.INFEASIBLE)
        phase1_value = self._objective_value(tableau, basis, phase1_costs)
        if phase1_value != 0:
            return LPResult(LPStatus.INFEASIBLE)

        # Drive artificial variables out of the basis where possible.
        for i in range(n_rows):
            if basis[i] >= n_total:
                pivot_col = None
                for j in range(n_total):
                    if tableau[i][j] != 0:
                        pivot_col = j
                        break
                if pivot_col is not None:
                    self._pivot(tableau, basis, i, pivot_col)

        # Phase 2: original objective on the split variables.
        phase2_costs = [Fraction(0)] * n_cols
        for j, name in enumerate(self.var_names):
            coeff = self.objective.coefficient(name)
            phase2_costs[2 * j] = coeff
            phase2_costs[2 * j + 1] = -coeff
        # Forbid re-entry of artificial variables with a prohibitive cost of
        # "infinity": simply exclude their columns during phase 2 pivoting by
        # treating them as absent (cost zero but never eligible).
        status = self._optimize(
            tableau, basis, phase2_costs, n_total, blocked_from=n_total
        )
        if status is LPStatus.UNBOUNDED:
            return LPResult(LPStatus.UNBOUNDED)

        point: dict[str, Fraction] = {}
        values = [Fraction(0)] * n_cols
        for i, b in enumerate(basis):
            values[b] = tableau[i][-1]
        for j, name in enumerate(self.var_names):
            point[name] = values[2 * j] - values[2 * j + 1]
        value = self.objective.evaluate(point)
        return LPResult(LPStatus.OPTIMAL, value, point)

    # -- simplex machinery ------------------------------------------------------

    @staticmethod
    def _objective_value(
        tableau: list[list[Fraction]],
        basis: list[int],
        costs: list[Fraction],
    ) -> Fraction:
        total = Fraction(0)
        for i, b in enumerate(basis):
            total += costs[b] * tableau[i][-1]
        return total

    def _optimize(
        self,
        tableau: list[list[Fraction]],
        basis: list[int],
        costs: list[Fraction],
        n_eligible: int,
        blocked_from: int | None = None,
    ) -> LPStatus:
        n_rows = len(tableau)
        max_iterations = 10_000
        for _ in range(max_iterations):
            # Reduced costs.
            entering = None
            for j in range(n_eligible):
                if blocked_from is not None and j >= blocked_from:
                    continue
                if j in basis:
                    continue
                reduced = costs[j]
                for i in range(n_rows):
                    reduced -= costs[basis[i]] * tableau[i][j]
                if reduced < 0:
                    entering = j  # Bland's rule: first eligible index.
                    break
            if entering is None:
                return LPStatus.OPTIMAL
            # Ratio test.
            leaving = None
            best_ratio: Fraction | None = None
            for i in range(n_rows):
                coeff = tableau[i][entering]
                if coeff > 0:
                    ratio = tableau[i][-1] / coeff
                    if (
                        best_ratio is None
                        or ratio < best_ratio
                        or (ratio == best_ratio and basis[i] < basis[leaving])
                    ):
                        best_ratio = ratio
                        leaving = i
            if leaving is None:
                return LPStatus.UNBOUNDED
            self._pivot(tableau, basis, leaving, entering)
        raise RuntimeError("simplex did not converge (cycling suspected)")

    @staticmethod
    def _pivot(
        tableau: list[list[Fraction]],
        basis: list[int],
        row: int,
        col: int,
    ) -> None:
        pivot_value = tableau[row][col]
        tableau[row] = [v / pivot_value for v in tableau[row]]
        for i in range(len(tableau)):
            if i != row and tableau[i][col] != 0:
                factor = tableau[i][col]
                tableau[i] = [
                    a - factor * b for a, b in zip(tableau[i], tableau[row])
                ]
        basis[row] = col
