"""Affine (linear + constant) expressions with exact rational coefficients.

The hexagonal tile construction of the paper manipulates constraints whose
coefficients are rational numbers (the slopes ``δ0`` and ``δ1`` of the
dependence cone).  Using :class:`fractions.Fraction` everywhere keeps the
constructed schedules exact; floating point error here would silently produce
illegal schedules.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache
from collections.abc import Iterable, Mapping

Rational = int | Fraction


@lru_cache(maxsize=512)
def _int_fraction(value: int) -> Fraction:
    return Fraction(value)


def _as_fraction(value: Rational) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return _int_fraction(value)
    raise TypeError(f"expected int or Fraction, got {type(value).__name__}")


class LinearExpr:
    """An affine expression ``sum_i c_i * x_i + constant``.

    Coefficients are stored sparsely in a ``{name: Fraction}`` mapping; the
    expression is immutable and hashable so it can be used in sets and as
    dictionary keys.
    """

    __slots__ = ("_coeffs", "_constant", "_hash", "_scaled")

    def __init__(
        self,
        coeffs: Mapping[str, Rational] | None = None,
        constant: Rational = 0,
    ) -> None:
        cleaned: dict[str, Fraction] = {}
        if coeffs:
            for name, value in coeffs.items():
                frac = _as_fraction(value)
                if frac != 0:
                    cleaned[name] = frac
        self._coeffs: dict[str, Fraction] = cleaned
        self._constant: Fraction = _as_fraction(constant)
        self._hash: int | None = None
        self._scaled: tuple[tuple[tuple[str, int], ...], int] | None = None

    # -- constructors ------------------------------------------------------

    @staticmethod
    def var(name: str, coefficient: Rational = 1) -> "LinearExpr":
        """The expression ``coefficient * name``."""
        return LinearExpr({name: coefficient})

    @staticmethod
    def const(value: Rational) -> "LinearExpr":
        """A constant expression."""
        return LinearExpr({}, value)

    @staticmethod
    def zero() -> "LinearExpr":
        return LinearExpr({}, 0)

    # -- accessors ----------------------------------------------------------

    @property
    def coeffs(self) -> dict[str, Fraction]:
        """Sparse coefficient mapping (zero coefficients are omitted)."""
        return dict(self._coeffs)

    @property
    def constant(self) -> Fraction:
        return self._constant

    def coefficient(self, name: str) -> Fraction:
        """Coefficient of variable ``name`` (zero if absent)."""
        return self._coeffs.get(name, Fraction(0))

    def variables(self) -> set[str]:
        """Names of variables with a non-zero coefficient."""
        return set(self._coeffs)

    def is_constant(self) -> bool:
        return not self._coeffs

    def is_zero(self) -> bool:
        return not self._coeffs and self._constant == 0

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other: "LinearExpr | Rational") -> "LinearExpr":
        other_expr = _coerce(other)
        coeffs = dict(self._coeffs)
        for name, value in other_expr._coeffs.items():
            coeffs[name] = coeffs.get(name, Fraction(0)) + value
        return LinearExpr(coeffs, self._constant + other_expr._constant)

    __radd__ = __add__

    def __neg__(self) -> "LinearExpr":
        return LinearExpr(
            {name: -value for name, value in self._coeffs.items()},
            -self._constant,
        )

    def __sub__(self, other: "LinearExpr | Rational") -> "LinearExpr":
        return self + (-_coerce(other))

    def __rsub__(self, other: "LinearExpr | Rational") -> "LinearExpr":
        return _coerce(other) - self

    def __mul__(self, scalar: Rational) -> "LinearExpr":
        factor = _as_fraction(scalar)
        return LinearExpr(
            {name: value * factor for name, value in self._coeffs.items()},
            self._constant * factor,
        )

    __rmul__ = __mul__

    def __truediv__(self, scalar: Rational) -> "LinearExpr":
        factor = _as_fraction(scalar)
        if factor == 0:
            raise ZeroDivisionError("division of LinearExpr by zero")
        return self * (Fraction(1) / factor)

    # -- evaluation and substitution -----------------------------------------

    def evaluate(self, env: Mapping[str, Rational]) -> Fraction:
        """Evaluate the expression in an environment mapping names to values."""
        total = self._constant
        for name, coeff in self._coeffs.items():
            if name not in env:
                raise KeyError(f"no value for variable {name!r}")
            total += coeff * _as_fraction(env[name])
        return total

    def scaled_integer_form(self) -> tuple[tuple[tuple[str, int], ...], int]:
        """Integer coefficients of ``self * denominator_lcm()``, cached.

        The scale factor is strictly positive, so the sign of the scaled
        value at any point equals the sign of the exact rational value; this
        is the basis of the integer fast path used for constraint checks.
        """
        cached = self._scaled
        if cached is None:
            lcm = self.denominator_lcm()
            cached = (
                tuple((name, int(value * lcm)) for name, value in self._coeffs.items()),
                int(self._constant * lcm),
            )
            self._scaled = cached
        return cached

    def evaluate_scaled(self, env: Mapping[str, Rational]) -> Rational:
        """Evaluate ``self * denominator_lcm()`` — same sign, integer math.

        With integer-valued environments (the common case: membership tests
        on integer points) this performs pure ``int`` arithmetic, avoiding
        :class:`~fractions.Fraction` entirely.
        """
        coeffs, total = self.scaled_integer_form()
        for name, coeff in coeffs:
            if name not in env:
                raise KeyError(f"no value for variable {name!r}")
            total = total + coeff * env[name]
        return total

    def substitute(self, bindings: Mapping[str, "LinearExpr | Rational"]) -> "LinearExpr":
        """Substitute variables by affine expressions (or constants)."""
        result = LinearExpr.const(self._constant)
        for name, coeff in self._coeffs.items():
            if name in bindings:
                result = result + _coerce(bindings[name]) * coeff
            else:
                result = result + LinearExpr.var(name, coeff)
        return result

    def rename(self, mapping: Mapping[str, str]) -> "LinearExpr":
        """Rename variables according to ``mapping`` (unknown names kept)."""
        return LinearExpr(
            {mapping.get(name, name): value for name, value in self._coeffs.items()},
            self._constant,
        )

    # -- normalisation --------------------------------------------------------

    def denominator_lcm(self) -> int:
        """Least common multiple of all coefficient denominators."""
        lcm = self._constant.denominator
        for value in self._coeffs.values():
            lcm = _lcm(lcm, value.denominator)
        return lcm

    def scaled_to_integers(self) -> "LinearExpr":
        """Return an equivalent-direction expression with integer coefficients."""
        return self * self.denominator_lcm()

    def integer_coeffs(self, order: Iterable[str]) -> tuple[list[int], int]:
        """Return integer coefficients in the given dimension order.

        The expression is scaled by the LCM of denominators; the returned pair
        is ``(coefficients, constant)``.
        """
        scaled = self.scaled_to_integers()
        coeffs = [int(scaled.coefficient(name)) for name in order]
        return coeffs, int(scaled.constant)

    # -- dunder plumbing -------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinearExpr):
            return NotImplemented
        return self._coeffs == other._coeffs and self._constant == other._constant

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (tuple(sorted(self._coeffs.items())), self._constant)
            )
        return self._hash

    def __repr__(self) -> str:
        return f"LinearExpr({self})"

    def __str__(self) -> str:
        parts: list[str] = []
        for name in sorted(self._coeffs):
            coeff = self._coeffs[name]
            if coeff == 1:
                parts.append(f"+ {name}")
            elif coeff == -1:
                parts.append(f"- {name}")
            elif coeff < 0:
                parts.append(f"- {-coeff}*{name}")
            else:
                parts.append(f"+ {coeff}*{name}")
        if self._constant != 0 or not parts:
            if self._constant < 0:
                parts.append(f"- {-self._constant}")
            else:
                parts.append(f"+ {self._constant}")
        text = " ".join(parts)
        if text.startswith("+ "):
            text = text[2:]
        return text


def _coerce(value: "LinearExpr | Rational") -> LinearExpr:
    if isinstance(value, LinearExpr):
        return value
    return LinearExpr.const(value)


def _lcm(a: int, b: int) -> int:
    from math import gcd

    return a // gcd(a, b) * b
