"""Polyhedral substrate: exact rational affine sets, maps and LP.

This subpackage plays the role that isl [Verdoolaege 2010] plays for the
original implementation.  It provides only what the hybrid tiling algorithm
needs, but provides it exactly (all arithmetic uses :class:`fractions.Fraction`
so no floating point rounding can corrupt a schedule):

* :class:`Space` — named integer dimensions.
* :class:`LinearExpr` — affine expressions with rational coefficients.
* :class:`Constraint` — affine equalities and inequalities.
* :class:`BasicSet` / :class:`ISet` — (unions of) convex integer sets with
  membership tests, intersection, subtraction, projection, bounding boxes,
  enumeration and exact point counting.
* :class:`AffineMap` — affine maps used for access relations and schedules.
* :class:`QExpr` and friends — quasi-affine expression trees (floor-division
  and modulo) used to express tile schedules and to emit C/CUDA code.
* :func:`lp_minimize` / :func:`lp_maximize` — exact rational simplex.
"""

from repro.polyhedral.space import Space
from repro.polyhedral.affine import LinearExpr
from repro.polyhedral.constraint import Constraint
from repro.polyhedral.basic_set import BasicSet
from repro.polyhedral.iset import ISet
from repro.polyhedral.imap import AffineMap
from repro.polyhedral.lp import LPResult, LPStatus, lp_maximize, lp_minimize
from repro.polyhedral.quasi_affine import (
    QAdd,
    QConst,
    QExpr,
    QFloorDiv,
    QMod,
    QMul,
    QSub,
    QVar,
    qconst,
    qvar,
)

__all__ = [
    "Space",
    "LinearExpr",
    "Constraint",
    "BasicSet",
    "ISet",
    "AffineMap",
    "LPResult",
    "LPStatus",
    "lp_maximize",
    "lp_minimize",
    "QExpr",
    "QVar",
    "QConst",
    "QAdd",
    "QSub",
    "QMul",
    "QFloorDiv",
    "QMod",
    "qvar",
    "qconst",
]
