"""Quasi-affine expressions: affine arithmetic plus floor-division and modulo.

The hybrid schedule of the paper (equations (2)–(5) and (14)–(17), Figure 6)
uses integer division and modulo; those operations are not affine, so they are
represented here as small expression trees that can be

* evaluated exactly on integer points (used by the schedule engine, the
  validators and the functional GPU simulator), and
* pretty-printed as C/CUDA expressions (used by the code generator).

Rational coefficients are handled by scaling: ``floor((s + (n/d)*u) / w)`` is
emitted as ``floordiv(d*s + n*u, d*w)`` which is exact for integer inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from collections.abc import Mapping

Number = int | Fraction


def _coerce(value: "QExpr | int") -> "QExpr":
    """Wrap plain integers as constant nodes (used by the operator sugar)."""
    if isinstance(value, QExpr):
        return value
    return QConst(int(value))


class QExpr:
    """Base class of quasi-affine expression nodes."""

    def evaluate(self, env: Mapping[str, int]) -> int:
        raise NotImplementedError

    def to_c(self) -> str:
        raise NotImplementedError

    def variables(self) -> set[str]:
        raise NotImplementedError

    # Operator sugar -----------------------------------------------------------

    def __add__(self, other: "QExpr | int") -> "QExpr":
        return QAdd(self, _coerce(other))

    def __radd__(self, other: "QExpr | int") -> "QExpr":
        return QAdd(_coerce(other), self)

    def __sub__(self, other: "QExpr | int") -> "QExpr":
        return QSub(self, _coerce(other))

    def __rsub__(self, other: "QExpr | int") -> "QExpr":
        return QSub(_coerce(other), self)

    def __mul__(self, other: int) -> "QExpr":
        return QMul(self, int(other))

    __rmul__ = __mul__

    def __floordiv__(self, other: int) -> "QExpr":
        return QFloorDiv(self, int(other))

    def __mod__(self, other: int) -> "QExpr":
        return QMod(self, int(other))

    def __str__(self) -> str:
        return self.to_c()


@dataclass(frozen=True)
class QVar(QExpr):
    """A named integer variable."""

    name: str

    def evaluate(self, env: Mapping[str, int]) -> int:
        return int(env[self.name])

    def to_c(self) -> str:
        return self.name

    def variables(self) -> set[str]:
        return {self.name}


@dataclass(frozen=True)
class QConst(QExpr):
    """An integer constant."""

    value: int

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.value

    def to_c(self) -> str:
        return str(self.value) if self.value >= 0 else f"({self.value})"

    def variables(self) -> set[str]:
        return set()


@dataclass(frozen=True)
class QAdd(QExpr):
    lhs: QExpr
    rhs: QExpr

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.lhs.evaluate(env) + self.rhs.evaluate(env)

    def to_c(self) -> str:
        return f"({self.lhs.to_c()} + {self.rhs.to_c()})"

    def variables(self) -> set[str]:
        return self.lhs.variables() | self.rhs.variables()


@dataclass(frozen=True)
class QSub(QExpr):
    lhs: QExpr
    rhs: QExpr

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.lhs.evaluate(env) - self.rhs.evaluate(env)

    def to_c(self) -> str:
        return f"({self.lhs.to_c()} - {self.rhs.to_c()})"

    def variables(self) -> set[str]:
        return self.lhs.variables() | self.rhs.variables()


@dataclass(frozen=True)
class QMul(QExpr):
    """Multiplication by an integer constant."""

    operand: QExpr
    factor: int

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.operand.evaluate(env) * self.factor

    def to_c(self) -> str:
        return f"({self.factor} * {self.operand.to_c()})"

    def variables(self) -> set[str]:
        return self.operand.variables()


@dataclass(frozen=True)
class QFloorDiv(QExpr):
    """Floor division by a positive integer constant.

    Note that C's ``/`` truncates towards zero; the emitted C uses the
    ``floord`` helper macro (as PPCG does) so negative numerators round the
    same way as the Python evaluation.
    """

    operand: QExpr
    divisor: int

    def __post_init__(self) -> None:
        if self.divisor <= 0:
            raise ValueError("floor division requires a positive divisor")

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.operand.evaluate(env) // self.divisor

    def to_c(self) -> str:
        return f"floord({self.operand.to_c()}, {self.divisor})"

    def variables(self) -> set[str]:
        return self.operand.variables()


@dataclass(frozen=True)
class QMod(QExpr):
    """Mathematical modulo by a positive integer constant (result in [0, m))."""

    operand: QExpr
    modulus: int

    def __post_init__(self) -> None:
        if self.modulus <= 0:
            raise ValueError("modulo requires a positive modulus")

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.operand.evaluate(env) % self.modulus

    def to_c(self) -> str:
        # C's % follows the sign of the dividend; emit the wrap-around form.
        inner = self.operand.to_c()
        return f"((({inner}) % {self.modulus} + {self.modulus}) % {self.modulus})"

    def variables(self) -> set[str]:
        return self.operand.variables()


def qvar(name: str) -> QVar:
    """Shorthand constructor for a variable node."""
    return QVar(name)


def qconst(value: int) -> QConst:
    """Shorthand constructor for a constant node."""
    return QConst(int(value))


def affine_combination(
    terms: Mapping[str, Number], constant: Number = 0
) -> tuple[QExpr, int]:
    """Build a scaled integer expression from rational-coefficient terms.

    Returns ``(expr, scale)`` such that ``expr = scale * (sum terms + constant)``
    with all emitted coefficients integral.  Used to translate expressions such
    as ``s + δ·u`` (with rational ``δ``) into exact integer arithmetic.
    """
    fractions = {name: Fraction(value) for name, value in terms.items()}
    constant_fraction = Fraction(constant)
    scale = constant_fraction.denominator
    for value in fractions.values():
        scale = _lcm(scale, value.denominator)
    expr: QExpr = qconst(int(constant_fraction * scale))
    for name, value in fractions.items():
        coefficient = int(value * scale)
        if coefficient == 0:
            continue
        expr = expr + QMul(qvar(name), coefficient)
    return expr, scale


def floor_of_rational_affine(
    terms: Mapping[str, Number], constant: Number, divisor: Number
) -> QExpr:
    """Quasi-affine floor of ``(sum terms + constant) / divisor`` with rationals.

    The expression is scaled so the division is by a positive integer.
    """
    divisor_fraction = Fraction(divisor)
    if divisor_fraction <= 0:
        raise ValueError("divisor must be positive")
    numerator, scale = affine_combination(terms, constant)
    scaled_divisor = divisor_fraction * scale
    if scaled_divisor.denominator != 1:
        extra = scaled_divisor.denominator
        numerator = QMul(numerator, extra) if extra != 1 else numerator
        scaled_divisor = scaled_divisor * extra
    return QFloorDiv(numerator, int(scaled_divisor))


def mod_of_rational_affine(
    terms: Mapping[str, Number], constant: Number, modulus: Number
) -> QExpr:
    """Quasi-affine ``(sum terms + constant) mod modulus`` with rational terms.

    The result is returned scaled back down only when the scale is 1;
    otherwise the caller receives the scaled remainder, which is still a
    faithful intra-tile coordinate (it preserves ordering and uniqueness).
    """
    modulus_fraction = Fraction(modulus)
    if modulus_fraction <= 0:
        raise ValueError("modulus must be positive")
    numerator, scale = affine_combination(terms, constant)
    scaled_modulus = modulus_fraction * scale
    if scaled_modulus.denominator != 1:
        extra = scaled_modulus.denominator
        numerator = QMul(numerator, extra)
        scaled_modulus = scaled_modulus * extra
    return QMod(numerator, int(scaled_modulus))


def _lcm(a: int, b: int) -> int:
    from math import gcd

    return a // gcd(a, b) * b
