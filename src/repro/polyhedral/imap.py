"""Affine maps between named spaces.

An :class:`AffineMap` maps points of a domain space to points of a range
space, each output coordinate being an affine expression of the input
coordinates.  Access relations (statement instance -> array element) and the
initial schedules of Section 3.2 of the paper are affine maps; the final
hybrid schedule additionally needs floor-division and modulo and is therefore
expressed with :mod:`repro.polyhedral.quasi_affine` expressions instead.
"""

from __future__ import annotations

from fractions import Fraction
from collections.abc import Mapping, Sequence

from repro.polyhedral.affine import LinearExpr, Rational
from repro.polyhedral.basic_set import BasicSet
from repro.polyhedral.constraint import Constraint
from repro.polyhedral.space import Space


class AffineMap:
    """An affine map ``domain_space -> range_space``.

    Parameters
    ----------
    domain_space:
        Space of the inputs.
    range_space:
        Space of the outputs.
    outputs:
        One affine expression (over the domain dims) per output dimension,
        in range-space order.
    """

    def __init__(
        self,
        domain_space: Space,
        range_space: Space,
        outputs: Sequence[LinearExpr],
    ) -> None:
        if len(outputs) != range_space.ndim:
            raise ValueError(
                f"expected {range_space.ndim} output expressions, got {len(outputs)}"
            )
        for expr in outputs:
            unknown = expr.variables() - set(domain_space.dims)
            if unknown:
                raise ValueError(
                    f"output expression {expr} uses unknown dims {sorted(unknown)}"
                )
        self.domain_space = domain_space
        self.range_space = range_space
        self.outputs = list(outputs)

    # -- constructors ---------------------------------------------------------------

    @staticmethod
    def identity(space: Space) -> "AffineMap":
        return AffineMap(space, space, [LinearExpr.var(d) for d in space.dims])

    @staticmethod
    def from_offsets(
        domain_space: Space,
        range_space: Space,
        source_dims: Sequence[str],
        offsets: Sequence[Rational],
    ) -> "AffineMap":
        """Map ``[..., d, ...] -> [d + offset, ...]`` (typical stencil access)."""
        if len(source_dims) != range_space.ndim or len(offsets) != range_space.ndim:
            raise ValueError("source_dims and offsets must match the range arity")
        outputs = [
            LinearExpr.var(dim) + offset for dim, offset in zip(source_dims, offsets)
        ]
        return AffineMap(domain_space, range_space, outputs)

    @staticmethod
    def from_dict(
        domain_space: Space,
        range_space: Space,
        exprs: Mapping[str, LinearExpr],
    ) -> "AffineMap":
        outputs = [exprs[d] for d in range_space.dims]
        return AffineMap(domain_space, range_space, outputs)

    # -- application ------------------------------------------------------------------

    def apply_point(
        self, point: Sequence[int] | Mapping[str, int]
    ) -> tuple[Fraction, ...]:
        """Image of a single point (may be fractional for rational maps)."""
        if isinstance(point, Mapping):
            env = {d: point[d] for d in self.domain_space.dims}
        else:
            env = self.domain_space.env(point)
        return tuple(expr.evaluate(env) for expr in self.outputs)

    def apply_int_point(
        self, point: Sequence[int] | Mapping[str, int]
    ) -> tuple[int, ...]:
        """Image of a point, asserting that every coordinate is integral."""
        image = self.apply_point(point)
        result = []
        for value in image:
            if value.denominator != 1:
                raise ValueError(f"non-integral image coordinate {value}")
            result.append(int(value))
        return tuple(result)

    def apply_set(self, domain: BasicSet) -> BasicSet:
        """Exact image of a set under an *invertible-by-substitution* map.

        The image is computed by introducing the output dims, adding the
        equalities ``out = expr(in)`` and projecting out the input dims.  The
        rational projection is exact for the unimodular-like maps used in this
        code base (offsets, skews and permutations).
        """
        combined_space = domain.space.concat(self.range_space)
        constraints = list(domain.constraints)
        for out_dim, expr in zip(self.range_space.dims, self.outputs):
            constraints.append(Constraint.eq(LinearExpr.var(out_dim), expr))
        combined = BasicSet(combined_space, constraints)
        projected = combined.project_out(domain.space.dims)
        return BasicSet(self.range_space, projected.constraints)

    def image_box(self, domain_box: Mapping[str, tuple[int, int]]) -> list[tuple[int, int]]:
        """Interval-arithmetic image of a box (used for footprint bounds)."""
        result: list[tuple[int, int]] = []
        for expr in self.outputs:
            low = expr.constant
            high = expr.constant
            for name, coeff in expr.coeffs.items():
                lo, hi = domain_box[name]
                if coeff >= 0:
                    low += coeff * lo
                    high += coeff * hi
                else:
                    low += coeff * hi
                    high += coeff * lo
            result.append((_floor(low), _ceil(high)))
        return result

    # -- composition --------------------------------------------------------------------

    def compose(self, inner: "AffineMap") -> "AffineMap":
        """Return ``self ∘ inner`` (apply ``inner`` first)."""
        if inner.range_space.dims != self.domain_space.dims:
            raise ValueError("range of inner map must match domain of outer map")
        bindings = dict(zip(self.domain_space.dims, inner.outputs))
        outputs = [expr.substitute(bindings) for expr in self.outputs]
        return AffineMap(inner.domain_space, self.range_space, outputs)

    def output_expr(self, dim: str) -> LinearExpr:
        """Expression computing the named output dimension."""
        return self.outputs[self.range_space.index(dim)]

    def __str__(self) -> str:
        outputs = ", ".join(str(e) for e in self.outputs)
        return f"{{ {self.domain_space} -> [{outputs}] }}"

    def __repr__(self) -> str:
        return f"AffineMap({self})"


def _floor(value: Fraction) -> int:
    return value.numerator // value.denominator


def _ceil(value: Fraction) -> int:
    return -((-value.numerator) // value.denominator)
