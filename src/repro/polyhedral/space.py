"""Named dimension spaces.

A :class:`Space` is an ordered tuple of dimension names.  Iteration domains,
schedules and access relations all live in some space; keeping the names
around (instead of bare indices) makes dependence analysis and code
generation much easier to read and to debug.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Sequence


@dataclass(frozen=True)
class Space:
    """An ordered, named, integer dimension space.

    Parameters
    ----------
    dims:
        The dimension names, in order.  Names must be unique.
    name:
        Optional label used in diagnostics (for example the statement name
        an iteration domain belongs to).
    """

    dims: tuple[str, ...]
    name: str = ""

    def __init__(self, dims: Iterable[str], name: str = "") -> None:
        dims_tuple = tuple(dims)
        if len(set(dims_tuple)) != len(dims_tuple):
            raise ValueError(f"duplicate dimension names in {dims_tuple!r}")
        object.__setattr__(self, "dims", dims_tuple)
        object.__setattr__(self, "name", name)

    # -- basic queries -----------------------------------------------------

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return len(self.dims)

    def __len__(self) -> int:
        return len(self.dims)

    def __iter__(self) -> Iterator[str]:
        return iter(self.dims)

    def __contains__(self, dim: str) -> bool:
        return dim in self.dims

    def index(self, dim: str) -> int:
        """Position of dimension ``dim``; raises ``ValueError`` if absent."""
        return self.dims.index(dim)

    # -- construction helpers ---------------------------------------------

    def renamed(self, name: str) -> "Space":
        """Return a copy of this space carrying a new label."""
        return Space(self.dims, name=name)

    def with_dims(self, dims: Sequence[str]) -> "Space":
        """Return a space with the given dims, keeping this space's label."""
        return Space(tuple(dims), name=self.name)

    def insert(self, position: int, dim: str) -> "Space":
        """Return a new space with ``dim`` inserted at ``position``."""
        if dim in self.dims:
            raise ValueError(f"dimension {dim!r} already present")
        new_dims = list(self.dims)
        new_dims.insert(position, dim)
        return Space(tuple(new_dims), name=self.name)

    def drop(self, dim: str) -> "Space":
        """Return a new space without dimension ``dim``."""
        if dim not in self.dims:
            raise ValueError(f"dimension {dim!r} not present")
        return Space(tuple(d for d in self.dims if d != dim), name=self.name)

    def concat(self, other: "Space") -> "Space":
        """Concatenate two spaces (dimension names must not clash)."""
        overlap = set(self.dims) & set(other.dims)
        if overlap:
            raise ValueError(f"dimension names clash: {sorted(overlap)}")
        return Space(self.dims + other.dims, name=self.name)

    def prefixed(self, prefix: str) -> "Space":
        """Return a space with every dimension name prefixed."""
        return Space(tuple(prefix + d for d in self.dims), name=self.name)

    # -- point helpers -----------------------------------------------------

    def point(self, **coords: int) -> tuple[int, ...]:
        """Build a point (tuple ordered like this space) from keyword coords."""
        missing = [d for d in self.dims if d not in coords]
        if missing:
            raise ValueError(f"missing coordinates for {missing}")
        extra = [k for k in coords if k not in self.dims]
        if extra:
            raise ValueError(f"unknown dimensions {extra}")
        return tuple(int(coords[d]) for d in self.dims)

    def env(self, point: Sequence[int]) -> dict[str, int]:
        """Turn an ordered point into a ``{dim_name: value}`` environment."""
        if len(point) != self.ndim:
            raise ValueError(
                f"point has {len(point)} coordinates, space has {self.ndim}"
            )
        return {d: int(v) for d, v in zip(self.dims, point)}

    def __str__(self) -> str:
        label = f"{self.name}" if self.name else ""
        return f"{label}[{', '.join(self.dims)}]"
