"""Affine constraints (equalities and inequalities).

A constraint is stored in the canonical isl form ``expr >= 0`` (inequality)
or ``expr == 0`` (equality).  Helper constructors build constraints from the
more natural comparison forms used throughout the tiling code.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from collections.abc import Mapping

from repro.polyhedral.affine import LinearExpr, Rational


@dataclass(frozen=True)
class Constraint:
    """An affine constraint ``expr >= 0`` or ``expr == 0``."""

    expr: LinearExpr
    is_equality: bool = False

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def ge(lhs: LinearExpr | Rational, rhs: LinearExpr | Rational) -> "Constraint":
        """Constraint ``lhs >= rhs``."""
        return Constraint(_coerce(lhs) - _coerce(rhs), is_equality=False)

    @staticmethod
    def le(lhs: LinearExpr | Rational, rhs: LinearExpr | Rational) -> "Constraint":
        """Constraint ``lhs <= rhs``."""
        return Constraint(_coerce(rhs) - _coerce(lhs), is_equality=False)

    @staticmethod
    def gt(lhs: LinearExpr | Rational, rhs: LinearExpr | Rational) -> "Constraint":
        """Strict ``lhs > rhs`` over the integers, i.e. ``lhs >= rhs + 1``.

        Strictness over the integers is only exact when the scaled constraint
        has integer coefficients; the constraint is normalised accordingly.
        """
        expr = _coerce(lhs) - _coerce(rhs)
        scaled = expr.scaled_to_integers()
        return Constraint(scaled - 1, is_equality=False)

    @staticmethod
    def lt(lhs: LinearExpr | Rational, rhs: LinearExpr | Rational) -> "Constraint":
        """Strict ``lhs < rhs`` over the integers."""
        return Constraint.gt(rhs, lhs)

    @staticmethod
    def eq(lhs: LinearExpr | Rational, rhs: LinearExpr | Rational) -> "Constraint":
        """Constraint ``lhs == rhs``."""
        return Constraint(_coerce(lhs) - _coerce(rhs), is_equality=True)

    # -- queries -------------------------------------------------------------

    def satisfied(self, env: Mapping[str, Rational]) -> bool:
        """Whether the constraint holds in the given environment."""
        # The scaled form has the same sign (and the same zero set) as the
        # exact rational value but evaluates with plain integer arithmetic.
        value = self.expr.evaluate_scaled(env)
        if self.is_equality:
            return value == 0
        return value >= 0

    def slack(self, env: Mapping[str, Rational]) -> Fraction:
        """Value of the constraint expression in the environment."""
        return self.expr.evaluate(env)

    def variables(self) -> set[str]:
        return self.expr.variables()

    def is_trivially_true(self) -> bool:
        """Constant constraint that always holds."""
        if not self.expr.is_constant():
            return False
        if self.is_equality:
            return self.expr.constant == 0
        return self.expr.constant >= 0

    def is_trivially_false(self) -> bool:
        """Constant constraint that never holds."""
        if not self.expr.is_constant():
            return False
        if self.is_equality:
            return self.expr.constant != 0
        return self.expr.constant < 0

    # -- transformation --------------------------------------------------------

    def normalized(self) -> "Constraint":
        """Scale to integer coefficients with gcd 1 (preserving the sense)."""
        scaled = self.expr.scaled_to_integers()
        values = [abs(int(v)) for v in scaled.coeffs.values()]
        values.append(abs(int(scaled.constant)))
        divisor = 0
        for value in values:
            divisor = _gcd(divisor, value)
        if divisor > 1:
            scaled = scaled * Fraction(1, divisor)
        return Constraint(scaled, self.is_equality)

    def negated(self) -> list["Constraint"]:
        """Integer negation of the constraint.

        ``expr >= 0`` becomes ``-expr - 1 >= 0`` (i.e. ``expr <= -1``); an
        equality becomes two disjuncts, which is why a list is returned.
        """
        scaled = self.expr.scaled_to_integers()
        if self.is_equality:
            return [
                Constraint(scaled * -1 - 1, is_equality=False),
                Constraint(scaled - 1, is_equality=False),
            ]
        return [Constraint(scaled * -1 - 1, is_equality=False)]

    def substitute(
        self, bindings: Mapping[str, LinearExpr | Rational]
    ) -> "Constraint":
        return Constraint(self.expr.substitute(bindings), self.is_equality)

    def rename(self, mapping: Mapping[str, str]) -> "Constraint":
        return Constraint(self.expr.rename(mapping), self.is_equality)

    def __str__(self) -> str:
        op = "=" if self.is_equality else ">="
        return f"{self.expr} {op} 0"


def _coerce(value: LinearExpr | Rational) -> LinearExpr:
    if isinstance(value, LinearExpr):
        return value
    return LinearExpr.const(value)


def _gcd(a: int, b: int) -> int:
    from math import gcd

    return gcd(a, b)
