"""Deterministic process-pool fan-out.

The engine intentionally exposes a single primitive — :func:`map_ordered` —
because every parallel consumer in this code base (bench suites, table
sweeps, validation batches) has the same shape: a list of independent job
descriptions, a pure worker function, and a report assembled in input order.

Determinism contract: ``map_ordered(fn, items, jobs=N)`` returns exactly
``[fn(item) for item in items]`` for every ``N``.  Parallelism changes wall
time, never results or ordering.  Workers are separate processes; they share
work products through the on-disk artefact cache rather than through memory.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

_Item = TypeVar("_Item")
_Result = TypeVar("_Result")


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` argument: ``None``/``0`` mean "all cores"."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def map_ordered(
    function: Callable[[_Item], _Result],
    items: Iterable[_Item],
    jobs: int | None = 1,
) -> list[_Result]:
    """Apply ``function`` to every item, results in input order.

    ``jobs=1`` (the default) runs serially in-process — no pickling, no
    subprocess, identical semantics.  ``jobs>1`` fans out over a process
    pool; ``function`` and the items must be picklable.  ``jobs=None`` or
    ``0`` uses every core.
    """
    materialised: Sequence[_Item] = list(items)
    effective = resolve_jobs(jobs)
    if effective <= 1 or len(materialised) <= 1:
        return [function(item) for item in materialised]
    workers = min(effective, len(materialised))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        # Executor.map preserves submission order regardless of completion
        # order, which is the whole determinism story.
        return list(pool.map(function, materialised))
