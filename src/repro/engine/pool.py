"""Deterministic process-pool fan-out.

The engine intentionally exposes a single primitive — :func:`map_ordered` —
because every parallel consumer in this code base (bench suites, table
sweeps, validation batches, tuning sweeps) has the same shape: a list of
independent job descriptions, a pure worker function, and a report assembled
in input order.

Determinism contract: ``map_ordered(fn, items, jobs=N)`` returns exactly
``[fn(item) for item in items]`` for every ``N``.  Parallelism changes wall
time, never results or ordering.  Workers are separate processes; they share
work products through the on-disk artefact cache rather than through memory.

Telemetry: when a trace is being recorded (:func:`repro.obs.current` is
enabled), each parallel item is shipped with a :class:`~repro.obs.TraceContext`
and executed in the worker under a fresh recorder rooted at an
``engine.worker`` span.  The worker's completed spans (carrying its real
pid/tid) and its metrics snapshot ride back with the result and are stitched
into the parent trace/registry — so a fanned-out run produces one coherent
trace with per-process tracks.  With telemetry disabled (the default), the
fan-out path is byte-for-byte the old one: no wrapping, no extra pickling.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from collections.abc import Callable, Iterable, Sequence
from typing import Any, TypeVar

from repro import obs

_Item = TypeVar("_Item")
_Result = TypeVar("_Result")


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` argument: ``None``/``0`` mean "all cores"."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


@dataclass(frozen=True)
class _TracedTask:
    """One parallel item plus the trace context it should record under."""

    function: Callable[[Any], Any]
    item: Any
    index: int
    context: obs.TraceContext


@dataclass(frozen=True)
class _TracedOutcome:
    """A worker's result plus the telemetry it produced while computing it."""

    result: Any
    spans: list
    metrics: dict
    events: tuple = ()  # the worker's event-log tail (obs.log.Event items)


def _run_traced(task: _TracedTask) -> _TracedOutcome:
    """Execute one item in a worker under a fresh, linked telemetry.

    Runs in the worker process: the spans recorded here carry the worker's
    pid/tid, and the root ``engine.worker`` span is parented on the parent
    process's fan-out span so the subtree stitches into one trace.  The
    worker's event tail rides back too, and a worker that raises writes its
    own crash report (the parent process never sees this worker's state).
    """
    telemetry = obs.Telemetry()
    try:
        with obs.use(telemetry), telemetry.recorder.root_span(
            "engine.worker", context=task.context, item=task.index
        ):
            result = task.function(task.item)
    except Exception as error:
        # Deeper layers (Session.run) may have written a report already;
        # don't produce a second one for the same crash.
        if not getattr(error, "crash_report_path", None):
            obs.log.attach_crash_report(
                error,
                obs.write_crash_report(
                    error,
                    context={"operation": "engine.worker", "item": task.index},
                    telemetry=telemetry,
                ),
            )
        raise
    return _TracedOutcome(
        result=result,
        spans=telemetry.recorder.drain(),
        metrics=telemetry.metrics.snapshot(),
        events=tuple(telemetry.events.tail()),
    )


def map_ordered(
    function: Callable[[_Item], _Result],
    items: Iterable[_Item],
    jobs: int | None = 1,
) -> list[_Result]:
    """Apply ``function`` to every item, results in input order.

    ``jobs=1`` (the default) runs serially in-process — no pickling, no
    subprocess, identical semantics.  ``jobs>1`` fans out over a process
    pool; ``function`` and the items must be picklable.  ``jobs=None`` or
    ``0`` uses every core.
    """
    materialised: Sequence[_Item] = list(items)
    effective = resolve_jobs(jobs)
    telemetry = obs.current()
    if effective <= 1 or len(materialised) <= 1:
        if not telemetry.enabled:
            return [function(item) for item in materialised]
        results: list[_Result] = []
        with obs.span("engine.map_ordered", jobs=1, items=len(materialised)):
            for index, item in enumerate(materialised):
                with obs.span("engine.item", item=index):
                    results.append(function(item))
        return results
    workers = min(effective, len(materialised))
    if not telemetry.enabled:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # Executor.map preserves submission order regardless of
            # completion order, which is the whole determinism story.
            return list(pool.map(function, materialised))
    with obs.span(
        "engine.map_ordered", jobs=workers, items=len(materialised)
    ) as fan_span:
        context = telemetry.recorder.export_context()
        tasks = [
            _TracedTask(function=function, item=item, index=index, context=context)
            for index, item in enumerate(materialised)
        ]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(pool.map(_run_traced, tasks))
    results = []
    for outcome in outcomes:
        results.append(outcome.result)
        # Worker roots carry parent_id from the exported context already;
        # adopt() re-parents only spans that lost their root (none here).
        telemetry.recorder.adopt(outcome.spans, parent_id=fan_span.span_id)
        telemetry.metrics.merge(outcome.metrics)
        telemetry.events.extend(outcome.events)
    return results
