"""The parallel execution engine.

A thin, deterministic process-pool layer used by the bench harness, the
experiment drivers and the CLI to fan compile/validate/simulate jobs and the
Table 1–5 stencil×tile-size sweeps across cores.  Results always come back
in submission order, so ``--jobs N`` output is identical to ``--jobs 1``
output; workers share compiled artefacts through the on-disk cache
(:mod:`repro.cache`).
"""

from repro.engine.pool import map_ordered, resolve_jobs

__all__ = ["map_ordered", "resolve_jobs"]
