"""Pseudo-PTX emission for the unrolled core computation (Figure 2).

Figure 2 of the paper shows the PTX of one point of the tuned Jacobi 2D core:
three shared loads, five arithmetic instructions and one shared store, with
two of the five operands reused from registers of the previously unrolled
point.  :func:`emit_core_ptx` regenerates an equivalent instruction sequence
for any stencil from the register-reuse analysis of
:mod:`repro.codegen.kernel_ir`, so the benchmark for Figure 2 can check the
instruction mix (loads / stores / arithmetic) rather than exact register
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codegen.kernel_ir import analyze_core_loop
from repro.model.expr import BinOp, Call, Constant, FieldRead, walk
from repro.model.program import StencilProgram, StencilStatement


@dataclass(frozen=True)
class PtxSummary:
    """Instruction mix of the emitted pseudo-PTX block."""

    shared_loads: int
    shared_stores: int
    arithmetic: int
    registers_reused: int
    text: str

    def __str__(self) -> str:
        return (
            f"PtxSummary(loads={self.shared_loads}, stores={self.shared_stores}, "
            f"arithmetic={self.arithmetic}, reused={self.registers_reused})"
        )


def emit_core_ptx(program: StencilProgram, statement_name: str | None = None) -> PtxSummary:
    """Emit pseudo-PTX for one unrolled point of a statement's core loop."""
    statement = (
        program.statement(statement_name)
        if statement_name is not None
        else program.statements[0]
    )
    profile = next(
        p
        for p in analyze_core_loop(program, unroll=True)
        if p.statement == statement.name
    )

    lines: list[str] = []
    register = 360
    address = 10
    loaded: dict[FieldRead, str] = {}
    reused_reads = _reused_reads(statement)

    # Reused operands are assumed to already live in registers (they were
    # loaded by the previously unrolled point).
    for index, read in enumerate(reused_reads):
        loaded[read] = f"%f{340 + index}"

    arithmetic = 0
    shared_loads = 0
    accumulator: str | None = None
    for read in statement.unique_reads:
        if read in loaded:
            operand = loaded[read]
        else:
            register += 1
            operand = f"%f{register}"
            offset = 7648 + 4 * (sum(read.offsets) + 128 * read.offsets[0])
            lines.append(f"ld.shared.f32 {operand} , [%rd{address} +{offset}];")
            loaded[read] = operand
            shared_loads += 1
        if accumulator is None:
            accumulator = operand
            continue
        register += 1
        result = f"%f{register}"
        lines.append(f"add.f32 {result} , {accumulator} , {operand};")
        accumulator = result
        arithmetic += 1

    # Apply the multiplicative coefficients / intrinsic calls of the body.
    for node in walk(statement.expr):
        if isinstance(node, BinOp) and node.op == "*" and _has_constant_operand(node):
            register += 1
            result = f"%f{register}"
            lines.append(f"mul.f32 {result} , {accumulator} , 0f3E4CCCCD;")
            accumulator = result
            arithmetic += 1
            break
    for node in walk(statement.expr):
        if isinstance(node, Call):
            register += 1
            result = f"%f{register}"
            lines.append(f"sqrt.approx.f32 {result} , {accumulator};")
            accumulator = result
            arithmetic += 1

    lines.append(f"st.shared.f32 [%rd{address} +1624] , {accumulator};")

    return PtxSummary(
        shared_loads=shared_loads,
        shared_stores=1,
        arithmetic=arithmetic,
        registers_reused=profile.register_reused,
        text="\n".join(lines),
    )


def _reused_reads(statement: StencilStatement) -> list[FieldRead]:
    """Reads whose value is still in a register from the previous unrolled point."""
    reads = {read.offsets: read for read in statement.unique_reads}
    reused = []
    for offsets, read in reads.items():
        shifted = (*offsets[:-1], offsets[-1] - 1)
        if shifted in reads:
            reused.append(read)
    return reused


def _has_constant_operand(node: BinOp) -> bool:
    return isinstance(node.lhs, Constant) or isinstance(node.rhs, Constant)
