"""Thread-level instruction mix of the core computation (Sections 4.3.1/4.3.2).

The paper unrolls the point loops of each full tile into straight-line code
and reuses values that stay "in flight" in registers across neighbouring
unrolled points (Figure 2: the Jacobi 2D core performs only 3 shared loads and
1 shared store for 5 compute instructions because 2 of the 5 operands are
reused from the previous point).

:func:`analyze_core_loop` reproduces that analysis: it computes, per stencil
point of the unrolled inner loop,

* how many shared-memory loads remain after register reuse along the unrolled
  (innermost) dimension,
* how many arithmetic instructions the body needs, and
* how many address/control instructions the surrounding code costs with and
  without unrolling / full-partial separation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.program import StencilProgram, StencilStatement


@dataclass(frozen=True)
class CoreLoopProfile:
    """Per-stencil-point instruction mix of the generated core loop."""

    statement: str
    flops: int
    loads_total: int
    loads_after_reuse: int
    register_reused: int
    shared_stores: int
    address_instructions: float
    control_instructions: float

    @property
    def instructions_per_point(self) -> float:
        """All instructions issued per stencil point (loads, flops, overhead)."""
        return (
            self.flops
            + self.loads_after_reuse
            + self.shared_stores
            + self.address_instructions
            + self.control_instructions
        )

    def __str__(self) -> str:
        return (
            f"{self.statement}: {self.loads_after_reuse} loads "
            f"({self.register_reused} reused), {self.flops} flops, "
            f"{self.shared_stores} store, "
            f"{self.instructions_per_point:.1f} instr/point"
        )


def register_reuse_count(statement: StencilStatement) -> int:
    """Operands of one point already held in registers from the previous point.

    When the innermost loop is unrolled, the value read at offset ``o`` by
    point ``j+1`` is the value read at offset ``o + e_inner`` by point ``j``
    (``e_inner`` the innermost unit vector); if that offset is also in the
    read set, the value is still in a register and needs no load.
    """
    reads = {read.offsets for read in statement.unique_reads}
    reused = 0
    for offsets in reads:
        shifted = (*offsets[:-1], offsets[-1] - 1)
        if shifted in reads:
            reused += 1
    return reused


def analyze_core_loop(
    program: StencilProgram,
    unroll: bool = True,
    separate_full_partial: bool = True,
    use_shared_memory: bool = True,
) -> list[CoreLoopProfile]:
    """Instruction-mix analysis of the core computation of every statement."""
    profiles = []
    for statement in program.statements:
        loads_total = statement.loads
        reused = register_reuse_count(statement) if unroll else 0
        loads_after_reuse = loads_total - reused

        if unroll:
            # Straight-line code with constant offsets: the compiler folds the
            # offsets into the load instructions, leaving a small residue of
            # pointer bumps amortised over the unrolled body.
            address = 0.5 * loads_after_reuse
        else:
            # Rolled loops recompute a multi-dimensional address per access.
            address = 2.0 * loads_total + 2.0

        if separate_full_partial and unroll:
            # Full tiles execute without bounds checks or divergence.
            control = 1.0
        elif separate_full_partial:
            control = 3.0
        else:
            # Generic code guards every access against the domain boundary.
            control = 2.0 + 1.0 * loads_total

        if not use_shared_memory:
            # Global loads carry longer address computations (array descriptors).
            address += 1.0 * loads_after_reuse

        profiles.append(
            CoreLoopProfile(
                statement=statement.name,
                flops=statement.flops,
                loads_total=loads_total,
                loads_after_reuse=loads_after_reuse,
                register_reused=reused,
                shared_stores=1,
                address_instructions=address,
                control_instructions=control,
            )
        )
    return profiles


def average_instructions_per_point(profiles: list[CoreLoopProfile]) -> float:
    """Average instruction count per stencil point across statements."""
    if not profiles:
        return 0.0
    return sum(p.instructions_per_point for p in profiles) / len(profiles)


def average_loads_after_reuse(profiles: list[CoreLoopProfile]) -> float:
    """Average per-point shared loads after register reuse."""
    if not profiles:
        return 0.0
    return sum(p.loads_after_reuse for p in profiles) / len(profiles)
