"""CUDA code generation for hybrid-tiled stencils (Section 4 of the paper).

* :mod:`repro.codegen.shared_mem` — shared-memory planning: per-field
  footprint boxes, copy-in/copy-out strategy, inter-tile reuse and alignment
  (Sections 4.2–4.2.3);
* :mod:`repro.codegen.kernel_ir` — the thread-level instruction mix of the
  core computation, including the register-reuse analysis that the unrolling
  of Section 4.3.2 enables;
* :mod:`repro.codegen.cuda` — emission of the host code and the two
  per-phase CUDA kernels (Section 4.1);
* :mod:`repro.codegen.ptx` — a pseudo-PTX rendering of the unrolled core
  computation (the paper's Figure 2);
* :mod:`repro.codegen.analysis` — the analytic execution profiler that turns
  a compiled program into the performance counters of Table 5.
"""

from repro.codegen.shared_mem import FieldFootprint, SharedMemoryPlan, plan_shared_memory
from repro.codegen.kernel_ir import CoreLoopProfile, analyze_core_loop
from repro.codegen.cuda import CudaCodeGenerator
from repro.codegen.ptx import emit_core_ptx
from repro.codegen.analysis import AnalyticProfiler, ExecutionEstimate

__all__ = [
    "FieldFootprint",
    "SharedMemoryPlan",
    "plan_shared_memory",
    "CoreLoopProfile",
    "analyze_core_loop",
    "CudaCodeGenerator",
    "emit_core_ptx",
    "AnalyticProfiler",
    "ExecutionEstimate",
]
