"""Shared-memory planning (Sections 4.2, 4.2.1, 4.2.2 and 4.2.3 of the paper).

For every field read inside a tile, the plan records the smallest rectangular
box (in the field's data space, relative to the tile origin) that covers all
accesses of a full tile — this is the PPCG allocation strategy the paper
builds on.  On top of the box the plan captures the paper's refinements:

* **interleaved copy-out** — results are stored to global memory as soon as
  they are produced instead of in a separate phase (4.2.1);
* **inter-tile reuse** — values already staged by the previous tile along the
  innermost (sequentially executed) classical dimension are moved inside
  shared memory instead of being reloaded (4.2.2); the *static* variant keeps
  each global element at a fixed shared location (no internal copy, but
  bank-conflict-prone accesses), the *dynamic* variant relocates values
  between tiles (an extra internal copy, conflict-free accesses);
* **aligned loads** — the tile origin along the innermost dimension is
  translated so every global load starts on a cache line boundary (4.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.program import StencilProgram
from repro.api.config import OptimizationConfig
from repro.tiling.hybrid import HybridTiling


@dataclass(frozen=True)
class FieldFootprint:
    """Per-field shared-memory box of one full tile.

    ``extents`` are the box sizes along each space dimension (including the
    read halo); ``versions`` is the number of distinct time versions of the
    field the tile reads from global memory (2 for an ordinary double-buffered
    Jacobi-style stencil, 1 for fields only read at the current time step).
    """

    field: str
    extents: tuple[int, ...]
    halo_lower: tuple[int, ...]
    halo_upper: tuple[int, ...]
    versions: int
    element_size: int = 4

    @property
    def elements(self) -> int:
        total = 1
        for extent in self.extents:
            total *= extent
        return total

    @property
    def bytes(self) -> int:
        return self.elements * self.element_size * self.versions

    @property
    def innermost_row_elements(self) -> int:
        return self.extents[-1]

    def __str__(self) -> str:
        dims = "x".join(str(e) for e in self.extents)
        return f"{self.field}[{dims}] x{self.versions} = {self.bytes} bytes"


@dataclass(frozen=True)
class SharedMemoryPlan:
    """Complete shared-memory strategy of one compilation."""

    footprints: tuple[FieldFootprint, ...]
    config: OptimizationConfig
    loads_per_tile: int
    reused_per_tile: int
    stores_per_tile: int
    shared_bytes_per_block: int
    aligned: bool
    internal_copy_elements: int

    @property
    def uses_shared_memory(self) -> bool:
        return self.config.use_shared_memory

    def footprint(self, field: str) -> FieldFootprint:
        for footprint in self.footprints:
            if footprint.field == field:
                return footprint
        raise KeyError(field)

    def describe(self) -> str:
        lines = [f"shared memory plan ({self.config.label}):"]
        for footprint in self.footprints:
            lines.append(f"  {footprint}")
        lines.append(f"  loads/tile   : {self.loads_per_tile}")
        lines.append(f"  reused/tile  : {self.reused_per_tile}")
        lines.append(f"  stores/tile  : {self.stores_per_tile}")
        lines.append(f"  shared bytes : {self.shared_bytes_per_block}")
        lines.append(f"  aligned      : {self.aligned}")
        return "\n".join(lines)


def plan_shared_memory(
    tiling: HybridTiling,
    config: OptimizationConfig,
    element_size: int = 4,
) -> SharedMemoryPlan:
    """Compute the shared-memory plan of a hybrid tiling under a configuration."""
    program = tiling.canonical.program
    extents = _tile_box_extents(tiling)
    radii = _field_radii(program)

    footprints: list[FieldFootprint] = []
    loads_per_tile = 0
    reused_per_tile = 0
    for field, (lower, upper) in radii.items():
        box = []
        for axis, extent in enumerate(extents):
            box.append(extent + (upper[axis] - lower[axis]))
        versions = _versions_read(program, field)
        footprint = FieldFootprint(
            field=field,
            extents=tuple(box),
            halo_lower=tuple(-l for l in lower),
            halo_upper=tuple(upper),
            versions=versions,
            element_size=element_size,
        )
        footprints.append(footprint)
        full_box = footprint.elements * versions
        if config.inter_tile_reuse != "none" and len(box) > 1:
            fresh_inner = tiling.sizes.widths[-1]
            fresh = full_box // box[-1] * min(fresh_inner, box[-1])
            loads_per_tile += fresh
            reused_per_tile += full_box - fresh
        else:
            loads_per_tile += full_box

    stores_per_tile = tiling.iterations_per_full_tile()
    # The shared allocation holds one box per field: the generated code
    # ping-pongs time steps within the same buffer (writing a point only after
    # all its readers at the previous time step inside the tile have run),
    # so the *allocation* does not scale with the number of time versions even
    # though the *loads* do.
    shared_bytes = (
        sum(f.elements * f.element_size for f in footprints)
        if config.use_shared_memory
        else 0
    )
    internal_copy = reused_per_tile if config.inter_tile_reuse == "dynamic" else 0

    return SharedMemoryPlan(
        footprints=tuple(footprints),
        config=config,
        loads_per_tile=loads_per_tile,
        reused_per_tile=reused_per_tile,
        stores_per_tile=stores_per_tile,
        shared_bytes_per_block=shared_bytes,
        aligned=config.align_loads,
        internal_copy_elements=internal_copy,
    )


# -- helpers --------------------------------------------------------------------------------


def _tile_box_extents(tiling: HybridTiling) -> list[int]:
    """Data-space extent of a full tile along each space dimension (no halo)."""
    (_, _), (b_min, b_max) = tiling.shape.bounding_box()
    extents = [b_max - b_min + 1]
    for index, classical in enumerate(tiling.classical, start=1):
        skew_span = int(classical.delta1 * (tiling.shape.time_period - 1))
        extents.append(classical.width + skew_span)
    return extents


def _field_radii(
    program: StencilProgram,
) -> dict[str, tuple[list[int], list[int]]]:
    """Per-field (lower, upper) read offsets across all statements."""
    radii: dict[str, tuple[list[int], list[int]]] = {}
    for statement in program.statements:
        for read in statement.reads:
            lower, upper = radii.setdefault(
                read.field, ([0] * program.ndim, [0] * program.ndim)
            )
            for axis, offset in enumerate(read.offsets):
                lower[axis] = min(lower[axis], offset)
                upper[axis] = max(upper[axis], offset)
    return radii


def _versions_read(program: StencilProgram, field: str) -> int:
    """Distinct time versions of ``field`` a tile reads from global memory."""
    max_offset = 0
    for statement in program.statements:
        for read in statement.reads:
            if read.field == field:
                max_offset = max(max_offset, read.time_offset)
    return max(1, max_offset + 1 if max_offset >= 1 else 1)
