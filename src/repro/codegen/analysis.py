"""Analytic execution profiling of hybrid-tiled programs.

This module turns a hybrid compilation (tiling + shared-memory plan +
optimisation configuration) into the performance counters of Table 5 and the
launch configuration the roofline model needs, for the full, paper-sized
problem instances.  Everything is *counted* from the tiling geometry, the
stencil's access pattern and the configuration — the same quantities a real
run would report through nvprof — rather than measured, which is the
substitution for the missing GPU hardware documented in DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.codegen.kernel_ir import (
    analyze_core_loop,
    average_instructions_per_point,
    average_loads_after_reuse,
)
from repro.codegen.shared_mem import SharedMemoryPlan
from repro.gpu.counters import PerformanceCounters
from repro.gpu.device import GPUDevice
from repro.gpu.memory import CoalescingModel, SharedMemoryModel
from repro.gpu.perf_model import LaunchConfiguration, PerformanceModel, PerformanceReport
from repro.api.config import OptimizationConfig
from repro.tiling.hybrid import HybridTiling


@dataclass(frozen=True)
class TileCounts:
    """How many tiles of each kind one full run executes."""

    time_tiles: int          # host-loop iterations (each launches two kernels)
    blocks_per_launch: int   # S0 tiles per kernel launch
    sequential_tiles: int    # product of the classical S1..Sn tile counts
    total_tiles: int         # overall number of (T, p, S0, ..., Sn) tiles

    def __str__(self) -> str:
        return (
            f"TileCounts(T={self.time_tiles}, blocks={self.blocks_per_launch}, "
            f"sequential={self.sequential_tiles}, total={self.total_tiles})"
        )


@dataclass(frozen=True)
class ExecutionEstimate:
    """Counters plus launch configuration for one compiled program."""

    counters: PerformanceCounters
    launch: LaunchConfiguration
    tile_counts: TileCounts

    def performance(self, device: GPUDevice) -> PerformanceReport:
        """Convenience wrapper running the roofline model."""
        return PerformanceModel(device).estimate(self.counters, self.launch)


class AnalyticProfiler:
    """Builds :class:`ExecutionEstimate` objects for hybrid compilations."""

    def __init__(
        self,
        tiling: HybridTiling,
        plan: SharedMemoryPlan,
        config: OptimizationConfig,
        device: GPUDevice,
    ) -> None:
        self.tiling = tiling
        self.plan = plan
        self.config = config
        self.device = device
        self.program = tiling.canonical.program
        self.coalescing = CoalescingModel(device)
        self.shared_model = SharedMemoryModel(device)

    # -- tile counts --------------------------------------------------------------------

    def count_tiles(self) -> TileCounts:
        tiling = self.tiling
        shape = tiling.shape
        program = self.program
        logical_extent = tiling.canonical.logical_time_extent
        time_tiles = math.ceil((logical_extent + shape.height + 1) / shape.time_period) + 1
        blocks = math.ceil((program.sizes[0] + shape.space_period) / shape.space_period)
        sequential = 1
        for classical, size in zip(tiling.classical, program.sizes[1:]):
            sequential *= math.ceil(size / classical.width) + 1
        total = 2 * time_tiles * blocks * sequential
        return TileCounts(
            time_tiles=time_tiles,
            blocks_per_launch=blocks,
            sequential_tiles=sequential,
            total_tiles=total,
        )

    # -- the profile -----------------------------------------------------------------------

    def estimate(self) -> ExecutionEstimate:
        program = self.program
        config = self.config
        plan = self.plan
        tiles = self.count_tiles()

        updates = float(program.stencil_updates())
        flops = float(program.flops_total())
        profiles = analyze_core_loop(
            program,
            unroll=config.unroll,
            separate_full_partial=config.separate_full_partial,
            use_shared_memory=config.use_shared_memory,
        )
        instructions_per_point = average_instructions_per_point(profiles)
        loads_after_reuse = average_loads_after_reuse(profiles)
        avg_reads_per_point = sum(s.loads for s in program.statements) / len(
            program.statements
        )

        counters = PerformanceCounters()
        counters.stencil_updates = updates
        counters.flops = flops
        counters.kernel_launches = 2.0 * tiles.time_tiles
        counters.barriers = float(tiles.total_tiles * self.tiling.shape.time_period)
        counters.host_device_bytes = 2.0 * program.data_bytes()

        if config.use_shared_memory:
            self._shared_memory_traffic(counters, tiles, updates, loads_after_reuse)
        else:
            self._global_only_traffic(counters, tiles, updates, avg_reads_per_point)

        # Stores to global memory: one per update, coalesced along rows.
        counters.gst_instructions = updates
        store_bytes = updates * 4.0
        counters.dram_write_transactions = store_bytes / self.device.dram_transaction_bytes

        # Instruction stream: core computation + staging + internal copies.
        # (The traffic models above may already have added load-issue or
        # bank-conflict replay costs, hence the accumulation.)
        counters.instructions += updates * instructions_per_point
        if config.use_shared_memory:
            staged = float(plan.loads_per_tile * tiles.total_tiles)
            counters.instructions += staged * 3.0
            if config.inter_tile_reuse == "dynamic":
                counters.instructions += float(
                    plan.internal_copy_elements * tiles.total_tiles
                ) * 2.0

        # A separate copy-out phase is divergent (the set of values to store is
        # not box shaped, Section 4.2.1), so only configurations that
        # interleave the copy-out keep the kernel divergence free.
        divergence_free = config.separate_full_partial and (
            config.interleave_copy_out or not config.use_shared_memory
        )
        launch = LaunchConfiguration(
            threads_per_block=self._threads_per_block(),
            blocks=tiles.blocks_per_launch,
            shared_bytes_per_block=plan.shared_bytes_per_block,
            unrolled=config.unroll,
            divergence_free=divergence_free,
            useful_fraction=1.0,
            overlap_stores=config.interleave_copy_out or not config.use_shared_memory,
        )
        return ExecutionEstimate(counters=counters, launch=launch, tile_counts=tiles)

    # -- traffic models ------------------------------------------------------------------------

    def _shared_memory_traffic(
        self,
        counters: PerformanceCounters,
        tiles: TileCounts,
        updates: float,
        loads_after_reuse: float,
    ) -> None:
        """Configurations (b)-(f): explicit staging through shared memory."""
        config = self.config
        plan = self.plan
        total_tiles = tiles.total_tiles

        loaded_elements = float(plan.loads_per_tile) * total_tiles
        counters.gld_instructions = loaded_elements
        counters.requested_global_bytes = loaded_elements * 4.0

        transferred = 0.0
        for footprint in plan.footprints:
            row_elements = footprint.innermost_row_elements
            if config.inter_tile_reuse != "none" and len(footprint.extents) > 1:
                row_elements = min(row_elements, self.tiling.sizes.widths[-1])
            rows_per_tile = (
                footprint.elements * footprint.versions / footprint.innermost_row_elements
            )
            row_bytes = row_elements * 4
            row_transactions = self.coalescing.row_transactions(
                row_bytes, aligned=config.align_loads
            )
            transferred += (
                rows_per_tile
                * row_transactions
                * self.device.dram_transaction_bytes
                * total_tiles
            )
        counters.transferred_global_bytes = transferred
        counters.dram_read_transactions = transferred / self.device.dram_transaction_bytes
        counters.l2_read_transactions = 0.8 * counters.dram_read_transactions

        # Shared memory traffic: the core loop's loads and stores, the copy-in
        # stores, and (dynamic reuse only) the internal relocation copies.
        warp = self.device.warp_size
        core_requests = updates * loads_after_reuse / warp
        replay = 1.0
        if config.inter_tile_reuse == "static":
            # The static global->shared mapping strides across banks
            # (Section 4.2.2 / Table 5 row (e)).  Replayed shared accesses also
            # occupy issue slots, which is what makes (e) lose to (f).
            replay = 2.0
            counters.instructions += (replay - 1.0) * updates * loads_after_reuse
        counters.shared_load_requests = core_requests
        counters.shared_load_transactions = core_requests * replay
        counters.shared_store_requests = (
            updates / warp + counters.gld_instructions / warp
        )
        if config.inter_tile_reuse == "dynamic":
            internal = float(plan.internal_copy_elements) * total_tiles / warp
            counters.shared_load_requests += internal
            counters.shared_load_transactions += internal
            counters.shared_store_requests += internal

    def _global_only_traffic(
        self,
        counters: PerformanceCounters,
        tiles: TileCounts,
        updates: float,
        reads_per_point: float,
    ) -> None:
        """Configuration (a): all operands fetched through the caches."""
        counters.gld_instructions = updates * reads_per_point
        counters.requested_global_bytes = counters.gld_instructions * 4.0

        # The hardware caches capture the intra-tile reuse, so the compulsory
        # DRAM traffic is roughly the tile footprint, as with explicit shared
        # memory, but fetched through unaligned, partially-used cache lines.
        transferred = 0.0
        for footprint in self.plan.footprints:
            rows_per_tile = (
                footprint.elements * footprint.versions / footprint.innermost_row_elements
            )
            row_bytes = footprint.innermost_row_elements * 4
            row_transactions = self.coalescing.row_transactions(row_bytes, aligned=False)
            transferred += (
                rows_per_tile
                * row_transactions
                * self.device.dram_transaction_bytes
                * tiles.total_tiles
            )
        counters.transferred_global_bytes = transferred
        counters.dram_read_transactions = transferred / self.device.dram_transaction_bytes

        # Every warp touches one L2 line per distinct row of its read set; the
        # L1 is too small for the tile footprint, so these land in L2.
        distinct_rows = self._distinct_read_rows()
        line_transactions = self.device.cache_line_bytes / self.device.dram_transaction_bytes
        counters.l2_read_transactions = (
            updates / self.device.warp_size * distinct_rows * line_transactions
        )
        counters.shared_load_requests = 0.0
        counters.shared_load_transactions = 0.0
        counters.shared_store_requests = 0.0

        # Cache-served operands cannot be batched the way a cooperative
        # shared-memory copy can: on Fermi the LSU sustains roughly one global
        # load per four ALU issue slots, so every global load instruction of
        # the compute loop occupies extra issue bandwidth.  This is the main
        # reason configuration (a) loses to the shared-memory configurations
        # even though its DRAM traffic is similar (Table 4/5 row (a)).
        counters.instructions += 3.0 * counters.gld_instructions

    def _distinct_read_rows(self) -> float:
        """Average number of distinct (non-innermost) rows read per point."""
        total = 0
        for statement in self.program.statements:
            rows = {read.offsets[:-1] for read in statement.unique_reads}
            total += len(rows)
        return total / len(self.program.statements)

    def _threads_per_block(self) -> int:
        """Thread-block size mirroring the paper's choices (e.g. 1x10x32)."""
        widths = self.tiling.sizes.widths
        if len(widths) == 1:
            return max(32, min(256, self.tiling.shape.max_width()))
        threads = max(32, min(64, _round_to_warp(widths[-1])))
        for width in widths[1:-1]:
            threads *= max(1, min(16, width))
        return min(threads, self.device.max_threads_per_block)


def _round_to_warp(value: int, warp: int = 32) -> int:
    if value <= warp:
        return warp
    return (value // warp) * warp
