"""Pluggable tuning objectives: how one candidate configuration is scored.

Every objective maps a candidate to a scalar **cost** (lower is better):

* ``model`` — the roofline time estimate of
  :class:`repro.gpu.perf_model.PerformanceModel` on the paper-scale problem
  (deterministic; what the CI ``tune-smoke`` gate uses);
* ``simulate`` — measured wall time of the batch functional simulator on a
  scaled-down instance of the program (an *empirical* objective; noisy, so
  it takes the best of ``repeats`` runs);
* ``counters`` — a counter-weighted traffic cost derived from the analytic
  execution counters (memory-system pressure per stencil update), cheaper
  than the full roofline conversion and independent of clock parameters.

Candidates are evaluated through a :class:`repro.api.Session` resuming from
the shared ``canonicalize`` artifact: the per-pass disk cache means the
parse/canonicalize prefix is computed once per sweep and every repeated
candidate costs almost nothing — which is what makes warm re-runs of a whole
sweep cheap.  :func:`evaluate_candidate` is a module-level function over a
picklable job description so :func:`repro.engine.map_ordered` can fan
evaluations across worker processes.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, replace
from collections.abc import Callable, Mapping
from typing import Any

from repro import obs
from repro.tuning.space import Candidate

#: Small-instance shapes used by the ``simulate`` objective, by dimension —
#: the same scale the bench simulate suite and the test suite run at.
SIMULATE_INSTANCES: dict[int, tuple[tuple[int, ...], int]] = {
    1: ((128,), 16),
    2: ((16, 16), 6),
    3: ((10, 10, 10), 4),
}

#: Weights of the ``counters`` objective, in relative cost per event.  DRAM
#: transactions dominate (Section 6.2's bound-by analysis), L2 hits are an
#: order of magnitude cheaper, shared-memory traffic and instruction issue
#: cost another order less.
COUNTER_WEIGHTS: Mapping[str, float] = {
    "dram_read_transactions": 1.0,
    "dram_write_transactions": 1.0,
    "l2_read_transactions": 0.1,
    "shared_load_transactions": 0.01,
    "shared_store_requests": 0.01,
    "instructions": 0.001,
}


@dataclass(frozen=True)
class EvaluationJob:
    """Everything one candidate evaluation needs (picklable for the engine)."""

    program: object  # StencilProgram — picklable expression trees
    candidate: Candidate
    objective: str
    device: object  # GPUDevice
    config: object | None  # OptimizationConfig
    cache_root: str | None  # DiskCache root shared with the parent process
    repeats: int = 2  # simulate-objective measurement repeats


@dataclass(frozen=True)
class TuningTrial:
    """The outcome of evaluating one candidate."""

    candidate: Candidate
    score: float
    ok: bool = True
    error: str | None = None

    def describe(self) -> str:
        if not self.ok:
            return f"{self.candidate.label():<32} FAILED ({self.error})"
        return f"{self.candidate.label():<32} {self.score:.6g}"


#: One pipeline session per (cache root, device) per process: candidates
#: evaluated by the same worker share the in-memory artifact LRU, so the
#: canonicalize artifact — and the instance-enumeration memo hanging off its
#: :class:`CanonicalForm` — is computed once per process, not per candidate.
_SESSIONS: dict[tuple[str | None, str], Any] = {}


def _session(job: EvaluationJob):
    from repro.api import Session
    from repro.cache import DiskCache

    key = (job.cache_root, job.device.name)
    session = _SESSIONS.get(key)
    if session is None:
        cache = DiskCache(job.cache_root) if job.cache_root else None
        session = Session(device=job.device, strategy="hybrid", disk_cache=cache)
        _SESSIONS[key] = session
    return session, session.disk_cache


def _threads_per_block(candidate: Candidate) -> int | None:
    if candidate.threads is None:
        return None
    return math.prod(candidate.threads)


def _score_model(job: EvaluationJob) -> float:
    """Roofline total-time estimate at the paper-scale problem size."""
    from repro.gpu.perf_model import PerformanceModel

    session, cache = _session(job)
    run = session.run(
        job.program,
        tile_sizes=job.candidate.sizes,
        config=job.config,
        threads=job.candidate.threads,
        stop_after="analysis",
    )
    bundle = run.artifact("analysis")
    threads = _threads_per_block(job.candidate)
    if threads is None:
        score = bundle.report.total_time_s
    else:
        # Launch-config tuning: re-run the roofline conversion with the
        # candidate's block size (occupancy changes, counters do not).
        estimate = bundle.estimate
        launch = replace(estimate.launch, threads_per_block=threads)
        score = (
            PerformanceModel(job.device).estimate(estimate.counters, launch).total_time_s
        )
    _flush(cache)
    return score


def _score_counters(job: EvaluationJob) -> float:
    """Weighted memory-system pressure per stencil update."""
    session, cache = _session(job)
    run = session.run(
        job.program,
        tile_sizes=job.candidate.sizes,
        config=job.config,
        threads=job.candidate.threads,
        stop_after="analysis",
    )
    counters = run.artifact("analysis").estimate.counters
    updates = max(1.0, counters.stencil_updates)
    cost = sum(
        weight * getattr(counters, name, 0.0)
        for name, weight in COUNTER_WEIGHTS.items()
    )
    _flush(cache)
    return cost / updates


def _score_simulate(job: EvaluationJob) -> float:
    """Measured wall time of the batch simulator on a small instance.

    Only the batch execution itself is timed.  The deterministic setup — the
    compiled pipeline prefix and the columnar :class:`ScheduleArrays` of the
    candidate — is shared through the per-pass disk cache (the schedule
    arrays under a tuning-owned ``tuning-schedule`` stage key), so a warm
    re-run of a sweep pays only the measured simulations.
    """
    from repro.gpu.simulator import FunctionalSimulator
    from repro.stencils import get_definition, get_stencil
    from repro.tiling.hybrid import HybridTiling

    program = job.program
    try:
        definition = get_definition(program.name)
        sizes, steps = SIMULATE_INSTANCES[definition.dimensions]
        small = get_stencil(definition.name, sizes=sizes, steps=steps)
    except KeyError:
        # Not a library stencil (e.g. parsed from user C source): simulate
        # the program at its own size.  Callers should keep it small.
        small = program

    session, cache = _session(job)
    # Codegen is not needed to simulate; stop at the shared-memory plan.
    run = session.run(
        small,
        tile_sizes=job.candidate.sizes,
        config=job.config,
        threads=job.candidate.threads,
        stop_after="memory",
    )
    tiling = run.artifact("tiling").tiling
    shared_canonical = run.artifact("canonicalize").canonical
    if tiling.canonical is not shared_canonical:
        # The tiling artifact came from the disk cache and carries its own
        # unpickled CanonicalForm; re-anchor on the session-shared one so
        # the instance-enumeration memo is shared across candidates.
        tiling = HybridTiling(shared_canonical, run.artifact("tiling").sizes)
    _install_schedule_arrays(tiling, run, cache)
    plan = run.artifact("memory").plan
    config = run.request.config
    best = float("inf")
    for _ in range(max(1, job.repeats)):
        simulator = FunctionalSimulator(tiling, plan, config, batch=True)
        start = time.perf_counter()
        simulator.run(seed=0)
        best = min(best, time.perf_counter() - start)
    _flush(cache)
    return best


def _install_schedule_arrays(tiling, run, cache) -> None:
    """Fill the tiling's schedule-array memo from the disk cache, or warm it.

    The columnar schedule is a pure function of (program content, tile
    sizes, storage) and by far the most expensive part of a simulation-based
    evaluation; caching it turns warm sweep re-runs into pure measurement.
    """
    from repro.api.session import program_digest
    from repro.cache.keys import stage_key
    from repro.tiling.schedule_arrays import ScheduleArrays

    if cache is None:
        tiling.schedule_arrays()
        return
    key = stage_key(
        stage="tuning-schedule",
        stage_schema=1,
        strategy="hybrid",
        parts=[
            f"program={program_digest(run.artifact('parse').program)}",
            f"tile-sizes={run.request.tile_sizes!r}",
            f"storage={run.request.storage}",
        ],
    )
    cached = cache.get(key, stage="tuning-schedule")
    if isinstance(cached, ScheduleArrays):
        tiling._schedule_arrays_cache = cached
        return
    cache.put(key, tiling.schedule_arrays(), stage="tuning-schedule")


def _flush(cache) -> None:
    if cache is not None:
        cache.flush_stats()


_OBJECTIVES: dict[str, Callable[[EvaluationJob], float]] = {
    "model": _score_model,
    "simulate": _score_simulate,
    "counters": _score_counters,
}


def list_objectives() -> list[str]:
    """Names of the registered objectives, sorted."""
    return sorted(_OBJECTIVES)


def register_objective(
    name: str, scorer: Callable[[EvaluationJob], float], replace: bool = False
) -> None:
    """Register a custom objective (must be importable in worker processes)."""
    if not name:
        raise ValueError("objectives must have a non-empty name")
    if name in _OBJECTIVES and not replace:
        raise ValueError(f"objective {name!r} is already registered")
    _OBJECTIVES[name] = scorer


def evaluate_candidate(job: EvaluationJob) -> TuningTrial:
    """Score one candidate; failures become infinite-cost trials, not crashes.

    A candidate that the pipeline rejects (degenerate tiling, planner error)
    is reported as a failed trial so a sweep survives hostile corners of the
    space instead of aborting after hours of work.
    """
    try:
        scorer = _OBJECTIVES[job.objective]
    except KeyError:
        raise ValueError(
            f"unknown tuning objective {job.objective!r}; known: {list_objectives()}"
        ) from None
    with obs.span(
        "tune.trial", candidate=job.candidate.label(), objective=job.objective
    ) as span:
        try:
            return TuningTrial(candidate=job.candidate, score=float(scorer(job)))
        except Exception as error:  # noqa: BLE001 — any pipeline failure is data
            span.set(failed=True)
            return TuningTrial(
                candidate=job.candidate,
                score=float("inf"),
                ok=False,
                error=f"{type(error).__name__}: {error}",
            )
