"""The persistent tuning database: best known configurations per program.

A database is one JSON document with the same envelope discipline as the
disk cache and the bench reports — a ``kind`` marker plus a
``schema_version`` guarding every reader:

.. code-block:: json

    {
      "schema_version": 1,
      "kind": "hexcc-tuning-db",
      "entries": {
        "<digest>/<device>/<strategy>/<objective>": {
          "program": "heat_3d", "sizes": [384, 384, 384], "steps": 128,
          "digest": "<sha256 of the program content>",
          "device": "GTX 470", "strategy": "random",
          "objective": "model", "seed": 0, "budget": 32,
          "evaluations": 33, "failures": 0,
          "best": {"height": 2, "widths": [7, 10, 32],
                    "threads": null, "score": 0.031},
          "baseline": {"height": 2, "widths": [3, 4, 128], "score": 0.034}
        }
      }
    }

Entries are keyed by **(program content digest, device, strategy,
objective)** — scores are only comparable within one objective, so a
``model`` re-tune must never overwrite a recorded ``simulate`` measurement
of the same strategy.  Entries
contain no timestamps or environment data, so an identical ``(seed,
budget)`` sweep reproduces a byte-identical entry — the reproducibility
property the determinism tests pin.  Writes are atomic (temp file +
``os.replace``); a corrupt or foreign file reads as empty, never fatal.

Database resolution for ``--tuned`` (first hit wins):

1. an explicit path (``--tuning-db`` / the ``db`` argument);
2. ``$HEXCC_TUNING_DB``;
3. the user database ``<cache dir>/tuning.json`` (if present);
4. the committed baseline shipped with the package
   (``repro/tuning/TUNING_baseline.json``).
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from pathlib import Path
from collections.abc import Iterator, Mapping
from typing import Any

from repro.cache.disk import default_cache_dir

SCHEMA_VERSION = 1
DB_KIND = "hexcc-tuning-db"

#: Environment variable overriding the database location.
TUNING_DB_ENV = "HEXCC_TUNING_DB"

#: ``--tuned`` resolution prefers empirical scores over modelled ones.
OBJECTIVE_PREFERENCE = ("simulate", "model", "counters")


def default_db_path() -> Path:
    """The user's writable tuning database (next to the artefact cache)."""
    override = os.environ.get(TUNING_DB_ENV)
    if override:
        return Path(override)
    return default_cache_dir() / "tuning.json"


def baseline_db_path() -> Path:
    """The committed baseline database shipped inside the package."""
    return Path(__file__).resolve().parent / "TUNING_baseline.json"


def resolve_db_path(explicit: str | Path | None = None) -> Path:
    """The database ``--tuned`` should read (see the module docstring)."""
    if explicit is not None:
        return Path(explicit)
    override = os.environ.get(TUNING_DB_ENV)
    if override:
        return Path(override)
    user_db = default_cache_dir() / "tuning.json"
    if user_db.is_file():
        return user_db
    return baseline_db_path()


def entry_key(digest: str, device: str, strategy: str, objective: str) -> str:
    """The entries-map key of one (program, device, strategy, objective)."""
    return f"{digest}/{device}/{strategy}/{objective}"


def _entry_is_usable(entry: Any) -> bool:
    """Whether a loaded entry has everything ``--tuned`` resolution touches.

    The database is advisory: a hand-edited or foreign entry must be dropped
    at load time, never crash ``Session.run(tuned=True)`` later.
    """
    if not isinstance(entry, Mapping):
        return False
    for field in ("digest", "device", "strategy", "objective"):
        if not isinstance(entry.get(field), str):
            return False
    best = entry.get("best")
    if not isinstance(best, Mapping):
        return False
    try:
        float(best.get("score", float("inf")))
        int(best["height"])
        widths = [int(w) for w in best["widths"]]
    except (KeyError, TypeError, ValueError):
        return False
    return bool(widths)


class TuningDatabase:
    """An in-memory view of one tuning database file.

    ``load`` tolerates a missing, corrupt or foreign file (the database is
    advisory — worst case the model-selected sizes are used); ``save`` always
    writes a valid, sorted, schema-versioned document atomically.
    """

    def __init__(self, entries: dict[str, dict[str, Any]] | None = None) -> None:
        self.entries: dict[str, dict[str, Any]] = dict(entries or {})

    # -- IO -----------------------------------------------------------------------

    @classmethod
    def load(cls, path: str | Path | None = None) -> "TuningDatabase":
        """Read a database; missing/corrupt/stale files read as empty."""
        location = resolve_db_path(path)
        try:
            raw = json.loads(Path(location).read_text())
        except (OSError, ValueError):
            return cls()
        if (
            not isinstance(raw, Mapping)
            or raw.get("kind") != DB_KIND
            or raw.get("schema_version") != SCHEMA_VERSION
            or not isinstance(raw.get("entries"), Mapping)
        ):
            return cls()
        entries = {
            str(key): dict(value)
            for key, value in raw["entries"].items()
            if _entry_is_usable(value)
        }
        return cls(entries)

    def save(self, path: str | Path) -> Path:
        """Atomically write the database (sorted keys, trailing newline)."""
        destination = Path(path)
        destination.parent.mkdir(parents=True, exist_ok=True)
        document = {
            "schema_version": SCHEMA_VERSION,
            "kind": DB_KIND,
            "entries": self.entries,
        }
        blob = json.dumps(document, indent=2, sort_keys=True) + "\n"
        descriptor, temp_name = tempfile.mkstemp(
            dir=destination.parent, prefix=".tuning-", suffix=".json"
        )
        try:
            with os.fdopen(descriptor, "w") as handle:
                handle.write(blob)
            os.replace(temp_name, destination)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(temp_name)
            raise
        return destination

    # -- entries ------------------------------------------------------------------

    def record(self, entry: Mapping[str, Any]) -> str:
        """Insert (or overwrite) one entry; returns its key."""
        for field in ("digest", "device", "strategy", "objective", "best"):
            if field not in entry:
                raise ValueError(f"tuning entry lacks the {field!r} field")
        key = entry_key(
            entry["digest"], entry["device"], entry["strategy"], entry["objective"]
        )
        self.entries[key] = dict(entry)
        return key

    def get(
        self, digest: str, device: str, strategy: str, objective: str
    ) -> dict[str, Any] | None:
        """The entry of one exact (digest, device, strategy, objective) key."""
        return self.entries.get(entry_key(digest, device, strategy, objective))

    def entries_for(self, digest: str, device: str) -> list[dict[str, Any]]:
        """Every entry of one (program, device) pair, in key order."""
        prefix = f"{digest}/{device}/"
        return [
            self.entries[key] for key in sorted(self.entries) if key.startswith(prefix)
        ]

    def best_for(self, digest: str, device: str) -> dict[str, Any] | None:
        """The entry ``--tuned`` should apply for one (program, device).

        Scores are only comparable within one objective, so entries are
        grouped by objective, the most empirical available objective wins
        (:data:`OBJECTIVE_PREFERENCE`), and within it the lowest best score;
        remaining ties break on the strategy name.  Fully deterministic.
        """
        matches = self.entries_for(digest, device)
        if not matches:
            return None
        for objective in OBJECTIVE_PREFERENCE:
            group = [e for e in matches if e.get("objective") == objective]
            if group:
                return min(
                    group,
                    key=lambda e: (
                        float(e["best"].get("score", float("inf"))),
                        str(e.get("strategy", "")),
                    ),
                )
        return min(
            matches,
            key=lambda e: (
                float(e["best"].get("score", float("inf"))),
                str(e.get("strategy", "")),
            ),
        )

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.entries.values())

    def __repr__(self) -> str:
        return f"TuningDatabase({len(self.entries)} entries)"
