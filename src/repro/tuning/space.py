"""The autotuner's candidate space: tile sizes + launch configurations.

The space is derived from the same constraints the §3.7 model search obeys
(:func:`repro.tiling.tile_size.select_tile_sizes`):

* ``h + 1`` must be a multiple of the statement count (the hexagonal
  schedule interleaves the statements along logical time);
* ``w_0`` must satisfy the convexity condition (1) —
  :func:`repro.tiling.hexagon.minimal_width`;
* the innermost tile width must keep full warps busy (a multiple of the
  warp size, for 2-D+ stencils);
* the tile's shared-memory footprint must fit the device.

Candidates violating a constraint are never emitted; the space records *why*
each raw grid point was pruned (:data:`repro.tiling.tile_size.PRUNE_REASONS`)
so sweeps are auditable.  Every emitted candidate is legal by construction —
the property tests in ``tests/tuning`` pin that any of them survives
:func:`repro.tiling.validate.validate_hybrid_tiling`.

A candidate optionally carries a thread-block shape (the launch-config half
of the autotuner); ``tune_threads=True`` adds per-candidate block shapes
derived from the innermost tile width.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from collections.abc import Iterable, Mapping, Sequence

from repro.gpu.device import GPUDevice, GTX470
from repro.model.preprocess import CanonicalForm
from repro.tiling.hexagon import minimal_width
from repro.tiling.hybrid import TileSizes
from repro.tiling.tile_size import (
    PRUNE_LEGALITY,
    PRUNE_OCCUPANCY,
    PRUNE_SHARED_MEMORY,
    TileSizeModel,
    height_is_legal,
    inner_width_keeps_full_warps,
    new_prune_counters,
)

#: Default axis values, mirroring ``select_tile_sizes``.
DEFAULT_HEIGHTS = tuple(range(0, 17))
DEFAULT_WIDTHS = (1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16, 20, 24, 32)


@dataclass(frozen=True)
class Candidate:
    """One point of the search space: tile sizes + optional block shape."""

    sizes: TileSizes
    threads: tuple[int, ...] | None = None

    def label(self) -> str:
        text = str(self.sizes)
        if self.threads is not None:
            text += f", threads={self.threads}"
        return text


class CandidateSpace:
    """The legal tile-size/launch-config grid for one canonicalised program.

    Enumeration is deterministic (nested-loop order over the axes), so a
    seeded search over the space is reproducible by construction.
    """

    def __init__(
        self,
        canonical: CanonicalForm,
        device: GPUDevice = GTX470,
        *,
        inter_tile_reuse: bool = True,
        heights: Sequence[int] | None = None,
        widths: Sequence[int] | None = None,
        inner_widths: Sequence[int] | None = None,
        tune_threads: bool = False,
    ) -> None:
        self.canonical = canonical
        self.device = device
        self.inter_tile_reuse = inter_tile_reuse
        self.model = TileSizeModel(canonical)
        self.ndim = len(canonical.space_dims)
        warp = device.warp_size
        self.heights = tuple(heights if heights is not None else DEFAULT_HEIGHTS)
        self.widths = tuple(widths if widths is not None else DEFAULT_WIDTHS)
        self.inner_widths = tuple(
            inner_widths if inner_widths is not None else (warp, 2 * warp, 4 * warp)
        )
        self.tune_threads = tune_threads
        self._candidates: list[Candidate] | None = None
        self._pruned: dict[str, int] = new_prune_counters()

    # -- enumeration -------------------------------------------------------------

    def _axes(self) -> list[tuple[int, ...]]:
        """The raw value grid: ``[heights, w0s, middles..., inner]``."""
        axes: list[tuple[int, ...]] = [self.heights, self.widths]
        if self.ndim >= 2:
            axes.extend([self.widths] * (self.ndim - 2))
            axes.append(self.inner_widths)
        return axes

    def _thread_shapes(self, sizes: TileSizes) -> list[tuple[int, ...] | None]:
        """Block-shape variants for one tile size (``None`` = codegen default)."""
        if not self.tune_threads:
            return [None]
        inner = sizes.widths[-1]
        shapes: list[tuple[int, ...] | None] = [None]
        for threads in (inner, 2 * inner):
            if threads > self.device.max_threads_per_block:
                continue
            shape = tuple([1] * (len(sizes.widths) - 1) + [threads])
            shapes.append(shape)
        return shapes

    def preload(
        self, candidates: Sequence[Candidate], rejections: Mapping[str, int]
    ) -> None:
        """Install a previously-enumerated (cached) candidate list.

        The enumeration is deterministic for fixed axes, so a disk-cached
        ``(candidates, rejections)`` pair keyed by the program content and
        the space options is exactly what :meth:`enumerate` would recompute.
        """
        self._candidates = list(candidates)
        self._pruned = dict(rejections)

    def enumerate(self) -> list[Candidate]:
        """Every legal candidate, in deterministic order (memoised)."""
        if self._candidates is not None:
            return self._candidates
        k = self.canonical.num_statements
        warp = self.device.warp_size
        limit = self.device.shared_memory_per_sm
        pruned = new_prune_counters()
        seen: set[tuple] = set()
        out: list[Candidate] = []
        for values in product(*self._axes()):
            height, raw_widths = values[0], values[1:]
            if not height_is_legal(height, k):
                pruned[PRUNE_LEGALITY] += 1
                continue
            min_w0 = minimal_width(
                self.model.cone.delta0, self.model.cone.delta1, height
            )
            if raw_widths[0] < min_w0:
                pruned[PRUNE_LEGALITY] += 1
                continue
            if not inner_width_keeps_full_warps(raw_widths, self.ndim, warp):
                pruned[PRUNE_OCCUPANCY] += 1
                continue
            sizes = TileSizes(height, tuple(raw_widths))
            estimate = self.model.estimate(
                sizes, inter_tile_reuse=self.inter_tile_reuse
            )
            if estimate.shared_memory_bytes > limit:
                pruned[PRUNE_SHARED_MEMORY] += 1
                continue
            for threads in self._thread_shapes(sizes):
                key = (height, raw_widths, threads)
                if key in seen:
                    continue
                seen.add(key)
                pruned["evaluated"] += 1
                out.append(Candidate(sizes=sizes, threads=threads))
        self._candidates = out
        self._pruned = pruned
        return out

    def __len__(self) -> int:
        return len(self.enumerate())

    def __iter__(self) -> Iterable[Candidate]:
        return iter(self.enumerate())

    @property
    def rejections(self) -> Mapping[str, int]:
        """Per-reason prune counts of the enumeration (plus ``evaluated``)."""
        self.enumerate()
        return dict(self._pruned)

    # -- navigation (used by coordinate descent) -----------------------------------

    def neighbours(self, candidate: Candidate) -> list[Candidate]:
        """Axis-aligned neighbours of a candidate that are in the space.

        For each coordinate (height, each width, the thread shape) the
        adjacent values on that axis are substituted while the others are
        held fixed; combinations that were pruned from the space are skipped.
        """
        members = set(self.enumerate())
        out: list[Candidate] = []

        def consider(sizes: TileSizes, threads: tuple[int, ...] | None) -> None:
            neighbour = Candidate(sizes=sizes, threads=threads)
            if neighbour != candidate and neighbour in members:
                out.append(neighbour)

        for delta in (-1, 1):
            height = _step(self.heights, candidate.sizes.height, delta)
            if height is not None:
                consider(TileSizes(height, candidate.sizes.widths), candidate.threads)
        for axis in range(len(candidate.sizes.widths)):
            axis_values = (
                self.inner_widths
                if self.ndim >= 2 and axis == len(candidate.sizes.widths) - 1
                else self.widths
            )
            for delta in (-1, 1):
                width = _step(axis_values, candidate.sizes.widths[axis], delta)
                if width is None:
                    continue
                widths = list(candidate.sizes.widths)
                widths[axis] = width
                consider(
                    TileSizes(candidate.sizes.height, tuple(widths)),
                    candidate.threads,
                )
        for threads in self._thread_shapes(candidate.sizes):
            if threads != candidate.threads:
                consider(candidate.sizes, threads)
        return out

    def closest(self, sizes: TileSizes) -> Candidate | None:
        """The space member nearest to ``sizes`` (exact match preferred)."""
        members = self.enumerate()
        if not members:
            return None
        exact = Candidate(sizes=sizes, threads=None)
        if exact in members:
            return exact

        def distance(candidate: Candidate) -> tuple:
            height_gap = abs(candidate.sizes.height - sizes.height)
            width_gap = sum(
                abs(a - b)
                for a, b in zip(candidate.sizes.widths, sizes.widths)
            )
            return (candidate.threads is not None, height_gap + width_gap)

        return min(members, key=distance)


def _step(values: Sequence[int], current: int, delta: int) -> int | None:
    """The next axis value ``delta`` (+1/-1) steps away from ``current``."""
    ordered = sorted(set(values))
    if current in ordered:
        index = ordered.index(current) + delta
        return ordered[index] if 0 <= index < len(ordered) else None
    # Off-grid start (e.g. a clamped model selection): the nearest grid value
    # in the step direction.
    if delta < 0:
        lower = [v for v in ordered if v < current]
        return lower[-1] if lower else None
    higher = [v for v in ordered if v > current]
    return higher[0] if higher else None
