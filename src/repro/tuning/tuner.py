"""The tuning loop: search the candidate space, score, record the winner.

:func:`tune` is the programmatic counterpart of ``hexcc tune``: it derives
the legal candidate space from the program (:mod:`repro.tuning.space`),
spends an evaluation budget with a named search strategy
(:mod:`repro.tuning.strategies`), scores candidates with a named objective
(:mod:`repro.tuning.objectives`) fanned across worker processes by
:func:`repro.engine.map_ordered`, and returns a :class:`TuningResult` that
can be recorded into the persistent :class:`repro.tuning.db.TuningDatabase`.

The model-selected configuration (the paper's §3.7 answer) is always
evaluated *in addition to* the strategy's budget, so the search result can
never be worse than the model: ``best`` is the cheapest of all trials
including that baseline.

Sweeps are **incremental**: every evaluated trial and the enumerated
candidate space are stored in the shared :class:`~repro.cache.DiskCache`
under tuning-owned stage keys (content-hashed over the program, the device,
the objective, the configuration and the compiler code fingerprint, so a
code change re-measures everything).  Re-running a sweep — same seed or a
different strategy visiting overlapping candidates — only measures
candidates never seen before; a fully warm re-run reduces to cache lookups.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence
from typing import Any

from repro import obs
from repro.api.config import OptimizationConfig
from repro.api.session import Session, program_digest
from repro.cache import DiskCache
from repro.cache.keys import stage_key
from repro.engine import map_ordered
from repro.gpu.device import GPUDevice, GTX470
from repro.model.program import StencilProgram
from repro.tuning.db import TuningDatabase
from repro.tuning.objectives import (
    EvaluationJob,
    TuningTrial,
    evaluate_candidate,
    list_objectives,
)
from repro.tuning.space import Candidate, CandidateSpace
from repro.tuning.strategies import get_search_strategy


@dataclass
class TuningResult:
    """Everything one tuning sweep produced."""

    program_name: str
    sizes: tuple[int, ...]
    steps: int
    digest: str
    device: str
    strategy: str
    objective: str
    seed: int
    budget: int
    trials: list[TuningTrial]
    baseline: TuningTrial
    best: TuningTrial
    space_size: int
    rejections: Mapping[str, int] = field(default_factory=dict)
    wall_s: float = 0.0

    @property
    def improvement(self) -> float:
        """Baseline-over-best score ratio (> 1 means the search won)."""
        if self.best.score <= 0:
            return 1.0
        return self.baseline.score / self.best.score

    def to_entry(self) -> dict[str, Any]:
        """The tuning-database entry of this sweep.

        Deliberately free of timestamps, wall times and environment data:
        an identical ``(seed, budget)`` sweep with a deterministic objective
        must reproduce this entry byte for byte.
        """
        return {
            "program": self.program_name,
            "sizes": list(self.sizes),
            "steps": self.steps,
            "digest": self.digest,
            "device": self.device,
            "strategy": self.strategy,
            "objective": self.objective,
            "seed": self.seed,
            "budget": self.budget,
            "evaluations": len(self.trials) + 1,  # + the model baseline
            "failures": sum(1 for trial in self.trials if not trial.ok),
            "space_size": self.space_size,
            "best": _candidate_entry(self.best),
            "baseline": _candidate_entry(self.baseline),
        }

    def describe(self) -> str:
        lines = [
            f"tuned {self.program_name} on {self.device} "
            f"(strategy={self.strategy}, objective={self.objective}, "
            f"seed={self.seed}, budget={self.budget})",
            f"  space      : {self.space_size} candidates "
            f"({_format_rejections(self.rejections)})",
            f"  evaluated  : {len(self.trials) + 1} "
            f"({sum(1 for t in self.trials if not t.ok)} failed) "
            f"in {self.wall_s:.2f}s",
            f"  model      : {self.baseline.describe()}",
            f"  best       : {self.best.describe()}",
            f"  improvement: {self.improvement:.3f}x over the model selection",
        ]
        return "\n".join(lines)


def _candidate_entry(trial: TuningTrial) -> dict[str, Any]:
    return {
        "height": trial.candidate.sizes.height,
        "widths": list(trial.candidate.sizes.widths),
        "threads": list(trial.candidate.threads)
        if trial.candidate.threads is not None
        else None,
        "score": trial.score,
    }


def _format_rejections(rejections: Mapping[str, int]) -> str:
    pruned = {k: v for k, v in rejections.items() if k != "evaluated" and v}
    if not pruned:
        return "nothing pruned"
    return "pruned: " + ", ".join(f"{k}={v}" for k, v in sorted(pruned.items()))


def _trial_key(
    digest: str, device: GPUDevice, objective: str, config, candidate: Candidate
) -> str:
    """Disk-cache key of one evaluated trial (chained like a pipeline stage)."""
    return stage_key(
        stage="tuning-trial",
        stage_schema=1,
        strategy="hybrid",
        parts=[
            f"program={digest}",
            f"device={device.name}",
            f"objective={objective}",
            f"config={config!r}",
            f"candidate={candidate!r}",
        ],
    )


def _space_cache_key(
    digest: str, device: GPUDevice, inter_tile_reuse: bool, tune_threads: bool
) -> str:
    """Disk-cache key of the enumerated candidate space."""
    return stage_key(
        stage="tuning-space",
        stage_schema=1,
        strategy="hybrid",
        parts=[
            f"program={digest}",
            f"device={device.name}",
            f"shared={device.shared_memory_per_sm}",
            f"warp={device.warp_size}",
            f"reuse={inter_tile_reuse}",
            f"threads={tune_threads}",
        ],
    )


def tune(
    program: StencilProgram,
    *,
    strategy: str = "random",
    objective: str = "model",
    budget: int = 32,
    seed: int = 0,
    jobs: int = 1,
    device: GPUDevice = GTX470,
    config: OptimizationConfig | None = None,
    tune_threads: bool = False,
    disk_cache: DiskCache | None = None,
    db: TuningDatabase | None = None,
) -> TuningResult:
    """Autotune one stencil program; optionally record into ``db``.

    Parameters mirror ``hexcc tune``.  ``disk_cache`` is shared with the
    worker processes (they reopen it by root path), so every candidate run
    resumes from the cached ``canonicalize`` artifact — and previously
    evaluated trials (plus the enumerated space) are replayed from the cache
    instead of re-measured, making warm sweep re-runs nearly free.

    A completed sweep is appended to the persistent run history; a sweep
    that dies writes a crash report (see :mod:`repro.obs.log`) before the
    exception propagates.
    """
    try:
        result = _tune_impl(
            program,
            strategy=strategy,
            objective=objective,
            budget=budget,
            seed=seed,
            jobs=jobs,
            device=device,
            config=config,
            tune_threads=tune_threads,
            disk_cache=disk_cache,
            db=db,
        )
    except (ValueError, KeyboardInterrupt):
        # Bad arguments / user interrupt: expected, not a pipeline fault.
        raise
    except Exception as error:
        obs.log.attach_crash_report(
            error,
            obs.write_crash_report(
                error,
                context={
                    "operation": "tune",
                    "program": program.name,
                    "strategy": strategy,
                    "objective": objective,
                    "budget": budget,
                    "seed": seed,
                },
            ),
        )
        raise
    _record_tune_history(result)
    return result


def _record_tune_history(result: TuningResult) -> None:
    """Append one sweep summary to the run history (best-effort)."""
    from repro.obs import history

    if not history.history_enabled():
        return
    history.RunHistory().append(
        "tune",
        history.tune_record(
            program=result.program_name,
            strategy_space=f"{result.strategy}/{result.objective}",
            trials=len(result.trials) + 1,  # + the model baseline
            best_score=result.best.score,
            best_config={
                "height": result.best.candidate.sizes.height,
                "widths": list(result.best.candidate.sizes.widths),
                "threads": list(result.best.candidate.threads)
                if result.best.candidate.threads is not None
                else None,
            },
        ),
    )


def _tune_impl(
    program: StencilProgram,
    *,
    strategy: str,
    objective: str,
    budget: int,
    seed: int,
    jobs: int,
    device: GPUDevice,
    config: OptimizationConfig | None,
    tune_threads: bool,
    disk_cache: DiskCache | None,
    db: TuningDatabase | None,
) -> TuningResult:
    if objective not in list_objectives():
        raise ValueError(
            f"unknown tuning objective {objective!r}; known: {list_objectives()}"
        )
    search = get_search_strategy(strategy)
    config = config or OptimizationConfig.default()
    started = time.perf_counter()

    # One shared pipeline prefix: parse + canonicalize once, so the space and
    # every candidate evaluation reuse the same cached artifact.
    session = Session(device=device, strategy="hybrid", disk_cache=disk_cache)
    prefix = session.run(program, config=config, stop_after="canonicalize")
    canonical = prefix.artifact("canonicalize").canonical
    digest = program_digest(prefix.artifact("parse").program)

    inter_tile_reuse = config.inter_tile_reuse != "none"
    space = CandidateSpace(
        canonical,
        device,
        inter_tile_reuse=inter_tile_reuse,
        tune_threads=tune_threads,
    )
    if disk_cache is not None:
        space_key = _space_cache_key(digest, device, inter_tile_reuse, tune_threads)
        cached_space = disk_cache.get(space_key, stage="tuning-space")
        if (
            isinstance(cached_space, tuple)
            and len(cached_space) == 2
            and isinstance(cached_space[0], list)
        ):
            space.preload(*cached_space)
        else:
            disk_cache.put(
                space_key,
                (space.enumerate(), dict(space.rejections)),
                stage="tuning-space",
            )

    cache_root = str(disk_cache.root) if disk_cache is not None else None

    def evaluate(batch: Sequence[Candidate]) -> list[TuningTrial]:
        """Replay cached trials; measure (and record) only unseen candidates."""
        trials: list[TuningTrial | None] = [None] * len(batch)
        missing: list[tuple[int, Candidate]] = []
        for index, candidate in enumerate(batch):
            if disk_cache is not None:
                cached = disk_cache.get(
                    _trial_key(digest, device, objective, config, candidate),
                    stage="tuning-trial",
                )
                if isinstance(cached, TuningTrial):
                    trials[index] = cached
                    continue
            missing.append((index, candidate))
        obs.count("tune.trials", float(len(batch)), objective=objective)
        obs.count(
            "tune.trials_cached", float(len(batch) - len(missing)), objective=objective
        )
        fresh = map_ordered(
            evaluate_candidate,
            [
                EvaluationJob(
                    program=program,
                    candidate=candidate,
                    objective=objective,
                    device=device,
                    config=config,
                    cache_root=cache_root,
                )
                for _, candidate in missing
            ],
            jobs=jobs,
        )
        for (index, candidate), trial in zip(missing, fresh):
            trials[index] = trial
            if disk_cache is not None:
                disk_cache.put(
                    _trial_key(digest, device, objective, config, candidate),
                    trial,
                    stage="tuning-trial",
                )
        return [trial for trial in trials if trial is not None]

    # The §3.7 model selection, snapped to the space: always evaluated, and
    # handed to strategies that exploit a starting point.
    model_plan = session.run(program, config=config, stop_after="tiling")
    model_sizes = model_plan.artifact("tiling").sizes
    start = space.closest(model_sizes)
    baseline = evaluate([Candidate(sizes=model_sizes)])[0]

    with obs.span(
        "tune.search",
        program=program.name,
        strategy=strategy,
        objective=objective,
        budget=budget,
    ):
        trials = search.search(space, evaluate, budget, seed, start=start)
    succeeded = [trial for trial in trials if trial.ok]
    obs.count(
        "tune.failures", float(len(trials) - len(succeeded)), objective=objective
    )
    best = min(
        succeeded + [baseline],
        key=lambda trial: (trial.score, trial.candidate.label()),
    )

    result = TuningResult(
        program_name=program.name,
        sizes=tuple(program.sizes),
        steps=program.time_steps,
        digest=digest,
        device=device.name,
        strategy=strategy,
        objective=objective,
        seed=seed,
        budget=budget,
        trials=trials,
        baseline=baseline,
        best=best,
        space_size=len(space),
        rejections=space.rejections,
        wall_s=time.perf_counter() - started,
    )
    if db is not None:
        db.record(result.to_entry())
    if disk_cache is not None:
        disk_cache.flush_stats()
    return result
